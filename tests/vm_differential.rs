//! Compiled-bytecode differential property tests: every legacy static
//! `Op` program, compiled to `pbc-vm` bytecode by [`pbc_vm::compile_ops`],
//! must be **observationally identical** to the static interpreter —
//! same recorded footprint (keys *and* versions, in order), same
//! buffered writes, same abort point, same final state digest, and the
//! same commit/abort split through all eight execution architectures and
//! the audit reference executor.
//!
//! This is the proof obligation for threading the VM through the
//! execution layer: legacy workloads replay bit-for-bit whether they
//! ship as op lists or as bytecode.

use pbc_audit::ReferenceExecutor;
use pbc_core::ArchKind;
use pbc_ledger::{execute, StateStore, Version};
use pbc_types::tx::balance_value;
use pbc_types::{ClientId, Op, Transaction, TxId, VmCall};
use pbc_vm::compile_ops;
use proptest::prelude::*;

/// Key space small enough that almost every transaction conflicts.
const KEYS: usize = 5;
const BLOCK: usize = 7;

fn key(i: u8) -> String {
    format!("k{}", i as usize % KEYS)
}

/// Decodes one generated tuple into a *static* transaction covering
/// every compilable op shape (transfers that may abort, increments,
/// blind puts, deletes, busy-work noops, plus a widening read).
fn decode(id: u64, (a, b, kind, amount): (u8, u8, u8, u64)) -> Transaction {
    let op = match kind % 5 {
        0 => Op::Transfer { from: key(a), to: key(b), amount },
        1 => Op::Incr { key: key(a), delta: amount as i64 - 20 },
        2 => Op::Put { key: key(a), value: balance_value(amount) },
        3 => Op::Noop { busy_work: (amount % 8) as u32 },
        _ => Op::Delete { key: key(a) },
    };
    let op2 = Op::Get { key: key(b) };
    Transaction::new(TxId(id), ClientId(0), vec![op, op2])
}

/// The VM twin of a static transaction: ops compiled to bytecode, gas
/// sized by the straight-line bound, and the true static footprint
/// declared (so schedulers see exactly what they saw for the original).
fn to_vm(tx: &Transaction) -> Transaction {
    let program = compile_ops(&tx.ops);
    let call = VmCall {
        bytecode: program.to_bytes().into(),
        args: Vec::new(),
        gas_limit: program.straight_line_gas(),
        declared_reads: tx.read_keys().iter().map(|k| k.to_string()).collect(),
        declared_writes: tx.write_keys().iter().map(|k| k.to_string()).collect(),
    };
    Transaction::invoke(tx.id, tx.client, call)
}

fn initial_state() -> StateStore {
    let mut s = StateStore::new();
    for i in 0..KEYS {
        s.put(format!("k{i}"), balance_value(50), Version::new(0, i as u32));
    }
    s
}

proptest! {
    /// Interpreter-level equivalence: identical recorded footprint
    /// (keys and versions in recording order), identical buffered
    /// writes, identical success/abort verdict.
    #[test]
    fn compiled_execution_matches_static_interpreter(
        raw in proptest::collection::vec((0u8..6, 0u8..6, 0u8..5, 1u64..120), 1..30)
    ) {
        let state = initial_state();
        for (i, t) in raw.iter().enumerate() {
            let stat = decode(i as u64, *t);
            let vm = to_vm(&stat);
            let rs = execute(&stat, &state);
            let rv = execute(&vm, &state);
            prop_assert_eq!(
                rs.is_success(), rv.is_success(),
                "verdict diverged for {:?}: static {:?} vs vm {:?}", stat.ops, rs.status, rv.status
            );
            prop_assert_eq!(
                &rs.read_set, &rv.read_set,
                "read set diverged for {:?}", stat.ops
            );
            prop_assert_eq!(
                &rs.write_set, &rv.write_set,
                "write set diverged for {:?}", stat.ops
            );
            prop_assert!(
                rv.gas_used <= vm.gas_limit().unwrap(),
                "gas {} over straight-line budget {}", rv.gas_used, vm.gas_limit().unwrap()
            );
        }
    }

    /// Pipeline-level equivalence: for all eight architectures, the
    /// compiled stream and the static stream produce the same
    /// commit/abort split block by block and the same final state
    /// digest; the audit reference executor agrees with the compiled
    /// pipeline at every block.
    #[test]
    fn compiled_stream_matches_static_across_all_pipelines(
        raw in proptest::collection::vec((0u8..6, 0u8..6, 0u8..5, 1u64..40), 1..40)
    ) {
        let static_txs: Vec<Transaction> =
            raw.iter().enumerate().map(|(i, t)| decode(i as u64, *t)).collect();
        let vm_txs: Vec<Transaction> = static_txs.iter().map(to_vm).collect();
        for arch in ArchKind::ALL {
            let initial = initial_state();
            let mut static_pipe = arch.make_pipeline(initial.clone());
            let mut vm_pipe = arch.make_pipeline(initial.clone());
            let mut reference = ReferenceExecutor::new(arch, initial);
            for (b, (sb, vb)) in
                static_txs.chunks(BLOCK).zip(vm_txs.chunks(BLOCK)).enumerate()
            {
                let expected = reference.apply_block(vb, b as u64 + 1);
                let got_s = static_pipe.process_block(sb.to_vec());
                let got_v = vm_pipe.process_block(vb.to_vec());
                let mut cs = got_s.committed.clone();
                let mut cv = got_v.committed.clone();
                cs.sort_unstable();
                cv.sort_unstable();
                prop_assert_eq!(
                    cs, cv,
                    "{:?} block {}: compiled commit set diverged from static", arch, b
                );
                let mut want = expected.committed.clone();
                let mut have = got_v.committed.clone();
                want.sort_unstable();
                have.sort_unstable();
                prop_assert_eq!(
                    want, have,
                    "{:?} block {}: reference disagrees with compiled pipeline", arch, b
                );
            }
            prop_assert_eq!(
                static_pipe.state().value_digest(),
                vm_pipe.state().value_digest(),
                "{:?}: compiled final state diverged from static", arch
            );
            prop_assert_eq!(
                reference.state().value_digest(),
                vm_pipe.state().value_digest(),
                "{:?}: reference final state diverged from compiled pipeline", arch
            );
        }
    }
}
