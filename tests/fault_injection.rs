//! Fault-injection tests: partitions and message loss against the
//! consensus substrate (§2.2's asynchronous, unreliable network).

use pbc_consensus::hotstuff::{HotStuffConfig, HotStuffReplica, HsMsg};
use pbc_consensus::minbft::{MinBftConfig, MinBftMsg, MinBftReplica};
use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_consensus::raft::{RaftConfig, RaftMsg, RaftNode, Role};
use pbc_consensus::tendermint::{TendermintConfig, TendermintNode, TmMsg};
use pbc_sim::{LatencyModel, Network, NetworkConfig};

fn pbft_cluster(n: usize, seed: u64) -> Network<PbftReplica<u64>> {
    let cfg = PbftConfig::new(n);
    let actors = (0..n).map(|_| PbftReplica::new(cfg.clone())).collect();
    Network::new(actors, NetworkConfig { seed, ..Default::default() })
}

fn raft_cluster(n: usize, seed: u64, drop_rate: f64) -> Network<RaftNode<u64>> {
    let cfg = RaftConfig::new(n);
    let actors = (0..n).map(|i| RaftNode::new(cfg.clone(), i)).collect();
    let mut net = Network::new(
        actors,
        NetworkConfig { seed, drop_rate, latency: LatencyModel::lan(), lanes: 1 },
    );
    net.start();
    net
}

fn submit_pbft(net: &mut Network<PbftReplica<u64>>, p: u64) {
    for i in 0..net.len() {
        net.inject(0, i, PbftMsg::Request(p), 1);
    }
}

fn submit_raft(net: &mut Network<RaftNode<u64>>, p: u64) {
    for i in 0..net.len() {
        net.inject(0, i, RaftMsg::Request(p), 1);
    }
}

#[test]
fn pbft_minority_partition_cannot_decide() {
    let mut net = pbft_cluster(4, 1);
    // Node 0 (the primary) is cut off; {1,2,3} has a 2f+1 quorum.
    net.partition(&[vec![0], vec![1, 2, 3]]);
    submit_pbft(&mut net, 7);
    net.run_to_quiescence(3_000_000);
    // The majority side view-changed away from the unreachable primary
    // and decided; the isolated node decided nothing.
    assert_eq!(net.actor(0).log.len(), 0, "isolated node must not decide");
    for i in 1..4 {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, vec![7], "majority node {i}");
        assert!(net.actor(i).view() >= 1, "majority must have changed view");
    }
}

#[test]
fn pbft_split_brain_is_impossible() {
    // Split 4 nodes 2-2: neither side holds a quorum of 3, so *nothing*
    // decides — the classic safety argument, observed.
    let mut net = pbft_cluster(4, 2);
    net.partition(&[vec![0, 1], vec![2, 3]]);
    submit_pbft(&mut net, 9);
    net.run_until(2_000_000); // bounded: view-change timers fire forever
    for i in 0..4 {
        assert_eq!(net.actor(i).log.len(), 0, "node {i} decided in a split brain");
    }
}

#[test]
fn pbft_survives_moderate_message_loss() {
    // 2% loss: three-phase exchanges occasionally break; view changes
    // re-propose until everything decides.
    let cfg = PbftConfig::new(4);
    let actors = (0..4).map(|_| PbftReplica::new(cfg.clone())).collect();
    let mut net: Network<PbftReplica<u64>> =
        Network::new(actors, NetworkConfig { seed: 3, drop_rate: 0.02, ..Default::default() });
    for p in 1..=5u64 {
        submit_pbft(&mut net, p);
    }
    let ok = net.run_until_all(5_000_000, |r| r.log.len() >= 5);
    assert!(ok, "all replicas must eventually deliver all 5 requests");
    let reference: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
    for i in 1..4 {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i} diverged under loss");
    }
}

#[test]
fn raft_partitioned_leader_steps_down_and_cluster_heals() {
    let mut net = raft_cluster(5, 4, 0.0);
    net.run_until(200_000);
    let old_leader = (0..5).find(|&i| net.actor(i).role() == Role::Leader).expect("leader");
    submit_raft(&mut net, 1);
    let ok = net.run_until_all(5_000_000, |n| !n.log.is_empty());
    assert!(ok);

    // Cut the leader (with one follower) away from the majority.
    let minority_peer = (0..5).find(|&i| i != old_leader).unwrap();
    let majority: Vec<usize> = (0..5).filter(|&i| i != old_leader && i != minority_peer).collect();
    net.partition(&[vec![old_leader, minority_peer], majority.clone()]);
    submit_raft(&mut net, 2);
    // Majority elects a new leader and commits request 2.
    let deadline = net.now() + 10_000_000;
    loop {
        let done = majority.iter().all(|&i| net.actor(i).log.len() >= 2);
        if done || net.now() > deadline || !net.step() {
            break;
        }
    }
    for &i in &majority {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, vec![1, 2], "majority node {i}");
    }
    // The stale leader never committed request 2 on its side.
    assert!(net.actor(old_leader).log.len() <= 1);

    // Heal: heartbeats from the new leader force the old one to step
    // down and replicate the missed entry (Raft's log repair).
    net.heal_partition();
    let ok = net.run_until_all(8_000_000, |n| n.log.len() >= 2);
    assert!(ok, "all nodes must converge after healing");
    let reference: Vec<u64> =
        net.actor(majority[0]).log.delivered().iter().map(|(_, p, _)| *p).collect();
    for i in 0..5 {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i} after heal");
    }
    assert_ne!(net.actor(old_leader).role(), Role::Leader, "stale leader stepped down");
}

#[test]
fn raft_commits_through_lossy_links() {
    // 5% loss: heartbeat retransmission and next_index backtracking
    // repair everything.
    let mut net = raft_cluster(3, 5, 0.05);
    net.run_until(300_000);
    for p in 1..=10u64 {
        submit_raft(&mut net, p);
    }
    let ok = net.run_until_all(8_000_000, |n| n.log.len() >= 10);
    assert!(ok, "raft must push all 10 entries through a lossy network");
    let reference: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert_eq!(reference.len(), 10);
    for i in 1..3 {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i}");
    }
}

#[test]
fn pbft_no_conflicting_decisions_across_partition_cycle() {
    // Partition, let each side try, heal, continue. At no point may two
    // nodes decide different payloads for the same sequence number.
    let mut net = pbft_cluster(4, 6);
    submit_pbft(&mut net, 1);
    net.run_to_quiescence(5_000_000);
    net.partition(&[vec![0, 1], vec![2, 3]]);
    submit_pbft(&mut net, 2);
    net.run_until(net.now() + 1_000_000);
    net.heal_partition();
    submit_pbft(&mut net, 3);
    net.run_to_quiescence(5_000_000);
    // Collect per-seq decisions across nodes; they must never conflict.
    let mut by_seq: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for i in 0..4 {
        for (seq, payload, _) in net.actor(i).log.delivered() {
            if let Some(existing) = by_seq.insert(*seq, *payload) {
                assert_eq!(existing, *payload, "conflicting decision at seq {seq}");
            }
        }
    }
    // And request 1 decided everywhere before the partition.
    for i in 0..4 {
        assert!(!net.actor(i).log.is_empty(), "node {i}");
    }
}

// ---------------------------------------------------------------------
// The same adversarial conditions against the remaining BFT/CFT family.
// ---------------------------------------------------------------------

fn hotstuff_cluster(n: usize, seed: u64, drop_rate: f64) -> Network<HotStuffReplica<u64>> {
    let cfg = HotStuffConfig::new(n);
    let actors = (0..n).map(|_| HotStuffReplica::new(cfg.clone())).collect();
    let mut net = Network::new(actors, NetworkConfig { seed, drop_rate, ..Default::default() });
    net.start();
    net
}

fn tendermint_cluster(n: usize, seed: u64, drop_rate: f64) -> Network<TendermintNode<u64>> {
    let cfg = TendermintConfig::equal(n);
    let actors = (0..n).map(|_| TendermintNode::new(cfg.clone())).collect();
    Network::new(actors, NetworkConfig { seed, drop_rate, ..Default::default() })
}

fn minbft_cluster(n: usize, seed: u64, drop_rate: f64) -> Network<MinBftReplica<u64>> {
    let cfg = MinBftConfig::new(n);
    let actors = (0..n).map(|i| MinBftReplica::new(cfg.clone(), i)).collect();
    Network::new(actors, NetworkConfig { seed, drop_rate, ..Default::default() })
}

#[test]
fn hotstuff_isolated_replica_cannot_decide_majority_continues() {
    let mut net = hotstuff_cluster(4, 21, 0.0);
    net.partition(&[vec![0], vec![1, 2, 3]]);
    for i in 0..4 {
        net.inject(0, i, HsMsg::Request(5), 1);
    }
    net.run_until(5_000_000);
    assert_eq!(net.actor(0).log.len(), 0, "isolated replica must not decide");
    // {1,2,3} is exactly the 2f+1 quorum; views led by node 0 time out
    // and the chain forms across the live leaders.
    for i in 1..4 {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, vec![5], "majority node {i}");
    }
    // After healing, the quorum keeps deciding. The straggler missed
    // block 5's proposal, so it refuses to commit descendants of the
    // gap (committing them would mis-number its log): it stays behind,
    // but its log remains a strict prefix — never a divergent history.
    net.heal_partition();
    for i in 0..4 {
        net.inject(0, i, HsMsg::Request(6), 1);
    }
    let deadline = net.now() + 10_000_000;
    while net.now() < deadline {
        if (1..4).all(|i| net.actor(i).log.len() >= 2) || !net.step() {
            break;
        }
    }
    let reference: Vec<u64> = net.actor(1).log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert_eq!(reference, vec![5, 6], "quorum decides past the heal");
    let straggler: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert!(
        reference.starts_with(&straggler),
        "straggler log {straggler:?} must be a prefix of {reference:?}"
    );
}

#[test]
fn hotstuff_survives_moderate_message_loss() {
    let mut net = hotstuff_cluster(4, 22, 0.02);
    for p in 1..=5u64 {
        for i in 0..4 {
            net.inject(0, i, HsMsg::Request(p), 1);
        }
    }
    let ok = net.run_until_all(20_000_000, |r| r.log.len() >= 5);
    assert!(ok, "all replicas must deliver all 5 requests under 2% loss");
    let reference: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
    for i in 1..4 {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i} diverged under loss");
    }
}

#[test]
fn tendermint_split_vote_partition_is_safe() {
    // 2-2 split: neither side has >2/3 voting power, nothing decides.
    let mut net = tendermint_cluster(4, 23, 0.0);
    net.partition(&[vec![0, 1], vec![2, 3]]);
    for i in 0..4 {
        net.inject(0, i, TmMsg::Request(9), 1);
    }
    net.run_until(3_000_000); // bounded: round timers fire forever
    for i in 0..4 {
        assert_eq!(net.actor(i).log.len(), 0, "node {i} decided in a split vote");
    }
    // Heal: rounds converge and the request decides everywhere.
    net.heal_partition();
    let ok = net.run_until_all(20_000_000, |v| !v.log.is_empty());
    assert!(ok, "healed cluster must decide");
    for i in 0..4 {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, vec![9], "node {i}");
    }
}

#[test]
fn tendermint_survives_moderate_message_loss() {
    let mut net = tendermint_cluster(4, 24, 0.02);
    for p in 1..=5u64 {
        for i in 0..4 {
            net.inject(0, i, TmMsg::Request(p), 1);
        }
    }
    let ok = net.run_until_all(20_000_000, |v| v.log.len() >= 5);
    assert!(ok, "all validators must deliver all 5 requests under 2% loss");
    let reference: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
    for i in 1..4 {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i} diverged under loss");
    }
}

#[test]
fn minbft_isolated_primary_is_replaced() {
    // n=3 tolerates f=1 with a commit quorum of just f+1=2 (the A2M
    // advantage): the two live backups view-change and keep deciding.
    let mut net = minbft_cluster(3, 25, 0.0);
    net.partition(&[vec![0], vec![1, 2]]);
    for i in 0..3 {
        net.inject(0, i, MinBftMsg::Request(4), 1);
    }
    net.run_until(5_000_000);
    assert_eq!(net.actor(0).log.len(), 0, "isolated primary must not decide");
    for i in 1..3 {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, vec![4], "backup {i}");
        assert!(net.actor(i).view() >= 1, "backup {i} must have changed view");
    }
}

#[test]
fn minbft_survives_moderate_message_loss() {
    let mut net = minbft_cluster(3, 26, 0.02);
    for p in 1..=5u64 {
        for i in 0..3 {
            net.inject(0, i, MinBftMsg::Request(p), 1);
        }
    }
    let ok = net.run_until_all(20_000_000, |r| r.log.len() >= 5);
    assert!(ok, "all replicas must deliver all 5 requests under 2% loss");
    let reference: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
    for i in 1..3 {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i} diverged under loss");
    }
}
