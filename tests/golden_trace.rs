//! Golden-trace determinism tests.
//!
//! The simulator's contract is *bit-for-bit deterministic replay*: the
//! same seed and the same inputs must produce the same sequence of
//! deliveries `(at, seq, from, to)` — across refactors, across scheduler
//! rewrites, forever. Each test below runs a consensus protocol on a
//! fixed seed and asserts the network's running trace digest against a
//! value captured from the original `BinaryHeap` scheduler. If one of
//! these fails, the event loop changed the *order* in which it delivers
//! events, which silently invalidates every seeded experiment in the
//! repo.
//!
//! The digests are a pure function of the delivery schedule (not of
//! actor state), so protocol-internal refactors that don't change what
//! gets sent when will not disturb them — but a scheduler that breaks
//! `(at, seq)` ordering, perturbs RNG draw order, or renumbers sends
//! will.
//!
//! The observability layer is held to the same contract: installing a
//! [`pbc_trace::TraceSink`] must not change any digest, because trace
//! emission makes no RNG draws and no scheduling decisions.

use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_consensus::raft::{RaftConfig, RaftMsg, RaftNode, Role};
use pbc_sim::fault::{FaultModel, LinkFault};
use pbc_sim::{Network, NetworkConfig, ParNetwork, SimNet};

/// PBFT, 4 replicas, healthy LAN: captured from the pre-timer-wheel
/// scheduler (PR 2). Pins the fault-free hot path: broadcast fan-out
/// order, latency RNG draw order, seq assignment.
const GOLDEN_PBFT_HEALTHY: u64 = 0x6fdec6a07160da08;

/// PBFT, 7 replicas, lossy + duplicating + reordering links with a
/// partition window: pins every RNG-consuming fault branch.
const GOLDEN_PBFT_FAULTS: u64 = 0x13d2bd2034d53dda;

/// Raft, 5 nodes, healthy LAN with a leader crash mid-run: pins timer
/// scheduling (election + heartbeat), crash filtering, and delivery
/// order under timer pressure.
const GOLDEN_RAFT_CRASH: u64 = 0xbebc89a9234d6213;

fn pbft_actors(n: usize) -> Vec<PbftReplica<u64>> {
    (0..n).map(|_| PbftReplica::new(PbftConfig::new(n))).collect()
}

fn pbft_net(n: usize, seed: u64) -> Network<PbftReplica<u64>> {
    let mut net = Network::new(pbft_actors(n), NetworkConfig { seed, ..Default::default() });
    net.start();
    net
}

fn pbft_par(n: usize, seed: u64, lanes: usize) -> ParNetwork<PbftReplica<u64>> {
    let mut net =
        ParNetwork::new(pbft_actors(n), NetworkConfig { seed, lanes, ..Default::default() });
    net.start();
    net
}

/// The healthy-path scenario on any engine, returning the schedule
/// digest. The scenarios are generic over [`SimNet`] so the exact same
/// driving code pins both the sequential and the multi-lane engine.
fn pbft_healthy_on<N: SimNet<PbftReplica<u64>>>(mut net: N) -> u64 {
    for i in 0..10u64 {
        net.inject(0, 0, PbftMsg::Request(100 + i), 1 + i);
    }
    net.run_until(40_000);
    assert!(
        (0..net.len()).all(|i| net.actor(i).log.delivered().len() == 10),
        "scenario must decide all requests before the deadline"
    );
    net.trace_digest()
}

fn pbft_healthy_digest() -> u64 {
    pbft_healthy_on(pbft_net(4, 0xB117))
}

/// The faulty-links scenario on any engine, returning the digest.
fn pbft_faults_on<N: SimNet<PbftReplica<u64>>>(mut net: N) -> u64 {
    net.set_fault_model(FaultModel::uniform(LinkFault {
        drop: 0.02,
        duplicate: 0.03,
        delay_spike: 0.05,
        spike: 700,
        reorder: 0.10,
    }));
    for i in 0..8u64 {
        net.inject(0, (i % 7) as usize, PbftMsg::Request(500 + i), 1 + i * 3);
    }
    net.run_until(30_000);
    net.partition(&[vec![0, 1, 2, 3], vec![4, 5, 6]]);
    net.run_until(60_000);
    net.heal_partition();
    net.run_until(200_000);
    let stats = net.stats();
    assert!(stats.msgs_duplicated > 0, "duplication branch must exercise");
    assert!(stats.msgs_reordered > 0, "reorder branch must exercise");
    assert!(stats.delay_spikes > 0, "delay-spike branch must exercise");
    net.trace_digest()
}

fn pbft_faults_digest() -> u64 {
    pbft_faults_on(pbft_net(7, 0x5EED_F417))
}

fn raft_actors(n: usize) -> Vec<RaftNode<u64>> {
    (0..n).map(|i| RaftNode::<u64>::new(RaftConfig::new(n), i)).collect()
}

/// The Raft leader-crash scenario on any engine, returning the digest.
fn raft_crash_on<N: SimNet<RaftNode<u64>>>(mut net: N) -> u64 {
    let n = net.len();
    for i in 0..6u64 {
        net.inject(0, (i % n as u64) as usize, RaftMsg::Request(900 + i), 1 + i * 5);
    }
    net.run_until(60_000);
    let leader = (0..n).find(|&i| net.actor(i).role() == Role::Leader).expect("a leader by t=60k");
    net.crash(leader);
    net.run_until(200_000);
    net.recover(leader);
    net.run_until(260_000);
    assert!(
        net.stats().timers_fired > 0 && net.stats().timers_set > net.stats().timers_fired,
        "scenario must put real pressure on the timer path"
    );
    net.trace_digest()
}

fn raft_crash_digest() -> u64 {
    let mut net =
        Network::new(raft_actors(5), NetworkConfig { seed: 0xC0FFEE, ..Default::default() });
    net.start();
    raft_crash_on(net)
}

#[test]
fn pbft_healthy_trace_matches_golden() {
    let digest = pbft_healthy_digest();
    assert_eq!(
        digest, GOLDEN_PBFT_HEALTHY,
        "PBFT healthy-path delivery order diverged from the golden trace \
         (digest {digest:#018x})"
    );
}

#[test]
fn pbft_faulty_links_trace_matches_golden() {
    let digest = pbft_faults_digest();
    assert_eq!(
        digest, GOLDEN_PBFT_FAULTS,
        "PBFT faulty-link delivery order diverged from the golden trace \
         (digest {digest:#018x})"
    );
}

#[test]
fn raft_crash_trace_matches_golden() {
    let digest = raft_crash_digest();
    assert_eq!(
        digest, GOLDEN_RAFT_CRASH,
        "Raft crash-path delivery order diverged from the golden trace \
         (digest {digest:#018x})"
    );
}

/// The tentpole contract of the multi-lane core: the **parallel** engine
/// reproduces every pinned golden digest bit-for-bit at any lane count.
/// Lanes split the event queues and run handlers on worker threads, but
/// the conservative-window merge must keep RNG draw order, seq
/// assignment and the delivery fold exactly as the sequential scheduler
/// made them — otherwise every seeded experiment forks the moment
/// someone turns parallelism on.
#[test]
fn golden_traces_reproduce_at_every_lane_count() {
    for lanes in [1usize, 2, 8] {
        let digest = pbft_healthy_on(pbft_par(4, 0xB117, lanes));
        assert_eq!(
            digest, GOLDEN_PBFT_HEALTHY,
            "PBFT healthy-path diverged on the parallel engine at lanes={lanes} \
             (digest {digest:#018x})"
        );
        let digest = pbft_faults_on(pbft_par(7, 0x5EED_F417, lanes));
        assert_eq!(
            digest, GOLDEN_PBFT_FAULTS,
            "PBFT faulty-link diverged on the parallel engine at lanes={lanes} \
             (digest {digest:#018x})"
        );
        let mut net = ParNetwork::new(
            raft_actors(5),
            NetworkConfig { seed: 0xC0FFEE, lanes, ..Default::default() },
        );
        net.start();
        let digest = raft_crash_on(net);
        assert_eq!(
            digest, GOLDEN_RAFT_CRASH,
            "Raft crash-path diverged on the parallel engine at lanes={lanes} \
             (digest {digest:#018x})"
        );
    }
}

/// The digest itself is reproducible: two identical runs fold to the
/// same value, and a different seed folds to a different one.
#[test]
fn trace_digest_is_seed_sensitive() {
    let run = |seed| {
        let mut net = pbft_net(4, seed);
        net.inject(0, 0, PbftMsg::Request(1), 1);
        net.run_until(20_000);
        net.trace_digest()
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

/// The storage layer is passive too: running the healthy PBFT golden
/// scenario with every replica wired to a real (fault-injecting)
/// `pbc-store` — checkpoints, WAL appends, and fsyncs included — must
/// reproduce the golden digest bit-for-bit. Disk I/O happens strictly
/// between simulation events and draws nothing from the network RNG; a
/// regression here means persistence started leaking into the schedule,
/// which would silently fork durable experiments from their seeds.
#[test]
fn durable_store_does_not_perturb_golden_schedule() {
    use pbc_consensus::{DurableNet, OrderingCluster};
    let actors: Vec<PbftReplica<u64>> =
        (0..4).map(|_| PbftReplica::new(PbftConfig::new(4))).collect();
    let stores = (0..4u64)
        .map(|i| {
            let vfs = pbc_store::FaultFs::new(0xB117 ^ (i * 0x9E37));
            let (store, _) =
                pbc_store::NodeStore::open(Box::new(vfs), pbc_store::StoreConfig::default())
                    .expect("fresh store opens clean");
            store
        })
        .collect();
    let mut c =
        DurableNet::new(actors, NetworkConfig { seed: 0xB117, ..Default::default() }, stores);
    for i in 0..10u64 {
        c.network_mut().inject(0, 0, PbftMsg::Request(100 + i), 1 + i);
    }
    c.network_mut().run_until(40_000);
    assert!(
        c.network().actors().all(|r| r.log.delivered().len() == 10),
        "scenario must decide all requests before the deadline"
    );
    c.persist(); // disk writes after the run don't touch the digest either
    let digest = c.network().trace_digest();
    assert_eq!(
        digest, GOLDEN_PBFT_HEALTHY,
        "wiring replicas to real stores changed the delivery schedule \
         (digest {digest:#018x})"
    );
    for node in 0..4 {
        let cold = c.cold_decided(node).expect("durable cluster cold-reads");
        assert_eq!(cold.len(), 10, "node {node}: all decided blocks hit the disk");
    }
}

/// Observability is passive: running every golden scenario with a trace
/// sink installed produces the exact same schedule digests as running
/// without one. A regression here means some emission site started
/// drawing RNG, reordering sends, or otherwise leaking into the
/// simulation — exactly the failure mode that would silently corrupt
/// seeded experiments whenever someone turns metrics on.
#[test]
fn trace_sink_does_not_perturb_golden_schedules() {
    type Scenario = (&'static str, fn() -> u64, u64);
    let scenarios: [Scenario; 3] = [
        ("pbft-healthy", pbft_healthy_digest, GOLDEN_PBFT_HEALTHY),
        ("pbft-faults", pbft_faults_digest, GOLDEN_PBFT_FAULTS),
        ("raft-crash", raft_crash_digest, GOLDEN_RAFT_CRASH),
    ];
    for (name, run, golden) in scenarios {
        pbc_trace::install(pbc_trace::TraceSink::new(1024));
        let with_sink = run();
        let sink = pbc_trace::uninstall().expect("sink installed above");
        assert!(sink.total() > 0, "{name}: the sink must actually observe events");
        assert_eq!(
            with_sink, golden,
            "{name}: installing a trace sink changed the delivery schedule \
             (digest {with_sink:#018x})"
        );
    }
}
