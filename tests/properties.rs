//! Property-based tests over the workspace's core data structures and
//! invariants (proptest).

use proptest::prelude::*;

use pbc_crypto::group::Scalar;
use pbc_crypto::merkle::{verify_inclusion, MerkleTree};
use pbc_crypto::pedersen;
use pbc_crypto::range::RangeProof;
use pbc_crypto::sha256::{sha256, Sha256};
use pbc_ledger::{execute, StateStore, Version};
use pbc_txn::{fabric_sharp_reorder, DependencyGraph};
use pbc_types::tx::{balance_of, balance_value};
use pbc_types::{ClientId, Op, Transaction, TxId};
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------- crypto ----------

proptest! {
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut inc = Sha256::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        prop_assert_eq!(inc.finalize(), sha256(&data));
    }

    #[test]
    fn merkle_inclusion_all_leaves(leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..32), 1..40)) {
        let tree = MerkleTree::build(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(verify_inclusion(&tree.root(), leaf, &proof));
        }
    }

    #[test]
    fn merkle_rejects_wrong_index_data(leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 2..20)) {
        let tree = MerkleTree::build(&leaves);
        let proof = tree.prove(0).unwrap();
        // Proving leaf 0 but presenting leaf 1 must fail unless identical.
        if leaves[0] != leaves[1] {
            prop_assert!(!verify_inclusion(&tree.root(), &leaves[1], &proof));
        }
    }

    #[test]
    fn pedersen_homomorphism(a in 0u64..1_000_000, b in 0u64..1_000_000, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (ca, oa) = pedersen::commit_random(Scalar::new(a), &mut rng);
        let (cb, ob) = pedersen::commit_random(Scalar::new(b), &mut rng);
        let sum_c = ca.add(&cb);
        let sum_o = oa.add(&ob);
        prop_assert_eq!(sum_o.value, Scalar::new(a + b));
        prop_assert!(pedersen::open(&sum_c, &sum_o));
    }

    #[test]
    fn range_proof_sound_and_complete(value in 0u64..256, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (c, o) = pedersen::commit_random(Scalar::new(value), &mut rng);
        let proof = RangeProof::prove(value, o.blinding, 8, b"prop", &mut rng).unwrap();
        prop_assert!(proof.verify(&c, 8, b"prop"));
        // And binding: the proof fails against a different commitment.
        let (other, _) = pedersen::commit_random(Scalar::new(value), &mut rng);
        prop_assert!(!proof.verify(&other, 8, b"prop"));
    }
}

// ---------- batched crypto kernels vs scalar reference ----------

proptest! {
    /// The lane-interleaved SHA-256 kernel is bit-for-bit the scalar
    /// hash at 8 and 4 lanes, across random contents and every padding
    /// shape the random length lands on.
    #[test]
    fn sha256_multi_equals_scalar(base in proptest::collection::vec(any::<u8>(), 0..300)) {
        let lanes: Vec<Vec<u8>> =
            (0..8u8).map(|l| base.iter().map(|b| b ^ l.wrapping_mul(0x1d)).collect()).collect();
        let refs8: [&[u8]; 8] = std::array::from_fn(|i| lanes[i].as_slice());
        let got8 = pbc_crypto::sha256_multi(&refs8);
        for (l, lane) in lanes.iter().enumerate() {
            prop_assert_eq!(got8[l], sha256(lane), "8-wide lane {}", l);
        }
        let refs4: [&[u8]; 4] = std::array::from_fn(|i| lanes[i].as_slice());
        let got4 = pbc_crypto::sha256_multi(&refs4);
        for l in 0..4 {
            prop_assert_eq!(got4[l], sha256(&lanes[l]), "4-wide lane {}", l);
        }
    }

    /// Straus interleaved multi-exponentiation equals the product of
    /// independent `pow`s for every batch size, including empty.
    #[test]
    fn multi_exp_equals_pow_product(n in 0usize..10, seed in any::<u64>()) {
        use pbc_crypto::group::{multi_exp, GroupElement};
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs: Vec<(GroupElement, Scalar)> = (0..n)
            .map(|_| (GroupElement::g_pow(Scalar::random(&mut rng)), Scalar::random(&mut rng)))
            .collect();
        let reference =
            pairs.iter().fold(GroupElement::ONE, |acc, (b, e)| acc.mul(b.pow(*e)));
        prop_assert_eq!(multi_exp(&pairs), reference);
    }

    /// Batched Schnorr verification agrees with the scalar verifier on
    /// random batches — empty and odd-length batches included, with a
    /// random subset of signatures tampered — and `Err` names exactly
    /// the tampered indices.
    #[test]
    fn schnorr_batch_equals_scalar(n in 0usize..14, seed in any::<u64>(), tamper in any::<u16>()) {
        use pbc_crypto::schnorr_sig::{verify_batch, BatchItem, SigningKey};
        let mut rng = StdRng::seed_from_u64(seed);
        let keys: Vec<SigningKey> = (0..n).map(|_| SigningKey::generate(&mut rng)).collect();
        // Message lengths vary within the batch (including empty).
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; i % 7]).collect();
        let mut items: Vec<BatchItem> = keys
            .iter()
            .zip(&msgs)
            .map(|(k, m)| BatchItem { key: k.public, msg: m, sig: k.sign(m, &mut rng) })
            .collect();
        for (i, item) in items.iter_mut().enumerate() {
            if tamper >> i & 1 == 1 {
                item.sig.s = item.sig.s.add(Scalar::ONE);
            }
        }
        let expect: Vec<usize> = (0..n)
            .filter(|&i| !items[i].key.verify(items[i].msg, &items[i].sig))
            .collect();
        let got = verify_batch(&items);
        if expect.is_empty() {
            prop_assert_eq!(got, Ok(()));
        } else {
            prop_assert_eq!(got, Err(expect));
        }
    }

    /// One deliberately-invalid signature planted anywhere inside an
    /// otherwise-valid batch is pinpointed exactly.
    #[test]
    fn schnorr_batch_pinpoints_planted_culprit(n in 2usize..12, pick in any::<u64>(), seed in any::<u64>()) {
        use pbc_crypto::schnorr_sig::{verify_batch, BatchItem, SigningKey};
        let culprit = (pick % n as u64) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let keys: Vec<SigningKey> = (0..n).map(|_| SigningKey::generate(&mut rng)).collect();
        let msgs: Vec<Vec<u8>> = (0..n).map(|i| format!("entry-{i}").into_bytes()).collect();
        let mut items: Vec<BatchItem> = keys
            .iter()
            .zip(&msgs)
            .map(|(k, m)| BatchItem { key: k.public, msg: m, sig: k.sign(m, &mut rng) })
            .collect();
        items[culprit].sig.s = items[culprit].sig.s.add(Scalar::ONE);
        prop_assert_eq!(verify_batch(&items), Err(vec![culprit]));
    }
}

// ---------- transactions / concurrency control ----------

/// Strategy: a transfer over a small hot account set.
fn tx_strategy(accounts: usize) -> impl Strategy<Value = (usize, usize, u64)> {
    (0..accounts, 0..accounts, 1u64..20)
}

fn build_txs(specs: &[(usize, usize, u64)]) -> Vec<Transaction> {
    specs
        .iter()
        .enumerate()
        .map(|(i, (from, to, amount))| {
            let to = if from == to { (to + 1) % 8 } else { *to };
            Transaction::new(
                TxId(i as u64),
                ClientId(0),
                vec![Op::Transfer {
                    from: format!("acc{from}"),
                    to: format!("acc{to}"),
                    amount: *amount,
                }],
            )
        })
        .collect()
}

fn seeded_state() -> StateStore {
    let mut s = StateStore::new();
    for i in 0..8 {
        s.put(format!("acc{i}"), balance_value(1_000), Version::new(0, i as u32));
    }
    s
}

proptest! {
    #[test]
    fn dependency_layers_partition_the_block(specs in proptest::collection::vec(tx_strategy(8), 1..30)) {
        let txs = build_txs(&specs);
        let g = DependencyGraph::build(&txs);
        let layers = g.layers();
        let mut seen: Vec<usize> = layers.concat();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..txs.len()).collect::<Vec<_>>());
        // No two transactions in one layer conflict.
        for layer in &layers {
            for (ai, &a) in layer.iter().enumerate() {
                for &b in &layer[ai + 1..] {
                    prop_assert!(!txs[a].conflicts_with(&txs[b]), "layer peers {a},{b} conflict");
                }
            }
        }
    }

    #[test]
    fn sharp_reorder_keeps_only_committable_txs(specs in proptest::collection::vec(tx_strategy(8), 1..25)) {
        let txs = build_txs(&specs);
        let state = seeded_state();
        let results: Vec<_> = txs.iter().map(|t| execute(t, &state)).collect();
        let outcome = fabric_sharp_reorder(&results, &state);
        // Every kept transaction must validate when applied in order.
        let mut s = state.clone();
        let ordered: Vec<_> = outcome.order.iter().map(|&i| results[i].clone()).collect();
        let verdicts = pbc_txn::validate::validate_block(&ordered, &mut s, 2);
        let commits = verdicts.iter().filter(|v| v.is_valid()).count();
        prop_assert_eq!(commits, outcome.order.len());
        // And the partition is exact.
        prop_assert_eq!(outcome.order.len() + outcome.aborted.len(), txs.len());
    }

    #[test]
    fn transfers_conserve_total_balance(specs in proptest::collection::vec(tx_strategy(8), 1..40)) {
        let txs = build_txs(&specs);
        let mut state = seeded_state();
        for (i, tx) in txs.iter().enumerate() {
            pbc_ledger::execute_and_apply(tx, &mut state, Version::new(1, i as u32));
        }
        let total: u64 = (0..8).map(|i| balance_of(state.get(&format!("acc{i}")))).sum();
        prop_assert_eq!(total, 8 * 1_000);
    }
}

// ---------- ledger / chain ----------

proptest! {
    #[test]
    fn chain_append_verify_roundtrip(block_sizes in proptest::collection::vec(0usize..6, 1..10)) {
        let mut ledger = pbc_ledger::ChainLedger::new();
        let mut id = 0u64;
        for size in block_sizes {
            let txs: Vec<Transaction> = (0..size)
                .map(|_| {
                    id += 1;
                    Transaction::new(TxId(id), ClientId(0), vec![Op::Get { key: format!("k{id}") }])
                })
                .collect();
            let block = pbc_types::Block::build(
                ledger.height().next(),
                ledger.head_hash(),
                pbc_types::NodeId(0),
                id,
                txs,
            );
            ledger.append(block).unwrap();
        }
        prop_assert!(ledger.verify().is_ok());
    }

    #[test]
    fn state_digest_order_independent(entries in proptest::collection::vec(("k[a-z]{1,6}", 0u64..100), 1..20)) {
        let mut forward = StateStore::new();
        for (i, (k, v)) in entries.iter().enumerate() {
            forward.put(k.clone(), balance_value(*v), Version::new(1, i as u32));
        }
        let mut backward = StateStore::new();
        for (i, (k, v)) in entries.iter().enumerate().rev() {
            backward.put(k.clone(), balance_value(*v), Version::new(1, i as u32));
        }
        // Same final contents (later writes win in forward; in backward the
        // FIRST occurrence wins) — only compare when keys are unique.
        let unique: std::collections::HashSet<_> = entries.iter().map(|(k, _)| k).collect();
        if unique.len() == entries.len() {
            prop_assert_eq!(forward.state_digest(), backward.state_digest());
        }
    }
}

// ---------- zipf / workloads ----------

proptest! {
    #[test]
    fn zipf_always_in_range(n in 1usize..200, theta in 0.0f64..2.5, seed in any::<u64>()) {
        let z = pbc_workload::Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    #[test]
    fn payment_workload_total_is_count(count in 1usize..100, theta in 0.0f64..1.5) {
        let w = pbc_workload::PaymentWorkload { accounts: 32, theta, ..Default::default() };
        prop_assert_eq!(w.generate(0, count).len(), count);
    }
}
