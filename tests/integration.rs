//! Cross-crate integration tests: the full consensus × architecture
//! matrix, ledger verification, and serializability of integrated runs.

use pbc_core::{ArchKind, ConsensusKind, NetworkBuilder};
use pbc_ledger::StateStore;
use pbc_types::Transaction;
use pbc_workload::PaymentWorkload;

const ALL_CONSENSUS: [ConsensusKind; 7] = [
    ConsensusKind::Pbft,
    ConsensusKind::Ibft,
    ConsensusKind::HotStuff,
    ConsensusKind::Tendermint,
    ConsensusKind::Raft,
    ConsensusKind::Paxos,
    ConsensusKind::MinBft,
];

const ALL_ARCH: [ArchKind; 8] = [
    ArchKind::Ox,
    ArchKind::Oxii,
    ArchKind::Xov,
    ArchKind::XovFabricPp,
    ArchKind::XovFabricSharp,
    ArchKind::Xox,
    ArchKind::FastFabric,
    ArchKind::XovEndorsed,
];

fn nodes_for(kind: ConsensusKind) -> usize {
    // MinBFT needs only 2f+1; everything else gets 4 (f=1 for BFT).
    if kind == ConsensusKind::MinBft {
        3
    } else {
        4
    }
}

fn run_chain(
    consensus: ConsensusKind,
    arch: ArchKind,
    txs: Vec<Transaction>,
    initial: StateStore,
) -> (pbc_core::BlockchainNetwork, pbc_core::RunReport) {
    let mut chain = NetworkBuilder::new(nodes_for(consensus))
        .consensus(consensus)
        .architecture(arch)
        .initial_state(initial)
        .batch_size(8)
        .seed(7)
        .build();
    chain.submit_all(txs);
    let report = chain.run_to_completion();
    (chain, report)
}

#[test]
fn full_matrix_replicas_identical() {
    let w = PaymentWorkload { accounts: 64, theta: 0.4, ..Default::default() };
    for consensus in ALL_CONSENSUS {
        for arch in ALL_ARCH {
            let (chain, report) = run_chain(consensus, arch, w.generate(0, 16), w.initial_state());
            assert!(report.consensus_complete, "{consensus:?}/{arch:?} stalled");
            assert_eq!(
                report.committed + report.aborted,
                16,
                "{consensus:?}/{arch:?} lost transactions"
            );
            assert!(chain.replicas_identical(), "{consensus:?}/{arch:?} replicas diverged");
            for node in 0..chain.len() {
                chain.node_ledger(node).verify().unwrap();
            }
        }
    }
}

#[test]
fn committed_outcome_is_serializable_for_every_arch() {
    // Whatever the architecture commits must match some serial execution
    // of the committed transactions — checked by replay.
    let w = PaymentWorkload { accounts: 16, theta: 1.0, ..Default::default() };
    for arch in ALL_ARCH {
        let txs = w.generate(0, 32);
        let initial = w.initial_state();
        let (chain, report) = run_chain(ConsensusKind::Pbft, arch, txs.clone(), initial.clone());
        assert!(report.consensus_complete);
        // Total balance is conserved regardless of commits/aborts.
        let total: u64 = (0..16)
            .map(|i| {
                pbc_types::tx::balance_of(
                    chain.node_state(0).get(&pbc_workload::payments::account_key(i)),
                )
            })
            .sum();
        assert_eq!(total, 16 * 1_000_000, "{arch:?} violated conservation");
    }
}

#[test]
fn ox_never_aborts_under_total_contention() {
    // The paper's claim: pessimistic OX handles contention without
    // concurrency aborts.
    let w = PaymentWorkload { accounts: 2, theta: 0.0, ..Default::default() };
    let (_, report) =
        run_chain(ConsensusKind::Pbft, ArchKind::Ox, w.generate(0, 24), w.initial_state());
    assert_eq!(report.committed, 24);
    assert_eq!(report.aborted, 0);
}

#[test]
fn oxii_matches_ox_exactly() {
    let w = PaymentWorkload { accounts: 8, theta: 0.9, ..Default::default() };
    let (ox_chain, ox_report) =
        run_chain(ConsensusKind::Pbft, ArchKind::Ox, w.generate(0, 32), w.initial_state());
    let (oxii_chain, oxii_report) =
        run_chain(ConsensusKind::Pbft, ArchKind::Oxii, w.generate(0, 32), w.initial_state());
    assert_eq!(ox_report.committed, oxii_report.committed);
    assert_eq!(
        ox_chain.node_state(0).state_digest(),
        oxii_chain.node_state(0).state_digest(),
        "OXII must produce exactly OX's state"
    );
}

#[test]
fn xov_aborts_under_contention_and_xox_recovers() {
    // §2.3.3 Discussion: XOV disregards conflicting transactions; XOX's
    // post-order step re-executes them.
    let w = PaymentWorkload { accounts: 2, theta: 0.0, ..Default::default() };
    let (_, xov) =
        run_chain(ConsensusKind::Pbft, ArchKind::Xov, w.generate(0, 24), w.initial_state());
    let (_, xox) =
        run_chain(ConsensusKind::Pbft, ArchKind::Xox, w.generate(0, 24), w.initial_state());
    assert!(xov.aborted > 0, "hot-key workload must abort under plain XOV");
    assert!(xox.committed > xov.committed, "XOX must salvage invalidated txs");
    assert_eq!(xox.aborted, 0, "funded hot-key transfers all commit under XOX");
}

#[test]
fn reordering_reduces_xov_aborts() {
    let w = PaymentWorkload { accounts: 6, theta: 1.1, seed: 3, ..Default::default() };
    let (_, plain) =
        run_chain(ConsensusKind::Pbft, ArchKind::Xov, w.generate(0, 48), w.initial_state());
    let (_, sharp) = run_chain(
        ConsensusKind::Pbft,
        ArchKind::XovFabricSharp,
        w.generate(0, 48),
        w.initial_state(),
    );
    assert!(
        sharp.committed >= plain.committed,
        "FabricSharp ({}) must commit at least plain XOV ({})",
        sharp.committed,
        plain.committed
    );
}

#[test]
fn bft_consensus_sends_more_bytes_than_cft() {
    let w = PaymentWorkload { accounts: 32, ..Default::default() };
    let (_, pbft) =
        run_chain(ConsensusKind::Pbft, ArchKind::Ox, w.generate(0, 8), w.initial_state());
    let (_, raft) =
        run_chain(ConsensusKind::Raft, ArchKind::Ox, w.generate(0, 8), w.initial_state());
    assert!(
        pbft.msgs_sent > raft.msgs_sent,
        "PBFT {} should out-message Raft {}",
        pbft.msgs_sent,
        raft.msgs_sent
    );
}

#[test]
fn crash_below_threshold_preserves_liveness_and_agreement() {
    let w = PaymentWorkload { accounts: 32, ..Default::default() };
    for consensus in [ConsensusKind::Pbft, ConsensusKind::HotStuff, ConsensusKind::MinBft] {
        let mut chain = NetworkBuilder::new(nodes_for(consensus))
            .consensus(consensus)
            .architecture(ArchKind::Oxii)
            .initial_state(w.initial_state())
            .batch_size(4)
            .build();
        chain.crash(nodes_for(consensus) - 1); // a backup
        chain.submit_all(w.generate(0, 8));
        let report = chain.run_to_completion();
        assert!(report.consensus_complete, "{consensus:?} lost liveness");
        assert_eq!(report.committed + report.aborted, 8);
        assert!(chain.replicas_identical(), "{consensus:?}");
    }
}

#[test]
fn multi_round_submission_grows_one_chain() {
    let w = PaymentWorkload { accounts: 64, ..Default::default() };
    let mut chain = NetworkBuilder::new(4)
        .architecture(ArchKind::FastFabric)
        .initial_state(w.initial_state())
        .batch_size(8)
        .build();
    for round in 0..4u64 {
        chain.submit_all(w.generate(round * 100, 8));
        let report = chain.run_to_completion();
        assert!(report.consensus_complete, "round {round}");
    }
    assert_eq!(chain.node_ledger(0).height().0, 4);
    assert!(chain.replicas_identical());
    chain.node_ledger(0).verify().unwrap();
}
