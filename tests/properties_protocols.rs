//! Property-based tests over protocol-level invariants: consensus
//! agreement under randomized crash patterns, HTLC conservation, DAG
//! ledger structure, blind-token unlinkability mechanics.

use proptest::prelude::*;

use pbc_confidential::crosschain::{HtlcChain, SwapSecret};
use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_consensus::raft::{RaftConfig, RaftMsg, RaftNode};
use pbc_ledger::DagLedger;
use pbc_sim::{Network, NetworkConfig};
use pbc_types::{ClientId, EnterpriseId, Op, Transaction, TxId, TxScope};

// ---------- consensus agreement under random faults ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// PBFT with n = 7 tolerates any ≤ 2 crashed replicas: all alive
    /// replicas deliver the same log, whatever the seed and crash set.
    #[test]
    fn pbft_agreement_under_random_crashes(
        seed in 0u64..1_000,
        crash_a in 0usize..7,
        crash_b in 0usize..7,
        payloads in proptest::collection::vec(1u64..1_000_000, 1..6),
    ) {
        let cfg = PbftConfig::new(7);
        let actors = (0..7).map(|_| PbftReplica::new(cfg.clone())).collect();
        let mut net: Network<PbftReplica<u64>> =
            Network::new(actors, NetworkConfig { seed, ..Default::default() });
        net.crash(crash_a);
        net.crash(crash_b);
        // Deduplicate payloads (the protocol dedups by digest anyway).
        let mut unique = payloads.clone();
        unique.sort_unstable();
        unique.dedup();
        for &p in &unique {
            for i in 0..7 {
                net.inject(0, i, PbftMsg::Request(p), 1);
            }
        }
        let target = unique.len();
        let ok = net.run_until_all(4_000_000, |r| r.log.len() >= target);
        prop_assert!(ok, "liveness under ≤2 crashes");
        let alive: Vec<usize> = (0..7).filter(|&i| !net.is_crashed(i)).collect();
        let reference: Vec<u64> = net
            .actor(alive[0])
            .log
            .delivered()
            .iter()
            .map(|(_, p, _)| *p)
            .collect();
        for &i in &alive[1..] {
            let log: Vec<u64> =
                net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            prop_assert_eq!(&log, &reference, "node {} diverged", i);
        }
    }

    /// Raft with n = 5 and ≤ 2 crashes: all alive nodes agree on a
    /// common prefix and eventually the full log.
    #[test]
    fn raft_agreement_under_random_crashes(
        seed in 0u64..1_000,
        crash in 0usize..5,
        payloads in proptest::collection::vec(1u64..1_000_000, 1..5),
    ) {
        let cfg = RaftConfig::new(5);
        let actors = (0..5).map(|i| RaftNode::new(cfg.clone(), i)).collect();
        let mut net: Network<RaftNode<u64>> =
            Network::new(actors, NetworkConfig { seed, ..Default::default() });
        net.start();
        net.crash(crash);
        let mut unique = payloads.clone();
        unique.sort_unstable();
        unique.dedup();
        net.run_until(300_000); // elect
        for &p in &unique {
            for i in 0..5 {
                net.inject(0, i, RaftMsg::Request(p), 1);
            }
        }
        let target = unique.len();
        let ok = net.run_until_all(4_000_000, |r| r.log.len() >= target);
        prop_assert!(ok, "liveness under 1 crash");
        let alive: Vec<usize> = (0..5).filter(|&i| !net.is_crashed(i)).collect();
        let reference: Vec<u64> = net
            .actor(alive[0])
            .log
            .delivered()
            .iter()
            .map(|(_, p, _)| *p)
            .collect();
        for &i in &alive[1..] {
            let log: Vec<u64> =
                net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            prop_assert_eq!(&log, &reference, "node {} diverged", i);
        }
    }
}

// ---------- HTLC conservation ----------

proptest! {
    /// Whatever the interleaving of (valid) claims and refunds, no value
    /// is created or destroyed on an HTLC chain.
    #[test]
    fn htlc_conserves_total_value(
        amounts in proptest::collection::vec(1u64..100, 1..8),
        claim_mask in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let mut chain = HtlcChain::new();
        chain.seed("alice", 1_000);
        chain.seed("bob", 0);
        let mut ids = Vec::new();
        for (i, &amount) in amounts.iter().enumerate() {
            let secret = SwapSecret::from_seed(i as u64);
            let id = chain.lock("alice", "bob", amount, secret.hashlock, 100).unwrap();
            ids.push((id, secret));
        }
        // Claim some before expiry...
        for (i, (id, secret)) in ids.iter().enumerate() {
            if *claim_mask.get(i).unwrap_or(&false) {
                chain.claim(*id, secret.preimage).unwrap();
            }
        }
        // ...then expire and refund the rest.
        chain.advance_time(101);
        for (i, (id, _)) in ids.iter().enumerate() {
            if !claim_mask.get(i).copied().unwrap_or(false) {
                chain.refund(*id).unwrap();
            }
        }
        prop_assert_eq!(chain.balance("alice") + chain.balance("bob"), 1_000);
        prop_assert!(chain.ledger.verify().is_ok());
    }
}

// ---------- DAG ledger structure ----------

proptest! {
    /// For any interleaving of internal/cross appends: the DAG verifies,
    /// all views agree on the cross sequence, and each view contains
    /// exactly its own internal transactions.
    #[test]
    fn dag_views_always_consistent(ops in proptest::collection::vec((0u32..3, any::<bool>()), 1..40)) {
        let enterprises: Vec<EnterpriseId> = (0..3).map(EnterpriseId).collect();
        let mut dag = DagLedger::new(enterprises.clone());
        let mut internal_counts = [0usize; 3];
        let mut cross_count = 0usize;
        for (i, (e, is_cross)) in ops.iter().enumerate() {
            let id = TxId(i as u64 + 1);
            if *is_cross {
                dag.append_cross(Transaction::with_scope(
                    id,
                    ClientId(0),
                    TxScope::CrossEnterprise(enterprises.clone()),
                    vec![Op::Get { key: format!("g{i}") }],
                ));
                cross_count += 1;
            } else {
                dag.append_internal(
                    EnterpriseId(*e),
                    Transaction::with_scope(
                        id,
                        ClientId(0),
                        TxScope::Internal(EnterpriseId(*e)),
                        vec![Op::Get { key: format!("k{i}") }],
                    ),
                );
                internal_counts[*e as usize] += 1;
            }
        }
        prop_assert!(dag.verify());
        let seqs: Vec<_> =
            (0..3).map(|e| dag.local_view(EnterpriseId(e)).cross_sequence()).collect();
        prop_assert_eq!(&seqs[0], &seqs[1]);
        prop_assert_eq!(&seqs[1], &seqs[2]);
        prop_assert_eq!(seqs[0].len(), cross_count);
        for (e, &expected) in internal_counts.iter().enumerate() {
            let view = dag.local_view(EnterpriseId(e as u32));
            prop_assert_eq!(view.internal_sequence().len(), expected);
        }
    }
}

// ---------- blind tokens ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Issue k tokens, redeem them in any order: all succeed once, all
    /// fail twice, and foreign tokens never redeem.
    #[test]
    fn token_redemption_exactly_once(seed in any::<u64>(), k in 1usize..12) {
        use pbc_crypto::token::{BlindingSession, TokenAuthority};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut auth = TokenAuthority::new(&mut rng);
        let mut foreign = TokenAuthority::new(&mut rng);
        let tokens: Vec<_> = (0..k)
            .map(|_| {
                let s = BlindingSession::start(&mut rng);
                let (signed, proof) = auth.issue(s.blinded, &mut rng);
                s.finish(auth.public_key(), signed, &proof).unwrap()
            })
            .collect();
        for t in &tokens {
            prop_assert!(!foreign.redeem(t), "foreign authority must reject");
            prop_assert!(auth.redeem(t), "first redemption succeeds");
        }
        for t in &tokens {
            prop_assert!(!auth.redeem(t), "second redemption fails");
        }
        prop_assert_eq!(auth.redeemed_count(), k);
    }
}
