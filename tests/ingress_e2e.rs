//! End-to-end client-path tests: golden determinism of seeded ingress
//! runs (including across simulator engines) and queue conservation
//! under chaos.
//!
//! The conservation identity under test everywhere:
//! `admitted = committed + aborted + expired + in_flight`.

use pbc_core::ingress_queue::{IngressQueue, LoadGen, LoadProfile, QueueConfig, WorkloadSource};
use pbc_core::{
    ArchKind, BlockchainNetwork, ConsensusKind, IngressConfig, IngressReport, NetworkBuilder,
};
use pbc_workload::PaymentWorkload;

fn workload() -> PaymentWorkload {
    PaymentWorkload { accounts: 64, theta: 0.5, ..Default::default() }
}

fn chain(consensus: ConsensusKind, arch: ArchKind, lanes: usize, seed: u64) -> BlockchainNetwork {
    NetworkBuilder::new(consensus.min_nodes())
        .consensus(consensus)
        .architecture(arch)
        .initial_state(workload().initial_state())
        .batch_size(8)
        .seed(seed)
        .lanes(lanes)
        .build()
}

fn open_load(seed: u64, mean_gap: u64) -> LoadGen {
    LoadGen::new(WorkloadSource::payments(workload()), LoadProfile::Open { mean_gap }, seed)
}

fn small_cfg() -> IngressConfig {
    IngressConfig { horizon: 200_000, ..Default::default() }
}

fn run_open(lanes: usize) -> (IngressReport, u64, Option<pbc_crypto::Hash>) {
    let mut net = chain(ConsensusKind::Pbft, ArchKind::Ox, lanes, 7);
    let mut load = open_load(7, 1_500);
    let mut queue = IngressQueue::new(QueueConfig { capacity: 256, ttl: 150_000 });
    let report = net.run_ingress(&mut load, &mut queue, &small_cfg());
    let head = Some(net.node_ledger(0).head_hash());
    (report, net.trace_digest(), head)
}

#[test]
fn open_loop_seeded_run_is_bit_for_bit_deterministic() {
    let (r1, d1, h1) = run_open(1);
    let (r2, d2, h2) = run_open(1);
    assert!(r1.queue.committed > 0, "run committed nothing: {:?}", r1.queue);
    assert!(r1.consensus_complete);
    assert_eq!(d1, d2, "trace digests differ between identical seeded runs");
    assert_eq!(h1, h2, "ledger heads differ between identical seeded runs");
    assert_eq!(r1.queue, r2.queue, "queue counters differ");
    assert_eq!(r1.elapsed, r2.elapsed);
    assert_eq!(r1.p50_latency, r2.p50_latency);
    assert_eq!(r1.p99_latency, r2.p99_latency);
}

#[test]
fn open_loop_golden_under_two_lanes() {
    // The lane count is a performance knob, not a semantic one: the
    // ingress path must produce the same trace digest, queue counters,
    // and ledger head on the parallel engine.
    let (r1, d1, h1) = run_open(1);
    let (r2, d2, h2) = run_open(2);
    assert_eq!(d1, d2, "lanes(2) changed the delivery trace");
    assert_eq!(h1, h2, "lanes(2) changed the ledger head");
    assert_eq!(r1.queue, r2.queue, "lanes(2) changed queue accounting");
    assert_eq!(r1.elapsed, r2.elapsed, "lanes(2) changed the timeline");
}

#[test]
fn open_loop_conserves_and_stamps_latency() {
    let (report, _, _) = run_open(1);
    assert!(report.conserves(), "identity broken: {:?}", report.queue);
    assert_eq!(report.in_flight_at_end, 0, "drain left work in flight");
    assert!(report.mean_latency > 0.0);
    assert!(report.p99_latency >= report.p50_latency);
    assert!(report.committed_tps > 0.0);
}

#[test]
fn closed_loop_self_throttles_and_conserves() {
    let mut net = chain(ConsensusKind::HotStuff, ArchKind::Oxii, 1, 11);
    let mut load = LoadGen::new(
        WorkloadSource::payments(workload()),
        LoadProfile::Closed { clients: 16, think: 4_000 },
        11,
    );
    let mut queue = IngressQueue::new(QueueConfig { capacity: 64, ttl: 200_000 });
    let report = net.run_ingress(&mut load, &mut queue, &small_cfg());
    assert!(report.queue.committed > 0, "{:?}", report.queue);
    assert!(report.conserves(), "identity broken: {:?}", report.queue);
    // A closed loop never floods the queue past its population.
    assert_eq!(report.queue.rejected_full, 0, "16 clients cannot overflow capacity 64");
    assert!(!report.diverged);
}

#[test]
fn overload_sheds_with_backpressure_and_ttl() {
    // Offered rate far beyond capacity: a tiny queue with a short TTL
    // must shed load via Full rejections and expiries while keeping
    // the books balanced.
    let mut net = chain(ConsensusKind::Pbft, ArchKind::Ox, 1, 3);
    let mut load = open_load(3, 8); // ~125k tx/s offered
    let mut queue = IngressQueue::new(QueueConfig { capacity: 24, ttl: 6_000 });
    let cfg = IngressConfig { horizon: 120_000, max_inflight_batches: 2, ..Default::default() };
    let report = net.run_ingress(&mut load, &mut queue, &cfg);
    assert!(report.conserves(), "identity broken: {:?}", report.queue);
    assert!(
        report.queue.rejected_full > 0 || report.queue.expired > 0,
        "overload produced no shedding: {:?}",
        report.queue
    );
    assert!(report.queue.committed > 0);
    assert!(
        report.queue.committed < report.queue.offered,
        "a saturated system cannot commit every offer"
    );
}

#[test]
fn chaos_crash_and_recover_keeps_identity() {
    // One replica crashes between ingress waves and later rejoins:
    // PBFT n=4 keeps deciding, the queue books stay balanced at every
    // boundary, and nothing commits twice.
    let mut net = chain(ConsensusKind::Pbft, ArchKind::Ox, 1, 19);
    let mut load = open_load(19, 2_000);
    let mut queue = IngressQueue::new(QueueConfig { capacity: 256, ttl: 150_000 });
    let cfg = IngressConfig { horizon: 120_000, ..Default::default() };

    let r1 = net.run_ingress(&mut load, &mut queue, &cfg);
    assert!(r1.conserves(), "wave 1: {:?}", r1.queue);

    net.crash(2);
    let r2 = net.run_ingress(&mut load, &mut queue, &cfg);
    assert!(r2.conserves(), "wave 2 (crashed): {:?}", r2.queue);
    assert!(r2.queue.committed > r1.queue.committed, "f=1 crash must not stop commits");

    net.restart(2);
    let r3 = net.run_ingress(&mut load, &mut queue, &cfg);
    assert!(r3.conserves(), "wave 3 (recovered): {:?}", r3.queue);
    assert!(!r3.diverged, "recovered replica forked");
    // Cumulative counters are monotone and every commit is unique:
    // committed never exceeds admitted.
    let s = r3.queue;
    assert!(s.committed + s.aborted + s.expired <= s.admitted);
}

#[test]
fn dead_majority_stalls_but_books_stay_balanced() {
    // With 2 of 4 replicas down PBFT cannot decide; admitted work ends
    // the run in flight (or expired) — never silently lost.
    let mut net = chain(ConsensusKind::Pbft, ArchKind::Ox, 1, 23);
    let mut load = open_load(23, 3_000);
    let mut queue = IngressQueue::new(QueueConfig { capacity: 64, ttl: 80_000 });
    net.crash(2);
    net.crash(3);
    let cfg = IngressConfig { horizon: 60_000, drain_events: 200_000, ..Default::default() };
    let report = net.run_ingress(&mut load, &mut queue, &cfg);
    assert!(!report.consensus_complete, "a dead majority cannot complete");
    assert_eq!(report.queue.committed, 0);
    assert!(report.conserves(), "identity broken under stall: {:?}", report.queue);
    assert!(report.in_flight_at_end > 0 || report.queue.expired > 0);
}
