//! End-to-end scenario tests combining multiple technique layers, the
//! way the paper's three applications (§2.1) would deploy them.

use pbc_confidential::{CaperNetwork, ChannelNetwork, PdcChannel};
use pbc_core::{ArchKind, ConsensusKind, NetworkBuilder};
use pbc_shard::{AhlSystem, ResilientDb, SaguaroSystem, SharperSystem};
use pbc_sim::Topology;
use pbc_types::tx::{balance_of, balance_value};
use pbc_types::{ChannelId, ClientId, EnterpriseId, Op, Transaction, TxId, TxScope};
use pbc_verify::zktransfer::{build_transfer, ZkLedger};
use pbc_verify::SeparSystem;
use pbc_workload::crowdwork::CrowdWorkload;
use pbc_workload::{PaymentWorkload, ShardedWorkload, SupplyChainWorkload};
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------- application 1: supply chain (§2.1.1) ----------

#[test]
fn supply_chain_on_caper_preserves_confidentiality_at_scale() {
    let workload =
        SupplyChainWorkload { enterprises: 6, internal_fraction: 0.8, ..Default::default() };
    let mut net = CaperNetwork::new(6);
    for tx in workload.generate(0, 600) {
        let _ = match &tx.scope {
            TxScope::Internal(_) => net.submit_internal(tx),
            TxScope::CrossEnterprise(_) => net.submit_cross(tx),
            TxScope::Global => Ok(()),
        };
    }
    assert!(net.confidentiality_holds());
    assert!(net.views_consistent());
    assert!(net.dag.verify());
    // Internal load dominates: local rounds outnumber global ones ~4:1.
    assert!(net.counters.local_rounds > 3 * net.counters.global_rounds);
}

#[test]
fn supply_chain_channels_and_pdc_compose() {
    // Two channels + a private collection inside one of them.
    let mut channels = ChannelNetwork::new();
    channels.create_channel(ChannelId(0), vec![EnterpriseId(0), EnterpriseId(1)]).unwrap();
    channels.create_channel(ChannelId(1), vec![EnterpriseId(1), EnterpriseId(2)]).unwrap();
    channels.seed(ChannelId(0), "stock", balance_value(100)).unwrap();
    channels.seed(ChannelId(1), "stock", balance_value(0)).unwrap();
    channels.transfer_across(ChannelId(0), ChannelId(1), "stock", "stock", 60).unwrap();
    assert_eq!(balance_of(channels.channel(ChannelId(0)).unwrap().state().get("stock")), 40);
    assert_eq!(balance_of(channels.channel(ChannelId(1)).unwrap().state().get("stock")), 60);

    let mut pdc = PdcChannel::new();
    pdc.define_collection("terms", vec![EnterpriseId(0), EnterpriseId(1)]).unwrap();
    let writes = vec![("rebate".to_string(), balance_value(15))];
    let (idx, salts) = pdc.submit_private("terms", writes.clone()).unwrap();
    let disclosure = pdc.disclose(idx, &writes, &salts, 0).unwrap();
    assert!(pdc.verify_disclosure(idx, &disclosure));
    pdc.ledger.verify().unwrap();
}

// ---------- application 2: large-scale database (§2.1.2) ----------

#[test]
fn sharded_database_all_four_systems_agree_on_outcomes() {
    let workload = ShardedWorkload {
        shards: 4,
        accounts_per_shard: 32,
        cross_fraction: 0.25,
        ..Default::default()
    };
    let txs = workload.generate(0, 200);
    let keys = workload.all_keys();
    let total_expected = keys.len() as u64 * 1_000;

    // SharPer.
    let mut sharper = SharperSystem::new(4, Topology::flat_clusters(4, 4, 100, 10_000), 300);
    // AHL.
    let mut ahl = AhlSystem::new(4, Topology::flat_clusters(5, 4, 100, 10_000), 300);
    // Saguaro.
    let mut saguaro =
        SaguaroSystem::new(Topology::hierarchical(&[2, 2], 4, &[100, 1_000, 10_000]), 300);
    for key in &keys {
        sharper.seed(key, balance_value(1_000));
        ahl.seed(key, balance_value(1_000));
        saguaro.seed(key, balance_value(1_000));
    }
    let r_sharper = sharper.process_batch(&txs);
    let r_ahl = ahl.process_batch(&txs);
    let r_saguaro = saguaro.process_batch(&txs);

    // All three sharded systems commit the same transactions (the
    // workload is conflict-free given funded accounts).
    assert_eq!(r_sharper, r_ahl);
    assert_eq!(r_ahl, r_saguaro);

    // Conservation everywhere.
    let refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
    assert_eq!(sharper.total_balance(&refs), total_expected);
    assert_eq!(ahl.total_balance(&refs), total_expected);

    // Decentralized coordination uses fewer phases than 2PC systems.
    assert!(sharper.stats.coordination_phases < ahl.stats.coordination_phases);
    // Hierarchical coordination beats the WAN reference committee on time.
    assert!(saguaro.stats.elapsed < ahl.stats.elapsed);
}

#[test]
fn resilientdb_replicas_converge_over_many_rounds() {
    let mut db = ResilientDb::new(Topology::flat_clusters(3, 4, 100, 8_000), 300);
    db.seed("a", balance_value(10_000));
    db.seed("b", balance_value(0));
    for round in 0..10u64 {
        let batches = (0..3)
            .map(|c| {
                vec![Transaction::new(
                    TxId(round * 10 + c),
                    ClientId(c as u32),
                    vec![Op::Transfer { from: "a".into(), to: "b".into(), amount: 7 }],
                )]
            })
            .collect();
        db.process_round(batches);
    }
    assert!(db.replicas_consistent());
    assert_eq!(balance_of(db.replica(0).get("b")), 30 * 7);
    assert_eq!(db.stats.cross_rounds, 10);
}

// ---------- application 3: crowdworking (§2.1.3) ----------

#[test]
fn crowdworking_full_stack_catches_every_violator() {
    let mut rng = StdRng::seed_from_u64(99);
    let workload = CrowdWorkload {
        workers: 50,
        platforms: 3,
        limit: 40,
        violator_fraction: 0.4,
        ..Default::default()
    };
    let events = workload.generate();
    let violators = CrowdWorkload::violators(&events, workload.limit);
    assert!(!violators.is_empty(), "the workload must contain violators");

    let mut sys = SeparSystem::new(40, &[0, 1, 2], &mut rng);
    let mut wallets: Vec<_> =
        (0..workload.workers).map(|_| sys.register_worker(&mut rng)).collect();
    let mut blocked = std::collections::BTreeSet::new();
    for e in &events {
        if sys.contribute(e.platform, &mut wallets[e.worker as usize], &e.task, e.hours).is_err() {
            blocked.insert(e.worker);
        }
    }
    for v in &violators {
        assert!(blocked.contains(v), "violator {v} slipped through");
    }
    // No honest worker lost hours they were entitled to: total redeemed
    // never exceeds workers × limit.
    assert!(sys.total_redeemed_hours() <= 50 * 40);
    sys.ledger.verify().unwrap();
}

#[test]
fn zk_payment_chain_across_many_hops() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut pool = ZkLedger::new();
    let mut note = pool.mint(1_024, &mut rng);
    // Pass the full balance through 8 owners; each hop splits and merges.
    for hop in 0..8u64 {
        let half = note.value / 2;
        let ctx = format!("hop-{hop}");
        let (t, outs) =
            build_transfer(&[note], &[half, note_rest(half)], ctx.as_bytes(), &mut rng).unwrap();
        pool.apply(&t).unwrap();
        // Merge the two halves back into one note.
        let ctx2 = format!("merge-{hop}");
        let (t2, merged) = build_transfer(&outs, &[1_024], ctx2.as_bytes(), &mut rng).unwrap();
        pool.apply(&t2).unwrap();
        note = merged.into_iter().next().unwrap();
    }
    assert_eq!(pool.transfers_applied, 16);
    assert_eq!(pool.note_count(), 1);

    fn note_rest(half: u64) -> u64 {
        1_024 - half
    }
}

// ---------- the integrated chain under stress ----------

#[test]
fn hot_workload_all_architectures_conserve_balance() {
    let w = PaymentWorkload { accounts: 4, theta: 0.0, amount: 3, ..Default::default() };
    for arch in [ArchKind::Xov, ArchKind::Xox, ArchKind::XovFabricSharp, ArchKind::FastFabric] {
        let mut chain = NetworkBuilder::new(4)
            .consensus(ConsensusKind::HotStuff)
            .architecture(arch)
            .initial_state(w.initial_state())
            .batch_size(16)
            .build();
        chain.submit_all(w.generate(0, 48));
        let report = chain.run_to_completion();
        assert!(report.consensus_complete, "{arch:?}");
        let total: u64 = (0..4)
            .map(|i| balance_of(chain.node_state(0).get(&pbc_workload::payments::account_key(i))))
            .sum();
        assert_eq!(total, 4 * 1_000_000, "{arch:?} violated conservation");
        assert!(chain.replicas_identical(), "{arch:?}");
    }
}

#[test]
fn sequential_rounds_with_mid_run_crash() {
    let w = PaymentWorkload { accounts: 64, ..Default::default() };
    let mut chain = NetworkBuilder::new(4)
        .consensus(ConsensusKind::Pbft)
        .architecture(ArchKind::Oxii)
        .initial_state(w.initial_state())
        .batch_size(8)
        .build();
    chain.submit_all(w.generate(0, 16));
    let r1 = chain.run_to_completion();
    assert!(r1.consensus_complete);
    // A backup dies between rounds; the system keeps going.
    chain.crash(3);
    chain.submit_all(w.generate(100, 16));
    let r2 = chain.run_to_completion();
    assert!(r2.consensus_complete);
    assert_eq!(r1.committed + r2.committed, 32);
    assert!(chain.replicas_identical());
}
