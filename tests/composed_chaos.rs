//! Nemesis chaos over the **composed** stack: seeded fault schedules —
//! crash/restart, partitions, link degradation — plus Byzantine replicas
//! applied to a full [`BlockchainNetwork`] (consensus × execution
//! pipeline), not bare protocol actors. PR 1 could only torture the
//! ordering layer in isolation; the generic ordering layer's fault
//! passthroughs make the whole stack a chaos target.
//!
//! Invariants:
//! * **Agreement** — no two nodes ever decide different batches for the
//!   same slot ([`InvariantChecker`] over per-node decided views), and
//!   nodes that applied equally many batches share a ledger head.
//! * **Progress** — once the schedule heals (every generated schedule
//!   ends fully healed), the stack commits the backlog and new work.

use pbc_core::{ArchKind, BlockchainNetwork, ConsensusKind, NetworkBuilder};
use pbc_sim::{Attack, InvariantChecker, Nemesis, NemesisConfig, NemesisOp};
use pbc_workload::PaymentWorkload;

/// Checks agreement across every node's decided view, panicking with the
/// violation when two nodes disagree on a slot.
fn assert_agreement(chain: &BlockchainNetwork, context: &str) {
    let views = chain.decided_views();
    let mut checker = InvariantChecker::new(chain.len());
    if let Err(v) = checker.observe(&views) {
        panic!("{context}: agreement violated: {v}");
    }
}

fn build(
    consensus: ConsensusKind,
    n: usize,
    byzantine: Option<(usize, Vec<Attack>)>,
) -> BlockchainNetwork {
    let w = PaymentWorkload { accounts: 48, ..Default::default() };
    let mut b = NetworkBuilder::new(n)
        .consensus(consensus)
        .architecture(ArchKind::Xov)
        .initial_state(w.initial_state())
        .batch_size(4)
        .seed(0xC405)
        .with_audit();
    if let Some((node, attacks)) = byzantine {
        b = b.byzantine(node, attacks);
    }
    b.build()
}

/// Drives a seeded nemesis schedule over the composed stack: work is
/// submitted between ops, agreement is checked after every op, and the
/// healed end-state must have made progress.
fn chaos_schedule(consensus: ConsensusKind, nemesis_seed: u64) {
    let n = 4;
    let chaos = Nemesis::generate(n, &NemesisConfig::new(nemesis_seed).with_steps(8));
    let w = PaymentWorkload { accounts: 48, ..Default::default() };
    let mut chain = build(consensus, n, None);

    let mut batches = 0;
    for (step, op) in chaos.ops().iter().enumerate() {
        chain.apply_nemesis(op);
        chain.submit_all(w.generate(1000 + step as u64 * 100, 4));
        batches += 1;
        // Under active faults the round may stall — that's allowed; only
        // safety must hold unconditionally.
        let r = chain.run_to_completion();
        assert!(!r.diverged, "{consensus:?} step {step} ({}): heads forked", op.label());
        assert_agreement(&chain, &format!("{consensus:?} step {step} ({})", op.label()));
    }

    // Every generated schedule ends healed; restart any straggler the
    // schedule crashed last and flush the backlog.
    for i in 0..n {
        if chain.is_crashed(i) {
            chain.restart(i);
        }
    }
    chain.submit_all(w.generate(9000, 4));
    batches += 1;
    let r = chain.run_to_completion();
    assert!(!r.diverged, "{consensus:?}: healed heads forked");
    assert_agreement(&chain, &format!("{consensus:?} final"));
    // Progress: the healed stack decides the whole backlog, including
    // the batch submitted after the last fault. (A permanent laggard is
    // allowed — HotStuff laggards deliberately stay safely behind an
    // ancestry gap — so measure the *system's* progress, not the
    // slowest replica's.)
    let max_decided = chain.decided_views().iter().map(|v| v.len()).max().unwrap();
    assert_eq!(max_decided, batches, "{consensus:?}: healed stack must decide the backlog");
    if r.consensus_complete {
        assert!(chain.replicas_identical(), "{consensus:?}: fully drained replicas converge");
    }
    // Chaos must not be able to smuggle a wrong commit past the
    // differential auditor: every height that *did* commit, on every
    // node (laggards included), replays clean against the reference.
    let audit = pbc_audit::audit_network(&chain)
        .unwrap_or_else(|e| panic!("{consensus:?}: post-chaos audit failed: {e}"));
    assert!(audit.heights_checked > 0, "{consensus:?}: audit covered nothing");
}

#[test]
fn pbft_composed_stack_survives_nemesis_schedule() {
    chaos_schedule(ConsensusKind::Pbft, 31);
}

#[test]
fn raft_composed_stack_survives_nemesis_schedule() {
    chaos_schedule(ConsensusKind::Raft, 17);
}

#[test]
fn hotstuff_composed_stack_survives_nemesis_schedule() {
    chaos_schedule(ConsensusKind::HotStuff, 53);
}

/// The full gauntlet on the **multi-lane parallel core**: durable
/// replicas (real fault-injecting stores) under a seeded nemesis
/// schedule that includes amnesia crashes and disk faults (failed
/// fsyncs, torn WAL tails, bit rot), with the cluster built at
/// `lanes > 1` so every window executes across worker threads. Safety,
/// healed progress, the cold ledger and the differential audit must all
/// stay green — parallelism is a performance knob, not a new fault
/// model, even when the nemesis is hitting the disks underneath it.
#[test]
fn composed_chaos_with_disk_faults_stays_green_under_lanes() {
    let n = 4;
    let w = PaymentWorkload { accounts: 48, ..Default::default() };
    let stores = (0..n as u64)
        .map(|i| {
            let vfs = pbc_store::FaultFs::new(0xC405 ^ (i * 0x9E37));
            pbc_store::NodeStore::open(Box::new(vfs), pbc_store::StoreConfig::default())
                .expect("fresh store opens clean")
                .0
        })
        .collect();
    let mut chain = NetworkBuilder::new(n)
        .consensus(ConsensusKind::Raft)
        .architecture(ArchKind::Xov)
        .initial_state(w.initial_state())
        .batch_size(4)
        .seed(0xC405)
        .lanes(3)
        .durable(stores)
        .with_audit()
        .build();

    let cfg = NemesisConfig::new(0x5EED).with_steps(10).with_amnesia().with_disk_faults();
    let chaos = Nemesis::generate(n, &cfg);
    let mut batches = 0;
    for (step, op) in chaos.ops().iter().enumerate() {
        chain.apply_nemesis(op);
        chain.submit_all(w.generate(1000 + step as u64 * 100, 4));
        batches += 1;
        let r = chain.run_to_completion();
        assert!(!r.diverged, "lanes step {step} ({}): heads forked", op.label());
        assert_agreement(&chain, &format!("lanes step {step} ({})", op.label()));
    }

    // Restart any straggler through the nemesis path (amnesiac nodes
    // must recover from staged disk replay, not resume RAM) and flush
    // the backlog.
    for i in 0..n {
        if chain.is_crashed(i) {
            chain.apply_nemesis(&NemesisOp::Restart { node: i });
        }
    }
    chain.submit_all(w.generate(9000, 4));
    batches += 1;
    let r = chain.run_to_completion();
    assert!(!r.diverged, "lanes: healed heads forked");
    assert_agreement(&chain, "lanes final");
    let max_decided = chain.decided_views().iter().map(|v| v.len()).max().unwrap();
    assert_eq!(max_decided, batches, "lanes: healed stack must decide the backlog");

    // The differential auditor replays every committed height clean...
    let audit = pbc_audit::audit_network(&chain)
        .unwrap_or_else(|e| panic!("lanes: post-chaos audit failed: {e}"));
    assert!(audit.heights_checked > 0, "lanes: audit covered nothing");
    // ...and whatever survived on the (faulted) disks never contradicts
    // the decided history.
    chain.persist();
    for node in 0..n {
        assert_eq!(
            chain.verify_cold_ledger(node),
            Some(true),
            "lanes: node {node} cold ledger contradicts decided history"
        );
    }
}

#[test]
fn byzantine_replica_cannot_break_composed_agreement() {
    // n = 4 tolerates f = 1: a mute + delaying replica slows the stack
    // but honest nodes keep committing convergent ledgers.
    let w = PaymentWorkload { accounts: 48, ..Default::default() };
    for attacks in [vec![Attack::Mute], vec![Attack::Delay(50_000)], vec![Attack::Replay]] {
        let mut chain = build(ConsensusKind::Pbft, 4, Some((3, attacks.clone())));
        chain.submit_all(w.generate(0, 16));
        let r = chain.run_to_completion();
        assert!(r.consensus_complete, "{attacks:?}: f=1 Byzantine must not stop progress");
        assert!(!r.diverged, "{attacks:?}: Byzantine node forked the honest ledgers");
        assert_agreement(&chain, &format!("byzantine {attacks:?}"));
        assert!(r.committed > 0, "{attacks:?}: no progress");
    }
}

#[test]
fn byzantine_plus_crash_within_tolerance_budget() {
    // An equivocating replica *and* a crashed replica exceed f = 1 for
    // n = 4, so run n = 7 (f = 2): one of each stays within budget.
    let w = PaymentWorkload { accounts: 48, ..Default::default() };
    let mut chain = NetworkBuilder::new(7)
        .consensus(ConsensusKind::Pbft)
        .architecture(ArchKind::Ox)
        .initial_state(w.initial_state())
        .batch_size(4)
        .seed(0xBADF)
        .byzantine(6, vec![Attack::Equivocate])
        .build();
    chain.apply_nemesis(&NemesisOp::Crash { node: 5 });
    chain.submit_all(w.generate(0, 8));
    let r = chain.run_to_completion();
    assert!(r.consensus_complete, "f=2 budget covers one Byzantine + one crash");
    assert!(!r.diverged);
    assert_agreement(&chain, "byzantine + crash");
    assert_eq!(r.committed, 8);
}
