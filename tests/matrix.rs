//! Full-matrix integration: every `ConsensusKind × ArchKind` combination
//! drives the composed stack to convergent, deterministic ledgers.
//!
//! This is the cross-product the paper's design space describes (§2.3.3)
//! and the generic ordering layer exists to serve: any protocol composes
//! with any execution architecture through one registry, with no
//! combination-specific code anywhere.

use pbc_core::{ArchKind, BlockchainNetwork, ConsensusKind, NetworkBuilder, RunReport};
use pbc_workload::PaymentWorkload;

fn run_combo(
    consensus: ConsensusKind,
    arch: ArchKind,
    seed: u64,
) -> (BlockchainNetwork, RunReport) {
    let n = if consensus == ConsensusKind::MinBft { 3 } else { 4 };
    let w = PaymentWorkload { accounts: 32, ..Default::default() };
    let mut chain = NetworkBuilder::new(n)
        .consensus(consensus)
        .architecture(arch)
        .initial_state(w.initial_state())
        .batch_size(6)
        .seed(seed)
        .with_audit()
        .build();
    chain.submit_all(w.generate(0, 12));
    let report = chain.run_to_completion();
    (chain, report)
}

#[test]
fn every_consensus_times_every_arch_converges() {
    for consensus in ConsensusKind::ALL {
        for arch in ArchKind::ALL {
            let (chain, report) = run_combo(consensus, arch, 0x1234);
            assert!(report.consensus_complete, "{consensus:?} × {arch:?} stalled");
            assert_eq!(
                report.committed + report.aborted,
                12,
                "{consensus:?} × {arch:?} lost transactions"
            );
            assert_eq!(report.batches, 2, "{consensus:?} × {arch:?}");
            assert!(chain.replicas_identical(), "{consensus:?} × {arch:?} replicas diverged");
            assert!(!report.diverged, "{consensus:?} × {arch:?} reported divergence");
            assert!(report.head.is_some(), "{consensus:?} × {arch:?} missing head");
            for i in 0..chain.len() {
                chain.node_ledger(i).verify().unwrap_or_else(|e| {
                    panic!("{consensus:?} × {arch:?} node {i} broken chain: {e:?}")
                });
            }
            // The differential auditor re-derives every commit from the
            // sequential reference and re-checks every proof — green on
            // all 56 combos or the pipeline (or the auditor) is wrong.
            let audit = pbc_audit::audit_network(&chain)
                .unwrap_or_else(|e| panic!("{consensus:?} × {arch:?} failed audit: {e}"));
            assert_eq!(audit.nodes_audited, chain.len(), "{consensus:?} × {arch:?}");
            assert!(audit.heights_checked > 0, "{consensus:?} × {arch:?} audited nothing");
        }
    }
}

#[test]
fn matrix_runs_are_deterministic() {
    // Same combo + same seed ⇒ bit-identical ledger head; the registry
    // dispatch changes nothing about determinism.
    for consensus in [ConsensusKind::Pbft, ConsensusKind::HotStuff, ConsensusKind::Raft] {
        for arch in [ArchKind::Ox, ArchKind::Xov] {
            let (_, a) = run_combo(consensus, arch, 0xD5);
            let (_, b) = run_combo(consensus, arch, 0xD5);
            assert_eq!(a.head, b.head, "{consensus:?} × {arch:?} not reproducible");
            assert_eq!(a.sim_time, b.sim_time, "{consensus:?} × {arch:?} time drifted");
        }
    }
}

#[test]
fn execution_outcome_is_consensus_invariant() {
    // Which transactions commit/abort is the architecture's business;
    // the ordering protocol only sequences batches. With the same
    // workload and batch boundaries, every protocol yields the same
    // commit/abort split for a given architecture.
    for arch in [ArchKind::Ox, ArchKind::Xov, ArchKind::FastFabric] {
        let (_, reference) = run_combo(ConsensusKind::Pbft, arch, 0x77);
        for consensus in ConsensusKind::ALL {
            let (_, r) = run_combo(consensus, arch, 0x77);
            assert_eq!(
                (r.committed, r.aborted),
                (reference.committed, reference.aborted),
                "{consensus:?} × {arch:?} changed execution outcomes"
            );
        }
    }
}
