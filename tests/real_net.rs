//! Deployment-mode cross-check: the same actors, two interpreters.
//!
//! The deterministic simulator and the `pbc-net` TCP runtime both
//! drive the registry's `PbftReplica` objects. Everything consensus
//! *determines* — the committed batch sequence, payload digests, and
//! seal proposers — must therefore be identical between a simulated
//! run and a real-socket run of the same workload; and replaying the
//! TCP run's commit order with the simulator's seals must reproduce
//! the simulator's ledger head bit for bit. Timing is the one thing
//! allowed to differ (logical ticks vs. wall clock), so rows exclude
//! it by construction ([`pbc_core::CommitRow`]).

use pbc_core::{sealed_head, ArchKind, Batch, ConsensusKind, NetworkBuilder};
use pbc_net::NetRunner;
use pbc_sim::{LatencyModel, SimTime};
use pbc_types::Transaction;
use pbc_workload::PaymentWorkload;
use std::collections::HashMap;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);
const BATCH: usize = 32;

/// Chunks a transaction stream exactly the way
/// `BlockchainNetwork::run_to_completion` does: `BATCH`-sized batches
/// with ids counting from zero.
fn batches(txs: &[Transaction]) -> Vec<Batch> {
    txs.chunks(BATCH).enumerate().map(|(id, chunk)| Batch::new(id as u64, chunk.to_vec())).collect()
}

#[test]
fn tcp_commit_sequence_matches_simulator() {
    let workload = PaymentWorkload { accounts: 64, seed: 5, ..Default::default() };
    let txs = workload.generate(0, 3 * BATCH);

    // Simulator run: the reference commit sequence and ledger head.
    // Jitter is off so simulated request arrival order matches TCP's
    // per-connection FIFO — arrival order is environment, and a
    // rotating proposer would otherwise legitimately batch differently.
    let mut sim = NetworkBuilder::new(4)
        .consensus(ConsensusKind::Pbft)
        .architecture(ArchKind::Ox)
        .initial_state(workload.initial_state())
        .latency(LatencyModel::Uniform { base: 100, jitter: 0 })
        .batch_size(BATCH)
        .seed(9)
        .build();
    sim.submit_all(txs.clone());
    let report = sim.run_to_completion();
    assert!(report.consensus_complete, "sim run must decide every batch");
    let sim_rows = sim.commit_rows().expect("sim cluster alive");
    assert!(sim_rows.len() >= 3, "expected >=3 committed batches, got {}", sim_rows.len());
    let sim_head = report.head.expect("sim run produced a head");

    // Real run: the same batches through real sockets.
    let mut cluster = pbc_core::consensus::run_real::<Batch, _>("pbft", 4, NetRunner::with_seed(9))
        .expect("pbft is wire-capable")
        .expect("localhost cluster boots");
    for batch in batches(&txs) {
        cluster.submit(batch);
    }
    assert!(
        cluster.wait_all_decided(sim_rows.len(), WAIT),
        "TCP cluster must decide {} batches; decided lens: {:?}",
        sim_rows.len(),
        (0..4).map(|i| cluster.decided(i).len()).collect::<Vec<_>>()
    );

    // Row-for-row agreement with the simulator, on every replica.
    for node in 0..4 {
        let decided = cluster.decided(node);
        let rows = pbc_core::commit_rows("pbft", 4, &decided[..sim_rows.len()]);
        assert_eq!(rows, sim_rows, "TCP replica {node} disagrees with the simulator");
    }

    // Replaying the TCP commit order with the simulator's seals must
    // land on the simulator's ledger head: consensus fixed everything
    // execution needs, on both backends.
    let seals: HashMap<u64, _> = sim.seals().into_iter().collect();
    let decided = cluster.decided(0);
    let blocks: Vec<_> = decided[..sim_rows.len()]
        .iter()
        .map(|(seq, batch, _)| (batch.clone(), seals[seq]))
        .collect();
    let replayed = sealed_head(ArchKind::Ox, workload.initial_state(), &blocks);
    assert_eq!(replayed, sim_head, "TCP commit order must reproduce the simulator's head");
}

#[test]
fn tcp_rotating_proposers_match_simulator() {
    let workload = PaymentWorkload { accounts: 32, seed: 6, ..Default::default() };
    let txs = workload.generate(0, 3 * BATCH);

    // Rotation needs a closed-loop client on both backends: a rotating
    // proposer facing several queued requests picks by pending-map
    // order, so which batch lands in which slot would depend on how
    // many requests happened to have arrived — environment, not
    // consensus. One batch in flight removes the race entirely.
    let mut sim = NetworkBuilder::new(4)
        .consensus(ConsensusKind::Ibft)
        .architecture(ArchKind::Ox)
        .initial_state(workload.initial_state())
        .latency(LatencyModel::Uniform { base: 100, jitter: 0 })
        .batch_size(BATCH)
        .seed(13)
        .build();
    for chunk in txs.chunks(BATCH) {
        sim.submit_all(chunk.to_vec());
        assert!(sim.run_to_completion().consensus_complete);
    }
    let sim_rows = sim.commit_rows().expect("sim cluster alive");
    // Rotation is the point of this variant: proposers must not all be 0.
    assert!(sim_rows.iter().any(|r| r.proposer != 0), "ibft rows must rotate proposers");

    let mut cluster =
        pbc_core::consensus::run_real::<Batch, _>("ibft", 4, NetRunner::with_seed(13))
            .expect("ibft is wire-capable")
            .expect("localhost cluster boots");
    for (k, batch) in batches(&txs).into_iter().enumerate() {
        cluster.submit(batch);
        assert!(cluster.wait_all_decided(k + 1, WAIT), "ibft TCP cluster stalled at batch {k}");
    }
    let decided = cluster.decided(0);
    let rows = pbc_core::commit_rows("ibft", 4, &decided[..sim_rows.len()]);
    assert_eq!(rows, sim_rows);
}

#[test]
fn surviving_quorum_progresses_after_kill_and_reconnects_after_reboot() {
    let mut cluster = pbc_core::consensus::run_real::<u64, _>("pbft", 4, NetRunner::with_seed(21))
        .expect("pbft is wire-capable")
        .expect("localhost cluster boots");

    cluster.submit(1);
    assert!(cluster.wait_all_decided(1, WAIT), "healthy cluster must commit");

    // Kill a backup: n=4 tolerates f=1, and the primary survives, so
    // the remaining three must keep deciding with no view change.
    cluster.kill(3);
    assert!(cluster.is_down(3));
    cluster.submit(2);
    cluster.submit(3);
    for node in 0..3 {
        assert!(
            cluster.wait_decided(node, 3, WAIT),
            "node {node} must progress with one replica down; decided {:?}",
            cluster.decided(node).len()
        );
    }
    let (seqs, payloads): (Vec<u64>, Vec<u64>) =
        cluster.decided(0)[..3].iter().map(|&(seq, payload, _)| (seq, payload)).unzip();
    assert_eq!(seqs, vec![0, 1, 2]);
    let mut payloads_sorted = payloads;
    payloads_sorted.sort_unstable();
    assert_eq!(payloads_sorted, vec![1, 2, 3]);

    // Reboot the killed node on a fresh port: the survivors' dialers
    // must find it through the backoff path — observable as completed
    // reconnects — and the cluster keeps committing.
    let before = cluster.stats().reconnects;
    cluster.reboot(3).expect("reboot binds a fresh listener");
    assert!(!cluster.is_down(3));
    cluster.submit(4);
    for node in 0..3 {
        assert!(cluster.wait_decided(node, 4, WAIT), "node {node} must commit past the reboot");
    }
    let deadline = std::time::Instant::now() + WAIT;
    while cluster.stats().reconnects <= before {
        assert!(
            std::time::Instant::now() < deadline,
            "peers must re-establish links to the rebooted node (reconnects stuck at {})",
            cluster.stats().reconnects
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The decide timestamps a backend reports are its own clock; the
    // type is shared ([`SimTime`]) but the scale is not — pin that the
    // real backend reports monotone times, the only property it owes.
    let times: Vec<SimTime> = cluster.decided(0).iter().map(|&(_, _, t)| t).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "decide times must be monotone");
}
