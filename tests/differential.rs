//! Differential property tests: every execution architecture against the
//! sequential reference (§2.3.3's design space, audited pipeline by
//! pipeline).
//!
//! The generator deliberately produces *conflicting* workloads — a tiny
//! key space, mixed transfers, increments, blind puts, and deletes — so
//! the parallel pipelines actually exercise their conflict handling
//! (validation aborts, re-execution, reordering) instead of committing
//! disjoint writes. Two oracles check each run:
//!
//! 1. [`pbc_audit::ReferenceExecutor`] — the architecture-specific
//!    sequential re-implementation must agree on the exact commit/abort
//!    split and the final key/value state.
//! 2. [`pbc_txn::serial`] — the committed transactions, replayed alone
//!    in commit order, must reproduce the pipeline's state
//!    (serializability, architecture-agnostic).

use pbc_audit::ReferenceExecutor;
use pbc_core::ArchKind;
use pbc_ledger::{StateStore, Version};
use pbc_txn::serial::{replay_serial, values_equal};
use pbc_types::tx::balance_value;
use pbc_types::{ClientId, Op, Transaction, TxId};
use proptest::prelude::*;

/// Key space small enough that almost every transaction conflicts.
const KEYS: usize = 5;
const BLOCK: usize = 7;

fn key(i: u8) -> String {
    format!("k{}", i as usize % KEYS)
}

/// Decodes one generated tuple into a transaction. `kind` selects the
/// op shape; `a`/`b` pick keys from the shared space; `amount` doubles
/// as transfer amount, increment delta, and put payload.
fn decode(id: u64, (a, b, kind, amount): (u8, u8, u8, u64)) -> Transaction {
    let op = match kind % 4 {
        0 => Op::Transfer { from: key(a), to: key(b), amount },
        1 => Op::Incr { key: key(a), delta: amount as i64 - 20 },
        2 => Op::Put { key: key(a), value: balance_value(amount) },
        _ => Op::Delete { key: key(a) },
    };
    // A second op on another key widens read/write sets across keys.
    let op2 = Op::Get { key: key(b) };
    Transaction::new(TxId(id), ClientId(0), vec![op, op2])
}

fn initial_state() -> StateStore {
    let mut s = StateStore::new();
    for i in 0..KEYS {
        s.put(format!("k{i}"), balance_value(50), Version::new(0, i as u32));
    }
    s
}

proptest! {
    /// For every architecture: pipeline ≡ reference ≡ serial replay, on
    /// random conflicting workloads with deletes, block after block.
    #[test]
    fn pipelines_match_reference_and_serial_replay(
        raw in proptest::collection::vec((0u8..6, 0u8..6, 0u8..4, 1u64..40), 1..40)
    ) {
        let txs: Vec<Transaction> =
            raw.iter().enumerate().map(|(i, t)| decode(i as u64, *t)).collect();
        for arch in ArchKind::ALL {
            let initial = initial_state();
            let mut reference = ReferenceExecutor::new(arch, initial.clone());
            let mut pipeline = arch.make_pipeline(initial.clone());
            let mut committed_in_order: Vec<Transaction> = Vec::new();
            for (b, block) in txs.chunks(BLOCK).enumerate() {
                let expected = reference.apply_block(block, b as u64 + 1);
                let got = pipeline.process_block(block.to_vec());
                let mut want = expected.committed.clone();
                let mut have = got.committed.clone();
                want.sort_unstable();
                have.sort_unstable();
                prop_assert_eq!(
                    want, have,
                    "{:?} block {}: commit set diverged from reference", arch, b
                );
                // Serial replay follows the *pipeline's* commit order.
                for id in &got.committed {
                    committed_in_order
                        .push(block.iter().find(|t| t.id == *id).unwrap().clone());
                }
            }
            prop_assert_eq!(
                reference.state().value_digest(),
                pipeline.state().value_digest(),
                "{:?}: final state diverged from reference", arch
            );
            let refs: Vec<&Transaction> = committed_in_order.iter().collect();
            let serial = replay_serial(&refs, &initial_state(), 1);
            prop_assert!(
                values_equal(&serial, pipeline.state()),
                "{:?}: committed effects are not serializable", arch
            );
        }
    }

    /// Deletes propagate identically through every pipeline: a deleted
    /// key is gone (not an empty value) in pipeline, reference, and
    /// serial replay alike.
    #[test]
    fn deletes_are_observed_identically(victims in proptest::collection::vec(0u8..6, 1..10)) {
        let txs: Vec<Transaction> = victims
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Transaction::new(
                    TxId(i as u64),
                    ClientId(0),
                    vec![Op::Delete { key: key(v) }],
                )
            })
            .collect();
        for arch in ArchKind::ALL {
            let initial = initial_state();
            let mut reference = ReferenceExecutor::new(arch, initial.clone());
            let mut pipeline = arch.make_pipeline(initial);
            reference.apply_block(&txs, 1);
            pipeline.process_block(txs.clone());
            for &v in &victims {
                prop_assert_eq!(
                    pipeline.state().get(&key(v)), None,
                    "{:?}: deleted key {} still readable", arch, key(v)
                );
            }
            prop_assert_eq!(
                reference.state().value_digest(),
                pipeline.state().value_digest(),
                "{:?}: post-delete states diverged", arch
            );
        }
    }
}
