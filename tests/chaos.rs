//! Nemesis chaos suite: every consensus protocol is driven through
//! seeded, randomized fault timelines — partitions, crash-stop,
//! crash-recovery with amnesia, link-level loss/duplication/reordering —
//! with safety invariants (pairwise agreement, no history rewrite)
//! checked after every step, and the quorum guard making eventual
//! progress a valid expectation.
//!
//! Any failure here reproduces exactly from its seed: the schedule is a
//! pure function of `(n, NemesisConfig)` and the simulator replays the
//! same event order for the same network seed.

use pbc_consensus::hotstuff::{HotStuffConfig, HotStuffReplica, HsMsg};
use pbc_consensus::minbft::{MinBftConfig, MinBftMsg, MinBftReplica};
use pbc_consensus::paxos::{PaxosConfig, PaxosMsg, PaxosNode};
use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_consensus::raft::{RaftConfig, RaftMsg, RaftNode, VolatileRaft};
use pbc_consensus::tendermint::{TendermintConfig, TendermintNode, TmMsg};
use pbc_consensus::Payload;
use pbc_sim::{
    violation_report, Actor, Adversary, Attack, Durable, InvariantChecker, Nemesis, NemesisConfig,
    Network, NetworkConfig, Violation,
};

/// Nemesis seeds every protocol is exercised with.
const SEEDS: [u64; 3] = [11, 23, 47];

/// Trace window embedded in post-mortem dumps. Wide enough to reach past
/// steady-state heartbeat noise back to the decision/crash events that
/// actually explain a violation (the checker observes every ~500k ticks,
/// so a few thousand network events can pile up after the fatal commit).
const POSTMORTEM_WINDOW: usize = 4096;

/// Writes the violation post-mortem (the last trace events leading up to
/// the failure) to `target/postmortems/` and panics with both the
/// violation and the dump path — the file is the debugging artifact a
/// failed chaos run leaves behind.
fn postmortem_dir() -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("postmortems");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

fn dump_and_panic(what: &str, seed: u64, v: &Violation) -> ! {
    let report = violation_report(v, POSTMORTEM_WINDOW);
    let path = postmortem_dir().join(format!("chaos-{what}-seed{seed}.txt"));
    std::fs::write(&path, &report).expect("write post-mortem dump");
    panic!("chaos seed {seed} {what}: {v}\npost-mortem dump: {}", path.display());
}

/// Simulated time between nemesis ops: generous multiples of every
/// protocol's progress timeout so view changes / elections can complete
/// inside one window.
const OP_GAP: u64 = 400_000;

/// Runs `actors` through a seeded nemesis timeline, checking agreement
/// and rewrite invariants after every op, then asserts at least
/// `min_decided` distinct slots decided by the end (liveness under the
/// quorum guard). Returns the decided-slot count for extra assertions.
fn chaos_run<A, FS, FV>(
    actors: Vec<A>,
    seed: u64,
    amnesia: bool,
    min_decided: usize,
    submit: FS,
    views: FV,
) -> usize
where
    A: Durable,
    FS: Fn(&mut Network<A>, u64),
    FV: Fn(&Network<A>) -> Vec<Vec<(u64, u64)>>,
{
    let n = actors.len();
    // A bounded trace ring: if an invariant trips, the dump shows what
    // the network did in the run-up.
    pbc_trace::install(pbc_trace::TraceSink::new(4096));
    let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
    net.start();
    for p in 1..=5u64 {
        submit(&mut net, p);
    }
    net.run_until(600_000);
    let mut checker = InvariantChecker::new(n);
    checker.observe(&views(&net)).expect("pre-chaos safety");

    let mut ncfg = NemesisConfig::new(seed).with_steps(12);
    ncfg.amnesia = amnesia;
    let nemesis = Nemesis::generate(n, &ncfg);
    nemesis
        .drive_durable(&mut net, OP_GAP, &mut checker, &views)
        .unwrap_or_else(|v| dump_and_panic("violated-safety", seed, &v));

    // The schedule ended fully healed: new requests must still decide.
    for p in 6..=7u64 {
        submit(&mut net, p);
    }
    net.run_until(net.now() + 4_000_000);
    checker.observe(&views(&net)).expect("post-chaos safety");
    checker.check_progress(min_decided).unwrap_or_else(|v| dump_and_panic("stalled", seed, &v));
    pbc_trace::uninstall();
    checker.total_decided()
}

/// Non-durable variant for protocols without checkpointing: same loop,
/// amnesia disabled by construction.
fn chaos_run_plain<A, FS, FV>(
    actors: Vec<A>,
    seed: u64,
    min_decided: usize,
    submit: FS,
    views: FV,
) -> usize
where
    A: Actor,
    FS: Fn(&mut Network<A>, u64),
    FV: Fn(&Network<A>) -> Vec<Vec<(u64, u64)>>,
{
    let n = actors.len();
    pbc_trace::install(pbc_trace::TraceSink::new(4096));
    let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
    net.start();
    for p in 1..=5u64 {
        submit(&mut net, p);
    }
    net.run_until(600_000);
    let mut checker = InvariantChecker::new(n);
    checker.observe(&views(&net)).expect("pre-chaos safety");

    let nemesis = Nemesis::generate(n, &NemesisConfig::new(seed).with_steps(12));
    nemesis
        .drive(&mut net, OP_GAP, &mut checker, &views)
        .unwrap_or_else(|v| dump_and_panic("violated-safety", seed, &v));

    for p in 6..=7u64 {
        submit(&mut net, p);
    }
    net.run_until(net.now() + 4_000_000);
    checker.observe(&views(&net)).expect("post-chaos safety");
    checker.check_progress(min_decided).unwrap_or_else(|v| dump_and_panic("stalled", seed, &v));
    pbc_trace::uninstall();
    checker.total_decided()
}

/// `(seq, digest)` views straight from a replica's decided log.
fn log_views<'a, I, P: Payload + 'a>(logs: I) -> Vec<Vec<(u64, u64)>>
where
    I: Iterator<Item = &'a pbc_consensus::DecidedLog<P>>,
{
    logs.map(|log| log.delivered().iter().map(|(s, p, _)| (*s, p.digest_u64())).collect()).collect()
}

#[test]
fn chaos_pbft() {
    for seed in SEEDS {
        let cfg = PbftConfig::new(4);
        let actors = (0..4).map(|_| PbftReplica::<u64>::new(cfg.clone())).collect();
        chaos_run(
            actors,
            seed,
            true, // durable: amnesia crashes included
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, PbftMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_ibft() {
    for seed in SEEDS {
        let cfg = PbftConfig::ibft(4);
        let actors = (0..4).map(|_| PbftReplica::<u64>::new(cfg.clone())).collect();
        chaos_run(
            actors,
            seed,
            true,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, PbftMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_raft() {
    for seed in SEEDS {
        let cfg = RaftConfig::new(5);
        let actors = (0..5).map(|i| RaftNode::<u64>::new(cfg.clone(), i)).collect();
        chaos_run(
            actors,
            seed,
            true,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, RaftMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_minbft() {
    for seed in SEEDS {
        let cfg = MinBftConfig::new(3);
        let actors = (0..3).map(|i| MinBftReplica::<u64>::new(cfg.clone(), i)).collect();
        chaos_run(
            actors,
            seed,
            true,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, MinBftMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_hotstuff() {
    for seed in SEEDS {
        let cfg = HotStuffConfig::new(4);
        let actors = (0..4).map(|_| HotStuffReplica::<u64>::new(cfg.clone())).collect();
        chaos_run_plain(
            actors,
            seed,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, HsMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_tendermint() {
    for seed in SEEDS {
        let cfg = TendermintConfig::equal(4);
        let actors = (0..4).map(|_| TendermintNode::<u64>::new(cfg.clone())).collect();
        chaos_run_plain(
            actors,
            seed,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, TmMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_paxos() {
    for seed in SEEDS {
        let cfg = PaxosConfig::new(3);
        let actors = (0..3).map(|i| PaxosNode::<u64>::new(cfg.clone(), i)).collect();
        chaos_run_plain(
            actors,
            seed,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, PaxosMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

// ---------------------------------------------------------------------
// Crash-recovery with amnesia: durability is load-bearing.
// ---------------------------------------------------------------------

/// Drives the amnesia scenario: elect, commit payload 1 everywhere,
/// crash the leader plus one follower with memory loss, restart them,
/// submit payload 2, and report the first safety violation (if any).
fn raft_amnesia_scenario<A>(
    mut net: Network<A>,
    views: impl Fn(&Network<A>) -> Vec<Vec<(u64, u64)>>,
    is_leader: impl Fn(&A) -> bool,
    log_len: impl Fn(&A) -> usize,
    submit: impl Fn(&mut Network<A>, u64),
) -> Result<(), Violation>
where
    A: Durable,
{
    net.start();
    net.run_until(300_000);
    let leader = (0..net.len()).find(|&i| is_leader(net.actor(i))).expect("initial leader");
    submit(&mut net, 1);
    assert!(net.run_until_all(5_000_000, |a| log_len(a) >= 1), "payload 1 must commit");

    let mut checker = InvariantChecker::new(net.len());
    checker.observe(&views(&net))?;

    // A majority (leader + one follower) loses its memory.
    let follower = (0..net.len()).find(|&i| i != leader).unwrap();
    net.crash_and_lose_memory(leader);
    net.crash_and_lose_memory(follower);
    net.restart(leader);
    net.restart(follower);

    submit(&mut net, 2);
    // Observe repeatedly while the cluster re-elects and commits.
    for _ in 0..20 {
        net.run_until(net.now() + 500_000);
        checker.observe(&views(&net))?;
    }
    // Converged without violation: the surviving entry must still be
    // everyone's slot 0.
    checker.check_progress(1)?;
    Ok(())
}

#[test]
fn volatile_raft_amnesia_violates_safety() {
    // The deliberately non-durable variant: a majority crashing with
    // amnesia re-elects with empty logs and re-decides slot 0
    // differently — the checker must catch the rewrite/divergence.
    let mut violations = 0;
    for seed in [1u64, 2, 3, 4, 5] {
        pbc_trace::install(pbc_trace::TraceSink::new(4096));
        let cfg = RaftConfig::new(3);
        let actors = (0..3).map(|i| VolatileRaft::<u64>::new(cfg.clone(), i)).collect();
        let net: Network<VolatileRaft<u64>> =
            Network::new(actors, NetworkConfig { seed, ..Default::default() });
        let result = raft_amnesia_scenario(
            net,
            |net| log_views(net.actors().map(|a| &a.0.log)),
            |a| a.0.role() == pbc_consensus::raft::Role::Leader,
            |a| a.0.log.len(),
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, RaftMsg::Request(p), 1);
                }
            },
        );
        if let Err(v) = result {
            assert!(
                matches!(v, Violation::Rewrite { .. } | Violation::Disagreement { .. }),
                "expected a safety violation, got {v}"
            );
            // This violation is *expected* — the dump it leaves behind is
            // the worked post-mortem example in EXPERIMENTS.md (E13).
            let report = violation_report(&v, POSTMORTEM_WINDOW);
            assert!(report.contains("post-mortem"), "report must embed the trace window");
            let path = postmortem_dir().join(format!("volatile-raft-amnesia-seed{seed}.txt"));
            std::fs::write(&path, &report).expect("write post-mortem dump");
            assert!(path.exists(), "violation must leave a dump file behind");
            violations += 1;
        }
        pbc_trace::uninstall();
    }
    assert!(
        violations > 0,
        "losing un-persisted Raft state must violate safety in at least one run"
    );
}

#[test]
fn durable_raft_amnesia_preserves_safety() {
    // Same scenario, real persistence: no seed may produce a violation.
    for seed in [1u64, 2, 3, 4, 5] {
        let cfg = RaftConfig::new(3);
        let actors = (0..3).map(|i| RaftNode::<u64>::new(cfg.clone(), i)).collect();
        let net: Network<RaftNode<u64>> =
            Network::new(actors, NetworkConfig { seed, ..Default::default() });
        raft_amnesia_scenario(
            net,
            |net| log_views(net.actors().map(|a| &a.log)),
            |a| a.role() == pbc_consensus::raft::Role::Leader,
            |a| a.log.len(),
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, RaftMsg::Request(p), 1);
                }
            },
        )
        .unwrap_or_else(|v| panic!("durable raft violated safety at seed {seed}: {v}"));
    }
}

#[test]
fn durable_pbft_survives_amnesia_crash() {
    let cfg = PbftConfig::new(4);
    let actors = (0..4).map(|_| PbftReplica::<u64>::new(cfg.clone())).collect();
    let mut net: Network<PbftReplica<u64>> =
        Network::new(actors, NetworkConfig { seed: 13, ..Default::default() });
    for i in 0..4 {
        net.inject(0, i, PbftMsg::Request(1), 1);
    }
    net.run_to_quiescence(1_000_000);
    assert!(net.actor(2).log.len() == 1);
    net.crash_and_lose_memory(2);
    assert_eq!(net.actor(2).log.len(), 1, "decision persisted through the crash");
    net.restart(2);
    for i in 0..4 {
        net.inject(0, i, PbftMsg::Request(2), 1);
    }
    net.run_to_quiescence(2_000_000);
    let reference: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert_eq!(reference, vec![1, 2]);
    let restored: Vec<u64> = net.actor(2).log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert_eq!(restored, reference, "restored replica stays consistent");
}

#[test]
fn durable_minbft_usig_counter_never_rewinds() {
    let cfg = MinBftConfig::new(3);
    let actors = (0..3).map(|i| MinBftReplica::<u64>::new(cfg.clone(), i)).collect();
    let mut net: Network<MinBftReplica<u64>> =
        Network::new(actors, NetworkConfig { seed: 14, ..Default::default() });
    for i in 0..3 {
        net.inject(0, i, MinBftMsg::Request(1), 1);
    }
    net.run_to_quiescence(1_000_000);
    assert_eq!(net.actor(0).log.len(), 1);
    // Crash the primary with amnesia; its trusted counter must survive.
    net.crash_and_lose_memory(0);
    net.restart(0);
    for i in 0..3 {
        net.inject(0, i, MinBftMsg::Request(2), 1);
    }
    net.run_to_quiescence(3_000_000);
    // The recovered primary proposes with fresh counters; replicas
    // accept, and nobody ever sees a reused counter (which verify_fresh
    // would reject, stalling the slot).
    let reference: Vec<u64> = net.actor(1).log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert!(reference.contains(&2), "post-recovery proposal must decide: {reference:?}");
    for i in [0usize, 2] {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i}");
    }
}

// ---------------------------------------------------------------------
// Byzantine adversary wrapper over an unmodified protocol.
// ---------------------------------------------------------------------

#[test]
fn pbft_equivocating_adversary_cannot_split_honest_replicas() {
    // Node 0 (primary of view 0) is wrapped in the generic Adversary
    // with the Equivocate attack: its PrePrepare for payload 7 reaches
    // half the cluster forked to payload 8 (via Payload::forked). The
    // protocol code is completely unchanged.
    let cfg = PbftConfig::new(4);
    let actors: Vec<Adversary<PbftReplica<u64>>> = (0..4)
        .map(|i| {
            let replica = PbftReplica::new(cfg.clone());
            if i == 0 {
                Adversary::new(replica, vec![Attack::Equivocate])
            } else {
                Adversary::honest(replica)
            }
        })
        .collect();
    let mut net = Network::new(actors, NetworkConfig { seed: 15, ..Default::default() });
    for i in 0..4 {
        net.inject(0, i, PbftMsg::Request(7), 1);
    }
    net.run_to_quiescence(10_000_000);
    // Neither fork gathers a 2f+1 quorum; the view change elects an
    // honest primary which re-proposes the real request. All honest
    // replicas decide the same single log containing 7 and no fork.
    let mut logs = Vec::new();
    for i in 1..4 {
        let log: Vec<u64> =
            net.actor(i).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert!(!log.contains(&8), "node {i} decided the forked payload: {log:?}");
        assert!(log.contains(&7), "node {i} must decide the honest request: {log:?}");
        logs.push(log);
    }
    assert_eq!(logs[0], logs[1]);
    assert_eq!(logs[1], logs[2]);
    assert!(net.actor(1).inner().view() >= 1, "equivocation must force a view change");
}

#[test]
fn pbft_mute_leader_adversary_recovers_via_view_change() {
    // A mute primary (receives but never sends) is indistinguishable
    // from a slow one; the progress timer must route around it.
    let cfg = PbftConfig::new(4);
    let actors: Vec<Adversary<PbftReplica<u64>>> = (0..4)
        .map(|i| {
            let replica = PbftReplica::new(cfg.clone());
            if i == 0 {
                Adversary::new(replica, vec![Attack::Mute])
            } else {
                Adversary::honest(replica)
            }
        })
        .collect();
    let mut net = Network::new(actors, NetworkConfig { seed: 16, ..Default::default() });
    for i in 0..4 {
        net.inject(0, i, PbftMsg::Request(9), 1);
    }
    net.run_to_quiescence(10_000_000);
    for i in 1..4 {
        let log: Vec<u64> =
            net.actor(i).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, vec![9], "node {i} must decide despite the mute primary");
        assert!(net.actor(i).inner().view() >= 1, "node {i} must have changed view");
    }
}

#[test]
fn raft_delaying_adversary_only_slows_the_cluster() {
    // A Delay adversary on one follower is just asymmetric latency:
    // safety and liveness must hold, merely later.
    let cfg = RaftConfig::new(3);
    let actors: Vec<Adversary<RaftNode<u64>>> = (0..3)
        .map(|i| {
            let node = RaftNode::new(cfg.clone(), i);
            if i == 2 {
                Adversary::new(node, vec![Attack::Delay(5_000)])
            } else {
                Adversary::honest(node)
            }
        })
        .collect();
    let mut net = Network::new(actors, NetworkConfig { seed: 17, ..Default::default() });
    net.start();
    net.run_until(400_000);
    for p in 1..=3u64 {
        for i in 0..3 {
            net.inject(0, i, RaftMsg::Request(p), 1);
        }
    }
    let ok = net.run_until_all(10_000_000, |a| a.inner().log.len() >= 3);
    assert!(ok, "delayed follower must not block commitment");
    let reference: Vec<u64> =
        net.actor(0).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
    for i in 1..3 {
        let log: Vec<u64> =
            net.actor(i).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i}");
    }
}

#[test]
fn minbft_replay_adversary_is_harmless() {
    // The USIG freshness check was built exactly for this: a backup
    // that replays old attested prepares and commits changes nothing.
    let cfg = MinBftConfig::new(3);
    let actors: Vec<Adversary<MinBftReplica<u64>>> = (0..3)
        .map(|i| {
            let replica = MinBftReplica::new(cfg.clone(), i);
            if i == 2 {
                Adversary::new(replica, vec![Attack::Replay])
            } else {
                Adversary::honest(replica)
            }
        })
        .collect();
    let mut net = Network::new(actors, NetworkConfig { seed: 18, ..Default::default() });
    for p in 1..=5u64 {
        for i in 0..3 {
            net.inject(0, i, MinBftMsg::Request(p), 1);
        }
    }
    net.run_to_quiescence(5_000_000);
    let reference: Vec<u64> =
        net.actor(0).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert_eq!(reference.len(), 5, "all requests decide despite replays");
    for i in 1..3 {
        let log: Vec<u64> =
            net.actor(i).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i}");
    }
}

#[test]
fn shrinker_reduces_amnesia_schedule_to_minimal_kernel() {
    // The full loop the auditor crate exists for: a seeded chaos
    // schedule that violates VolatileRaft safety is delta-debugged down
    // to a 1-minimal kernel, and the kernel ships as a self-contained
    // replay artifact next to the post-mortem dumps.
    use pbc_audit::harness::{
        padded_amnesia_schedule, volatile_raft_violation, NODES, PINNED_SEED,
    };

    let padded = padded_amnesia_schedule(7);
    assert!(padded.len() >= 10, "regression input must bury the kernel in noise");
    let out = pbc_audit::shrink_schedule(&padded, |s| volatile_raft_violation(PINNED_SEED, s))
        .expect("padded amnesia schedule must violate safety");

    assert!(
        out.minimized.len() <= 10,
        "shrinker left {} ops, expected a kernel of at most 10",
        out.minimized.len()
    );
    let amnesia_crashes = out
        .minimized
        .iter()
        .filter(|op| matches!(op, pbc_sim::NemesisOp::CrashAmnesia { .. }))
        .count();
    assert_eq!(amnesia_crashes, 2, "the kernel is losing a majority's memory");

    // 1-minimality: dropping any single remaining op kills the repro.
    for i in 0..out.minimized.len() {
        let mut fewer = out.minimized.clone();
        fewer.remove(i);
        assert!(
            volatile_raft_violation(PINNED_SEED, &fewer).is_none(),
            "op {i} of the minimized schedule is redundant"
        );
    }

    // Replay the kernel once more under tracing and write the artifact.
    pbc_trace::install(pbc_trace::TraceSink::new(POSTMORTEM_WINDOW));
    let v = volatile_raft_violation(PINNED_SEED, &out.minimized)
        .expect("minimized schedule must still reproduce the violation");
    let report = violation_report(&v, POSTMORTEM_WINDOW);
    pbc_trace::uninstall();
    let artifact =
        pbc_audit::ReplayArtifact::from_shrink("volatile-raft-amnesia", PINNED_SEED, NODES, &out)
            .with_postmortem(report);
    let path = artifact.write_to(&postmortem_dir()).expect("write replay artifact");
    let text = std::fs::read_to_string(&path).expect("read artifact back");
    assert!(text.contains("crash-amnesia"), "artifact lists the kernel ops");
    assert!(text.contains("post-mortem"), "artifact embeds the trace window");
}
