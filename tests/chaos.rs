//! Nemesis chaos suite: every consensus protocol is driven through
//! seeded, randomized fault timelines — partitions, crash-stop,
//! crash-recovery with amnesia, link-level loss/duplication/reordering —
//! with safety invariants (pairwise agreement, no history rewrite)
//! checked after every step, and the quorum guard making eventual
//! progress a valid expectation.
//!
//! Any failure here reproduces exactly from its seed: the schedule is a
//! pure function of `(n, NemesisConfig)` and the simulator replays the
//! same event order for the same network seed.

use pbc_consensus::hotstuff::{HotStuffConfig, HotStuffReplica, HsMsg};
use pbc_consensus::minbft::{MinBftConfig, MinBftMsg, MinBftReplica};
use pbc_consensus::paxos::{PaxosConfig, PaxosMsg, PaxosNode};
use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_consensus::raft::{RaftConfig, RaftMsg, RaftNode, VolatileRaft};
use pbc_consensus::tendermint::{TendermintConfig, TendermintNode, TmMsg};
use pbc_consensus::{DurableNet, OrderingCluster, Payload};
use pbc_sim::{
    violation_report, Adversary, Attack, Durable, InvariantChecker, Nemesis, NemesisConfig,
    NemesisOp, Network, NetworkConfig, Violation,
};

/// Nemesis seeds every protocol is exercised with.
const SEEDS: [u64; 3] = [11, 23, 47];

/// Trace window embedded in post-mortem dumps. Wide enough to reach past
/// steady-state heartbeat noise back to the decision/crash events that
/// actually explain a violation (the checker observes every ~500k ticks,
/// so a few thousand network events can pile up after the fatal commit).
const POSTMORTEM_WINDOW: usize = 4096;

/// Writes the violation post-mortem (the last trace events leading up to
/// the failure) to `target/postmortems/` and panics with both the
/// violation and the dump path — the file is the debugging artifact a
/// failed chaos run leaves behind.
fn postmortem_dir() -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("postmortems");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

fn dump_and_panic(what: &str, seed: u64, v: &Violation) -> ! {
    let report = violation_report(v, POSTMORTEM_WINDOW);
    let path = postmortem_dir().join(format!("chaos-{what}-seed{seed}.txt"));
    std::fs::write(&path, &report).expect("write post-mortem dump");
    panic!("chaos seed {seed} {what}: {v}\npost-mortem dump: {}", path.display());
}

/// Simulated time between nemesis ops: generous multiples of every
/// protocol's progress timeout so view changes / elections can complete
/// inside one window.
const OP_GAP: u64 = 400_000;

/// Runs `actors` through a seeded nemesis timeline, checking agreement
/// and rewrite invariants after every op, then asserts at least
/// `min_decided` distinct slots decided by the end (liveness under the
/// quorum guard). Returns the decided-slot count for extra assertions.
fn chaos_run<A, FS, FV>(
    actors: Vec<A>,
    seed: u64,
    amnesia: bool,
    min_decided: usize,
    submit: FS,
    views: FV,
) -> usize
where
    A: Durable,
    FS: Fn(&mut Network<A>, u64),
    FV: Fn(&Network<A>) -> Vec<Vec<(u64, u64)>>,
{
    let n = actors.len();
    // A bounded trace ring: if an invariant trips, the dump shows what
    // the network did in the run-up.
    pbc_trace::install(pbc_trace::TraceSink::new(4096));
    let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
    net.start();
    for p in 1..=5u64 {
        submit(&mut net, p);
    }
    net.run_until(600_000);
    let mut checker = InvariantChecker::new(n);
    checker.observe(&views(&net)).expect("pre-chaos safety");

    let mut ncfg = NemesisConfig::new(seed).with_steps(12);
    ncfg.amnesia = amnesia;
    let nemesis = Nemesis::generate(n, &ncfg);
    nemesis
        .drive_durable(&mut net, OP_GAP, &mut checker, &views)
        .unwrap_or_else(|v| dump_and_panic("violated-safety", seed, &v));

    // The schedule ended fully healed: new requests must still decide.
    for p in 6..=7u64 {
        submit(&mut net, p);
    }
    net.run_until(net.now() + 4_000_000);
    checker.observe(&views(&net)).expect("post-chaos safety");
    checker.check_progress(min_decided).unwrap_or_else(|v| dump_and_panic("stalled", seed, &v));
    pbc_trace::uninstall();
    checker.total_decided()
}

/// `(seq, digest)` views straight from a replica's decided log.
fn log_views<'a, I, P: Payload + 'a>(logs: I) -> Vec<Vec<(u64, u64)>>
where
    I: Iterator<Item = &'a pbc_consensus::DecidedLog<P>>,
{
    logs.map(|log| log.delivered().iter().map(|(s, p, _)| (*s, p.digest_u64())).collect()).collect()
}

#[test]
fn chaos_pbft() {
    for seed in SEEDS {
        let cfg = PbftConfig::new(4);
        let actors = (0..4).map(|_| PbftReplica::<u64>::new(cfg.clone())).collect();
        chaos_run(
            actors,
            seed,
            true, // durable: amnesia crashes included
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, PbftMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_ibft() {
    for seed in SEEDS {
        let cfg = PbftConfig::ibft(4);
        let actors = (0..4).map(|_| PbftReplica::<u64>::new(cfg.clone())).collect();
        chaos_run(
            actors,
            seed,
            true,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, PbftMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_raft() {
    for seed in SEEDS {
        let cfg = RaftConfig::new(5);
        let actors = (0..5).map(|i| RaftNode::<u64>::new(cfg.clone(), i)).collect();
        chaos_run(
            actors,
            seed,
            true,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, RaftMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_minbft() {
    for seed in SEEDS {
        let cfg = MinBftConfig::new(3);
        let actors = (0..3).map(|i| MinBftReplica::<u64>::new(cfg.clone(), i)).collect();
        chaos_run(
            actors,
            seed,
            true,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, MinBftMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_hotstuff() {
    for seed in SEEDS {
        let cfg = HotStuffConfig::new(4);
        let actors = (0..4).map(|_| HotStuffReplica::<u64>::new(cfg.clone())).collect();
        chaos_run(
            actors,
            seed,
            true,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, HsMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_tendermint() {
    for seed in SEEDS {
        let cfg = TendermintConfig::equal(4);
        let actors = (0..4).map(|_| TendermintNode::<u64>::new(cfg.clone())).collect();
        chaos_run(
            actors,
            seed,
            true,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, TmMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

#[test]
fn chaos_paxos() {
    for seed in SEEDS {
        let cfg = PaxosConfig::new(3);
        let actors = (0..3).map(|i| PaxosNode::<u64>::new(cfg.clone(), i)).collect();
        chaos_run(
            actors,
            seed,
            true,
            1,
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, PaxosMsg::Request(p), 1);
                }
            },
            |net| log_views(net.actors().map(|a| &a.log)),
        );
    }
}

// ---------------------------------------------------------------------
// Crash-recovery with amnesia: durability is load-bearing.
// ---------------------------------------------------------------------

/// Drives the amnesia scenario: elect, commit payload 1 everywhere,
/// crash the leader plus one follower with memory loss, restart them,
/// submit payload 2, and report the first safety violation (if any).
fn raft_amnesia_scenario<A>(
    mut net: Network<A>,
    views: impl Fn(&Network<A>) -> Vec<Vec<(u64, u64)>>,
    is_leader: impl Fn(&A) -> bool,
    log_len: impl Fn(&A) -> usize,
    submit: impl Fn(&mut Network<A>, u64),
) -> Result<(), Violation>
where
    A: Durable,
{
    net.start();
    net.run_until(300_000);
    let leader = (0..net.len()).find(|&i| is_leader(net.actor(i))).expect("initial leader");
    submit(&mut net, 1);
    assert!(net.run_until_all(5_000_000, |a| log_len(a) >= 1), "payload 1 must commit");

    let mut checker = InvariantChecker::new(net.len());
    checker.observe(&views(&net))?;

    // A majority (leader + one follower) loses its memory.
    let follower = (0..net.len()).find(|&i| i != leader).unwrap();
    net.crash_and_lose_memory(leader);
    net.crash_and_lose_memory(follower);
    net.restart(leader);
    net.restart(follower);

    submit(&mut net, 2);
    // Observe repeatedly while the cluster re-elects and commits.
    for _ in 0..20 {
        net.run_until(net.now() + 500_000);
        checker.observe(&views(&net))?;
    }
    // Converged without violation: the surviving entry must still be
    // everyone's slot 0.
    checker.check_progress(1)?;
    Ok(())
}

#[test]
fn volatile_raft_amnesia_violates_safety() {
    // The deliberately non-durable variant: a majority crashing with
    // amnesia re-elects with empty logs and re-decides slot 0
    // differently — the checker must catch the rewrite/divergence.
    let mut violations = 0;
    for seed in [1u64, 2, 3, 4, 5] {
        pbc_trace::install(pbc_trace::TraceSink::new(4096));
        let cfg = RaftConfig::new(3);
        let actors = (0..3).map(|i| VolatileRaft::<u64>::new(cfg.clone(), i)).collect();
        let net: Network<VolatileRaft<u64>> =
            Network::new(actors, NetworkConfig { seed, ..Default::default() });
        let result = raft_amnesia_scenario(
            net,
            |net| log_views(net.actors().map(|a| &a.0.log)),
            |a| a.0.role() == pbc_consensus::raft::Role::Leader,
            |a| a.0.log.len(),
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, RaftMsg::Request(p), 1);
                }
            },
        );
        if let Err(v) = result {
            assert!(
                matches!(v, Violation::Rewrite { .. } | Violation::Disagreement { .. }),
                "expected a safety violation, got {v}"
            );
            // This violation is *expected* — the dump it leaves behind is
            // the worked post-mortem example in EXPERIMENTS.md (E13).
            let report = violation_report(&v, POSTMORTEM_WINDOW);
            assert!(report.contains("post-mortem"), "report must embed the trace window");
            let path = postmortem_dir().join(format!("volatile-raft-amnesia-seed{seed}.txt"));
            std::fs::write(&path, &report).expect("write post-mortem dump");
            assert!(path.exists(), "violation must leave a dump file behind");
            violations += 1;
        }
        pbc_trace::uninstall();
    }
    assert!(
        violations > 0,
        "losing un-persisted Raft state must violate safety in at least one run"
    );
}

#[test]
fn durable_raft_amnesia_preserves_safety() {
    // Same scenario, real persistence: no seed may produce a violation.
    for seed in [1u64, 2, 3, 4, 5] {
        let cfg = RaftConfig::new(3);
        let actors = (0..3).map(|i| RaftNode::<u64>::new(cfg.clone(), i)).collect();
        let net: Network<RaftNode<u64>> =
            Network::new(actors, NetworkConfig { seed, ..Default::default() });
        raft_amnesia_scenario(
            net,
            |net| log_views(net.actors().map(|a| &a.log)),
            |a| a.role() == pbc_consensus::raft::Role::Leader,
            |a| a.log.len(),
            |net, p| {
                for i in 0..net.len() {
                    net.inject(0, i, RaftMsg::Request(p), 1);
                }
            },
        )
        .unwrap_or_else(|v| panic!("durable raft violated safety at seed {seed}: {v}"));
    }
}

#[test]
fn durable_pbft_survives_amnesia_crash() {
    let cfg = PbftConfig::new(4);
    let actors = (0..4).map(|_| PbftReplica::<u64>::new(cfg.clone())).collect();
    let mut net: Network<PbftReplica<u64>> =
        Network::new(actors, NetworkConfig { seed: 13, ..Default::default() });
    for i in 0..4 {
        net.inject(0, i, PbftMsg::Request(1), 1);
    }
    net.run_to_quiescence(1_000_000);
    assert!(net.actor(2).log.len() == 1);
    net.crash_and_lose_memory(2);
    assert_eq!(net.actor(2).log.len(), 1, "decision persisted through the crash");
    net.restart(2);
    for i in 0..4 {
        net.inject(0, i, PbftMsg::Request(2), 1);
    }
    net.run_to_quiescence(2_000_000);
    let reference: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert_eq!(reference, vec![1, 2]);
    let restored: Vec<u64> = net.actor(2).log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert_eq!(restored, reference, "restored replica stays consistent");
}

#[test]
fn durable_minbft_usig_counter_never_rewinds() {
    let cfg = MinBftConfig::new(3);
    let actors = (0..3).map(|i| MinBftReplica::<u64>::new(cfg.clone(), i)).collect();
    let mut net: Network<MinBftReplica<u64>> =
        Network::new(actors, NetworkConfig { seed: 14, ..Default::default() });
    for i in 0..3 {
        net.inject(0, i, MinBftMsg::Request(1), 1);
    }
    net.run_to_quiescence(1_000_000);
    assert_eq!(net.actor(0).log.len(), 1);
    // Crash the primary with amnesia; its trusted counter must survive.
    net.crash_and_lose_memory(0);
    net.restart(0);
    for i in 0..3 {
        net.inject(0, i, MinBftMsg::Request(2), 1);
    }
    net.run_to_quiescence(3_000_000);
    // The recovered primary proposes with fresh counters; replicas
    // accept, and nobody ever sees a reused counter (which verify_fresh
    // would reject, stalling the slot).
    let reference: Vec<u64> = net.actor(1).log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert!(reference.contains(&2), "post-recovery proposal must decide: {reference:?}");
    for i in [0usize, 2] {
        let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i}");
    }
}

// ---------------------------------------------------------------------
// Disk faults against real (simulated) stores: torn writes, bit rot,
// crash-during-recovery. RAM checkpoints above survive because the
// simulator hands them back; here every byte round-trips through a
// pbc-store WAL + segment store over a fault-injecting filesystem.
// ---------------------------------------------------------------------

/// One fault-injecting store per node, deterministically seeded.
fn fault_stores(n: usize, seed: u64) -> Vec<pbc_store::NodeStore> {
    (0..n)
        .map(|i| {
            let vfs = pbc_store::FaultFs::new(seed ^ (i as u64 * 0x9E37));
            let (store, _) =
                pbc_store::NodeStore::open(Box::new(vfs), pbc_store::StoreConfig::default())
                    .expect("fresh store opens clean");
            store
        })
        .collect()
}

fn raft_durable_net(
    n: usize,
    seed: u64,
    cfg_store: pbc_store::StoreConfig,
) -> DurableNet<RaftNode<u64>> {
    let cfg = RaftConfig::new(n);
    let actors = (0..n).map(|i| RaftNode::<u64>::new(cfg.clone(), i)).collect();
    let stores = (0..n)
        .map(|i| {
            let vfs = pbc_store::FaultFs::new(seed ^ (i as u64 * 0x9E37));
            let (store, _) = pbc_store::NodeStore::open(Box::new(vfs), cfg_store)
                .expect("fresh store opens clean");
            store
        })
        .collect();
    DurableNet::new(actors, NetworkConfig { seed, ..Default::default() }, stores)
}

/// The torn-write acceptance scenario: a WAL write torn mid-record
/// between a total crash and the restart. Staged recovery must truncate
/// the torn tail, fall back cleanly (checkpoint gone, segment blocks
/// intact), and the cluster must converge with a green cold audit.
///
/// This test is deliberately load-bearing on
/// `StoreConfig::truncate_torn_tail`: with truncation deleted, `reopen`
/// refuses the torn WAL outright, no staged recovery happens, and the
/// `wal_torn_tail` / `blocks` assertions below fail (see the companion
/// test for that configuration).
#[test]
fn torn_wal_write_recovers_and_cold_audit_stays_green() {
    let mut c = raft_durable_net(3, 0x70A1, pbc_store::StoreConfig::default());
    for p in 1..=3u64 {
        c.submit(p);
    }
    assert!(c.run_until_decided(3, 20_000_000), "pre-fault decisions");
    let reference: Vec<(u64, u64)> = c.decided(0).iter().map(|(s, p, _)| (*s, *p)).collect();

    // Total crash flushes a checkpoint + the decided blocks, then the
    // WAL tail is torn before the node comes back.
    c.apply_nemesis(&NemesisOp::CrashAmnesia { node: 1 });
    c.apply_nemesis(&NemesisOp::CorruptWalTail { node: 1 });
    c.apply_nemesis(&NemesisOp::Restart { node: 1 });

    let rec = c
        .recoveries()
        .iter()
        .rev()
        .find(|(n, _)| *n == 1)
        .map(|(_, r)| r)
        .expect("restart must stage a disk recovery");
    assert!(rec.wal_torn_tail, "the schedule must actually tear the WAL tail");
    assert!(
        rec.checkpoint.is_none(),
        "the only checkpoint record was the torn one — recovery must not invent it"
    );
    assert_eq!(rec.blocks.len(), 3, "segment blocks are untouched by a torn WAL");

    // The node booted with a blank consensus state but its block store
    // intact; the leader re-teaches it and the cluster converges.
    assert!(c.run_until_decided(3, 20_000_000), "post-recovery convergence");
    let recovered: Vec<(u64, u64)> = c.decided(1).iter().map(|(s, p, _)| (*s, *p)).collect();
    assert_eq!(recovered, reference, "no rewrite through the torn-write crash");

    // Cold audit: reopen every store from disk and check what actually
    // survived against the decided history.
    c.persist();
    for node in 0..3 {
        let cold = c.cold_decided(node).expect("durable cluster cold-reads");
        assert_eq!(cold, reference, "node {node}: cold ledger matches decided history");
    }
}

/// The same torn-write schedule with torn-tail truncation *disabled*:
/// recovery must refuse the WAL (fail-stop on ambiguous bytes), the
/// node boots blank instead of staging a recovery, and cold reads stay
/// impossible until an operator intervenes. Documents exactly what the
/// truncation stage buys.
#[test]
fn torn_wal_without_truncation_is_fail_stop() {
    let cfg_store = pbc_store::StoreConfig { truncate_torn_tail: false, ..Default::default() };
    let mut c = raft_durable_net(3, 0x70A1, cfg_store);
    for p in 1..=3u64 {
        c.submit(p);
    }
    assert!(c.run_until_decided(3, 20_000_000));
    let reference: Vec<(u64, u64)> = c.decided(0).iter().map(|(s, p, _)| (*s, *p)).collect();

    c.apply_nemesis(&NemesisOp::CrashAmnesia { node: 1 });
    c.apply_nemesis(&NemesisOp::CorruptWalTail { node: 1 });
    c.apply_nemesis(&NemesisOp::Restart { node: 1 });

    assert!(
        !c.recoveries().iter().any(|(n, _)| *n == 1),
        "without truncation the torn WAL is unrecoverable — no staged recovery"
    );
    assert_eq!(c.cold_decided(1), None, "cold reads refuse the torn WAL too");
    // Fresh boot, not a halt: the blank node is re-taught by the leader
    // and the cluster still converges — durability degraded to safety.
    assert!(c.run_until_decided(3, 20_000_000), "blank reboot must not stall the cluster");
    let recovered: Vec<(u64, u64)> = c.decided(1).iter().map(|(s, p, _)| (*s, *p)).collect();
    assert_eq!(recovered, reference);
}

/// Crash-during-recovery: the node loses power again immediately after
/// its staged replay, before processing a single message, with the WAL
/// tail torn a second time in between. Staged recovery is idempotent —
/// the second pass must land in the same state as the first.
#[test]
fn double_fault_crash_again_mid_replay() {
    let mut c = raft_durable_net(3, 0xD0B1, pbc_store::StoreConfig::default());
    for p in 1..=3u64 {
        c.submit(p);
    }
    assert!(c.run_until_decided(3, 20_000_000));
    let reference: Vec<(u64, u64)> = c.decided(0).iter().map(|(s, p, _)| (*s, *p)).collect();

    c.apply_nemesis(&NemesisOp::CrashAmnesia { node: 2 });
    c.apply_nemesis(&NemesisOp::CorruptWalTail { node: 2 });
    c.apply_nemesis(&NemesisOp::Restart { node: 2 });
    // ...and the power fails again before the replica does anything.
    c.apply_nemesis(&NemesisOp::CrashAmnesia { node: 2 });
    c.apply_nemesis(&NemesisOp::CorruptWalTail { node: 2 });
    c.apply_nemesis(&NemesisOp::Restart { node: 2 });

    let recoveries: Vec<_> = c.recoveries().iter().filter(|(n, _)| *n == 2).collect();
    assert_eq!(recoveries.len(), 2, "both restarts staged a recovery");

    assert!(c.run_until_decided(3, 20_000_000), "double-fault convergence");
    let recovered: Vec<(u64, u64)> = c.decided(2).iter().map(|(s, p, _)| (*s, *p)).collect();
    assert_eq!(recovered, reference, "no rewrite through two crash/recover cycles");
    c.persist();
    let cold = c.cold_decided(2).expect("cold read after double fault");
    assert_eq!(cold, reference);
}

/// A seeded storm of every disk fault — failed fsyncs, bit rot on cold
/// segments, torn WAL tails — interleaved with total crashes, across
/// multiple seeds. Safety must hold throughout and the cold ledger must
/// never contradict the decided history.
#[test]
fn disk_fault_storm_never_rewrites_history() {
    for seed in SEEDS {
        let mut c = raft_durable_net(3, seed, pbc_store::StoreConfig::default());
        for p in 1..=3u64 {
            c.submit(p);
        }
        assert!(c.run_until_decided(3, 20_000_000), "seed {seed}: pre-storm decisions");
        let reference: Vec<(u64, u64)> = c.decided(0).iter().map(|(s, p, _)| (*s, *p)).collect();
        c.persist();

        let storm = [
            NemesisOp::FailSyncs { node: 1, count: 4 },
            NemesisOp::BitRot { node: 2 },
            NemesisOp::CrashAmnesia { node: 1 },
            NemesisOp::CorruptWalTail { node: 1 },
            NemesisOp::Restart { node: 1 },
            NemesisOp::BitRot { node: 1 },
            NemesisOp::CrashAmnesia { node: 2 },
            NemesisOp::Restart { node: 2 },
        ];
        let mut checker = InvariantChecker::new(3);
        let views = |c: &DurableNet<RaftNode<u64>>| -> Vec<Vec<(u64, u64)>> {
            (0..3)
                .map(|i| c.decided(i).iter().map(|(s, p, _)| (*s, p.digest_u64())).collect())
                .collect()
        };
        checker.observe(&views(&c)).expect("pre-storm safety");
        for op in &storm {
            c.apply_nemesis(op);
            checker
                .observe(&views(&c))
                .unwrap_or_else(|v| panic!("seed {seed}: disk storm violated safety: {v}"));
        }
        c.submit(4);
        assert!(c.run_until_decided(4, 30_000_000), "seed {seed}: post-storm liveness");
        checker.observe(&views(&c)).expect("post-storm safety");

        // Cold audit: whatever survived the storm on disk must be a
        // subset of the decided history, never a contradiction.
        c.persist();
        let hot: std::collections::HashMap<u64, u64> = c
            .decided(0)
            .iter()
            .map(|(s, p, _)| (*s, *p))
            .chain(reference.iter().cloned())
            .collect();
        for node in 0..3 {
            if let Some(cold) = c.cold_decided(node) {
                for (seq, payload) in cold {
                    assert_eq!(
                        hot.get(&seq),
                        Some(&payload),
                        "seed {seed}: node {node} disk holds a block the cluster never decided"
                    );
                }
            }
        }
    }
}

/// The shrinker against `VolatileRaft` *with a healthy disk attached*:
/// the store faithfully persists the empty state the broken protocol
/// hands it, so the amnesia violation still reproduces, and ddmin must
/// strip all the disk-fault noise (which is harmless to a node that
/// persists nothing) down to the same crash-a-majority kernel.
#[test]
fn shrinker_strips_disk_noise_from_volatile_raft_on_disk() {
    fn violation(seed: u64, ops: &[NemesisOp]) -> Option<Violation> {
        let cfg = RaftConfig::new(3);
        let actors: Vec<VolatileRaft<u64>> =
            (0..3).map(|i| VolatileRaft::new(cfg.clone(), i)).collect();
        let mut c = DurableNet::new(
            actors,
            NetworkConfig { seed, ..Default::default() },
            fault_stores(3, seed),
        );
        let views = |c: &DurableNet<VolatileRaft<u64>>| -> Vec<Vec<(u64, u64)>> {
            (0..3)
                .map(|i| c.decided(i).iter().map(|(s, p, _)| (*s, p.digest_u64())).collect())
                .collect()
        };
        while c.now() < 300_000 && c.step() {}
        c.submit(1);
        if !c.run_until_decided(1, 5_000_000) {
            return None;
        }
        let mut checker = InvariantChecker::new(3);
        if let Err(v) = checker.observe(&views(&c)) {
            return Some(v);
        }
        for op in ops {
            c.apply_nemesis(op);
            if let Err(v) = checker.observe(&views(&c)) {
                return Some(v);
            }
        }
        c.submit(2);
        for _ in 0..8 {
            let deadline = c.now() + 500_000;
            while c.now() < deadline && c.step() {}
            if let Err(v) = checker.observe(&views(&c)) {
                return Some(v);
            }
        }
        None
    }

    // The amnesia kernel buried in disk-fault noise.
    let kernel = [
        NemesisOp::CrashAmnesia { node: 0 },
        NemesisOp::CrashAmnesia { node: 1 },
        NemesisOp::Restart { node: 0 },
        NemesisOp::Restart { node: 1 },
    ];
    let noise = [
        NemesisOp::FailSyncs { node: 2, count: 3 },
        NemesisOp::BitRot { node: 2 },
        NemesisOp::CorruptWalTail { node: 0 },
        NemesisOp::BitRot { node: 0 },
        NemesisOp::FailSyncs { node: 1, count: 2 },
        NemesisOp::BitRot { node: 1 },
    ];
    let mut padded = Vec::new();
    let mut noise_iter = noise.iter().cloned();
    for k in kernel {
        padded.extend(noise_iter.by_ref().take(1));
        padded.push(k);
    }
    padded.extend(noise_iter);
    assert_eq!(padded.len(), 10);

    // The violation needs the initial leader inside the amnesiac
    // majority {0, 1}; pick the first seed where the padded schedule
    // reproduces (deterministic given the code).
    let seed = (1..32u64)
        .find(|&s| violation(s, &padded).is_some())
        .expect("some seed must elect the initial leader inside {0, 1}");

    let out = pbc_audit::shrink_schedule(&padded, |s| violation(seed, s))
        .expect("padded schedule violates at the chosen seed");
    assert!(
        !out.minimized.iter().any(|op| matches!(
            op,
            NemesisOp::FailSyncs { .. }
                | NemesisOp::CorruptWalTail { .. }
                | NemesisOp::BitRot { .. }
        )),
        "disk faults are noise to a node that persists nothing; ddmin must strip them: {:?}",
        out.minimized
    );
    let amnesia_crashes =
        out.minimized.iter().filter(|op| matches!(op, NemesisOp::CrashAmnesia { .. })).count();
    assert_eq!(amnesia_crashes, 2, "the kernel is still losing a majority's memory");
    assert!(out.minimized.len() <= 4, "kernel is at most the 4-op amnesia sequence");
}

// ---------------------------------------------------------------------
// Byzantine adversary wrapper over an unmodified protocol.
// ---------------------------------------------------------------------

#[test]
fn pbft_equivocating_adversary_cannot_split_honest_replicas() {
    // Node 0 (primary of view 0) is wrapped in the generic Adversary
    // with the Equivocate attack: its PrePrepare for payload 7 reaches
    // half the cluster forked to payload 8 (via Payload::forked). The
    // protocol code is completely unchanged.
    let cfg = PbftConfig::new(4);
    let actors: Vec<Adversary<PbftReplica<u64>>> = (0..4)
        .map(|i| {
            let replica = PbftReplica::new(cfg.clone());
            if i == 0 {
                Adversary::new(replica, vec![Attack::Equivocate])
            } else {
                Adversary::honest(replica)
            }
        })
        .collect();
    let mut net = Network::new(actors, NetworkConfig { seed: 15, ..Default::default() });
    for i in 0..4 {
        net.inject(0, i, PbftMsg::Request(7), 1);
    }
    net.run_to_quiescence(10_000_000);
    // Neither fork gathers a 2f+1 quorum; the view change elects an
    // honest primary which re-proposes the real request. All honest
    // replicas decide the same single log containing 7 and no fork.
    let mut logs = Vec::new();
    for i in 1..4 {
        let log: Vec<u64> =
            net.actor(i).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert!(!log.contains(&8), "node {i} decided the forked payload: {log:?}");
        assert!(log.contains(&7), "node {i} must decide the honest request: {log:?}");
        logs.push(log);
    }
    assert_eq!(logs[0], logs[1]);
    assert_eq!(logs[1], logs[2]);
    assert!(net.actor(1).inner().view() >= 1, "equivocation must force a view change");
}

#[test]
fn pbft_mute_leader_adversary_recovers_via_view_change() {
    // A mute primary (receives but never sends) is indistinguishable
    // from a slow one; the progress timer must route around it.
    let cfg = PbftConfig::new(4);
    let actors: Vec<Adversary<PbftReplica<u64>>> = (0..4)
        .map(|i| {
            let replica = PbftReplica::new(cfg.clone());
            if i == 0 {
                Adversary::new(replica, vec![Attack::Mute])
            } else {
                Adversary::honest(replica)
            }
        })
        .collect();
    let mut net = Network::new(actors, NetworkConfig { seed: 16, ..Default::default() });
    for i in 0..4 {
        net.inject(0, i, PbftMsg::Request(9), 1);
    }
    net.run_to_quiescence(10_000_000);
    for i in 1..4 {
        let log: Vec<u64> =
            net.actor(i).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, vec![9], "node {i} must decide despite the mute primary");
        assert!(net.actor(i).inner().view() >= 1, "node {i} must have changed view");
    }
}

#[test]
fn raft_delaying_adversary_only_slows_the_cluster() {
    // A Delay adversary on one follower is just asymmetric latency:
    // safety and liveness must hold, merely later.
    let cfg = RaftConfig::new(3);
    let actors: Vec<Adversary<RaftNode<u64>>> = (0..3)
        .map(|i| {
            let node = RaftNode::new(cfg.clone(), i);
            if i == 2 {
                Adversary::new(node, vec![Attack::Delay(5_000)])
            } else {
                Adversary::honest(node)
            }
        })
        .collect();
    let mut net = Network::new(actors, NetworkConfig { seed: 17, ..Default::default() });
    net.start();
    net.run_until(400_000);
    for p in 1..=3u64 {
        for i in 0..3 {
            net.inject(0, i, RaftMsg::Request(p), 1);
        }
    }
    let ok = net.run_until_all(10_000_000, |a| a.inner().log.len() >= 3);
    assert!(ok, "delayed follower must not block commitment");
    let reference: Vec<u64> =
        net.actor(0).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
    for i in 1..3 {
        let log: Vec<u64> =
            net.actor(i).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i}");
    }
}

#[test]
fn minbft_replay_adversary_is_harmless() {
    // The USIG freshness check was built exactly for this: a backup
    // that replays old attested prepares and commits changes nothing.
    let cfg = MinBftConfig::new(3);
    let actors: Vec<Adversary<MinBftReplica<u64>>> = (0..3)
        .map(|i| {
            let replica = MinBftReplica::new(cfg.clone(), i);
            if i == 2 {
                Adversary::new(replica, vec![Attack::Replay])
            } else {
                Adversary::honest(replica)
            }
        })
        .collect();
    let mut net = Network::new(actors, NetworkConfig { seed: 18, ..Default::default() });
    for p in 1..=5u64 {
        for i in 0..3 {
            net.inject(0, i, MinBftMsg::Request(p), 1);
        }
    }
    net.run_to_quiescence(5_000_000);
    let reference: Vec<u64> =
        net.actor(0).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
    assert_eq!(reference.len(), 5, "all requests decide despite replays");
    for i in 1..3 {
        let log: Vec<u64> =
            net.actor(i).inner().log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, reference, "node {i}");
    }
}

#[test]
fn shrinker_reduces_amnesia_schedule_to_minimal_kernel() {
    // The full loop the auditor crate exists for: a seeded chaos
    // schedule that violates VolatileRaft safety is delta-debugged down
    // to a 1-minimal kernel, and the kernel ships as a self-contained
    // replay artifact next to the post-mortem dumps.
    use pbc_audit::harness::{
        padded_amnesia_schedule, volatile_raft_violation, NODES, PINNED_SEED,
    };

    let padded = padded_amnesia_schedule(7);
    assert!(padded.len() >= 10, "regression input must bury the kernel in noise");
    let out = pbc_audit::shrink_schedule(&padded, |s| volatile_raft_violation(PINNED_SEED, s))
        .expect("padded amnesia schedule must violate safety");

    assert!(
        out.minimized.len() <= 10,
        "shrinker left {} ops, expected a kernel of at most 10",
        out.minimized.len()
    );
    let amnesia_crashes = out
        .minimized
        .iter()
        .filter(|op| matches!(op, pbc_sim::NemesisOp::CrashAmnesia { .. }))
        .count();
    assert_eq!(amnesia_crashes, 2, "the kernel is losing a majority's memory");

    // 1-minimality: dropping any single remaining op kills the repro.
    for i in 0..out.minimized.len() {
        let mut fewer = out.minimized.clone();
        fewer.remove(i);
        assert!(
            volatile_raft_violation(PINNED_SEED, &fewer).is_none(),
            "op {i} of the minimized schedule is redundant"
        );
    }

    // Replay the kernel once more under tracing and write the artifact.
    pbc_trace::install(pbc_trace::TraceSink::new(POSTMORTEM_WINDOW));
    let v = volatile_raft_violation(PINNED_SEED, &out.minimized)
        .expect("minimized schedule must still reproduce the violation");
    let report = violation_report(&v, POSTMORTEM_WINDOW);
    pbc_trace::uninstall();
    let artifact =
        pbc_audit::ReplayArtifact::from_shrink("volatile-raft-amnesia", PINNED_SEED, NODES, &out)
            .with_postmortem(report);
    let path = artifact.write_to(&postmortem_dir()).expect("write replay artifact");
    let text = std::fs::read_to_string(&path).expect("read artifact back");
    assert!(text.contains("crash-amnesia"), "artifact lists the kernel ops");
    assert!(text.contains("post-mortem"), "artifact embeds the trace window");
}
