//! Quickstart — the permissioned blockchain of the paper's Figure 1.
//!
//! Five known, identified nodes run PBFT over a simulated LAN; every node
//! maintains its own replica of the hash-chained blockchain ledger. We
//! submit a payment workload, watch consensus order it into blocks, and
//! verify that all five replicas end up bit-identical.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pbc_core::{ArchKind, ConsensusKind, NetworkBuilder};
use pbc_workload::PaymentWorkload;

fn main() {
    println!("=== Figure 1: a five-node permissioned blockchain ===\n");

    // A payment workload over 256 accounts, mild contention.
    let workload = PaymentWorkload { accounts: 256, theta: 0.5, ..Default::default() };

    let mut chain = NetworkBuilder::new(5)
        .consensus(ConsensusKind::Pbft)
        .architecture(ArchKind::Oxii)
        .initial_state(workload.initial_state())
        .batch_size(16)
        .seed(2021)
        .build();

    println!("submitting 64 transfer transactions to all 5 nodes ...");
    chain.submit_all(workload.generate(0, 64));
    let report = chain.run_to_completion();

    println!("consensus protocol : PBFT (n = 5, f = 1, quorum = 3)");
    println!("architecture       : OXII (order, dependency graph, parallel execute)");
    println!("blocks decided     : {}", report.batches);
    println!("txs committed      : {}", report.committed);
    println!("txs aborted        : {}", report.aborted);
    println!("simulated time     : {} ticks", report.sim_time);
    println!("consensus messages : {}", report.msgs_sent);
    println!("mean decide latency: {:.0} ticks/block\n", report.mean_decide_latency);

    println!("per-node replicas (the chained ledger of Figure 1):");
    for node in 0..5 {
        let ledger = chain.node_ledger(node);
        let state = chain.node_state(node);
        println!(
            "  node {node}: height={} head={} state={}",
            ledger.height(),
            &ledger.head_hash().to_hex()[..16],
            &state.state_digest().to_hex()[..16],
        );
        ledger.verify().expect("every replica's chain verifies");
    }

    assert!(chain.replicas_identical());
    println!("\nall replicas identical ✓  (every block carries the hash of its predecessor)");

    // Show the chaining explicitly on node 0.
    println!("\nblock chain on node 0:");
    for block in chain.node_ledger(0).blocks() {
        println!(
            "  height {:>2}  prev={}  txs={:>2}  hash={}",
            block.header.height.0,
            &block.header.prev.to_hex()[..12],
            block.txs.len(),
            &block.hash().to_hex()[..12],
        );
    }
}
