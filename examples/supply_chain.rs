//! Supply-chain management (§2.1.1) under the three confidentiality
//! techniques of §2.3.1: Caper views, Fabric channels, and private data
//! collections.
//!
//! Four enterprises — supplier, manufacturer, carrier, retailer —
//! collaborate under SLAs. Internal process steps must stay confidential;
//! cross-enterprise handoffs must be visible to the involved parties.
//!
//! ```text
//! cargo run --example supply_chain
//! ```

use pbc_confidential::{CaperNetwork, ChannelNetwork, CostModel, PdcChannel};
use pbc_types::tx::balance_value;
use pbc_types::{ChannelId, ClientId, EnterpriseId, Op, Transaction, TxId, TxScope};
use pbc_workload::SupplyChainWorkload;

const NAMES: [&str; 4] = ["supplier", "manufacturer", "carrier", "retailer"];

fn main() {
    println!("=== Supply chain management across 4 enterprises ===\n");
    let workload =
        SupplyChainWorkload { enterprises: 4, internal_fraction: 0.85, ..Default::default() };
    let txs = workload.generate(0, 400);
    let internal = txs.iter().filter(|t| t.scope.is_internal()).count();
    println!(
        "workload: {} transactions ({} internal, {} cross-enterprise)\n",
        txs.len(),
        internal,
        txs.len() - internal
    );

    caper_demo(&txs);
    channels_demo();
    pdc_demo();
}

/// Caper: each enterprise keeps its own view of the global DAG.
fn caper_demo(txs: &[Transaction]) {
    println!("--- Caper (view-based, enterprise-granular) ---");
    let mut net = CaperNetwork::new(4);
    let (mut ok, mut rejected) = (0, 0);
    for tx in txs {
        let result = match &tx.scope {
            TxScope::Internal(_) => net.submit_internal(tx.clone()),
            TxScope::CrossEnterprise(_) => net.submit_cross(tx.clone()),
            TxScope::Global => continue,
        };
        match result {
            Ok(()) => ok += 1,
            Err(_) => rejected += 1,
        }
    }
    assert!(net.confidentiality_holds());
    assert!(net.views_consistent());
    println!("processed {ok} transactions ({rejected} rejected)");
    for (i, name) in NAMES.iter().enumerate() {
        let e = EnterpriseId(i as u32);
        let view = net.dag.local_view(e);
        println!(
            "  {name:>12}: view = {} own internal txs + {} cross txs (others' internals invisible)",
            view.internal_sequence().len(),
            view.cross_sequence().len(),
        );
    }
    let model = CostModel::default();
    println!(
        "coordination: {} local rounds, {} global rounds → {} simulated µs\n",
        net.counters.local_rounds,
        net.counters.global_rounds,
        model.time(&net.counters),
    );
}

/// Channels: the supplier↔manufacturer pair and the carrier↔retailer pair
/// each get a channel; a cross-channel handoff needs atomic commit.
fn channels_demo() {
    println!("--- Multi-channel Fabric (view-based, channel-granular) ---");
    let mut net = ChannelNetwork::new();
    let upstream = ChannelId(0);
    let downstream = ChannelId(1);
    net.create_channel(upstream, vec![EnterpriseId(0), EnterpriseId(1)]).unwrap();
    net.create_channel(downstream, vec![EnterpriseId(2), EnterpriseId(3)]).unwrap();

    // Upstream channel tracks raw material lots.
    net.seed(upstream, "lot-42/units", balance_value(500)).unwrap();
    net.submit(
        upstream,
        vec![Transaction::new(
            TxId(1),
            ClientId(0),
            vec![Op::Incr { key: "lot-42/inspections".into(), delta: 1 }],
        )],
    )
    .unwrap();

    // The retailer (e3) cannot read the upstream channel at all.
    let denied = net.read(EnterpriseId(3), upstream, "lot-42/units");
    println!("retailer reading upstream channel: {denied:?}");
    assert!(denied.is_err());

    // A shipment handoff moves units across channels atomically.
    net.seed(downstream, "warehouse/units", balance_value(0)).unwrap();
    net.transfer_across(upstream, downstream, "lot-42/units", "warehouse/units", 200).unwrap();
    println!(
        "after cross-channel handoff: upstream lot = {:?} units, downstream warehouse = {:?} units",
        pbc_types::tx::balance_of(net.channel(upstream).unwrap().state().get("lot-42/units")),
        pbc_types::tx::balance_of(net.channel(downstream).unwrap().state().get("warehouse/units")),
    );
    println!(
        "coordination: {} channel rounds + {} atomic commits\n",
        net.counters.channel_rounds, net.counters.atomic_commits
    );
}

/// PDC: supplier and manufacturer negotiate a confidential price on a
/// shared channel; the carrier sees only the hash evidence.
fn pdc_demo() {
    println!("--- Private data collections (cryptographic) ---");
    let mut ch = PdcChannel::new();
    ch.define_collection("pricing", vec![EnterpriseId(0), EnterpriseId(1)]).unwrap();

    let writes = vec![
        ("contract-7/price".to_string(), balance_value(1_250)),
        ("contract-7/volume".to_string(), balance_value(10_000)),
    ];
    let (evidence_idx, salts) = ch.submit_private("pricing", writes.clone()).unwrap();

    println!(
        "supplier reads private price: {:?}",
        pbc_types::tx::balance_of(
            ch.read_private(EnterpriseId(0), "pricing", "contract-7/price").unwrap()
        )
    );
    let carrier_view = ch.read_private(EnterpriseId(2), "pricing", "contract-7/price");
    println!("carrier reads private price: {carrier_view:?}");
    assert!(carrier_view.is_err());

    println!(
        "on-ledger evidence: root={} ({} writes, data not on ledger)",
        &ch.evidence[evidence_idx].root.to_hex()[..16],
        ch.evidence[evidence_idx].writes,
    );

    // Later, the supplier discloses the price to an auditor, who verifies
    // it against the channel ledger without trusting anyone.
    let disclosure = ch.disclose(evidence_idx, &writes, &salts, 0).unwrap();
    assert!(ch.verify_disclosure(evidence_idx, &disclosure));
    println!(
        "auditor verified disclosure of {} = {} against the ledger ✓",
        disclosure.key,
        pbc_types::tx::balance_of(Some(&disclosure.value)),
    );
}
