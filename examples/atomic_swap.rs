//! Atomic cross-chain swap (§2.3.1's disjoint-blockchain option).
//!
//! Two enterprises keep completely separate blockchains and still trade
//! atomically using hash time-locked contracts — and we count why the
//! paper calls this route "costly [and] complex" compared to a shared
//! permissioned ledger.
//!
//! ```text
//! cargo run --example atomic_swap
//! ```

use pbc_confidential::{CaperNetwork, HtlcChain, SwapSecret};
use pbc_types::tx::balance_value;
use pbc_types::{ClientId, EnterpriseId, Op, Transaction, TxId, TxScope};

fn main() {
    println!("=== Atomic swap across two disjoint enterprise chains ===\n");

    // Chain A belongs to a parts supplier (tracks credits),
    // chain B to a logistics firm (tracks shipping vouchers).
    let mut chain_a = HtlcChain::new();
    chain_a.seed("supplier", 1_000);
    chain_a.seed("logistics", 0);
    let mut chain_b = HtlcChain::new();
    chain_b.seed("logistics", 80);
    chain_b.seed("supplier", 0);

    // The supplier wants 80 vouchers for 300 credits.
    let secret = SwapSecret::from_seed(2021);
    const T: u64 = 1_000;

    println!("1. supplier locks 300 credits on chain A (hashlock H, timelock 2T)");
    let id_a = chain_a.lock("supplier", "logistics", 300, secret.hashlock, 2 * T).unwrap();

    println!("2. logistics reads H off chain A, locks 80 vouchers on chain B (timelock T)");
    let h = chain_a.contract(id_a).unwrap().hashlock;
    let id_b = chain_b.lock("logistics", "supplier", 80, h, T).unwrap();

    println!("3. supplier claims the vouchers on chain B, revealing the preimage");
    chain_b.advance_time(T / 2);
    chain_b.claim(id_b, secret.preimage).unwrap();

    println!("4. logistics reads the preimage off chain B and claims the credits on A\n");
    let revealed = chain_b.contract(id_b).unwrap().revealed.unwrap();
    chain_a.advance_time(T);
    chain_a.claim(id_a, revealed).unwrap();

    println!("final balances:");
    println!(
        "  chain A: supplier={} credits, logistics={} credits",
        chain_a.balance("supplier"),
        chain_a.balance("logistics")
    );
    println!(
        "  chain B: logistics={} vouchers, supplier={} vouchers",
        chain_b.balance("logistics"),
        chain_b.balance("supplier")
    );
    chain_a.ledger.verify().unwrap();
    chain_b.ledger.verify().unwrap();

    // The paper's cost remark, quantified against the single-ledger route.
    let swap_blocks = (chain_a.ledger.len() - 1) + (chain_b.ledger.len() - 1);
    let mut caper = CaperNetwork::new(2);
    caper.seed("pub/credits-supplier", balance_value(1_000));
    caper.seed("pub/credits-logistics", balance_value(0));
    caper
        .submit_cross(Transaction::with_scope(
            TxId(1),
            ClientId(0),
            TxScope::CrossEnterprise(vec![EnterpriseId(0), EnterpriseId(1)]),
            vec![Op::Transfer {
                from: "pub/credits-supplier".into(),
                to: "pub/credits-logistics".into(),
                amount: 300,
            }],
        ))
        .unwrap();

    println!("\ncost comparison (the paper: cross-chain techniques are 'often costly, complex'):");
    println!("  atomic swap         : {swap_blocks} blocks across 2 chains, 2 timelock periods of exposure");
    println!(
        "  Caper cross-enter tx: 1 global consensus round ({} global, {} local so far)",
        caper.counters.global_rounds, caper.counters.local_rounds
    );
}
