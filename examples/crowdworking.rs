//! Multi-platform crowdworking (§2.1.3) with both verifiability
//! techniques of §2.3.2.
//!
//! A driver works for two ride platforms. The FLSA caps the work week at
//! 40 hours *across platforms*; platforms don't trust each other and must
//! not learn each other's data. We enforce the cap two ways:
//!
//! 1. **Separ** (token-based): a trusted authority issues 40 anonymous
//!    blind tokens per worker per week; every claimed hour burns one.
//! 2. **ZK private payments** (Quorum-style): platforms settle worker
//!    earnings with shielded transfers that any node verifies without
//!    learning amounts.
//!
//! ```text
//! cargo run --example crowdworking
//! ```

use pbc_verify::zktransfer::{build_transfer, ZkLedger};
use pbc_verify::{SeparError, SeparSystem};
use pbc_workload::crowdwork::CrowdWorkload;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2021);
    separ_demo(&mut rng);
    zk_settlement_demo(&mut rng);
}

fn separ_demo(rng: &mut StdRng) {
    println!("=== Separ: enforcing the 40-hour week across platforms ===\n");
    let workload = CrowdWorkload {
        workers: 20,
        platforms: 2,
        limit: 40,
        violator_fraction: 0.3,
        ..Default::default()
    };
    let events = workload.generate();
    let true_violators = CrowdWorkload::violators(&events, workload.limit);
    println!(
        "{} contribution events from {} workers; {} workers try to exceed 40h",
        events.len(),
        workload.workers,
        true_violators.len()
    );

    let mut sys = SeparSystem::new(workload.limit as usize, &[0, 1], rng);
    let mut wallets: Vec<_> = (0..workload.workers).map(|_| sys.register_worker(rng)).collect();

    let mut accepted = 0u32;
    let mut blocked_workers = std::collections::BTreeSet::new();
    for e in &events {
        match sys.contribute(e.platform, &mut wallets[e.worker as usize], &e.task, e.hours) {
            Ok(()) => accepted += e.hours,
            Err(SeparError::InsufficientTokens { .. }) => {
                blocked_workers.insert(e.worker);
            }
            Err(err) => panic!("unexpected: {err}"),
        }
    }
    println!("hours accepted across both platforms: {accepted}");
    println!("workers stopped at the 40h limit   : {:?}", blocked_workers);
    sys.ledger.verify().expect("shared ledger verifies");
    println!(
        "shared ledger: {} blocks, {} redeemed hours (no worker identities recorded)",
        sys.ledger.len(),
        sys.total_redeemed_hours()
    );
    // Every true violator was stopped; nobody exceeded 40 redeemed hours.
    for w in &true_violators {
        assert!(blocked_workers.contains(w), "violator {w} must be blocked");
    }
    println!("all {} over-limit workers were stopped ✓\n", true_violators.len());
}

fn zk_settlement_demo(rng: &mut StdRng) {
    println!("=== ZK settlement: private payouts any node can verify ===\n");
    let mut pool = ZkLedger::new();
    // The platform funds a shielded payout pool of 1000 credits.
    let pool_note = pool.mint(1_000, rng);
    println!("platform minted a shielded note of 1000 credits");

    // Pay a worker 125 credits; keep the change. Observers see two fresh
    // commitments and three proofs, not the amounts.
    let (transfer, outputs) =
        build_transfer(&[pool_note], &[125, 875], b"payout-week-27", rng).unwrap();
    println!(
        "transfer proofs: {} bytes (ownership + 2 range proofs + balance)",
        transfer.proof_size_bytes()
    );
    pool.apply(&transfer).expect("all four checks pass");
    println!("verifier checked: authorization ✓  double-spend ✓  conservation ✓  range ✓");

    // The worker can spend what they received.
    let worker_note = outputs[0].clone();
    let (onward, _) = build_transfer(&[worker_note], &[125], b"spend", rng).unwrap();
    pool.apply(&onward).unwrap();
    println!("worker spent the received note onward; pool now holds {} notes", pool.note_count());

    // A double spend is caught by the nullifier set.
    let replay = build_transfer(std::slice::from_ref(&outputs[1]), &[875], b"a", rng).unwrap().0;
    pool.apply(&replay).unwrap();
    let double = build_transfer(std::slice::from_ref(&outputs[1]), &[875], b"b", rng).unwrap().0;
    let err = pool.apply(&double).unwrap_err();
    println!("replaying a spent note: {err} ✓");
}
