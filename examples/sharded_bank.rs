//! A large-scale sharded database on untrusted infrastructure (§2.1.2),
//! comparing the four scalability techniques of §2.3.4 on one workload.
//!
//! ```text
//! cargo run --example sharded_bank
//! ```

use pbc_shard::{AhlSystem, ResilientDb, SaguaroSystem, SharperSystem};
use pbc_sim::Topology;
use pbc_types::tx::balance_value;
use pbc_workload::ShardedWorkload;

const INTRA_ROUND: u64 = 300;
const LAN: u64 = 100;
const WAN: u64 = 20_000;

fn main() {
    println!("=== Sharded bank: 4 clusters, 10% cross-shard transfers ===\n");
    let workload = ShardedWorkload {
        shards: 4,
        accounts_per_shard: 64,
        cross_fraction: 0.10,
        ..Default::default()
    };
    let txs = workload.generate(0, 400);

    // --- SharPer: flattened cross-shard consensus ---
    let topo = Topology::flat_clusters(4, 4, LAN, WAN);
    let mut sharper = SharperSystem::new(4, topo, INTRA_ROUND);
    for key in workload.all_keys() {
        sharper.seed(&key, balance_value(10_000));
    }
    sharper.process_batch(&txs);
    print_row("SharPer (flattened)", &sharper.stats);

    // --- AHL: reference-committee 2PC ---
    let topo = Topology::flat_clusters(5, 4, LAN, WAN); // +1 for the committee
    let mut ahl = AhlSystem::new(4, topo, INTRA_ROUND);
    for key in workload.all_keys() {
        ahl.seed(&key, balance_value(10_000));
    }
    ahl.process_batch(&txs);
    print_row("AHL (coordinator)", &ahl.stats);

    // --- Saguaro: hierarchical coordination (2 regions × 2 edges) ---
    let topo = Topology::hierarchical(&[2, 2], 4, &[LAN, 2_000, WAN]);
    let mut saguaro = SaguaroSystem::new(topo, INTRA_ROUND);
    for key in workload.all_keys() {
        saguaro.seed(&key, balance_value(10_000));
    }
    saguaro.process_batch(&txs);
    print_row("Saguaro (LCA)", &saguaro.stats);

    // --- ResilientDB: single ledger, everyone executes everything ---
    let topo = Topology::flat_clusters(4, 4, LAN, WAN);
    let mut rdb = ResilientDb::new(topo, INTRA_ROUND);
    for key in workload.all_keys() {
        rdb.seed(&key, balance_value(10_000));
    }
    // Feed the workload round by round, one batch per cluster.
    for chunk in txs.chunks(40) {
        let mut batches: Vec<Vec<pbc_types::Transaction>> = vec![Vec::new(); 4];
        for (i, tx) in chunk.iter().enumerate() {
            batches[i % 4].push(tx.clone());
        }
        rdb.process_round(batches);
    }
    assert!(rdb.replicas_consistent());
    print_row("ResilientDB (single ledger)", &rdb.stats);

    println!("\nreading the table:");
    println!("  - SharPer needs the fewest coordination phases and parallelizes");
    println!("    non-overlapping cross-shard transfers;");
    println!("  - AHL pays 2PC through a WAN-distant reference committee;");
    println!("  - Saguaro coordinates through the regional LCA instead of the WAN;");
    println!("  - ResilientDB avoids cross-shard coordination entirely but every");
    println!("    cluster re-executes every transaction (no execution scaling).");
}

fn print_row(name: &str, stats: &pbc_shard::ShardStats) {
    println!(
        "{name:<28} committed={:>4} (intra {:>3} / cross {:>3})  aborted={:>2}  phases={:>4}  elapsed={:>9} µs",
        stats.intra_committed + stats.cross_committed,
        stats.intra_committed,
        stats.cross_committed,
        stats.aborted,
        stats.coordination_phases,
        stats.elapsed,
    );
}
