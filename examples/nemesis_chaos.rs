//! Nemesis chaos demo — reproduce a full fault timeline from one seed.
//!
//! Expands a seed into a deterministic chaos schedule (partitions,
//! crashes with and without memory loss, link degradations), drives a
//! 4-node PBFT cluster through it with safety invariants checked after
//! every step, and prints the timeline plus the final verdict. The same
//! seed always produces the same timeline and the same event order, so
//! any violation printed here is a one-line reproduction recipe.
//!
//! ```text
//! cargo run --example nemesis_chaos            # default seed
//! cargo run --example nemesis_chaos -- 1234    # your seed
//! ```

use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_sim::{InvariantChecker, Nemesis, NemesisConfig, Network, NetworkConfig};

fn main() {
    let seed: u64 =
        std::env::args().nth(1).map(|s| s.parse().expect("seed must be a u64")).unwrap_or(42);

    let n = 4;
    println!("=== Nemesis chaos: {n}-node PBFT, seed {seed} ===\n");

    let cfg = PbftConfig::new(n);
    let actors: Vec<PbftReplica<u64>> = (0..n).map(|_| PbftReplica::new(cfg.clone())).collect();
    let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });

    // Warm-up: decide a few requests on a healthy cluster.
    for p in 1..=5u64 {
        for i in 0..n {
            net.inject(0, i, PbftMsg::Request(p), 1);
        }
    }
    net.run_until(600_000);

    let views = |net: &Network<PbftReplica<u64>>| -> Vec<Vec<(u64, u64)>> {
        (0..net.len())
            .map(|i| {
                net.actor(i)
                    .log
                    .delivered()
                    .iter()
                    .map(|(s, p, _)| (*s, pbc_consensus::Payload::digest_u64(p)))
                    .collect()
            })
            .collect()
    };
    let mut checker = InvariantChecker::new(n);
    checker.observe(&views(&net)).expect("healthy warm-up");
    println!("warm-up: {} slots decided on a healthy cluster", checker.total_decided());

    let ncfg = NemesisConfig::new(seed).with_steps(12).with_amnesia();
    let nemesis = Nemesis::generate(n, &ncfg);
    println!("\nschedule ({} ops, quorum guard: at most 1 node down):", nemesis.ops().len());
    for (i, op) in nemesis.ops().iter().enumerate() {
        println!("  {i:>2}: {op:?}");
    }

    println!("\ndriving, checking agreement + rewrite invariants after every op ...");
    match nemesis.drive_durable(&mut net, 400_000, &mut checker, views) {
        Ok(()) => println!("no safety violation during the schedule"),
        Err(v) => {
            println!("SAFETY VIOLATION: {v}");
            println!("reproduce with: cargo run --example nemesis_chaos -- {seed}");
            std::process::exit(1);
        }
    }

    // The schedule ends fully healed: the cluster must still be live.
    for p in 6..=8u64 {
        for i in 0..n {
            net.inject(0, i, PbftMsg::Request(p), 1);
        }
    }
    net.run_until(net.now() + 4_000_000);
    checker.observe(&views(&net)).expect("post-chaos safety");

    println!("\nafter the final heal: {} slots decided in total", checker.total_decided());
    checker.check_progress(6).expect("cluster must make progress once healed");
    println!("verdict: safety and liveness held through the whole timeline ✓");
    println!("replay me: cargo run --example nemesis_chaos -- {seed}");
}
