//! Confidentiality techniques for permissioned blockchains (§2.3.1).
//!
//! The paper contrasts **view-based** and **cryptographic** approaches to
//! keeping enterprise data confidential while supporting cross-enterprise
//! collaboration. All three surveyed systems are implemented:
//!
//! * [`caper`] — **Caper**: each enterprise keeps a private view of a
//!   global DAG ledger; internal transactions are ordered and executed
//!   locally, cross-enterprise transactions globally. View-based,
//!   enterprise-granular (both data *and* logic stay private).
//! * [`channels`] — **multi-channel Hyperledger Fabric**: each channel is
//!   an independent ledger + state shared by its member enterprises;
//!   channels are mutually invisible; cross-channel transactions need an
//!   atomic-commit coordination. View-based, channel-granular.
//! * [`pdc`] — **private data collections**: within one channel, a subset
//!   of enterprises keeps data in a private side database replicated only
//!   on authorized peers, while a **hash** of the data goes on the
//!   channel ledger as evidence for everyone. Cryptographic.
//!
//! [`crosschain`] additionally implements the *disjoint-blockchains*
//! alternative the section opens with: atomic cross-chain swaps via hash
//! time-locked contracts (Herlihy \[34\]) — and quantifies why the paper
//! calls that route "costly \[and\] complex".
//!
//! Every module enforces its confidentiality property structurally and
//! exposes coordination counters ([`cost::CostModel`]) that experiment E6
//! converts into simulated time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caper;
pub mod channels;
pub mod cost;
pub mod crosschain;
pub mod pdc;

pub use caper::{CaperNetwork, GlobalConsensusMode};
pub use channels::ChannelNetwork;
pub use cost::CostModel;
pub use crosschain::{HtlcChain, SwapSecret};
pub use pdc::PdcChannel;
