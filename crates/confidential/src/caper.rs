//! Caper (Amiri et al., VLDB'19) — view-based confidentiality over a DAG
//! ledger (§2.3.1).
//!
//! Each enterprise maintains **private data** (keys under `e<N>/…`) and
//! shares **public data** (keys under `pub/…`). Internal transactions are
//! ordered and executed by their enterprise alone — they may read public
//! data but only write private data — while cross-enterprise transactions
//! read/write public data and require global agreement. The global ledger
//! is the DAG of [`pbc_ledger::dag`]; no node stores it whole — each
//! enterprise materializes only its own view.
//!
//! Confidentiality is enforced structurally: scope validation rejects any
//! internal transaction touching another enterprise's keys, and the tests
//! assert that no enterprise's state or view ever contains another's
//! private data.

use crate::cost::CoordCounters;
use pbc_ledger::{execute_and_apply, DagLedger, StateStore, Version};
use pbc_types::{EnterpriseId, Key, Transaction, TxScope};
use std::collections::HashMap;

/// Why Caper rejected a transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CaperError {
    /// The transaction's scope names an unknown enterprise.
    UnknownEnterprise(EnterpriseId),
    /// An internal transaction touches a key outside its enterprise's
    /// private space or the public space (confidentiality violation).
    ScopeViolation {
        /// The offending key.
        key: Key,
        /// The submitting enterprise.
        enterprise: EnterpriseId,
    },
    /// A cross-enterprise transaction touches private keys.
    CrossTouchesPrivate {
        /// The offending key.
        key: Key,
    },
    /// The transaction failed during execution (e.g. insufficient funds).
    ExecutionFailed,
    /// Scope is `Global`, which Caper doesn't accept (everything is
    /// internal or cross-enterprise here).
    BadScope,
}

impl std::fmt::Display for CaperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaperError::UnknownEnterprise(e) => write!(f, "unknown enterprise {e}"),
            CaperError::ScopeViolation { key, enterprise } => {
                write!(f, "internal tx of {enterprise} touches foreign key {key}")
            }
            CaperError::CrossTouchesPrivate { key } => {
                write!(f, "cross-enterprise tx touches private key {key}")
            }
            CaperError::ExecutionFailed => write!(f, "execution failed"),
            CaperError::BadScope => write!(f, "caper transactions must be internal or cross"),
        }
    }
}

impl std::error::Error for CaperError {}

/// How Caper globally orders cross-enterprise transactions (§2.3.1:
/// "Caper introduces different consensus protocols to globally order
/// cross-enterprise transactions"; the three modes of the CAPER paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GlobalConsensusMode {
    /// A separate ordering service (a disjoint cluster of orderers)
    /// sequences cross-enterprise transactions: one ordering-cluster
    /// round plus a dissemination hop to every enterprise. Cheapest
    /// per transaction, but the orderers see all cross transactions and
    /// must be trusted for liveness.
    SeparateOrderers,
    /// Hierarchical consensus: each enterprise's nodes agree locally,
    /// then enterprise *leaders* run a one-per-enterprise agreement
    /// round. Two stacked rounds.
    Hierarchical,
    /// One-level (flattened) consensus among **all** nodes of all
    /// enterprises — no extra trust, highest message cost.
    OneLevel,
}

/// Returns the enterprise that privately owns `key`, if any.
/// Keys `e<N>/…` are private to enterprise `N`; `pub/…` is public.
pub fn key_owner(key: &str) -> Option<EnterpriseId> {
    let rest = key.strip_prefix('e')?;
    let (num, _) = rest.split_once('/')?;
    num.parse::<u32>().ok().map(EnterpriseId)
}

/// The private key prefix for an enterprise.
pub fn private_prefix(e: EnterpriseId) -> String {
    format!("e{}/", e.0)
}

/// One enterprise's node: its state (own private + public) and counters.
#[derive(Debug)]
pub struct EnterpriseNode {
    /// The owning enterprise.
    pub enterprise: EnterpriseId,
    /// Own private data plus the public data.
    pub state: StateStore,
    next_internal_seq: u64,
}

/// The whole Caper deployment (the test/audit harness holds it; each
/// [`EnterpriseNode`] is what a real node would run).
#[derive(Debug)]
pub struct CaperNetwork {
    nodes: HashMap<EnterpriseId, EnterpriseNode>,
    enterprises: Vec<EnterpriseId>,
    /// The global DAG (audit structure; views are derived from it).
    pub dag: DagLedger,
    /// Coordination accounting for E6.
    pub counters: CoordCounters,
    /// Active global-ordering mode for cross-enterprise transactions.
    pub global_mode: GlobalConsensusMode,
    next_global_seq: u64,
}

impl CaperNetwork {
    /// Creates a network of `n` enterprises.
    pub fn new(n: u32) -> Self {
        let enterprises: Vec<EnterpriseId> = (0..n).map(EnterpriseId).collect();
        let nodes = enterprises
            .iter()
            .map(|&e| {
                (
                    e,
                    EnterpriseNode {
                        enterprise: e,
                        state: StateStore::new(),
                        next_internal_seq: 1,
                    },
                )
            })
            .collect();
        CaperNetwork {
            nodes,
            enterprises: enterprises.clone(),
            dag: DagLedger::new(enterprises),
            counters: CoordCounters::default(),
            global_mode: GlobalConsensusMode::OneLevel,
            next_global_seq: 1,
        }
    }

    /// Selects the global-ordering mode (builder style).
    pub fn with_global_mode(mut self, mode: GlobalConsensusMode) -> Self {
        self.global_mode = mode;
        self
    }

    /// The participating enterprises.
    pub fn enterprises(&self) -> &[EnterpriseId] {
        &self.enterprises
    }

    /// Immutable view of an enterprise node.
    pub fn node(&self, e: EnterpriseId) -> Option<&EnterpriseNode> {
        self.nodes.get(&e)
    }

    /// Seeds a value directly (setup helper; bypasses consensus).
    pub fn seed(&mut self, key: &str, value: pbc_types::Value) {
        match key_owner(key) {
            Some(owner) => {
                if let Some(node) = self.nodes.get_mut(&owner) {
                    node.state.put(key.to_string(), value, Version::GENESIS);
                }
            }
            None => {
                for node in self.nodes.values_mut() {
                    node.state.put(key.to_string(), value.clone(), Version::GENESIS);
                }
            }
        }
    }

    fn check_internal_scope(e: EnterpriseId, tx: &Transaction) -> Result<(), CaperError> {
        let own = private_prefix(e);
        for key in tx.write_keys() {
            // Internal writes must stay in the enterprise's private space.
            if !key.starts_with(&own) {
                return Err(CaperError::ScopeViolation { key: key.to_string(), enterprise: e });
            }
        }
        for key in tx.read_keys() {
            // Reads may touch own private data or public data.
            let foreign = key_owner(key).is_some_and(|owner| owner != e);
            if foreign {
                return Err(CaperError::ScopeViolation { key: key.to_string(), enterprise: e });
            }
        }
        Ok(())
    }

    fn check_cross_scope(tx: &Transaction) -> Result<(), CaperError> {
        for key in tx.read_keys().iter().chain(tx.write_keys().iter()) {
            if key_owner(key).is_some() {
                return Err(CaperError::CrossTouchesPrivate { key: key.to_string() });
            }
        }
        Ok(())
    }

    /// Submits an internal transaction: ordered and executed by its
    /// enterprise alone (one *local* consensus round), appended to that
    /// enterprise's chain in the DAG.
    pub fn submit_internal(&mut self, tx: Transaction) -> Result<(), CaperError> {
        let TxScope::Internal(e) = tx.scope else {
            return Err(CaperError::BadScope);
        };
        if !self.nodes.contains_key(&e) {
            return Err(CaperError::UnknownEnterprise(e));
        }
        Self::check_internal_scope(e, &tx)?;
        self.counters.local_rounds += 1;
        let node = self.nodes.get_mut(&e).expect("checked above");
        let seq = node.next_internal_seq;
        node.next_internal_seq += 1;
        let r = execute_and_apply(&tx, &mut node.state, Version::new(seq, 0));
        if !r.is_success() {
            return Err(CaperError::ExecutionFailed);
        }
        self.dag.append_internal(e, tx);
        Ok(())
    }

    /// Submits a cross-enterprise transaction: globally ordered (one
    /// *global* consensus round) and executed by **every** enterprise on
    /// the public data.
    pub fn submit_cross(&mut self, tx: Transaction) -> Result<(), CaperError> {
        if !matches!(tx.scope, TxScope::CrossEnterprise(_)) {
            return Err(CaperError::BadScope);
        }
        Self::check_cross_scope(&tx)?;
        // Accounting depends on the global-ordering mode.
        match self.global_mode {
            GlobalConsensusMode::SeparateOrderers => {
                // One round inside the ordering cluster + dissemination.
                self.counters.channel_rounds += 1;
            }
            GlobalConsensusMode::Hierarchical => {
                // Local agreement inside every enterprise, then a round
                // among the enterprise leaders.
                self.counters.local_rounds += self.enterprises.len() as u64;
                self.counters.channel_rounds += 1;
            }
            GlobalConsensusMode::OneLevel => {
                self.counters.global_rounds += 1;
            }
        }
        let seq = self.next_global_seq;
        self.next_global_seq += 1;
        // Execute on one node first; if intrinsically invalid, nobody
        // applies it (deterministic execution: all nodes would agree).
        let probe = {
            let any = self.nodes.values().next().expect("non-empty network");
            pbc_ledger::execute(&tx, &any.state)
        };
        if !probe.is_success() {
            return Err(CaperError::ExecutionFailed);
        }
        for node in self.nodes.values_mut() {
            let r = execute_and_apply(&tx, &mut node.state, Version::new(1_000_000 + seq, 0));
            debug_assert!(r.is_success(), "deterministic execution must agree");
        }
        self.dag.append_cross(tx);
        Ok(())
    }

    /// Checks the system-wide confidentiality invariant: no enterprise
    /// state holds another enterprise's private keys.
    pub fn confidentiality_holds(&self) -> bool {
        self.nodes.values().all(|node| {
            node.state.iter().all(|(k, _, _)| match key_owner(k) {
                Some(owner) => owner == node.enterprise,
                None => true,
            })
        })
    }

    /// Checks the consistency invariant: every pair of enterprises agrees
    /// on (a) the cross-enterprise transaction sequence in their views and
    /// (b) the public portion of the state.
    pub fn views_consistent(&self) -> bool {
        let mut cross_seqs = Vec::new();
        let mut pub_digests = Vec::new();
        for &e in &self.enterprises {
            cross_seqs.push(self.dag.local_view(e).cross_sequence());
            let node = &self.nodes[&e];
            let mut pub_entries: Vec<(&Key, &pbc_types::Value)> = node
                .state
                .iter()
                .filter(|(k, _, _)| key_owner(k).is_none())
                .map(|(k, v, _)| (k, v))
                .collect();
            pub_entries.sort_by(|a, b| a.0.cmp(b.0));
            pub_digests.push(format!("{pub_entries:?}"));
        }
        cross_seqs.windows(2).all(|w| w[0] == w[1]) && pub_digests.windows(2).all(|w| w[0] == w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};

    fn internal(id: u64, e: u32, ops: Vec<Op>) -> Transaction {
        Transaction::with_scope(TxId(id), ClientId(0), TxScope::Internal(EnterpriseId(e)), ops)
    }

    fn cross(id: u64, ops: Vec<Op>) -> Transaction {
        Transaction::with_scope(
            TxId(id),
            ClientId(0),
            TxScope::CrossEnterprise(vec![EnterpriseId(0), EnterpriseId(1)]),
            ops,
        )
    }

    fn put(key: &str, v: u64) -> Op {
        Op::Put { key: key.into(), value: balance_value(v) }
    }

    #[test]
    fn key_owner_parsing() {
        assert_eq!(key_owner("e3/stock"), Some(EnterpriseId(3)));
        assert_eq!(key_owner("pub/orders"), None);
        assert_eq!(key_owner("e/bad"), None);
        assert_eq!(key_owner("exyz/bad"), None);
    }

    #[test]
    fn internal_tx_stays_private() {
        let mut net = CaperNetwork::new(3);
        net.submit_internal(internal(1, 0, vec![put("e0/recipe", 42)])).unwrap();
        assert!(net.node(EnterpriseId(0)).unwrap().state.get("e0/recipe").is_some());
        assert!(net.node(EnterpriseId(1)).unwrap().state.get("e0/recipe").is_none());
        assert!(net.confidentiality_holds());
        assert_eq!(net.counters.local_rounds, 1);
        assert_eq!(net.counters.global_rounds, 0);
    }

    #[test]
    fn cross_tx_visible_everywhere() {
        let mut net = CaperNetwork::new(3);
        net.submit_cross(cross(1, vec![put("pub/order", 7)])).unwrap();
        for e in 0..3 {
            assert_eq!(
                balance_of(net.node(EnterpriseId(e)).unwrap().state.get("pub/order")),
                7,
                "enterprise {e}"
            );
        }
        assert_eq!(net.counters.global_rounds, 1);
    }

    #[test]
    fn internal_writing_foreign_key_rejected() {
        let mut net = CaperNetwork::new(2);
        let err = net.submit_internal(internal(1, 0, vec![put("e1/secret", 1)])).unwrap_err();
        assert!(matches!(err, CaperError::ScopeViolation { .. }));
        assert!(net.confidentiality_holds());
    }

    #[test]
    fn internal_writing_public_rejected() {
        let mut net = CaperNetwork::new(2);
        let err = net.submit_internal(internal(1, 0, vec![put("pub/shared", 1)])).unwrap_err();
        assert!(matches!(err, CaperError::ScopeViolation { .. }));
    }

    #[test]
    fn internal_may_read_public() {
        let mut net = CaperNetwork::new(2);
        net.seed("pub/price", balance_value(10));
        net.submit_internal(internal(
            1,
            0,
            vec![Op::Get { key: "pub/price".into() }, put("e0/cache", 10)],
        ))
        .unwrap();
        assert!(net.confidentiality_holds());
    }

    #[test]
    fn cross_touching_private_rejected() {
        let mut net = CaperNetwork::new(2);
        let err = net.submit_cross(cross(1, vec![put("e0/secret", 1)])).unwrap_err();
        assert!(matches!(err, CaperError::CrossTouchesPrivate { .. }));
    }

    #[test]
    fn views_agree_on_cross_sequence_and_public_state() {
        let mut net = CaperNetwork::new(3);
        net.submit_internal(internal(1, 0, vec![put("e0/a", 1)])).unwrap();
        net.submit_cross(cross(2, vec![put("pub/x", 1)])).unwrap();
        net.submit_internal(internal(3, 1, vec![put("e1/b", 2)])).unwrap();
        net.submit_cross(cross(4, vec![put("pub/y", 2)])).unwrap();
        assert!(net.views_consistent());
        assert!(net.confidentiality_holds());
        assert!(net.dag.verify());
    }

    #[test]
    fn local_views_exclude_foreign_internals() {
        let mut net = CaperNetwork::new(2);
        net.submit_internal(internal(1, 0, vec![put("e0/a", 1)])).unwrap();
        net.submit_internal(internal(2, 1, vec![put("e1/b", 2)])).unwrap();
        let v0 = net.dag.local_view(EnterpriseId(0));
        assert_eq!(v0.internal_sequence().len(), 1);
        let v1 = net.dag.local_view(EnterpriseId(1));
        assert_eq!(v1.internal_sequence().len(), 1);
    }

    #[test]
    fn cross_transfer_on_public_balances() {
        let mut net = CaperNetwork::new(2);
        net.seed("pub/acct-a", balance_value(100));
        net.seed("pub/acct-b", balance_value(0));
        net.submit_cross(cross(
            1,
            vec![Op::Transfer { from: "pub/acct-a".into(), to: "pub/acct-b".into(), amount: 30 }],
        ))
        .unwrap();
        for e in 0..2 {
            let node = net.node(EnterpriseId(e)).unwrap();
            assert_eq!(balance_of(node.state.get("pub/acct-a")), 70);
            assert_eq!(balance_of(node.state.get("pub/acct-b")), 30);
        }
    }

    #[test]
    fn failed_execution_not_recorded() {
        let mut net = CaperNetwork::new(2);
        let err = net
            .submit_cross(cross(
                1,
                vec![Op::Transfer { from: "pub/ghost".into(), to: "pub/b".into(), amount: 5 }],
            ))
            .unwrap_err();
        assert_eq!(err, CaperError::ExecutionFailed);
        assert!(net.dag.is_empty());
    }

    #[test]
    fn global_scope_rejected() {
        let mut net = CaperNetwork::new(2);
        let tx = Transaction::new(TxId(1), ClientId(0), vec![put("pub/x", 1)]);
        assert_eq!(net.submit_internal(tx.clone()).unwrap_err(), CaperError::BadScope);
        assert_eq!(net.submit_cross(tx).unwrap_err(), CaperError::BadScope);
    }

    #[test]
    fn global_modes_change_cost_profile() {
        let run = |mode| {
            let mut net = CaperNetwork::new(4).with_global_mode(mode);
            for i in 0..10 {
                net.submit_cross(cross(i, vec![put(&format!("pub/k{i}"), 1)])).unwrap();
            }
            let model = crate::cost::CostModel::default();
            (net.counters.clone(), model.time(&net.counters))
        };
        let (sep_c, sep_t) = run(GlobalConsensusMode::SeparateOrderers);
        let (hier_c, hier_t) = run(GlobalConsensusMode::Hierarchical);
        let (one_c, one_t) = run(GlobalConsensusMode::OneLevel);
        // Separate orderers: cheapest; hierarchical in between; one-level
        // flattened pays a full global round per transaction.
        assert!(sep_t < hier_t, "{sep_t} < {hier_t}");
        assert!(hier_t < one_t, "{hier_t} < {one_t}");
        assert_eq!(sep_c.global_rounds, 0);
        assert_eq!(hier_c.local_rounds, 40, "4 enterprises × 10 txs agree locally");
        assert_eq!(one_c.global_rounds, 10);
    }

    #[test]
    fn modes_do_not_affect_outcomes() {
        // Whatever the ordering substrate, the same transactions produce
        // the same public state and views.
        let run = |mode| {
            let mut net = CaperNetwork::new(3).with_global_mode(mode);
            net.seed("pub/x", pbc_types::tx::balance_value(100));
            net.submit_cross(cross(1, vec![Op::Incr { key: "pub/x".into(), delta: 5 }])).unwrap();
            net.submit_internal(internal(2, 0, vec![put("e0/y", 1)])).unwrap();
            assert!(net.views_consistent());
            pbc_types::tx::balance_of(net.node(EnterpriseId(1)).unwrap().state.get("pub/x"))
        };
        assert_eq!(run(GlobalConsensusMode::SeparateOrderers), 105);
        assert_eq!(run(GlobalConsensusMode::Hierarchical), 105);
        assert_eq!(run(GlobalConsensusMode::OneLevel), 105);
    }
}
