//! Private data collections (PDC, §2.3.1) — cryptographic
//! confidentiality *within* a Fabric channel.
//!
//! A collection names the subset of a channel's enterprises allowed to
//! see certain data. Private writes go to a side database replicated only
//! on authorized peers; what lands on the shared channel ledger is a
//! **hash** of the private write set — evidence every channel member can
//! verify (and use to check read-write conflicts) without learning the
//! data. Disclosure works by revealing `(key, value, salt)` against the
//! on-ledger hash.

use crate::cost::CoordCounters;
use pbc_crypto::merkle::{verify_inclusion, MerkleProof, MerkleTree};
use pbc_crypto::Hash;
use pbc_ledger::{ChainLedger, StateStore, Version};
use pbc_types::encode::Encoder;
use pbc_types::{ClientId, EnterpriseId, Key, Op, Transaction, TxId, Value};
use std::collections::BTreeMap;

/// PDC errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PdcError {
    /// No such collection.
    UnknownCollection(String),
    /// The enterprise is not authorized for the collection.
    NotAuthorized {
        /// Requesting enterprise.
        enterprise: EnterpriseId,
        /// Target collection.
        collection: String,
    },
    /// A collection with this name already exists.
    DuplicateCollection(String),
}

impl std::fmt::Display for PdcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PdcError::UnknownCollection(c) => write!(f, "unknown collection {c}"),
            PdcError::NotAuthorized { enterprise, collection } => {
                write!(f, "{enterprise} not authorized for collection {collection}")
            }
            PdcError::DuplicateCollection(c) => write!(f, "collection {c} already exists"),
        }
    }
}

impl std::error::Error for PdcError {}

/// One private write, salted so the on-ledger hash doesn't leak
/// low-entropy values by dictionary attack.
fn leaf_bytes(key: &str, value: &Value, salt: u64) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.str(key).bytes(value).u64(salt);
    enc.finish()
}

/// The evidence recorded on the channel ledger for one private write set:
/// the Merkle root over its salted `(key, value)` leaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrivateEvidence {
    /// The collection written.
    pub collection: String,
    /// Merkle root over the write set.
    pub root: Hash,
    /// Number of writes (public knowledge).
    pub writes: usize,
}

/// A disclosure of one private write, checkable against the ledger.
#[derive(Clone, Debug)]
pub struct Disclosure {
    /// The written key.
    pub key: Key,
    /// The written value.
    pub value: Value,
    /// The salt used in the leaf.
    pub salt: u64,
    /// Merkle inclusion proof against the evidence root.
    pub proof: MerkleProof,
}

struct Collection {
    members: Vec<EnterpriseId>,
    /// Private side database per authorized member.
    replicas: BTreeMap<EnterpriseId, StateStore>,
    next_version: u64,
}

/// A channel with private data collections.
pub struct PdcChannel {
    /// The shared channel ledger: holds public txs and private evidence.
    pub ledger: ChainLedger,
    /// The shared public state.
    pub public_state: StateStore,
    collections: BTreeMap<String, Collection>,
    /// Evidence recorded so far, in ledger order.
    pub evidence: Vec<PrivateEvidence>,
    /// Coordination accounting for E6.
    pub counters: CoordCounters,
    salt_seq: u64,
}

impl Default for PdcChannel {
    fn default() -> Self {
        Self::new()
    }
}

impl PdcChannel {
    /// A fresh channel with no collections.
    pub fn new() -> Self {
        PdcChannel {
            ledger: ChainLedger::new(),
            public_state: StateStore::new(),
            collections: BTreeMap::new(),
            evidence: Vec::new(),
            counters: CoordCounters::default(),
            salt_seq: 0,
        }
    }

    /// Defines a collection over a subset of the channel's enterprises.
    pub fn define_collection(
        &mut self,
        name: &str,
        members: Vec<EnterpriseId>,
    ) -> Result<(), PdcError> {
        if self.collections.contains_key(name) {
            return Err(PdcError::DuplicateCollection(name.to_string()));
        }
        let replicas = members.iter().map(|&m| (m, StateStore::new())).collect();
        self.collections
            .insert(name.to_string(), Collection { members, replicas, next_version: 1 });
        Ok(())
    }

    /// Submits a *public* transaction: ordinary channel processing.
    pub fn submit_public(&mut self, tx: Transaction) {
        self.counters.channel_rounds += 1;
        let height = self.ledger.height().next();
        let mut state_version = 0u32;
        let block = pbc_types::Block::build(
            height,
            self.ledger.head_hash(),
            pbc_types::NodeId(0),
            height.0,
            vec![tx.clone()],
        );
        self.ledger.append(block).expect("sequential build");
        let r = pbc_ledger::execute(&tx, &self.public_state);
        if r.is_success() {
            for (k, v) in &r.write_set {
                let ver = Version::new(height.0, state_version);
                match v {
                    Some(v) => self.public_state.put(k.clone(), v.clone(), ver),
                    None => self.public_state.delete(k.clone(), ver),
                }
                state_version += 1;
            }
        }
    }

    /// Submits a *private* transaction to a collection: the write set is
    /// applied to authorized replicas only; a salted Merkle root goes on
    /// the shared ledger as evidence. Returns the evidence index and the
    /// salts (held by authorized members for later disclosure).
    pub fn submit_private(
        &mut self,
        collection: &str,
        writes: Vec<(Key, Value)>,
    ) -> Result<(usize, Vec<u64>), PdcError> {
        if !self.collections.contains_key(collection) {
            return Err(PdcError::UnknownCollection(collection.to_string()));
        }
        self.counters.channel_rounds += 1;
        self.counters.evidence_hashes += 1;
        // Salt each write; build the evidence tree.
        let salts: Vec<u64> = writes
            .iter()
            .map(|_| {
                self.salt_seq += 1;
                // Derive an unpredictable salt from a hash chain.
                pbc_crypto::sha256(&self.salt_seq.to_be_bytes()).prefix_u64()
            })
            .collect();
        let leaves: Vec<Vec<u8>> =
            writes.iter().zip(&salts).map(|((k, v), &s)| leaf_bytes(k, v, s)).collect();
        let tree = MerkleTree::build(&leaves);
        let root = tree.root();

        // Evidence transaction on the shared ledger (hash only).
        let evidence_tx = Transaction::new(
            TxId(self.salt_seq),
            ClientId(0),
            vec![Op::Put {
                key: format!("pdc-evidence/{collection}/{}", self.evidence.len()),
                value: Value::copy_from_slice(&root.0),
            }],
        );
        self.submit_public(evidence_tx);
        self.evidence.push(PrivateEvidence {
            collection: collection.to_string(),
            root,
            writes: writes.len(),
        });

        // Apply the private writes on authorized replicas.
        let coll = self.collections.get_mut(collection).expect("checked above");
        let version = Version::new(coll.next_version, 0);
        coll.next_version += 1;
        for replica in coll.replicas.values_mut() {
            replica.apply(&writes, version);
        }
        Ok((self.evidence.len() - 1, salts))
    }

    /// Authorized read from a collection replica.
    pub fn read_private(
        &self,
        e: EnterpriseId,
        collection: &str,
        key: &str,
    ) -> Result<Option<&Value>, PdcError> {
        let coll = self
            .collections
            .get(collection)
            .ok_or_else(|| PdcError::UnknownCollection(collection.to_string()))?;
        if !coll.members.contains(&e) {
            return Err(PdcError::NotAuthorized {
                enterprise: e,
                collection: collection.to_string(),
            });
        }
        Ok(coll.replicas[&e].get(key))
    }

    /// Builds a disclosure for write `index` of evidence entry
    /// `evidence_idx` (done by an authorized member who holds the data
    /// and salts).
    pub fn disclose(
        &self,
        evidence_idx: usize,
        writes: &[(Key, Value)],
        salts: &[u64],
        index: usize,
    ) -> Option<Disclosure> {
        let leaves: Vec<Vec<u8>> =
            writes.iter().zip(salts).map(|((k, v), &s)| leaf_bytes(k, v, s)).collect();
        let tree = MerkleTree::build(&leaves);
        if tree.root() != self.evidence.get(evidence_idx)?.root {
            return None;
        }
        let proof = tree.prove(index)?;
        let (key, value) = writes[index].clone();
        Some(Disclosure { key, value, salt: salts[index], proof })
    }

    /// Verifies a disclosure against the on-ledger evidence — what an
    /// *unauthorized* channel member can do (state validation without the
    /// data).
    pub fn verify_disclosure(&self, evidence_idx: usize, d: &Disclosure) -> bool {
        let Some(ev) = self.evidence.get(evidence_idx) else {
            return false;
        };
        verify_inclusion(&ev.root, &leaf_bytes(&d.key, &d.value, d.salt), &d.proof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::balance_value;

    fn e(i: u32) -> EnterpriseId {
        EnterpriseId(i)
    }

    fn channel_with_collection() -> PdcChannel {
        let mut ch = PdcChannel::new();
        // Channel has e0, e1, e2; collection only e0, e1.
        ch.define_collection("deal", vec![e(0), e(1)]).unwrap();
        ch
    }

    #[test]
    fn private_data_visible_only_to_authorized() {
        let mut ch = channel_with_collection();
        let writes = vec![("price".to_string(), balance_value(99))];
        ch.submit_private("deal", writes).unwrap();
        assert!(ch.read_private(e(0), "deal", "price").unwrap().is_some());
        assert!(ch.read_private(e(1), "deal", "price").unwrap().is_some());
        assert!(matches!(
            ch.read_private(e(2), "deal", "price"),
            Err(PdcError::NotAuthorized { .. })
        ));
    }

    #[test]
    fn hash_evidence_lands_on_shared_ledger() {
        let mut ch = channel_with_collection();
        ch.submit_private("deal", vec![("price".to_string(), balance_value(99))]).unwrap();
        // The ledger grew and the evidence key is publicly visible.
        assert_eq!(ch.ledger.len(), 2);
        assert!(ch.public_state.get("pdc-evidence/deal/0").is_some());
        // The public value is the 32-byte root, not the data.
        let stored = ch.public_state.get("pdc-evidence/deal/0").unwrap();
        assert_eq!(stored.len(), 32);
    }

    #[test]
    fn evidence_does_not_leak_value() {
        let mut ch = channel_with_collection();
        let value = balance_value(12345);
        ch.submit_private("deal", vec![("price".to_string(), value.clone())]).unwrap();
        let root = ch.evidence[0].root;
        // Unsalted hash of the (key, value) pair ≠ evidence root: a
        // dictionary attacker cannot confirm guesses without the salt.
        let guess = pbc_crypto::sha256(&leaf_bytes("price", &value, 0));
        assert_ne!(root, guess);
    }

    #[test]
    fn disclosure_roundtrip() {
        let mut ch = channel_with_collection();
        let writes =
            vec![("price".to_string(), balance_value(99)), ("qty".to_string(), balance_value(7))];
        let (idx, salts) = ch.submit_private("deal", writes.clone()).unwrap();
        let d = ch.disclose(idx, &writes, &salts, 1).unwrap();
        assert!(ch.verify_disclosure(idx, &d));
        assert_eq!(d.key, "qty");
    }

    #[test]
    fn forged_disclosure_rejected() {
        let mut ch = channel_with_collection();
        let writes = vec![("price".to_string(), balance_value(99))];
        let (idx, salts) = ch.submit_private("deal", writes.clone()).unwrap();
        let mut d = ch.disclose(idx, &writes, &salts, 0).unwrap();
        d.value = balance_value(1); // lie about the committed value
        assert!(!ch.verify_disclosure(idx, &d));
    }

    #[test]
    fn disclosure_against_wrong_evidence_fails() {
        let mut ch = channel_with_collection();
        let w1 = vec![("a".to_string(), balance_value(1))];
        let w2 = vec![("b".to_string(), balance_value(2))];
        let (i1, s1) = ch.submit_private("deal", w1.clone()).unwrap();
        let (i2, _) = ch.submit_private("deal", w2).unwrap();
        let d = ch.disclose(i1, &w1, &s1, 0).unwrap();
        assert!(ch.verify_disclosure(i1, &d));
        assert!(!ch.verify_disclosure(i2, &d));
    }

    #[test]
    fn multiple_collections_isolated() {
        let mut ch = channel_with_collection();
        ch.define_collection("other", vec![e(1), e(2)]).unwrap();
        ch.submit_private("deal", vec![("k".to_string(), balance_value(1))]).unwrap();
        // e2 is authorized for "other" but not "deal".
        assert!(ch.read_private(e(2), "deal", "k").is_err());
        assert_eq!(ch.read_private(e(2), "other", "k").unwrap(), None);
        // e1 is in both; sees "deal" data, "other" is empty.
        assert!(ch.read_private(e(1), "deal", "k").unwrap().is_some());
    }

    #[test]
    fn duplicate_collection_rejected() {
        let mut ch = channel_with_collection();
        assert_eq!(
            ch.define_collection("deal", vec![e(0)]).unwrap_err(),
            PdcError::DuplicateCollection("deal".into())
        );
    }

    #[test]
    fn counters_track_hash_overhead() {
        let mut ch = channel_with_collection();
        ch.submit_private("deal", vec![("k".to_string(), balance_value(1))]).unwrap();
        ch.submit_public(Transaction::new(
            TxId(99),
            ClientId(0),
            vec![Op::Put { key: "pub".into(), value: balance_value(5) }],
        ));
        assert_eq!(ch.counters.evidence_hashes, 1);
        assert_eq!(ch.counters.channel_rounds, 3); // private → evidence block + public
    }
}
