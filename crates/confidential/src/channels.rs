//! Multi-channel Hyperledger Fabric (§2.3.1) — view-based
//! confidentiality at channel granularity.
//!
//! Each channel owns an independent XOV pipeline (ledger + state) shared
//! by its member enterprises: everything committed on a channel is
//! visible to **all** its members (the very limitation private data
//! collections address), and completely invisible outside it. Channels
//! may share orderer nodes, but their ledgers never mix. Cross-channel
//! transactions need either a trusted intermediary channel or an atomic
//! commit protocol — implemented here as a two-phase commit whose
//! surcharge experiment E6 measures.

use crate::cost::CoordCounters;
use pbc_arch::{BlockOutcome, ExecutionPipeline, XovPipeline};
use pbc_ledger::{StateStore, Version};
use pbc_types::tx::{balance_of, balance_value};
use pbc_types::{ChannelId, EnterpriseId, Key, Transaction, Value};
use std::collections::BTreeMap;

/// Channel-layer errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChannelError {
    /// No such channel.
    UnknownChannel(ChannelId),
    /// The reader is not a member of the channel.
    NotAMember {
        /// Requesting enterprise.
        enterprise: EnterpriseId,
        /// Target channel.
        channel: ChannelId,
    },
    /// A channel with this id already exists.
    DuplicateChannel(ChannelId),
    /// Cross-channel transfer aborted (insufficient funds at prepare).
    AtomicAbort {
        /// The account that failed the prepare check.
        account: Key,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            ChannelError::NotAMember { enterprise, channel } => {
                write!(f, "{enterprise} is not a member of {channel}")
            }
            ChannelError::DuplicateChannel(c) => write!(f, "channel {c} already exists"),
            ChannelError::AtomicAbort { account } => {
                write!(f, "cross-channel transfer aborted on {account}")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

/// One channel: members + its own ledger/state (an XOV pipeline).
pub struct Channel {
    /// Channel id.
    pub id: ChannelId,
    /// Member enterprises (all of them see everything on the channel).
    pub members: Vec<EnterpriseId>,
    pipeline: XovPipeline,
}

impl Channel {
    /// The channel's committed state (member-visible).
    pub fn state(&self) -> &StateStore {
        self.pipeline.state()
    }

    /// The channel's block ledger (member-visible).
    pub fn ledger(&self) -> &pbc_ledger::ChainLedger {
        self.pipeline.ledger()
    }
}

/// A multi-channel deployment with shared ordering infrastructure.
#[derive(Default)]
pub struct ChannelNetwork {
    channels: BTreeMap<ChannelId, Channel>,
    /// Coordination accounting for E6.
    pub counters: CoordCounters,
}

impl ChannelNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a channel.
    pub fn create_channel(
        &mut self,
        id: ChannelId,
        members: Vec<EnterpriseId>,
    ) -> Result<(), ChannelError> {
        if self.channels.contains_key(&id) {
            return Err(ChannelError::DuplicateChannel(id));
        }
        self.channels.insert(id, Channel { id, members, pipeline: XovPipeline::new() });
        Ok(())
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True if no channels exist.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Membership test.
    pub fn is_member(&self, e: EnterpriseId, ch: ChannelId) -> bool {
        self.channels.get(&ch).is_some_and(|c| c.members.contains(&e))
    }

    /// Seeds channel state (setup helper).
    pub fn seed(&mut self, ch: ChannelId, key: &str, value: Value) -> Result<(), ChannelError> {
        let channel = self.channels.get_mut(&ch).ok_or(ChannelError::UnknownChannel(ch))?;
        // Route through a block so the state version bookkeeping stays
        // consistent with pipeline-applied writes.
        let tx = Transaction::new(
            pbc_types::TxId(u64::MAX - key.len() as u64),
            pbc_types::ClientId(u32::MAX),
            vec![pbc_types::Op::Put { key: key.to_string(), value }],
        );
        channel.pipeline.process_block(vec![tx]);
        Ok(())
    }

    /// Submits a block of transactions to a channel (one channel-scoped
    /// consensus round; every member replicates the result).
    pub fn submit(
        &mut self,
        ch: ChannelId,
        txs: Vec<Transaction>,
    ) -> Result<BlockOutcome, ChannelError> {
        let channel = self.channels.get_mut(&ch).ok_or(ChannelError::UnknownChannel(ch))?;
        self.counters.channel_rounds += 1;
        Ok(channel.pipeline.process_block(txs))
    }

    /// Member-gated read: enforces the channel visibility rule.
    pub fn read(
        &self,
        e: EnterpriseId,
        ch: ChannelId,
        key: &str,
    ) -> Result<Option<&Value>, ChannelError> {
        let channel = self.channels.get(&ch).ok_or(ChannelError::UnknownChannel(ch))?;
        if !channel.members.contains(&e) {
            return Err(ChannelError::NotAMember { enterprise: e, channel: ch });
        }
        Ok(channel.state().get(key))
    }

    /// Member-gated ledger access.
    pub fn ledger(
        &self,
        e: EnterpriseId,
        ch: ChannelId,
    ) -> Result<&pbc_ledger::ChainLedger, ChannelError> {
        let channel = self.channels.get(&ch).ok_or(ChannelError::UnknownChannel(ch))?;
        if !channel.members.contains(&e) {
            return Err(ChannelError::NotAMember { enterprise: e, channel: ch });
        }
        Ok(channel.ledger())
    }

    /// Unrestricted channel access for audits/tests.
    pub fn channel(&self, ch: ChannelId) -> Option<&Channel> {
        self.channels.get(&ch)
    }

    /// Cross-channel balance transfer via two-phase commit: prepare
    /// checks funds on the source channel, then both channels commit
    /// their half as a block. Costs two channel rounds plus the atomic
    /// commit surcharge (the paper's "trusted channel or atomic commit
    /// protocol" requirement).
    pub fn transfer_across(
        &mut self,
        from_ch: ChannelId,
        to_ch: ChannelId,
        from_key: &str,
        to_key: &str,
        amount: u64,
    ) -> Result<(), ChannelError> {
        if !self.channels.contains_key(&from_ch) {
            return Err(ChannelError::UnknownChannel(from_ch));
        }
        if !self.channels.contains_key(&to_ch) {
            return Err(ChannelError::UnknownChannel(to_ch));
        }
        self.counters.atomic_commits += 1;
        // Phase 1: prepare — verify funds at the source.
        let available = balance_of(self.channels[&from_ch].state().get(from_key));
        if available < amount {
            return Err(ChannelError::AtomicAbort { account: from_key.to_string() });
        }
        // Phase 2: commit both halves (one block per channel).
        let debit = Transaction::new(
            pbc_types::TxId(0),
            pbc_types::ClientId(0),
            vec![pbc_types::Op::Put {
                key: from_key.to_string(),
                value: balance_value(available - amount),
            }],
        );
        let credit_balance = balance_of(self.channels[&to_ch].state().get(to_key)) + amount;
        let credit = Transaction::new(
            pbc_types::TxId(1),
            pbc_types::ClientId(0),
            vec![pbc_types::Op::Put {
                key: to_key.to_string(),
                value: balance_value(credit_balance),
            }],
        );
        self.submit(from_ch, vec![debit])?;
        self.submit(to_ch, vec![credit])?;
        Ok(())
    }
}

/// Seeds a standalone state store (test helper shared with benches).
pub fn seeded_accounts(n: usize, balance: u64) -> StateStore {
    let mut s = StateStore::new();
    for i in 0..n {
        s.put(format!("acc{i}"), balance_value(balance), Version::new(0, i as u32));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::{ClientId, Op, TxId};

    fn e(i: u32) -> EnterpriseId {
        EnterpriseId(i)
    }

    fn ch(i: u32) -> ChannelId {
        ChannelId(i)
    }

    fn two_channel_net() -> ChannelNetwork {
        let mut net = ChannelNetwork::new();
        net.create_channel(ch(0), vec![e(0), e(1)]).unwrap();
        net.create_channel(ch(1), vec![e(1), e(2)]).unwrap();
        net
    }

    fn put_tx(id: u64, key: &str, v: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Put { key: key.into(), value: balance_value(v) }],
        )
    }

    #[test]
    fn members_see_channel_data_nonmembers_do_not() {
        let mut net = two_channel_net();
        net.submit(ch(0), vec![put_tx(1, "contract", 9)]).unwrap();
        assert_eq!(balance_of(net.read(e(0), ch(0), "contract").unwrap()), 9);
        assert_eq!(balance_of(net.read(e(1), ch(0), "contract").unwrap()), 9);
        assert!(matches!(net.read(e(2), ch(0), "contract"), Err(ChannelError::NotAMember { .. })));
    }

    #[test]
    fn channels_are_isolated() {
        let mut net = two_channel_net();
        net.submit(ch(0), vec![put_tx(1, "k", 1)]).unwrap();
        // Same key on the other channel is independent.
        assert_eq!(net.channel(ch(1)).unwrap().state().get("k"), None);
        // Ledgers evolve independently.
        assert_eq!(net.channel(ch(0)).unwrap().ledger().len(), 2);
        assert_eq!(net.channel(ch(1)).unwrap().ledger().len(), 1);
    }

    #[test]
    fn shared_member_sees_both_channels() {
        let mut net = two_channel_net();
        net.submit(ch(0), vec![put_tx(1, "a", 1)]).unwrap();
        net.submit(ch(1), vec![put_tx(2, "b", 2)]).unwrap();
        // e1 is on both channels (a manufacturer in two supply chains).
        assert!(net.read(e(1), ch(0), "a").unwrap().is_some());
        assert!(net.read(e(1), ch(1), "b").unwrap().is_some());
        // e0 only on channel 0.
        assert!(net.read(e(0), ch(1), "b").is_err());
    }

    #[test]
    fn ledger_access_is_member_gated() {
        let mut net = two_channel_net();
        net.submit(ch(0), vec![put_tx(1, "x", 1)]).unwrap();
        assert!(net.ledger(e(0), ch(0)).is_ok());
        assert!(net.ledger(e(2), ch(0)).is_err());
        net.ledger(e(0), ch(0)).unwrap().verify().unwrap();
    }

    #[test]
    fn cross_channel_transfer_via_2pc() {
        let mut net = two_channel_net();
        net.seed(ch(0), "acct-src", balance_value(100)).unwrap();
        net.seed(ch(1), "acct-dst", balance_value(0)).unwrap();
        net.transfer_across(ch(0), ch(1), "acct-src", "acct-dst", 40).unwrap();
        assert_eq!(balance_of(net.channel(ch(0)).unwrap().state().get("acct-src")), 60);
        assert_eq!(balance_of(net.channel(ch(1)).unwrap().state().get("acct-dst")), 40);
        assert_eq!(net.counters.atomic_commits, 1);
    }

    #[test]
    fn cross_channel_transfer_aborts_atomically() {
        let mut net = two_channel_net();
        net.seed(ch(0), "acct-src", balance_value(10)).unwrap();
        net.seed(ch(1), "acct-dst", balance_value(0)).unwrap();
        let err = net.transfer_across(ch(0), ch(1), "acct-src", "acct-dst", 40).unwrap_err();
        assert!(matches!(err, ChannelError::AtomicAbort { .. }));
        assert_eq!(balance_of(net.channel(ch(0)).unwrap().state().get("acct-src")), 10);
        assert_eq!(balance_of(net.channel(ch(1)).unwrap().state().get("acct-dst")), 0);
    }

    #[test]
    fn duplicate_channel_rejected() {
        let mut net = two_channel_net();
        assert_eq!(
            net.create_channel(ch(0), vec![e(0)]).unwrap_err(),
            ChannelError::DuplicateChannel(ch(0))
        );
    }

    #[test]
    fn channel_rounds_counted() {
        let mut net = two_channel_net();
        net.submit(ch(0), vec![put_tx(1, "a", 1)]).unwrap();
        net.submit(ch(1), vec![put_tx(2, "b", 2)]).unwrap();
        assert_eq!(net.counters.channel_rounds, 2);
    }

    #[test]
    fn unknown_channel_errors() {
        let mut net = ChannelNetwork::new();
        assert!(matches!(net.submit(ch(9), vec![]), Err(ChannelError::UnknownChannel(_))));
    }
}
