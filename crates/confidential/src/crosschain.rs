//! Atomic cross-chain swaps (§2.3.1's first option for cross-enterprise
//! collaboration: Herlihy \[34\], Zakhary et al. \[62\], Interledger \[58\]).
//!
//! When each enterprise keeps a fully **disjoint** blockchain, value can
//! still move atomically between them with hash time-locked contracts
//! (HTLCs):
//!
//! 1. Alice picks a secret `s`, computes `H = SHA-256(s)`, and locks her
//!    asset for Bob on chain A under hashlock `H` with timelock `2T`;
//! 2. Bob, seeing `H` on chain A, locks his asset for Alice on chain B
//!    under the same `H` with timelock `T`;
//! 3. Alice claims on chain B before `T`, *revealing `s` on-chain*;
//! 4. Bob reads `s` from chain B and claims on chain A before `2T`.
//!
//! If anyone stops cooperating, timelocks refund the escrows — the
//! asymmetry `T < 2T` guarantees Bob always has time to claim after
//! Alice reveals. The paper's point — such protocols are "often costly
//! \[and\] complex" compared to single-blockchain techniques — shows up
//! directly: a swap takes four transactions and two timelock periods of
//! exposure (compare one Caper cross-enterprise transaction).

use pbc_crypto::Hash;
use pbc_ledger::{ChainLedger, StateStore, Version};
use pbc_types::tx::{balance_of, balance_value};
use pbc_types::{Block, ClientId, Key, NodeId, Op, Transaction, TxId};
use std::collections::HashMap;

/// HTLC lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HtlcState {
    /// Funds escrowed, awaiting claim or refund.
    Pending,
    /// Claimed by the receiver with the correct preimage.
    Claimed,
    /// Refunded to the sender after the timelock expired.
    Refunded,
}

/// One hash time-locked contract.
#[derive(Clone, Debug)]
pub struct Htlc {
    /// Escrowed amount.
    pub amount: u64,
    /// Account refunded on timeout.
    pub sender: Key,
    /// Account paid on a valid claim.
    pub receiver: Key,
    /// `SHA-256(preimage)` that unlocks the funds.
    pub hashlock: Hash,
    /// Logical deadline after which only refund is possible.
    pub timelock: u64,
    /// Current state.
    pub state: HtlcState,
    /// The revealed preimage (set on claim; this is what the counterparty
    /// reads off the chain to unlock the other side).
    pub revealed: Option<[u8; 32]>,
}

/// Errors from HTLC operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HtlcError {
    /// No contract with this id.
    UnknownContract(u64),
    /// The sender lacks the escrow amount.
    InsufficientFunds,
    /// Claim with a preimage that doesn't hash to the hashlock.
    WrongPreimage,
    /// Claim attempted after the timelock expired.
    Expired,
    /// Refund attempted before the timelock expired.
    NotYetExpired,
    /// The contract is no longer pending.
    NotPending,
}

impl std::fmt::Display for HtlcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtlcError::UnknownContract(id) => write!(f, "unknown contract {id}"),
            HtlcError::InsufficientFunds => write!(f, "insufficient escrow funds"),
            HtlcError::WrongPreimage => write!(f, "preimage does not match hashlock"),
            HtlcError::Expired => write!(f, "timelock expired; claim refused"),
            HtlcError::NotYetExpired => write!(f, "timelock not yet expired; refund refused"),
            HtlcError::NotPending => write!(f, "contract already settled"),
        }
    }
}

impl std::error::Error for HtlcError {}

/// An independent enterprise blockchain with HTLC support.
///
/// The logical clock is advanced explicitly by the caller (in the
/// integrated stack this is the simulator's clock), so timeout behaviour
/// is fully deterministic and testable.
pub struct HtlcChain {
    /// The chain's ledger (every HTLC operation is a recorded block).
    pub ledger: ChainLedger,
    /// Account balances.
    pub state: StateStore,
    contracts: HashMap<u64, Htlc>,
    next_id: u64,
    now: u64,
}

impl Default for HtlcChain {
    fn default() -> Self {
        Self::new()
    }
}

impl HtlcChain {
    /// A fresh chain at time 0.
    pub fn new() -> Self {
        HtlcChain {
            ledger: ChainLedger::new(),
            state: StateStore::new(),
            contracts: HashMap::new(),
            next_id: 0,
            now: 0,
        }
    }

    /// Seeds an account balance.
    pub fn seed(&mut self, account: &str, amount: u64) {
        self.state.put(account.to_string(), balance_value(amount), Version::GENESIS);
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the logical clock.
    pub fn advance_time(&mut self, delta: u64) {
        self.now += delta;
    }

    /// A contract's public record (what the counterparty reads).
    pub fn contract(&self, id: u64) -> Option<&Htlc> {
        self.contracts.get(&id)
    }

    fn record(&mut self, label: &str, id: u64) {
        // Every HTLC state change is a block on the chain.
        let tx = Transaction::new(
            TxId(self.next_id * 4 + self.ledger.len() as u64),
            ClientId(0),
            vec![Op::Put { key: format!("htlc/{id}/{label}"), value: balance_value(self.now) }],
        );
        let height = self.ledger.height().next();
        let block = Block::build(height, self.ledger.head_hash(), NodeId(0), self.now, vec![tx]);
        self.ledger.append(block).expect("sequential build");
    }

    /// Escrows `amount` from `sender` for `receiver` under `hashlock`,
    /// refundable after `timelock`. Returns the contract id.
    pub fn lock(
        &mut self,
        sender: &str,
        receiver: &str,
        amount: u64,
        hashlock: Hash,
        timelock: u64,
    ) -> Result<u64, HtlcError> {
        let balance = balance_of(self.state.get(sender));
        if balance < amount {
            return Err(HtlcError::InsufficientFunds);
        }
        self.state.put(
            sender.to_string(),
            balance_value(balance - amount),
            Version::new(self.ledger.height().0 + 1, 0),
        );
        let id = self.next_id;
        self.next_id += 1;
        self.contracts.insert(
            id,
            Htlc {
                amount,
                sender: sender.to_string(),
                receiver: receiver.to_string(),
                hashlock,
                timelock,
                state: HtlcState::Pending,
                revealed: None,
            },
        );
        self.record("lock", id);
        Ok(id)
    }

    /// Claims a pending contract with the preimage, paying the receiver
    /// and revealing the preimage on-chain.
    pub fn claim(&mut self, id: u64, preimage: [u8; 32]) -> Result<(), HtlcError> {
        let now = self.now;
        let contract = self.contracts.get_mut(&id).ok_or(HtlcError::UnknownContract(id))?;
        if contract.state != HtlcState::Pending {
            return Err(HtlcError::NotPending);
        }
        if now > contract.timelock {
            return Err(HtlcError::Expired);
        }
        if pbc_crypto::sha256(&preimage) != contract.hashlock {
            return Err(HtlcError::WrongPreimage);
        }
        contract.state = HtlcState::Claimed;
        contract.revealed = Some(preimage);
        let receiver = contract.receiver.clone();
        let amount = contract.amount;
        let bal = balance_of(self.state.get(&receiver));
        self.state.put(
            receiver,
            balance_value(bal + amount),
            Version::new(self.ledger.height().0 + 1, 0),
        );
        self.record("claim", id);
        Ok(())
    }

    /// Refunds an expired pending contract to its sender.
    pub fn refund(&mut self, id: u64) -> Result<(), HtlcError> {
        let now = self.now;
        let contract = self.contracts.get_mut(&id).ok_or(HtlcError::UnknownContract(id))?;
        if contract.state != HtlcState::Pending {
            return Err(HtlcError::NotPending);
        }
        if now <= contract.timelock {
            return Err(HtlcError::NotYetExpired);
        }
        contract.state = HtlcState::Refunded;
        let sender = contract.sender.clone();
        let amount = contract.amount;
        let bal = balance_of(self.state.get(&sender));
        self.state.put(
            sender,
            balance_value(bal + amount),
            Version::new(self.ledger.height().0 + 1, 0),
        );
        self.record("refund", id);
        Ok(())
    }

    /// Balance helper.
    pub fn balance(&self, account: &str) -> u64 {
        balance_of(self.state.get(account))
    }
}

/// A secret/hashlock pair for initiating a swap.
pub struct SwapSecret {
    /// The preimage (kept by the initiator until claim time).
    pub preimage: [u8; 32],
    /// Its hash (published in both contracts).
    pub hashlock: Hash,
}

impl SwapSecret {
    /// Derives a swap secret deterministically from a seed.
    pub fn from_seed(seed: u64) -> SwapSecret {
        let preimage = pbc_crypto::sha256(&seed.to_be_bytes()).0;
        SwapSecret { preimage, hashlock: pbc_crypto::sha256(&preimage) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sets up Alice-on-A (100 units) and Bob-on-B (50 units).
    fn two_chains() -> (HtlcChain, HtlcChain) {
        let mut a = HtlcChain::new();
        a.seed("alice", 100);
        a.seed("bob", 0);
        let mut b = HtlcChain::new();
        b.seed("bob", 50);
        b.seed("alice", 0);
        (a, b)
    }

    #[test]
    fn happy_path_swap() {
        let (mut chain_a, mut chain_b) = two_chains();
        let secret = SwapSecret::from_seed(1);
        const T: u64 = 100;

        // 1. Alice locks 100 for Bob on A with timelock 2T.
        let id_a = chain_a.lock("alice", "bob", 100, secret.hashlock, 2 * T).unwrap();
        // 2. Bob copies the hashlock from chain A and locks 50 on B, timelock T.
        let h = chain_a.contract(id_a).unwrap().hashlock;
        let id_b = chain_b.lock("bob", "alice", 50, h, T).unwrap();
        // 3. Alice claims on B before T, revealing the preimage.
        chain_b.advance_time(T / 2);
        chain_b.claim(id_b, secret.preimage).unwrap();
        assert_eq!(chain_b.balance("alice"), 50);
        // 4. Bob reads the revealed preimage off chain B and claims on A.
        let revealed = chain_b.contract(id_b).unwrap().revealed.unwrap();
        chain_a.advance_time(T); // still before 2T
        chain_a.claim(id_a, revealed).unwrap();
        assert_eq!(chain_a.balance("bob"), 100);

        // Both chains recorded the full protocol.
        chain_a.ledger.verify().unwrap();
        chain_b.ledger.verify().unwrap();
        assert_eq!(chain_a.contract(id_a).unwrap().state, HtlcState::Claimed);
        assert_eq!(chain_b.contract(id_b).unwrap().state, HtlcState::Claimed);
    }

    #[test]
    fn bob_never_locks_alice_refunds() {
        let (mut chain_a, _) = two_chains();
        let secret = SwapSecret::from_seed(2);
        let id = chain_a.lock("alice", "bob", 100, secret.hashlock, 200).unwrap();
        assert_eq!(chain_a.balance("alice"), 0, "escrowed");
        // Refund refused before expiry.
        assert_eq!(chain_a.refund(id).unwrap_err(), HtlcError::NotYetExpired);
        chain_a.advance_time(201);
        chain_a.refund(id).unwrap();
        assert_eq!(chain_a.balance("alice"), 100, "made whole");
    }

    #[test]
    fn alice_never_claims_both_refund() {
        let (mut chain_a, mut chain_b) = two_chains();
        let secret = SwapSecret::from_seed(3);
        let id_a = chain_a.lock("alice", "bob", 100, secret.hashlock, 200).unwrap();
        let id_b = chain_b.lock("bob", "alice", 50, secret.hashlock, 100).unwrap();
        // Alice walks away. Bob refunds at T+1; Alice at 2T+1.
        chain_b.advance_time(101);
        chain_b.refund(id_b).unwrap();
        chain_a.advance_time(201);
        chain_a.refund(id_a).unwrap();
        assert_eq!(chain_a.balance("alice"), 100);
        assert_eq!(chain_b.balance("bob"), 50);
    }

    #[test]
    fn wrong_preimage_rejected() {
        let (mut chain_a, _) = two_chains();
        let secret = SwapSecret::from_seed(4);
        let id = chain_a.lock("alice", "bob", 40, secret.hashlock, 100).unwrap();
        assert_eq!(chain_a.claim(id, [0u8; 32]).unwrap_err(), HtlcError::WrongPreimage);
        assert_eq!(chain_a.balance("bob"), 0);
    }

    #[test]
    fn claim_after_expiry_rejected() {
        let (mut chain_a, _) = two_chains();
        let secret = SwapSecret::from_seed(5);
        let id = chain_a.lock("alice", "bob", 40, secret.hashlock, 100).unwrap();
        chain_a.advance_time(101);
        assert_eq!(chain_a.claim(id, secret.preimage).unwrap_err(), HtlcError::Expired);
        // Sender can still refund.
        chain_a.refund(id).unwrap();
        assert_eq!(chain_a.balance("alice"), 100);
    }

    #[test]
    fn double_claim_rejected() {
        let (mut chain_a, _) = two_chains();
        let secret = SwapSecret::from_seed(6);
        let id = chain_a.lock("alice", "bob", 40, secret.hashlock, 100).unwrap();
        chain_a.claim(id, secret.preimage).unwrap();
        assert_eq!(chain_a.claim(id, secret.preimage).unwrap_err(), HtlcError::NotPending);
        assert_eq!(chain_a.balance("bob"), 40, "paid exactly once");
    }

    #[test]
    fn insufficient_escrow_rejected() {
        let (mut chain_a, _) = two_chains();
        let secret = SwapSecret::from_seed(7);
        assert_eq!(
            chain_a.lock("alice", "bob", 1_000, secret.hashlock, 100).unwrap_err(),
            HtlcError::InsufficientFunds
        );
    }

    #[test]
    fn swap_cost_exceeds_single_chain_cross_tx() {
        // The paper's "costly, complex" remark, quantified: a swap writes
        // four blocks across two chains vs one Caper global transaction.
        let (mut chain_a, mut chain_b) = two_chains();
        let secret = SwapSecret::from_seed(8);
        let id_a = chain_a.lock("alice", "bob", 10, secret.hashlock, 200).unwrap();
        let id_b = chain_b.lock("bob", "alice", 5, secret.hashlock, 100).unwrap();
        chain_b.claim(id_b, secret.preimage).unwrap();
        chain_a.claim(id_a, secret.preimage).unwrap();
        let swap_blocks = (chain_a.ledger.len() - 1) + (chain_b.ledger.len() - 1);
        assert_eq!(swap_blocks, 4, "lock+claim on each chain");
    }
}
