//! Coordination cost accounting shared by the confidentiality techniques.
//!
//! Confidentiality experiments (E6) compare *where consensus happens*:
//! Caper orders internal transactions inside one enterprise (cheap local
//! round) and cross-enterprise transactions globally (expensive round
//! among all enterprises); channels pay a per-channel round plus an
//! atomic-commit surcharge for cross-channel transactions; PDC pays the
//! channel round plus hashing. The techniques report round *counts*; the
//! [`CostModel`] turns counts into simulated time so benches can chart
//! latency/throughput against workload mix.

use serde::Serialize;

/// Counters a confidentiality technique accumulates.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CoordCounters {
    /// Consensus rounds confined to a single enterprise/cluster.
    pub local_rounds: u64,
    /// Consensus rounds within one channel (its member enterprises).
    pub channel_rounds: u64,
    /// Consensus rounds involving every enterprise.
    pub global_rounds: u64,
    /// Cross-channel / cross-shard atomic-commit coordinations.
    pub atomic_commits: u64,
    /// Hash computations for on-ledger evidence (PDC).
    pub evidence_hashes: u64,
}

/// Latency weights for each coordination class (abstract microseconds).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CostModel {
    /// One consensus round inside an enterprise (LAN).
    pub local_round: u64,
    /// One consensus round among a channel's members.
    pub channel_round: u64,
    /// One consensus round among all enterprises (WAN).
    pub global_round: u64,
    /// One cross-channel atomic commit (2 extra phases).
    pub atomic_commit: u64,
    /// One evidence hash.
    pub evidence_hash: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Defaults mirror the LAN/WAN gap used across the benches:
        // local ≈ intra-cluster, global ≈ wide-area.
        CostModel {
            local_round: 300,
            channel_round: 600,
            global_round: 5_000,
            atomic_commit: 10_000,
            evidence_hash: 10,
        }
    }
}

impl CostModel {
    /// Total simulated time the counters represent.
    pub fn time(&self, c: &CoordCounters) -> u64 {
        c.local_rounds * self.local_round
            + c.channel_rounds * self.channel_round
            + c.global_rounds * self.global_round
            + c.atomic_commits * self.atomic_commit
            + c.evidence_hashes * self.evidence_hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_accumulates_linearly() {
        let model = CostModel {
            local_round: 1,
            channel_round: 10,
            global_round: 100,
            atomic_commit: 1000,
            evidence_hash: 10000,
        };
        let c = CoordCounters {
            local_rounds: 2,
            channel_rounds: 3,
            global_rounds: 4,
            atomic_commits: 5,
            evidence_hashes: 6,
        };
        assert_eq!(model.time(&c), 2 + 30 + 400 + 5000 + 60000);
    }

    #[test]
    fn default_orders_local_below_global() {
        let m = CostModel::default();
        assert!(m.local_round < m.channel_round);
        assert!(m.channel_round < m.global_round);
    }
}
