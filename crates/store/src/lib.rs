//! Durable storage for the permissioned-blockchain workspace.
//!
//! The paper's §2.3.2 crash-fault model assumes replicas recover from
//! *stable storage*. Before this crate, every "checkpoint" in the repo
//! was an in-memory struct handed from the crashed actor to its
//! replacement — a disk that cannot tear, rot, or lie. `pbc-store` makes
//! the disk real enough to fail:
//!
//! * [`Wal`] — a length-prefixed, CRC32-checksummed write-ahead log.
//!   Appends are framed as `[len][crc][payload]`; recovery walks the
//!   frames, **truncates a torn tail** (a partial final record from a
//!   crash mid-write), and surfaces mid-file corruption as an error
//!   instead of silently replaying garbage.
//! * [`SegmentStore`] — segmented append-only block files. The open
//!   segment fills up and is sealed by an **atomic rename**; cold
//!   (sealed) segments that fail their checksums on recovery are
//!   **quarantined** — renamed aside, their heights reported missing so
//!   the node re-fetches them from peers via the protocol's own
//!   catch-up paths — rather than wedging the node.
//! * [`NodeStore`] — one node's durable state: a checkpoint WAL plus a
//!   block segment store, recovered together by a staged replay (scan
//!   segments → validate checksums → truncate torn WAL tail → adopt the
//!   last durable checkpoint).
//! * [`Vfs`] — the filesystem seam. [`RealFs`] is `std::fs` + `fsync`;
//!   [`FaultFs`] is a deterministic, seed-driven in-memory filesystem
//!   that tears the tail of un-synced writes on crash at a byte
//!   boundary, fails `sync` on schedule, and flips bits in cold files —
//!   the disk-fault nemesis the chaos tests drive.
//!
//! Everything here is deterministic under a fixed seed and makes no
//! scheduling decisions, so wiring a store under a simulated replica
//! cannot perturb a golden trace.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod atomic;
mod crc;
mod segment;
mod store;
mod vfs;
mod wal;

pub use atomic::write_atomic;
pub use crc::crc32;
pub use segment::{SegmentReport, SegmentStore};
pub use store::{NodeStore, Recovery, StoreConfig, StoreError};
pub use vfs::{read_full, write_full, FaultFs, RealFs, ShortReader, ShortWriter, Vfs};
pub use wal::{Wal, WalRecovery};
