//! The filesystem seam: one trait, a real disk, and a lying disk.
//!
//! Every byte the store persists flows through [`Vfs`], so the same
//! [`NodeStore`](crate::NodeStore) code path runs against `std::fs` in
//! production ([`RealFs`]) and against a deterministic fault-injecting
//! in-memory filesystem in chaos tests ([`FaultFs`]). The fault hooks
//! (`fault_*`) are part of the trait with no-op defaults, so a harness
//! can drive disk faults through a `Box<dyn Vfs>` without knowing which
//! implementation is behind it — on a real disk they simply do nothing.
//!
//! The durability model both implementations share:
//!
//! * `append`/`write_at`/`truncate` reach the *page cache*, not the
//!   platter; only `sync` makes data crash-durable.
//! * `rename` is atomic and durable (the POSIX idiom the segment store
//!   leans on for sealing).
//! * A crash ([`FaultFs::fault_crash`] / power loss) keeps every synced
//!   prefix and **tears the un-synced tail at an arbitrary byte
//!   boundary** — the seed decides where, which is exactly how a real
//!   disk loses a half-flushed WAL record.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::rc::Rc;

/// Filesystem operations the store needs, plus fault-injection hooks.
///
/// Paths are flat relative file names (`"checkpoint.wal"`,
/// `"seg-000004.blk"`); implementations own the mapping to any real
/// directory. The trait is object-safe: stores hold a `Box<dyn Vfs>`.
pub trait Vfs {
    /// Reads the whole file.
    fn read(&self, path: &str) -> io::Result<Vec<u8>>;

    /// Current length in bytes, or an error if the file does not exist.
    fn len(&self, path: &str) -> io::Result<u64>;

    /// Appends bytes (creating the file if needed). Not durable until
    /// [`Vfs::sync`].
    fn append(&mut self, path: &str, bytes: &[u8]) -> io::Result<()>;

    /// Overwrites bytes at `offset` (must lie within the file).
    fn write_at(&mut self, path: &str, offset: u64, bytes: &[u8]) -> io::Result<()>;

    /// Truncates the file to `len` bytes.
    fn truncate(&mut self, path: &str, len: u64) -> io::Result<()>;

    /// Flushes the file to stable storage (`fsync`). May fail — a
    /// failed sync means a later crash can tear the un-synced tail.
    fn sync(&mut self, path: &str) -> io::Result<()>;

    /// Atomically renames `from` to `to` (replacing `to` if present).
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()>;

    /// Deletes the file (missing file is not an error).
    fn remove(&mut self, path: &str) -> io::Result<()>;

    /// Whether the file exists.
    fn exists(&self, path: &str) -> bool;

    /// All file names, sorted (recovery's segment scan).
    fn list(&self) -> Vec<String>;

    /// FAULT HOOK — simulates a crash/power-loss: every file keeps its
    /// synced prefix and a seed-chosen slice of any un-synced tail (the
    /// torn write). No-op on a real disk (the *process* crash plays
    /// that role there).
    fn fault_crash(&mut self) {}

    /// FAULT HOOK — makes the next `n` [`Vfs::sync`] calls fail,
    /// leaving their data vulnerable to the next crash. No-op on a real
    /// disk.
    fn fault_fail_syncs(&mut self, n: u32) {
        let _ = n;
    }

    /// FAULT HOOK — flips one seed-chosen bit of the file's *durable*
    /// contents (media rot, not a write). Returns `true` if a bit was
    /// flipped. No-op (returns `false`) on a real disk.
    fn fault_flip_bit(&mut self, path: &str, seed: u64) -> bool {
        let _ = (path, seed);
        false
    }
}

// ---------------------------------------------------------------------
// RealFs
// ---------------------------------------------------------------------

/// `std::fs` + `fsync`, rooted at a directory.
#[derive(Debug)]
pub struct RealFs {
    root: PathBuf,
}

impl RealFs {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(RealFs { root })
    }

    /// The root directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn full(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }

    /// Fsyncs the root directory itself, making renames/creates durable.
    fn sync_dir(&self) -> io::Result<()> {
        std::fs::File::open(&self.root)?.sync_all()
    }
}

/// Short-transfer audit: every `Vfs` method on this impl moves whole
/// buffers — `read` via `std::fs::read` (which loops internally) and
/// `append`/`write_at` via `write_all` — so no call here can observe a
/// partial transfer. Code that talks to *streams* (sockets, pipes) gets
/// no such guarantee from a raw `Read::read`/`Write::write` and must go
/// through [`read_full`]/[`write_full`] instead; the
/// [`ShortReader`]/[`ShortWriter`] fault adapters below pin that
/// contract the way [`FaultFs`] pins the durability one.
impl Vfs for RealFs {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.full(path))
    }

    fn len(&self, path: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.full(path))?.len())
    }

    fn append(&mut self, path: &str, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(self.full(path))?;
        f.write_all(bytes)
    }

    fn write_at(&mut self, path: &str, offset: u64, bytes: &[u8]) -> io::Result<()> {
        use std::io::{Seek as _, SeekFrom, Write as _};
        let mut f = std::fs::OpenOptions::new().write(true).open(self.full(path))?;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(bytes)
    }

    fn truncate(&mut self, path: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new().write(true).open(self.full(path))?;
        f.set_len(len)
    }

    fn sync(&mut self, path: &str) -> io::Result<()> {
        std::fs::File::open(self.full(path))?.sync_all()
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.full(from), self.full(to))?;
        self.sync_dir()
    }

    fn remove(&mut self, path: &str) -> io::Result<()> {
        match std::fs::remove_file(self.full(path)) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn exists(&self, path: &str) -> bool {
        self.full(path).exists()
    }

    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(&self.root)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        names.sort();
        names
    }
}

// ---------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct FileBuf {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a crash (advanced by `sync`).
    durable_len: usize,
}

#[derive(Debug)]
struct FaultInner {
    files: BTreeMap<String, FileBuf>,
    rng: u64,
    fail_syncs: u32,
    syncs_failed: u64,
    crashes: u64,
}

/// Deterministic fault-injecting in-memory filesystem.
///
/// Cloning a `FaultFs` yields another handle to the *same* filesystem
/// (single-threaded shared state), so a chaos harness can keep a handle
/// to schedule faults while the [`NodeStore`](crate::NodeStore) owns
/// another as its `Box<dyn Vfs>`. All randomness (tear points, bit
/// positions) comes from a splitmix64 stream seeded at construction —
/// the same seed and the same call sequence always fault identically.
#[derive(Clone, Debug)]
pub struct FaultFs {
    inner: Rc<RefCell<FaultInner>>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultFs {
    /// An empty filesystem with the given fault seed.
    pub fn new(seed: u64) -> Self {
        FaultFs {
            inner: Rc::new(RefCell::new(FaultInner {
                files: BTreeMap::new(),
                rng: seed ^ 0x5EED_D15C_0000_0000,
                fail_syncs: 0,
                syncs_failed: 0,
                crashes: 0,
            })),
        }
    }

    /// Total sync calls that were made to fail so far.
    pub fn syncs_failed(&self) -> u64 {
        self.inner.borrow().syncs_failed
    }

    /// Crashes simulated so far.
    pub fn crashes(&self) -> u64 {
        self.inner.borrow().crashes
    }

    /// Bytes of `path` that would survive a crash right now.
    pub fn durable_len(&self, path: &str) -> u64 {
        self.inner.borrow().files.get(path).map_or(0, |f| f.durable_len as u64)
    }
}

impl Vfs for FaultFs {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        self.inner
            .borrow()
            .files
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))
    }

    fn len(&self, path: &str) -> io::Result<u64> {
        self.inner
            .borrow()
            .files
            .get(path)
            .map(|f| f.data.len() as u64)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))
    }

    fn append(&mut self, path: &str, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.borrow_mut();
        inner.files.entry(path.to_string()).or_default().data.extend_from_slice(bytes);
        Ok(())
    }

    fn write_at(&mut self, path: &str, offset: u64, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.borrow_mut();
        let file = inner
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        let end = offset as usize + bytes.len();
        if end > file.data.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "write_at past EOF"));
        }
        file.data[offset as usize..end].copy_from_slice(bytes);
        Ok(())
    }

    fn truncate(&mut self, path: &str, len: u64) -> io::Result<()> {
        let mut inner = self.inner.borrow_mut();
        let file = inner
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        file.data.truncate(len as usize);
        file.durable_len = file.durable_len.min(file.data.len());
        Ok(())
    }

    fn sync(&mut self, path: &str) -> io::Result<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.fail_syncs > 0 {
            inner.fail_syncs -= 1;
            inner.syncs_failed += 1;
            return Err(io::Error::other("injected sync failure"));
        }
        let file = inner
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, path.to_string()))?;
        file.durable_len = file.data.len();
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        let mut inner = self.inner.borrow_mut();
        let mut file = inner
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, from.to_string()))?;
        // The rename idiom: atomic and durable (the caller synced the
        // contents first; the metadata operation itself is journaled).
        file.durable_len = file.data.len();
        inner.files.insert(to.to_string(), file);
        Ok(())
    }

    fn remove(&mut self, path: &str) -> io::Result<()> {
        self.inner.borrow_mut().files.remove(path);
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.borrow().files.contains_key(path)
    }

    fn list(&self) -> Vec<String> {
        self.inner.borrow().files.keys().cloned().collect()
    }

    fn fault_crash(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.crashes += 1;
        let mut rng = inner.rng;
        for file in inner.files.values_mut() {
            if file.data.len() > file.durable_len {
                // Tear the un-synced tail at a seeded byte boundary:
                // anywhere from "nothing survived" to "all of it did".
                let extra = file.data.len() - file.durable_len;
                let keep = (splitmix64(&mut rng) % (extra as u64 + 1)) as usize;
                file.data.truncate(file.durable_len + keep);
                file.durable_len = file.data.len();
            }
        }
        inner.rng = rng;
    }

    fn fault_fail_syncs(&mut self, n: u32) {
        self.inner.borrow_mut().fail_syncs += n;
    }

    fn fault_flip_bit(&mut self, path: &str, seed: u64) -> bool {
        let mut inner = self.inner.borrow_mut();
        let mut state = inner.rng ^ seed;
        let Some(file) = inner.files.get_mut(path) else {
            return false;
        };
        if file.data.is_empty() {
            return false;
        }
        let bit = splitmix64(&mut state) % (file.data.len() as u64 * 8);
        file.data[(bit / 8) as usize] ^= 1 << (bit % 8);
        // Rot is on the platter: it IS the durable state now.
        file.durable_len = file.durable_len.max((bit / 8) as usize + 1);
        true
    }
}

// ---------------------------------------------------------------------
// Short transfers
// ---------------------------------------------------------------------

/// Reads exactly `buf.len()` bytes from `r`, looping over short reads
/// and retrying `Interrupted`. A stream `read` may legally transfer any
/// non-zero prefix (sockets under load routinely do); a caller that
/// issues one `read` and assumes the buffer is full silently processes
/// garbage. Fails with `UnexpectedEof` if the stream ends first.
///
/// This is `read_exact` semantics spelled out at the `Vfs` layer so
/// both the store and the wire runtime (`pbc-net`) share one audited
/// implementation, pinned by [`ShortReader`].
pub fn read_full<R: io::Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended after {filled} of {} bytes", buf.len()),
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Writes all of `buf` to `w`, looping over short writes and retrying
/// `Interrupted` — `write_all` semantics, the counterpart of
/// [`read_full`]. A zero-byte transfer from a live sink is reported as
/// `WriteZero` rather than spinning.
pub fn write_full<W: io::Write + ?Sized>(w: &mut W, buf: &[u8]) -> io::Result<()> {
    let mut sent = 0;
    while sent < buf.len() {
        match w.write(&buf[sent..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!("sink accepted 0 bytes at offset {sent} of {}", buf.len()),
                ));
            }
            Ok(n) => sent += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// FAULT ADAPTER — wraps any reader so every `read` call transfers a
/// seed-chosen sliver (1–3 bytes) and periodically fails with
/// `Interrupted`: the partial-transfer behavior a loaded socket shows,
/// made deterministic. Code that survives a `ShortReader` handles short
/// reads correctly; code that does not is exactly the bug class
/// [`read_full`] exists to prevent.
#[derive(Debug)]
pub struct ShortReader<R> {
    inner: R,
    rng: u64,
}

impl<R: io::Read> ShortReader<R> {
    /// Wraps `inner` with the given fault seed.
    pub fn new(inner: R, seed: u64) -> Self {
        ShortReader { inner, rng: seed ^ 0x5EED_0000_5707_ED00 }
    }
}

impl<R: io::Read> io::Read for ShortReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let roll = splitmix64(&mut self.rng);
        if roll.is_multiple_of(5) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected interrupt"));
        }
        let sliver = 1 + (roll % 3) as usize;
        let cap = buf.len().min(sliver);
        self.inner.read(&mut buf[..cap])
    }
}

/// FAULT ADAPTER — the write-side counterpart of [`ShortReader`]: every
/// `write` accepts a seed-chosen sliver of the buffer and periodically
/// fails with `Interrupted`.
#[derive(Debug)]
pub struct ShortWriter<W> {
    inner: W,
    rng: u64,
}

impl<W: io::Write> ShortWriter<W> {
    /// Wraps `inner` with the given fault seed.
    pub fn new(inner: W, seed: u64) -> Self {
        ShortWriter { inner, rng: seed ^ 0x5EED_0000_5707_ED01 }
    }

    /// The wrapped sink (to inspect what was actually written).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: io::Write> io::Write for ShortWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let roll = splitmix64(&mut self.rng);
        if roll.is_multiple_of(5) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected interrupt"));
        }
        let sliver = 1 + (roll % 3) as usize;
        let cap = buf.len().min(sliver);
        self.inner.write(&buf[..cap])
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fault adapters really do produce partial transfers: a single
    /// raw `read`/`write` call moves only a sliver of the buffer. This
    /// is the pre-fix failure mode — any caller that issued one call
    /// and assumed a full transfer would process a torn buffer — so the
    /// two assertions here are what make the `read_full`/`write_full`
    /// regression tests below meaningful.
    #[test]
    fn short_adapters_shorten_single_calls() {
        use std::io::{Read as _, Write as _};
        let payload = vec![0xAB; 64];
        let mut r = ShortReader::new(&payload[..], 3);
        let mut buf = [0u8; 64];
        let n = loop {
            match r.read(&mut buf) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected: {e}"),
            }
        };
        assert!(n < 64, "single read must be short (got {n})");

        let mut w = ShortWriter::new(Vec::new(), 3);
        let n = loop {
            match w.write(&payload) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected: {e}"),
            }
        };
        assert!(n < 64, "single write must be short (got {n})");
    }

    /// Regression: `read_full` recovers the complete buffer through a
    /// stream that transfers 1–3 bytes per call and injects
    /// `Interrupted` errors. A non-looping implementation fails this
    /// (see `short_adapters_shorten_single_calls`).
    #[test]
    fn read_full_survives_short_reads() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for seed in 0..4 {
            let mut r = ShortReader::new(&payload[..], seed);
            let mut buf = vec![0u8; payload.len()];
            read_full(&mut r, &mut buf).unwrap();
            assert_eq!(buf, payload, "seed {seed}");
        }
        // A stream that ends early is an error, not a silent short fill.
        let mut r = ShortReader::new(&payload[..10], 1);
        let mut buf = vec![0u8; 20];
        let err = read_full(&mut r, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// Regression: `write_full` pushes the complete buffer through a
    /// sink that accepts 1–3 bytes per call and injects `Interrupted`.
    #[test]
    fn write_full_survives_short_writes() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for seed in 0..4 {
            let mut w = ShortWriter::new(Vec::new(), seed);
            write_full(&mut w, &payload).unwrap();
            assert_eq!(w.into_inner(), payload, "seed {seed}");
        }
    }

    #[test]
    fn fault_crash_drops_unsynced_tail() {
        let mut fs = FaultFs::new(1);
        fs.append("a", b"synced").unwrap();
        fs.sync("a").unwrap();
        fs.append("a", b"-not-synced").unwrap();
        fs.fault_crash();
        let data = fs.read("a").unwrap();
        assert!(data.starts_with(b"synced"), "synced prefix must survive");
        assert!(data.len() < b"synced-not-synced".len(), "some tail must be lost at seed 1");
    }

    #[test]
    fn crash_tear_is_deterministic() {
        let run = |seed| {
            let mut fs = FaultFs::new(seed);
            fs.append("a", b"synced").unwrap();
            fs.sync("a").unwrap();
            fs.append("a", b"0123456789abcdef").unwrap();
            fs.fault_crash();
            fs.read("a").unwrap().len()
        };
        assert_eq!(run(7), run(7));
        // Different seeds tear at different points (for at least one pair).
        assert!((0..8).map(run).collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn failed_sync_leaves_data_vulnerable() {
        let mut fs = FaultFs::new(2);
        fs.append("w", b"aaaa").unwrap();
        fs.sync("w").unwrap();
        fs.fault_fail_syncs(1);
        fs.append("w", b"bbbb").unwrap();
        assert!(fs.sync("w").is_err(), "scheduled sync failure");
        assert_eq!(fs.syncs_failed(), 1);
        assert_eq!(fs.durable_len("w"), 4);
        // A later sync succeeds and makes it durable.
        fs.sync("w").unwrap();
        assert_eq!(fs.durable_len("w"), 8);
    }

    #[test]
    fn rename_is_atomic_and_durable() {
        let mut fs = FaultFs::new(3);
        fs.append("tmp", b"contents").unwrap();
        fs.rename("tmp", "final").unwrap();
        fs.fault_crash();
        assert!(!fs.exists("tmp"));
        assert_eq!(fs.read("final").unwrap(), b"contents");
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut fs = FaultFs::new(4);
        fs.append("seg", &[0u8; 32]).unwrap();
        fs.sync("seg").unwrap();
        assert!(fs.fault_flip_bit("seg", 99));
        let data = fs.read("seg").unwrap();
        let ones: u32 = data.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
    }

    #[test]
    fn real_fs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("pbc-store-vfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut fs = RealFs::new(&dir).unwrap();
        fs.append("x.wal", b"hello ").unwrap();
        fs.append("x.wal", b"world").unwrap();
        fs.sync("x.wal").unwrap();
        assert_eq!(fs.read("x.wal").unwrap(), b"hello world");
        assert_eq!(fs.len("x.wal").unwrap(), 11);
        fs.truncate("x.wal", 5).unwrap();
        assert_eq!(fs.read("x.wal").unwrap(), b"hello");
        fs.rename("x.wal", "y.wal").unwrap();
        assert!(fs.exists("y.wal") && !fs.exists("x.wal"));
        assert_eq!(fs.list(), vec!["y.wal".to_string()]);
        // Fault hooks are no-ops on the real disk.
        fs.fault_crash();
        assert!(!fs.fault_flip_bit("y.wal", 1));
        assert_eq!(fs.read("y.wal").unwrap(), b"hello");
        fs.remove("y.wal").unwrap();
        fs.remove("y.wal").unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(&dir);
    }
}
