//! Segmented append-only block files with quarantine-on-rot recovery.
//!
//! Decided blocks land in the *open* segment (`open.blk`) as framed
//! records `[seq: u64 BE][len: u32 BE][crc32(seq‖payload): u32 BE]
//! [payload]`. When the open segment holds `records_per_segment`
//! records it is *sealed*: synced, then atomically renamed to
//! `seg-NNNNNN.blk`. Sealed ("cold") segments are immutable — the only
//! thing that can change them is the media itself, which is why
//! recovery re-checksums every frame:
//!
//! * a cold segment with any bad frame is **quarantined** — renamed to
//!   `quarantine-seg-NNNNNN.blk` and none of its blocks trusted. The
//!   store reports the gap; the node re-fills it from its own recovered
//!   consensus log or from peers via the protocol's normal catch-up
//!   path. Bit rot costs a re-fetch, never a wedged replica.
//! * the open segment is hot, so its final frame may be torn by a
//!   crash: a tail-shaped defect is truncated (or surfaced as
//!   [`StoreError::TornTail`](crate::StoreError) when truncation is
//!   disabled), while a mid-file defect quarantines the open segment
//!   like any other.
//!
//! If a seal-time `sync` fails (injected or real), the seal is simply
//! deferred — the segment stays open and oversized until a later append
//! manages to seal it. Renaming un-synced data would launder it into
//! durability, so the store never does.

use crate::vfs::Vfs;
use crate::{crc32, StoreError};

const OPEN_SEGMENT: &str = "open.blk";
const RECORD_HEADER: usize = 16; // seq u64 + len u32 + crc u32

/// Append-only block storage over a [`Vfs`], rotated into segments.
#[derive(Debug)]
pub struct SegmentStore {
    records_per_segment: usize,
    truncate_torn_tail: bool,
    next_seal: u64,
    open_records: usize,
}

/// What [`SegmentStore::recover`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct SegmentReport {
    /// Every trusted block, `(seq, payload)`, in on-disk order.
    pub blocks: Vec<(u64, Vec<u8>)>,
    /// File names of segments quarantined for failing their checksums.
    pub quarantined: Vec<String>,
    /// Sequence numbers that were readable inside quarantined segments
    /// (a lower bound on what was lost — torn frames are unreadable).
    pub lost_seqs: Vec<u64>,
    /// Whether a torn tail was truncated from the open segment.
    pub torn_tail_truncated: bool,
}

/// Outcome of parsing one segment file.
enum Parsed {
    /// All frames intact.
    Clean(Vec<(u64, Vec<u8>)>),
    /// Defect whose shape is "the file ends in a partial/damaged final
    /// frame": intact prefix + offset where the tear starts.
    TornTail(Vec<(u64, Vec<u8>)>, usize),
    /// Defect with trusted-looking bytes after it: the media lied.
    Corrupt(Vec<(u64, Vec<u8>)>),
}

fn parse_segment(data: &[u8]) -> Parsed {
    let mut blocks = Vec::new();
    let mut offset = 0usize;
    loop {
        if offset == data.len() {
            return Parsed::Clean(blocks);
        }
        if data.len() - offset < RECORD_HEADER {
            return Parsed::TornTail(blocks, offset);
        }
        let seq_bytes: [u8; 8] = data[offset..offset + 8].try_into().expect("8 bytes");
        let seq = u64::from_be_bytes(seq_bytes);
        let len =
            u32::from_be_bytes(data[offset + 8..offset + 12].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(data[offset + 12..offset + 16].try_into().expect("4 bytes"));
        let body_start = offset + RECORD_HEADER;
        if data.len() - body_start < len {
            return Parsed::TornTail(blocks, offset);
        }
        let payload = &data[body_start..body_start + len];
        let mut checked = Vec::with_capacity(8 + len);
        checked.extend_from_slice(&seq_bytes);
        checked.extend_from_slice(payload);
        if crc32(&checked) != crc {
            // Complete frame, bad CRC: torn only if nothing follows.
            return if body_start + len == data.len() {
                Parsed::TornTail(blocks, offset)
            } else {
                Parsed::Corrupt(blocks)
            };
        }
        blocks.push((seq, payload.to_vec()));
        offset = body_start + len;
    }
}

fn frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut checked = Vec::with_capacity(8 + payload.len());
    checked.extend_from_slice(&seq.to_be_bytes());
    checked.extend_from_slice(payload);
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(&checked).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

fn sealed_name(index: u64) -> String {
    format!("seg-{index:06}.blk")
}

impl SegmentStore {
    /// A store sealing segments every `records_per_segment` blocks.
    pub fn new(records_per_segment: usize, truncate_torn_tail: bool) -> Self {
        SegmentStore {
            records_per_segment: records_per_segment.max(1),
            truncate_torn_tail,
            next_seal: 0,
            open_records: 0,
        }
    }

    /// Scans every segment, quarantines rot, heals the open segment's
    /// torn tail, and returns everything trustworthy.
    pub fn recover(&mut self, vfs: &mut dyn Vfs) -> Result<SegmentReport, StoreError> {
        let mut report = SegmentReport::default();
        let mut max_index_seen: Option<u64> = None;
        for name in vfs.list() {
            // Sealed and quarantined names both pin the numbering so a
            // quarantined index is never reused for a fresh segment.
            for prefix in ["seg-", "quarantine-seg-"] {
                if let Some(idx) = name
                    .strip_prefix(prefix)
                    .and_then(|r| r.strip_suffix(".blk"))
                    .and_then(|d| d.parse::<u64>().ok())
                {
                    max_index_seen = Some(max_index_seen.map_or(idx, |m| m.max(idx)));
                }
            }
            if !(name.starts_with("seg-") && name.ends_with(".blk")) {
                continue;
            }
            let data = vfs.read(&name)?;
            match parse_segment(&data) {
                Parsed::Clean(blocks) => report.blocks.extend(blocks),
                // A sealed segment was fully synced before its rename;
                // ANY defect in one — tail-shaped or not — is rot.
                Parsed::TornTail(prefix_blocks, _) | Parsed::Corrupt(prefix_blocks) => {
                    report.lost_seqs.extend(prefix_blocks.iter().map(|(s, _)| *s));
                    let jail = format!("quarantine-{name}");
                    vfs.rename(&name, &jail)?;
                    report.quarantined.push(name);
                }
            }
        }
        self.next_seal = max_index_seen.map_or(0, |m| m + 1);
        self.open_records = 0;
        if vfs.exists(OPEN_SEGMENT) {
            let data = vfs.read(OPEN_SEGMENT)?;
            match parse_segment(&data) {
                Parsed::Clean(blocks) => {
                    self.open_records = blocks.len();
                    report.blocks.extend(blocks);
                }
                Parsed::TornTail(blocks, offset) => {
                    if !self.truncate_torn_tail {
                        return Err(StoreError::TornTail {
                            file: OPEN_SEGMENT.to_string(),
                            offset: offset as u64,
                        });
                    }
                    vfs.truncate(OPEN_SEGMENT, offset as u64)?;
                    vfs.sync(OPEN_SEGMENT)?;
                    report.torn_tail_truncated = true;
                    self.open_records = blocks.len();
                    report.blocks.extend(blocks);
                }
                Parsed::Corrupt(prefix_blocks) => {
                    report.lost_seqs.extend(prefix_blocks.iter().map(|(s, _)| *s));
                    let jail = format!("quarantine-open-{:06}.blk", self.next_seal);
                    vfs.rename(OPEN_SEGMENT, &jail)?;
                    report.quarantined.push(OPEN_SEGMENT.to_string());
                }
            }
        }
        Ok(report)
    }

    /// Appends one block to the open segment, sealing it if full. Not
    /// durable until [`SegmentStore::sync`] (or the seal's own sync).
    pub fn append(
        &mut self,
        vfs: &mut dyn Vfs,
        seq: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        vfs.append(OPEN_SEGMENT, &frame(seq, payload))?;
        self.open_records += 1;
        if self.open_records >= self.records_per_segment {
            // Seal: sync first, then the atomic rename. A failed sync
            // defers the seal rather than laundering un-synced bytes.
            if vfs.sync(OPEN_SEGMENT).is_ok() {
                vfs.rename(OPEN_SEGMENT, &sealed_name(self.next_seal))?;
                self.next_seal += 1;
                self.open_records = 0;
            }
        }
        Ok(())
    }

    /// Fsyncs the open segment (sealed segments are already durable).
    pub fn sync(&self, vfs: &mut dyn Vfs) -> Result<(), StoreError> {
        if vfs.exists(OPEN_SEGMENT) {
            vfs.sync(OPEN_SEGMENT)?;
        }
        Ok(())
    }

    /// Index the next sealed segment will take.
    pub fn next_seal_index(&self) -> u64 {
        self.next_seal
    }

    /// Records currently sitting in the open segment.
    pub fn open_records(&self) -> usize {
        self.open_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultFs;

    fn filled(fs: &mut FaultFs, per_seg: usize, n: u64) -> SegmentStore {
        let mut store = SegmentStore::new(per_seg, true);
        for seq in 0..n {
            store.append(fs, seq, format!("block-{seq}").as_bytes()).unwrap();
        }
        store.sync(fs).unwrap();
        store
    }

    #[test]
    fn seals_on_capacity_and_recovers_in_order() {
        let mut fs = FaultFs::new(10);
        let store = filled(&mut fs, 3, 8);
        assert_eq!(store.next_seal_index(), 2, "two sealed segments");
        assert_eq!(store.open_records(), 2);
        assert!(fs.exists("seg-000000.blk") && fs.exists("seg-000001.blk"));
        let mut fresh = SegmentStore::new(3, true);
        let report = fresh.recover(&mut fs).unwrap();
        assert_eq!(report.blocks.len(), 8);
        assert_eq!(
            report.blocks.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
        assert!(report.quarantined.is_empty());
        assert_eq!(fresh.next_seal_index(), 2);
        assert_eq!(fresh.open_records(), 2);
    }

    #[test]
    fn sealed_segments_survive_crash_open_tail_tears() {
        let mut fs = FaultFs::new(11);
        let mut store = SegmentStore::new(3, true);
        for seq in 0..7 {
            store.append(&mut fs, seq, b"payload").unwrap();
        }
        // Seqs 0..6 are sealed (two segments, durable via rename); seq 6
        // sits un-synced in the open segment.
        fs.fault_crash();
        let mut fresh = SegmentStore::new(3, true);
        let report = fresh.recover(&mut fs).unwrap();
        let seqs: Vec<u64> = report.blocks.iter().map(|(s, _)| *s).collect();
        assert!(seqs.len() >= 6, "sealed blocks must all survive, got {seqs:?}");
        assert_eq!(&seqs[..6], &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bit_rot_in_cold_segment_quarantines_it() {
        let mut fs = FaultFs::new(12);
        filled(&mut fs, 3, 8);
        assert!(fs.fault_flip_bit("seg-000000.blk", 77));
        let mut fresh = SegmentStore::new(3, true);
        let report = fresh.recover(&mut fs).unwrap();
        assert_eq!(report.quarantined, vec!["seg-000000.blk".to_string()]);
        assert!(fs.exists("quarantine-seg-000000.blk"));
        assert!(!fs.exists("seg-000000.blk"));
        // Blocks 3..8 still trusted; 0..3 gone (some may be in lost_seqs).
        let seqs: Vec<u64> = report.blocks.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6, 7]);
        // The quarantined index is never reused.
        assert_eq!(fresh.next_seal_index(), 2);
    }

    #[test]
    fn torn_open_tail_hard_errors_when_truncation_disabled() {
        let mut fs = FaultFs::new(13);
        let mut store = SegmentStore::new(100, true);
        store.append(&mut fs, 0, b"durable").unwrap();
        store.sync(&mut fs).unwrap();
        let keep = fs.durable_len(OPEN_SEGMENT);
        store.append(&mut fs, 1, b"torn-away").unwrap();
        fs.truncate(OPEN_SEGMENT, keep + 10).unwrap();
        let mut strict = SegmentStore::new(100, false);
        assert!(matches!(strict.recover(&mut fs), Err(StoreError::TornTail { .. })));
        let mut lenient = SegmentStore::new(100, true);
        let report = lenient.recover(&mut fs).unwrap();
        assert!(report.torn_tail_truncated);
        assert_eq!(report.blocks.len(), 1);
    }

    #[test]
    fn failed_seal_sync_defers_the_seal() {
        let mut fs = FaultFs::new(14);
        let mut store = SegmentStore::new(2, true);
        store.append(&mut fs, 0, b"a").unwrap();
        fs.fault_fail_syncs(1);
        store.append(&mut fs, 1, b"b").unwrap(); // seal attempt: sync fails
        assert!(!fs.exists("seg-000000.blk"), "no rename of un-synced data");
        assert_eq!(store.open_records(), 2);
        store.append(&mut fs, 2, b"c").unwrap(); // retries and succeeds
        assert!(fs.exists("seg-000000.blk"));
        assert_eq!(store.open_records(), 0);
    }

    #[test]
    fn append_resumes_after_recovery_without_seq_collision() {
        let mut fs = FaultFs::new(15);
        filled(&mut fs, 2, 5);
        let mut fresh = SegmentStore::new(2, true);
        let report = fresh.recover(&mut fs).unwrap();
        assert_eq!(report.blocks.len(), 5);
        fresh.append(&mut fs, 5, b"block-5").unwrap(); // fills + seals open
        fresh.sync(&mut fs).unwrap();
        let mut again = SegmentStore::new(2, true);
        let report = again.recover(&mut fs).unwrap();
        assert_eq!(
            report.blocks.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert!(report.quarantined.is_empty());
    }
}
