//! Write-temp-sync-rename: the one honest way to replace a file.
//!
//! A plain `std::fs::write` over an existing file can leave a torn mix
//! of old and new bytes after a crash. The POSIX idiom is: write the
//! full contents to a sibling temp file, `fsync` it, then atomically
//! `rename` over the destination — a reader observes either the old
//! file or the new one, never a splice. [`write_atomic`] packages that
//! idiom for every artifact the workspace writes (replay artifacts,
//! post-mortems, chrome traces, benchmark snapshots), and the segment
//! store uses the same rename trick (through [`Vfs`](crate::Vfs)) to
//! seal segments.

use std::io;
use std::path::Path;

/// Atomically replaces `path` with `contents`.
///
/// Writes to `<path>.tmp` in the same directory (so the rename cannot
/// cross filesystems), fsyncs the temp file, then renames it over
/// `path`. On any error the destination is untouched; a stale `.tmp`
/// may remain and is overwritten by the next attempt.
pub fn write_atomic(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable where we can; best-effort because
    // not every platform lets you open a directory for sync.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_existing_file_and_cleans_tmp() {
        let dir = std::env::temp_dir().join(format!("pbc-store-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("out.json");
        write_atomic(&target, b"first").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"first");
        write_atomic(&target, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"second, longer contents");
        assert!(!dir.join("out.json.tmp").exists(), "tmp file renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
