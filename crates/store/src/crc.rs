//! CRC32 (IEEE 802.3 polynomial), table-driven.
//!
//! The workspace is offline and dependency-free, so the checksum is
//! implemented here rather than pulled in. CRC32 is the classic
//! storage-integrity check: cheap, and a single flipped bit anywhere in
//! a record changes the value — exactly the bit-rot detector the
//! segment store needs. (It is *not* cryptographic; tamper-evidence is
//! the ledger's Merkle commitments, not the store's job.)

/// Reflected CRC32 with the IEEE polynomial `0xEDB88320`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

/// The 256-entry lookup table, computed at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0xABu8; 64];
        let base = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
