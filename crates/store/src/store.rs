//! One node's durable state: a checkpoint WAL plus a block segment
//! store, recovered together by a staged replay.
//!
//! The [`NodeStore`] persists two things:
//!
//! * **checkpoints** — opaque encoded consensus state, appended to
//!   `checkpoint.wal`; the last durable record wins. The log is
//!   compacted (rewritten to its final record via atomic rename) when
//!   it grows past a threshold.
//! * **blocks** — `(seq, payload)` pairs appended to the segment store,
//!   guarded by a `persisted` watermark set so re-offering an
//!   already-persisted sequence is a cheap no-op. That watermark is
//!   what makes quarantine recovery graceful: when a rotted segment is
//!   jailed, its sequences drop out of the set, and the node's next
//!   persistence pass re-appends them from its recovered in-memory log
//!   (or from state re-fetched via the protocol's catch-up path).
//!
//! [`NodeStore::reopen`] is the staged replay: scan and checksum every
//! segment (quarantining rot) → read the WAL, truncating a torn tail →
//! adopt the last durable checkpoint → rebuild the watermark. Every
//! stage only *removes* untrustworthy bytes or renames files atomically,
//! so recovery is idempotent — crashing in the middle of it and running
//! it again reaches the same state, which the crash-during-recovery
//! chaos tests exercise.

use std::collections::BTreeMap;
use std::io;

use crate::segment::SegmentStore;
use crate::vfs::Vfs;
use crate::wal::Wal;

const CHECKPOINT_WAL: &str = "checkpoint.wal";

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed (including injected
    /// sync failures).
    Io(io::Error),
    /// A file ends in a partial or damaged final record and torn-tail
    /// truncation is disabled.
    TornTail {
        /// File with the torn tail.
        file: String,
        /// Byte offset where the torn frame starts.
        offset: u64,
    },
    /// A checksum failed somewhere other than a torn tail — the media
    /// corrupted history that was once durable.
    Corrupt {
        /// File with the bad frame.
        file: String,
        /// Byte offset of the frame that failed its checksum.
        offset: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::TornTail { file, offset } => {
                write!(f, "torn tail in {file} at byte {offset} (truncation disabled)")
            }
            StoreError::Corrupt { file, offset } => {
                write!(f, "corrupt frame in {file} at byte {offset}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Tuning knobs for a [`NodeStore`].
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Blocks per sealed segment.
    pub records_per_segment: usize,
    /// Whether recovery truncates a torn final record (the production
    /// setting). Disabled only by tests proving the truncation matters.
    pub truncate_torn_tail: bool,
    /// Checkpoint-WAL record count that triggers compaction.
    pub wal_compact_threshold: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { records_per_segment: 4, truncate_torn_tail: true, wal_compact_threshold: 8 }
    }
}

/// What a staged [`NodeStore::reopen`] found and repaired.
#[derive(Clone, Debug, Default)]
pub struct Recovery {
    /// The last durable checkpoint, if any survived.
    pub checkpoint: Option<Vec<u8>>,
    /// Checkpoint records that were readable in the WAL.
    pub checkpoints_seen: usize,
    /// Every trusted block, sorted by sequence (duplicates last-wins).
    pub blocks: Vec<(u64, Vec<u8>)>,
    /// Whether a torn tail was truncated from the checkpoint WAL.
    pub wal_torn_tail: bool,
    /// Whether a torn tail was truncated from the open block segment.
    pub open_torn_tail: bool,
    /// Segment files quarantined for failing their checksums.
    pub quarantined: Vec<String>,
    /// Sequence numbers known lost to quarantine (lower bound).
    pub lost_seqs: Vec<u64>,
}

impl Recovery {
    /// True if recovery had to repair or jail anything.
    pub fn degraded(&self) -> bool {
        self.wal_torn_tail || self.open_torn_tail || !self.quarantined.is_empty()
    }
}

/// Durable state for one replica, over any [`Vfs`].
pub struct NodeStore {
    vfs: Box<dyn Vfs>,
    cfg: StoreConfig,
    wal: Wal,
    segments: SegmentStore,
    persisted: BTreeMap<u64, ()>,
    wal_records: usize,
    rng: u64,
}

impl std::fmt::Debug for NodeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeStore")
            .field("cfg", &self.cfg)
            .field("blocks", &self.persisted.len())
            .field("wal_records", &self.wal_records)
            .finish()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl NodeStore {
    /// Opens a store over `vfs`, running staged recovery immediately.
    pub fn open(vfs: Box<dyn Vfs>, cfg: StoreConfig) -> Result<(NodeStore, Recovery), StoreError> {
        let mut store = NodeStore {
            vfs,
            cfg,
            wal: Wal::new(CHECKPOINT_WAL),
            segments: SegmentStore::new(cfg.records_per_segment, cfg.truncate_torn_tail),
            persisted: BTreeMap::new(),
            wal_records: 0,
            rng: 0x5704_E000_0000_0001,
        };
        let recovery = store.reopen()?;
        Ok((store, recovery))
    }

    /// The staged replay: segments → WAL → checkpoint → watermark.
    ///
    /// Idempotent: each stage only truncates torn bytes or renames
    /// atomically, so a crash mid-recovery re-runs to the same state.
    pub fn reopen(&mut self) -> Result<Recovery, StoreError> {
        self.segments =
            SegmentStore::new(self.cfg.records_per_segment, self.cfg.truncate_torn_tail);
        let seg_report = self.segments.recover(self.vfs.as_mut())?;
        let wal_rec = self.wal.read(self.vfs.as_mut(), self.cfg.truncate_torn_tail)?;
        let mut blocks: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (seq, payload) in seg_report.blocks {
            blocks.insert(seq, payload);
        }
        self.persisted = blocks.keys().map(|&s| (s, ())).collect();
        self.wal_records = wal_rec.records.len();
        Ok(Recovery {
            checkpoint: wal_rec.records.last().cloned(),
            checkpoints_seen: wal_rec.records.len(),
            blocks: blocks.into_iter().collect(),
            wal_torn_tail: wal_rec.torn_tail,
            open_torn_tail: seg_report.torn_tail_truncated,
            quarantined: seg_report.quarantined,
            lost_seqs: seg_report.lost_seqs,
        })
    }

    /// Appends a checkpoint record (durable after [`NodeStore::sync`]),
    /// compacting the WAL when it grows past the threshold.
    pub fn put_checkpoint(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        if self.wal_records + 1 > self.cfg.wal_compact_threshold {
            // Compaction IS the durability point for this record: the
            // rewrite ends in sync + atomic rename.
            self.wal.rewrite(self.vfs.as_mut(), std::slice::from_ref(&bytes.to_vec()))?;
            self.wal_records = 1;
            return Ok(());
        }
        self.wal.append(self.vfs.as_mut(), bytes)?;
        self.wal_records += 1;
        Ok(())
    }

    /// Appends a block unless that sequence is already persisted.
    /// Returns whether an append happened.
    pub fn append_block(&mut self, seq: u64, payload: &[u8]) -> Result<bool, StoreError> {
        if self.persisted.contains_key(&seq) {
            return Ok(false);
        }
        self.segments.append(self.vfs.as_mut(), seq, payload)?;
        self.persisted.insert(seq, ());
        Ok(true)
    }

    /// Fsyncs the WAL and the open segment. A failure (injected or
    /// real) leaves recent appends vulnerable to the next crash — the
    /// caller keeps running; that exposure is the fault model.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync(self.vfs.as_mut())?;
        self.segments.sync(self.vfs.as_mut())?;
        Ok(())
    }

    /// Whether `seq` is persisted (durably or pending sync).
    pub fn has_block(&self, seq: u64) -> bool {
        self.persisted.contains_key(&seq)
    }

    /// Number of distinct block sequences persisted.
    pub fn blocks_persisted(&self) -> usize {
        self.persisted.len()
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Direct access to the underlying filesystem (tests, harnesses).
    pub fn vfs_mut(&mut self) -> &mut dyn Vfs {
        self.vfs.as_mut()
    }

    // -- fault entry points (no-ops where the Vfs doesn't inject) -----

    /// Simulates power loss: un-synced tails tear at seeded points.
    pub fn fault_crash(&mut self) {
        self.vfs.fault_crash();
    }

    /// Makes the next `n` syncs fail.
    pub fn fault_fail_syncs(&mut self, n: u32) {
        self.vfs.fault_fail_syncs(n);
    }

    /// Flips a seeded bit inside the *final* WAL record's CRC/payload
    /// region — the "tail rotted between crash and restart" fault.
    /// Returns whether anything was flipped. Targets only the last
    /// frame (and never its length field) so the damage presents as a
    /// torn tail, which is exactly what recovery must absorb.
    pub fn fault_corrupt_wal_tail(&mut self, seed: u64) -> bool {
        let Ok(data) = self.vfs.read(CHECKPOINT_WAL) else {
            return false;
        };
        // Walk frames to find where the last one starts.
        let mut offset = 0usize;
        let mut last: Option<(usize, usize)> = None; // (start, payload len)
        while data.len() - offset >= 8 {
            let len = u32::from_be_bytes([
                data[offset],
                data[offset + 1],
                data[offset + 2],
                data[offset + 3],
            ]) as usize;
            if data.len() - offset - 8 < len {
                break;
            }
            last = Some((offset, len));
            offset += 8 + len;
        }
        let Some((start, len)) = last else {
            return false;
        };
        // Flippable region: the 4 CRC bytes + payload (len field excluded).
        let region = 4 + len;
        let mut state = self.rng ^ seed;
        let bit = splitmix64(&mut state) % (region as u64 * 8);
        self.rng = self.rng.wrapping_add(splitmix64(&mut state));
        let byte_at = start + 4 + (bit / 8) as usize;
        let flipped = data[byte_at] ^ (1 << (bit % 8));
        self.vfs.write_at(CHECKPOINT_WAL, byte_at as u64, &[flipped]).is_ok()
    }

    /// Flips a seeded bit in a seeded *sealed* segment — cold-storage
    /// bit rot. Returns `false` when no sealed segment exists yet (or
    /// the Vfs cannot inject).
    pub fn fault_bit_rot(&mut self, seed: u64) -> bool {
        let sealed: Vec<String> = self
            .vfs
            .list()
            .into_iter()
            .filter(|n| n.starts_with("seg-") && n.ends_with(".blk"))
            .collect();
        if sealed.is_empty() {
            return false;
        }
        let mut state = self.rng ^ seed;
        let pick = (splitmix64(&mut state) % sealed.len() as u64) as usize;
        self.rng = self.rng.wrapping_add(splitmix64(&mut state));
        self.vfs.fault_flip_bit(&sealed[pick], seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultFs;

    fn open_fault(seed: u64, cfg: StoreConfig) -> (NodeStore, FaultFs) {
        let fs = FaultFs::new(seed);
        let (store, rec) = NodeStore::open(Box::new(fs.clone()), cfg).unwrap();
        assert!(rec.checkpoint.is_none() && rec.blocks.is_empty());
        (store, fs)
    }

    #[test]
    fn checkpoint_last_durable_wins() {
        let (mut store, _fs) = open_fault(1, StoreConfig::default());
        store.put_checkpoint(b"cp-1").unwrap();
        store.put_checkpoint(b"cp-2").unwrap();
        store.sync().unwrap();
        store.put_checkpoint(b"cp-3-never-synced").unwrap();
        store.fault_crash();
        let rec = store.reopen().unwrap();
        let cp = rec.checkpoint.unwrap();
        assert!(cp == b"cp-2" || cp == b"cp-3-never-synced");
        assert!(cp != b"cp-1");
    }

    #[test]
    fn torn_wal_tail_degrades_to_previous_checkpoint() {
        // Find a seed whose crash tears cp-2 mid-record; recovery must
        // fall back to cp-1, not error and not replay garbage.
        let mut exercised = false;
        for seed in 0..32u64 {
            let (mut store, _fs) = open_fault(seed, StoreConfig::default());
            store.put_checkpoint(b"cp-1-durable").unwrap();
            store.sync().unwrap();
            store.fault_fail_syncs(1);
            store.put_checkpoint(b"cp-2-will-tear").unwrap();
            let _ = store.sync(); // injected failure
            store.fault_crash();
            let rec = store.reopen().unwrap();
            match rec.checkpoint.as_deref() {
                Some(b"cp-1-durable") => {
                    if rec.wal_torn_tail {
                        exercised = true;
                    }
                }
                Some(b"cp-2-will-tear") => {} // tail happened to fully survive
                other => panic!("seed {seed}: unexpected checkpoint {other:?}"),
            }
        }
        assert!(exercised, "no seed in 0..32 produced a mid-record tear");
    }

    #[test]
    fn blocks_survive_crash_and_watermark_rebuilds() {
        let (mut store, _fs) = open_fault(3, StoreConfig::default());
        for seq in 0..10u64 {
            store.append_block(seq, format!("b{seq}").as_bytes()).unwrap();
        }
        store.sync().unwrap();
        assert!(!store.append_block(7, b"dup").unwrap(), "watermark rejects duplicates");
        store.fault_crash();
        let rec = store.reopen().unwrap();
        assert_eq!(rec.blocks.len(), 10);
        assert_eq!(rec.blocks[7].1, b"b7".to_vec());
        assert!(store.has_block(9));
        assert!(!store.append_block(5, b"dup").unwrap(), "rebuilt watermark still rejects");
        assert!(store.append_block(10, b"b10").unwrap());
    }

    #[test]
    fn quarantined_blocks_can_be_refilled() {
        let (mut store, _fs) = open_fault(4, StoreConfig::default());
        for seq in 0..8u64 {
            store.append_block(seq, format!("b{seq}").as_bytes()).unwrap();
        }
        store.sync().unwrap();
        assert!(store.fault_bit_rot(0x0B17), "a sealed segment must exist to rot");
        let rec = store.reopen().unwrap();
        assert_eq!(rec.quarantined.len(), 1);
        let lost: Vec<u64> = (0..8).filter(|s| !rec.blocks.iter().any(|(q, _)| q == s)).collect();
        assert!(!lost.is_empty(), "quarantine must have cost some blocks");
        // Graceful degradation: the caller re-offers everything; only
        // the lost seqs actually re-append.
        for seq in 0..8u64 {
            let appended = store.append_block(seq, format!("b{seq}").as_bytes()).unwrap();
            assert_eq!(appended, lost.contains(&seq), "seq {seq}");
        }
        store.sync().unwrap();
        let rec = store.reopen().unwrap();
        assert_eq!(rec.blocks.len(), 8, "all blocks back after refill");
    }

    #[test]
    fn corrupt_wal_tail_presents_as_torn_not_fatal() {
        let (mut store, _fs) = open_fault(5, StoreConfig::default());
        store.put_checkpoint(b"cp-old").unwrap();
        store.put_checkpoint(b"cp-new").unwrap();
        store.sync().unwrap();
        assert!(store.fault_corrupt_wal_tail(0xC0FF));
        let rec = store.reopen().unwrap();
        assert!(rec.wal_torn_tail, "tail rot must classify as torn");
        assert_eq!(rec.checkpoint.as_deref(), Some(b"cp-old".as_slice()));
    }

    #[test]
    fn recovery_is_idempotent_under_crash_during_recovery() {
        let (mut store, _fs) = open_fault(6, StoreConfig::default());
        for seq in 0..9u64 {
            store.append_block(seq, b"blk").unwrap();
        }
        store.put_checkpoint(b"cp").unwrap();
        store.sync().unwrap();
        store.fault_fail_syncs(1);
        store.put_checkpoint(b"cp-torn").unwrap();
        let _ = store.sync();
        store.fault_crash();
        // First recovery repairs; crash immediately after (mid-replay
        // from the caller's perspective) and recover again — the second
        // pass must land in the identical state.
        let first = store.reopen().unwrap();
        store.fault_crash();
        let second = store.reopen().unwrap();
        assert_eq!(first.checkpoint, second.checkpoint);
        assert_eq!(first.blocks, second.blocks);
        assert!(!second.wal_torn_tail, "first pass already truncated the tear");
    }

    #[test]
    fn wal_compaction_bounds_growth_and_keeps_latest() {
        let cfg = StoreConfig { wal_compact_threshold: 4, ..StoreConfig::default() };
        let (mut store, fs) = open_fault(7, cfg);
        for i in 0..20u32 {
            store.put_checkpoint(format!("cp-{i}").as_bytes()).unwrap();
            store.sync().unwrap();
        }
        let wal_len = fs.len(CHECKPOINT_WAL).unwrap();
        assert!(wal_len < 20 * 12, "wal stayed bounded, got {wal_len}");
        let rec = store.reopen().unwrap();
        assert_eq!(rec.checkpoint.as_deref(), Some(b"cp-19".as_slice()));
    }

    #[test]
    fn real_fs_end_to_end() {
        let dir = std::env::temp_dir().join(format!("pbc-store-e2e-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = crate::RealFs::new(&dir).unwrap();
        let (mut store, rec) = NodeStore::open(Box::new(fs), StoreConfig::default()).unwrap();
        assert!(rec.checkpoint.is_none());
        for seq in 0..6u64 {
            store.append_block(seq, format!("real-{seq}").as_bytes()).unwrap();
        }
        store.put_checkpoint(b"real-cp").unwrap();
        store.sync().unwrap();
        drop(store);
        // Cold reopen from disk, as a restarted process would.
        let fs = crate::RealFs::new(&dir).unwrap();
        let (_store, rec) = NodeStore::open(Box::new(fs), StoreConfig::default()).unwrap();
        assert_eq!(rec.checkpoint.as_deref(), Some(b"real-cp".as_slice()));
        assert_eq!(rec.blocks.len(), 6);
        assert_eq!(rec.blocks[3].1, b"real-3".to_vec());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
