//! The write-ahead log: length-prefixed, CRC-framed, torn-tail aware.
//!
//! Every record is appended as one frame:
//!
//! ```text
//! [payload len: u32 BE][crc32(payload): u32 BE][payload bytes]
//! ```
//!
//! A crash mid-append leaves a *prefix* of the final frame on disk (the
//! torn tail). Recovery walks the frames from the start and classifies
//! what it finds:
//!
//! * a structurally incomplete final frame (header cut short, or fewer
//!   payload bytes than the header promises), **or** a complete final
//!   frame whose CRC fails (a sector-granularity tear can persist
//!   garbage past the torn point) → **torn tail**: truncated away when
//!   [`Wal::read`] is told to, surfaced as
//!   [`StoreError::TornTail`](crate::StoreError) when not — the switch
//!   exists so a test can prove the truncation is load-bearing;
//! * a CRC failure on any frame *before* the last → **corruption**
//!   ([`StoreError::Corrupt`](crate::StoreError)): the log's history
//!   itself is damaged and replaying past the hole would be a lie.

use crate::vfs::Vfs;
use crate::{crc32, StoreError};

/// A framed append-only log stored in a single [`Vfs`] file.
///
/// `Wal` holds only the file name; the caller threads its `Vfs` through
/// each call, so one filesystem can host many logs.
#[derive(Clone, Debug)]
pub struct Wal {
    path: String,
}

/// What [`Wal::read`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct WalRecovery {
    /// The payloads of every intact frame, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn tail was found (and, if truncation was enabled,
    /// removed).
    pub torn_tail: bool,
    /// Bytes of torn tail dropped from the end of the file.
    pub truncated_bytes: u64,
}

const FRAME_HEADER: usize = 8;

impl Wal {
    /// A log stored at `path` (relative, inside the store's [`Vfs`]).
    pub fn new(path: impl Into<String>) -> Self {
        Wal { path: path.into() }
    }

    /// The file name this log lives in.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Appends one framed record. Not durable until [`Wal::sync`].
    pub fn append(&self, vfs: &mut dyn Vfs, payload: &[u8]) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(payload).to_be_bytes());
        frame.extend_from_slice(payload);
        vfs.append(&self.path, &frame)?;
        Ok(())
    }

    /// Fsyncs the log file (a log never written to is trivially synced).
    pub fn sync(&self, vfs: &mut dyn Vfs) -> Result<(), StoreError> {
        if vfs.exists(&self.path) {
            vfs.sync(&self.path)?;
        }
        Ok(())
    }

    /// Reads every intact record, handling a torn tail.
    ///
    /// With `truncate_torn_tail` the torn bytes are cut off and synced
    /// away so the next append starts on a clean frame boundary;
    /// without it a torn tail is a hard [`StoreError::TornTail`]. A
    /// missing file reads as an empty log.
    pub fn read(
        &self,
        vfs: &mut dyn Vfs,
        truncate_torn_tail: bool,
    ) -> Result<WalRecovery, StoreError> {
        let data = if vfs.exists(&self.path) { vfs.read(&self.path)? } else { Vec::new() };
        let mut rec = WalRecovery::default();
        let mut offset = 0usize;
        // Parse frames until the end or a defect.
        let defect = loop {
            if offset == data.len() {
                break None;
            }
            if data.len() - offset < FRAME_HEADER {
                break Some(offset); // header cut short
            }
            let len = u32::from_be_bytes([
                data[offset],
                data[offset + 1],
                data[offset + 2],
                data[offset + 3],
            ]) as usize;
            let crc = u32::from_be_bytes([
                data[offset + 4],
                data[offset + 5],
                data[offset + 6],
                data[offset + 7],
            ]);
            let body_start = offset + FRAME_HEADER;
            if data.len() - body_start < len {
                break Some(offset); // payload cut short
            }
            let payload = &data[body_start..body_start + len];
            if crc32(payload) != crc {
                break Some(offset); // checksum failure
            }
            rec.records.push(payload.to_vec());
            offset = body_start + len;
        };
        let Some(bad_at) = defect else {
            return Ok(rec);
        };
        // A defect that is not the last thing in the file means an
        // intact-looking frame was parsed *after* garbage would have
        // started — impossible here because parsing stops at the first
        // defect. So: the defect reaches EOF ⇒ torn tail; to tell a
        // mid-file corruption from a tear we check whether the bytes
        // from the defect onward could be a single partial/damaged
        // final frame. A tear always ends the file, so any defect is
        // positionally a "tail"; we distinguish by *shape*: a complete
        // frame whose CRC fails AND that is followed by more bytes is
        // mid-file corruption.
        let complete_frame_len = if data.len() - bad_at >= FRAME_HEADER {
            let len = u32::from_be_bytes([
                data[bad_at],
                data[bad_at + 1],
                data[bad_at + 2],
                data[bad_at + 3],
            ]) as usize;
            (data.len() - bad_at - FRAME_HEADER >= len).then(|| FRAME_HEADER + len)
        } else {
            None
        };
        if let Some(flen) = complete_frame_len {
            if bad_at + flen < data.len() {
                return Err(StoreError::Corrupt { file: self.path.clone(), offset: bad_at as u64 });
            }
        }
        rec.torn_tail = true;
        rec.truncated_bytes = (data.len() - bad_at) as u64;
        if !truncate_torn_tail {
            return Err(StoreError::TornTail { file: self.path.clone(), offset: bad_at as u64 });
        }
        vfs.truncate(&self.path, bad_at as u64)?;
        vfs.sync(&self.path)?;
        Ok(rec)
    }

    /// Rewrites the log to contain only `records`, via the atomic
    /// temp-sync-rename idiom (used for compaction, so the checkpoint
    /// log does not grow without bound).
    pub fn rewrite(&self, vfs: &mut dyn Vfs, records: &[Vec<u8>]) -> Result<(), StoreError> {
        let tmp = format!("{}.tmp", self.path);
        let mut bytes = Vec::new();
        for payload in records {
            bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            bytes.extend_from_slice(&crc32(payload).to_be_bytes());
            bytes.extend_from_slice(payload);
        }
        if vfs.exists(&tmp) {
            vfs.remove(&tmp)?;
        }
        vfs.append(&tmp, &bytes)?;
        vfs.sync(&tmp)?;
        vfs.rename(&tmp, &self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::FaultFs;

    fn wal_fs() -> (Wal, FaultFs) {
        (Wal::new("test.wal"), FaultFs::new(0xDEAD))
    }

    #[test]
    fn roundtrip_multiple_records() {
        let (wal, mut fs) = wal_fs();
        for payload in [b"alpha".as_slice(), b"", b"gamma-longer-record"] {
            wal.append(&mut fs, payload).unwrap();
        }
        wal.sync(&mut fs).unwrap();
        let rec = wal.read(&mut fs, true).unwrap();
        assert_eq!(
            rec.records,
            vec![b"alpha".to_vec(), b"".to_vec(), b"gamma-longer-record".to_vec()]
        );
        assert!(!rec.torn_tail);
    }

    #[test]
    fn torn_tail_truncated_and_log_reusable() {
        let (wal, mut fs) = wal_fs();
        wal.append(&mut fs, b"durable-record").unwrap();
        wal.sync(&mut fs).unwrap();
        let synced = fs.durable_len("test.wal");
        // Tear mid-record: keep the header plus 3 payload bytes.
        wal.append(&mut fs, b"lost-to-the-crash").unwrap();
        fs.truncate("test.wal", synced + 8 + 3).unwrap();
        let rec = wal.read(&mut fs, true).unwrap();
        assert_eq!(rec.records, vec![b"durable-record".to_vec()]);
        assert!(rec.torn_tail);
        assert_eq!(rec.truncated_bytes, 11);
        // After truncation the log appends cleanly again.
        wal.append(&mut fs, b"after-recovery").unwrap();
        wal.sync(&mut fs).unwrap();
        let rec = wal.read(&mut fs, true).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert!(!rec.torn_tail);
    }

    #[test]
    fn torn_header_truncated() {
        let (wal, mut fs) = wal_fs();
        wal.append(&mut fs, b"ok").unwrap();
        let len = fs.len("test.wal").unwrap();
        wal.append(&mut fs, b"xx").unwrap();
        fs.truncate("test.wal", len + 5).unwrap(); // 5 of 8 header bytes
        let rec = wal.read(&mut fs, true).unwrap();
        assert_eq!(rec.records, vec![b"ok".to_vec()]);
        assert!(rec.torn_tail);
    }

    #[test]
    fn torn_tail_without_truncation_is_an_error() {
        // The companion test that proves truncation is load-bearing:
        // the exact same on-disk state is fatal when truncation is off.
        let (wal, mut fs) = wal_fs();
        wal.append(&mut fs, b"durable-record").unwrap();
        wal.sync(&mut fs).unwrap();
        let synced = fs.durable_len("test.wal");
        wal.append(&mut fs, b"lost-to-the-crash").unwrap();
        fs.truncate("test.wal", synced + 8 + 3).unwrap();
        match wal.read(&mut fs, false) {
            Err(StoreError::TornTail { offset, .. }) => assert_eq!(offset, synced),
            other => panic!("expected TornTail, got {other:?}"),
        }
    }

    #[test]
    fn crash_via_faultfs_tears_only_unsynced_tail() {
        let (wal, mut fs) = wal_fs();
        wal.append(&mut fs, b"record-one").unwrap();
        wal.sync(&mut fs).unwrap();
        fs.fault_fail_syncs(1);
        wal.append(&mut fs, b"record-two").unwrap();
        assert!(wal.sync(&mut fs).is_err());
        fs.fault_crash();
        let rec = wal.read(&mut fs, true).unwrap();
        assert_eq!(rec.records[0], b"record-one".to_vec());
        assert!(rec.records.len() <= 2, "tail either torn away or fully survived");
    }

    #[test]
    fn mid_file_corruption_is_fatal_not_torn() {
        let (wal, mut fs) = wal_fs();
        wal.append(&mut fs, b"first-record").unwrap();
        wal.append(&mut fs, b"second-record").unwrap();
        wal.sync(&mut fs).unwrap();
        // Flip a payload byte of the FIRST record (offset 8 is its body).
        fs.write_at("test.wal", 9, &[0xFF]).unwrap();
        match wal.read(&mut fs, true) {
            Err(StoreError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_crc_final_complete_frame_is_torn() {
        // Sector-granularity tears can persist garbage past the torn
        // point — a complete final frame with a bad CRC is dropped.
        let (wal, mut fs) = wal_fs();
        wal.append(&mut fs, b"keep-me").unwrap();
        let keep = fs.len("test.wal").unwrap();
        wal.append(&mut fs, b"damaged").unwrap();
        let end = fs.len("test.wal").unwrap();
        fs.write_at("test.wal", end - 1, &[0x00]).unwrap();
        let rec = wal.read(&mut fs, true).unwrap();
        assert_eq!(rec.records, vec![b"keep-me".to_vec()]);
        assert!(rec.torn_tail);
        assert_eq!(fs.len("test.wal").unwrap(), keep);
    }

    #[test]
    fn rewrite_compacts_to_given_records() {
        let (wal, mut fs) = wal_fs();
        for i in 0..10u8 {
            wal.append(&mut fs, &[i; 100]).unwrap();
        }
        wal.sync(&mut fs).unwrap();
        wal.rewrite(&mut fs, &[vec![9u8; 100]]).unwrap();
        let rec = wal.read(&mut fs, true).unwrap();
        assert_eq!(rec.records, vec![vec![9u8; 100]]);
        // Rename made it durable: a crash changes nothing.
        fs.fault_crash();
        assert_eq!(wal.read(&mut fs, true).unwrap().records.len(), 1);
    }

    #[test]
    fn missing_file_reads_empty() {
        let (wal, mut fs) = wal_fs();
        let rec = wal.read(&mut fs, true).unwrap();
        assert!(rec.records.is_empty() && !rec.torn_tail);
    }
}
