//! Property suite for the wire layer, mirroring `pbc-vm`'s
//! `DecodeError` tests: decoders must reject — never panic on, never
//! misread — truncated frames, trailing garbage, absurd lengths, and
//! handshake junk. Frames additionally must reject bad input *before*
//! allocating, which `frame_len_rejects_before_allocation` pins by
//! feeding a header that advertises `u32::MAX` bytes.

use pbc_consensus::pbft::PbftMsg;
use pbc_consensus::WireMsg;
use pbc_net::{frame, frame_len, Hello, WireError, DEFAULT_MAX_FRAME};
use proptest::prelude::*;

/// A valid message to mutate: exercises every `PbftMsg` variant.
fn sample_msgs() -> Vec<PbftMsg<u64>> {
    vec![
        PbftMsg::Request(7),
        PbftMsg::PrePrepare { view: 1, seq: 2, payload: 3 },
        PbftMsg::Prepare { view: 1, seq: 2, digest: 0xDEAD },
        PbftMsg::Commit { view: 1, seq: 2, digest: 0xBEEF },
        PbftMsg::ViewChange { new_view: 4, prepared: vec![(0, 10), (1, 11)], delivered: 1 },
        PbftMsg::NewView { view: 4, proposals: vec![(2, 12)] },
        PbftMsg::Decided { seq: 9, payload: 99 },
    ]
}

proptest! {
    /// Random bytes never panic the message decoder, and only an exact
    /// re-encoding of a real message decodes successfully.
    #[test]
    fn message_decoder_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Some(msg) = PbftMsg::<u64>::from_wire(&raw) {
            // Whatever decoded must re-encode to exactly the input —
            // the codec admits no two spellings of one message.
            prop_assert_eq!(msg.to_wire(), raw);
        }
    }

    /// Random bytes never panic the handshake decoder; anything that
    /// is not exactly a well-formed `Hello` is an error.
    #[test]
    fn hello_decoder_never_panics(raw in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(hello) = Hello::decode(&raw) {
            prop_assert_eq!(hello.encode().as_slice(), raw.as_slice());
        }
    }

    /// Every proper prefix of a valid encoding is rejected (truncated
    /// frame), and any appended byte is rejected (trailing garbage).
    #[test]
    fn truncation_and_garbage_rejected(pick in 0usize..7, extra in any::<u8>()) {
        let msg = &sample_msgs()[pick];
        let wire = msg.to_wire();
        for cut in 0..wire.len() {
            prop_assert!(
                PbftMsg::<u64>::from_wire(&wire[..cut]).is_none(),
                "prefix of length {} decoded",
                cut
            );
        }
        let mut padded = wire.clone();
        padded.push(extra);
        prop_assert!(PbftMsg::<u64>::from_wire(&padded).is_none(), "trailing byte accepted");
    }

    /// A length header is judged before any allocation: zero and
    /// over-cap lengths are typed errors straight from the 4 header
    /// bytes, for every cap.
    #[test]
    fn frame_len_rejects_before_allocation(cap in 1usize..4096) {
        prop_assert!(matches!(
            frame_len([0, 0, 0, 0], cap),
            Err(WireError::ZeroFrame)
        ));
        let absurd = u32::MAX.to_be_bytes();
        prop_assert!(matches!(
            frame_len(absurd, cap),
            Err(WireError::Oversized { len, max }) if len == u32::MAX as usize && max == cap
        ));
        let just_over = ((cap as u32) + 1).to_be_bytes();
        prop_assert!(matches!(
            frame_len(just_over, cap),
            Err(WireError::Oversized { .. })
        ));
        let at_cap = (cap as u32).to_be_bytes();
        prop_assert_eq!(frame_len(at_cap, cap).unwrap(), cap);
    }

    /// Framing a message and stripping the header roundtrips, and the
    /// outbound path refuses to build an over-cap frame.
    #[test]
    fn frame_roundtrip_and_outbound_cap(pick in 0usize..7) {
        let wire = sample_msgs()[pick].to_wire();
        let framed = frame(&wire, DEFAULT_MAX_FRAME).unwrap();
        prop_assert_eq!(&framed[4..], wire.as_slice());
        let mut header = [0u8; 4];
        header.copy_from_slice(&framed[..4]);
        prop_assert_eq!(frame_len(header, DEFAULT_MAX_FRAME).unwrap(), wire.len());
        prop_assert!(matches!(
            frame(&wire, wire.len().saturating_sub(1)),
            Err(WireError::Oversized { .. })
        ));
    }
}
