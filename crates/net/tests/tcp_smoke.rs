//! Live-socket smoke tests: a real PBFT cluster on localhost TCP.
//!
//! These run the registry's actual `PbftReplica` actors under the
//! deployment runtime with a `u64` payload — the smallest end-to-end
//! proof that frames, handshakes, timers, and effect routing compose
//! into a working ordering service. The full sim-vs-TCP cross-check
//! (batch payloads, seals, node kill) lives in `tests/real_net.rs` at
//! the workspace root.

use pbc_consensus::run_real;
use pbc_net::{
    frame, genesis_digest, read_frame, write_frame, Hello, NetRunner, CLIENT_NODE,
    DEFAULT_MAX_FRAME,
};
use std::io::Read;
use std::net::TcpStream;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(30);

#[test]
fn four_node_pbft_commits_over_tcp() {
    let mut cluster = run_real::<u64, _>("pbft", 4, NetRunner::with_seed(11))
        .expect("pbft is wire-capable")
        .expect("localhost cluster boots");
    for payload in [100u64, 200, 300] {
        cluster.submit(payload);
    }
    assert!(
        cluster.wait_all_decided(3, WAIT),
        "4-node pbft must commit 3 payloads over TCP; decided lens: {:?}",
        (0..4).map(|i| cluster.decided(i).len()).collect::<Vec<_>>()
    );
    // Every replica decided the same (seq, payload) sequence; decide
    // times are per-node wall clock and legitimately differ.
    let reference: Vec<(u64, u64)> =
        cluster.decided(0)[..3].iter().map(|&(seq, payload, _)| (seq, payload)).collect();
    assert_eq!(reference.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![0, 1, 2]);
    let mut decided_payloads: Vec<u64> = reference.iter().map(|&(_, p)| p).collect();
    decided_payloads.sort_unstable();
    assert_eq!(decided_payloads, vec![100, 200, 300]);
    for node in 1..4 {
        let log: Vec<(u64, u64)> =
            cluster.decided(node)[..3].iter().map(|&(seq, payload, _)| (seq, payload)).collect();
        assert_eq!(log, reference, "replica {node} disagrees with replica 0");
    }
    let stats = cluster.stats();
    assert!(stats.handshakes_ok > 0, "peers must have completed handshakes");
    assert!(stats.frames_recv > 0, "protocol traffic must have flowed");
    assert_eq!(stats.decode_errors, 0, "no frame may have failed decoding");
}

#[test]
fn listener_rejects_wrong_genesis_and_garbage_handshakes() {
    let cluster = run_real::<u64, _>("pbft", 1, NetRunner::with_seed(42))
        .expect("pbft is wire-capable")
        .expect("single-node cluster boots");
    // A one-node cluster has no peer links, so the only accepted
    // handshakes are the ones we perform here.
    let addr = cluster.addr(0);

    // Correct genesis: the node answers with its own Hello.
    let genesis = genesis_digest("pbft", 1, 42);
    let mut good = TcpStream::connect(addr).expect("connect");
    let hello = Hello { genesis, node: CLIENT_NODE };
    write_frame(&mut good, &hello.encode(), DEFAULT_MAX_FRAME).expect("send hello");
    let reply = read_frame(&mut good, DEFAULT_MAX_FRAME).expect("hello reply");
    assert_eq!(Hello::decode(&reply).expect("valid reply").genesis, genesis);

    // Wrong genesis: no reply, connection dropped.
    let mut bad = TcpStream::connect(addr).expect("connect");
    let wrong = Hello { genesis: genesis ^ 1, node: CLIENT_NODE };
    write_frame(&mut bad, &wrong.encode(), DEFAULT_MAX_FRAME).expect("send hello");
    assert_connection_drops(&mut bad);

    // Garbage handshake: a framed payload that is not a Hello at all.
    let mut garbage = TcpStream::connect(addr).expect("connect");
    let junk = frame(b"not a handshake", DEFAULT_MAX_FRAME).expect("frame junk");
    std::io::Write::write_all(&mut garbage, &junk).expect("send junk");
    assert_connection_drops(&mut garbage);

    let stats = cluster.stats();
    assert!(
        stats.handshakes_rejected >= 2,
        "both bad handshakes must be counted, got {}",
        stats.handshakes_rejected
    );
}

fn assert_connection_drops(stream: &mut TcpStream) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
    let mut buf = [0u8; 1];
    match stream.read(&mut buf) {
        Ok(0) => {}
        Ok(_) => panic!("node must not answer a rejected handshake"),
        Err(e) => panic!("expected clean close, got {e}"),
    }
}
