//! `pbc-net` — the real-socket deployment mode.
//!
//! Everything the workspace knows about ordering protocols runs inside
//! the deterministic simulator (`pbc-sim`). This crate is the second
//! interpreter for the *same* actors: a from-scratch runtime that
//! mounts [`pbc_consensus::OrderingActor`] objects on real
//! `std::net` TCP sockets — length-prefixed frames with a
//! version/genesis handshake ([`frame`](mod@frame)), a per-node
//! event loop mapping actor effects onto sockets and a monotonic
//! timer queue ([`timer`]), and reconnect-with-backoff
//! link management ([`cluster`]).
//!
//! The crate exists for the cross-check: a committed batch sequence
//! produced over TCP must match the one the simulator produces from
//! the same seed (`sweep --real`, `tests/real_net.rs`). Where the two
//! backends disagree, one of them is wrong — historically the
//! deployment side, which is why the wire codec rejects zero-length
//! and oversized frames *before* allocating and why every read/write
//! goes through short-transfer-safe loops.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod frame;
pub mod timer;

pub use cluster::{genesis_digest, NetConfig, NetRunner, RealHandle, RealStats, RealStatsSnap};
pub use frame::{
    frame, frame_len, read_frame, read_frame_stoppable, write_frame, Hello, WireError, CLIENT_NODE,
    DEFAULT_MAX_FRAME, WIRE_MAGIC, WIRE_VERSION,
};
pub use timer::TimerQueue;
