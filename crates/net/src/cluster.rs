//! The TCP cluster runtime: `OrderingActor`s over real sockets.
//!
//! One node is four kinds of thread stitched together with channels:
//!
//! * an **event loop** owning the actor — it receives decoded messages
//!   from an inbox channel, fires due timers from a
//!   [`TimerQueue`], and routes the actor's
//!   [`Effect`]s: `Send`/`Broadcast` become encoded frames pushed onto
//!   per-peer outbound channels (one encode per broadcast, shared
//!   behind an `Arc`), `Timer`/`CancelTimer` go to the timer queue, and
//!   self-delivery loops back through the inbox like any other message;
//! * a **listener** accepting inbound connections on `127.0.0.1:0`;
//! * per accepted connection, a **reader** that performs the
//!   [`Hello`] handshake, then decodes frames into actor messages;
//! * per peer, a **dialer/writer** that connects (and *re*connects,
//!   with exponential backoff) and pumps its outbound channel onto the
//!   socket.
//!
//! The actor code is byte-for-byte the code the simulator runs — it
//! sees the same `on_message`/`on_timer` callbacks and emits the same
//! effects; only the interpreter changed. That is the whole point:
//! a commit sequence produced here and one produced by the simulator
//! from the same seed can be compared row by row (`sweep --real`).
//!
//! Everything is bounded and shuts down cleanly: sockets carry read
//! timeouts so reader threads observe the stop flag, dialers check it
//! between pump ticks, and `kill` joins a node's threads before
//! returning. A killed node's peers fall into their reconnect loops
//! and the surviving quorum keeps deciding — the liveness half of the
//! §2.3.3 story, now observable on a real transport.

use crate::frame::{
    frame, read_frame_stoppable, write_frame, Hello, WireError, CLIENT_NODE, DEFAULT_MAX_FRAME,
};
use crate::timer::TimerQueue;
use pbc_consensus::ordering::RealRuntime;
use pbc_consensus::wire::WireMsg;
use pbc_consensus::{OrderingActor, Payload};
use pbc_sim::actor::Effect;
use pbc_sim::{Context, NodeIdx, SimTime};
use pbc_store::write_full;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Config + stats
// ---------------------------------------------------------------------

/// Tuning knobs for a [`NetRunner`] cluster.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Seed folded into the genesis digest: two clusters with different
    /// seeds refuse each other's handshakes.
    pub seed: u64,
    /// Real duration of one logical tick ([`SimTime`] unit). Actor
    /// timeouts are specified in ticks; at the default 10 µs, PBFT's
    /// 50 000-tick progress timeout becomes 500 ms.
    pub tick: Duration,
    /// Frame-size cap enforced on both read and write.
    pub max_frame: usize,
    /// Initial reconnect backoff after a failed dial.
    pub backoff: Duration,
    /// Backoff ceiling (doubling stops here).
    pub backoff_max: Duration,
    /// Socket read timeout and channel poll tick: the latency bound on
    /// noticing the stop flag.
    pub poll: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            seed: 0,
            tick: Duration::from_micros(10),
            max_frame: DEFAULT_MAX_FRAME,
            backoff: Duration::from_millis(20),
            backoff_max: Duration::from_millis(500),
            poll: Duration::from_millis(25),
        }
    }
}

/// Cumulative transport counters for a whole cluster (all nodes), all
/// monotone. Snapshot with [`RealHandle::stats`].
#[derive(Debug, Default)]
pub struct RealStats {
    dials: AtomicU64,
    reconnects: AtomicU64,
    handshakes_ok: AtomicU64,
    handshakes_rejected: AtomicU64,
    frames_sent: AtomicU64,
    frames_recv: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
    decode_errors: AtomicU64,
}

/// A point-in-time copy of [`RealStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RealStatsSnap {
    /// Connection attempts (initial dials and retries).
    pub dials: u64,
    /// Successful connections *after* a link's first one — each is a
    /// completed reconnect through the backoff path.
    pub reconnects: u64,
    /// Handshakes accepted (counted on both ends).
    pub handshakes_ok: u64,
    /// Handshakes refused: bad magic/version, wrong genesis, garbage.
    pub handshakes_rejected: u64,
    /// Message frames written to sockets.
    pub frames_sent: u64,
    /// Message frames decoded from sockets.
    pub frames_recv: u64,
    /// Bytes written (headers included).
    pub bytes_sent: u64,
    /// Bytes read (headers included).
    pub bytes_recv: u64,
    /// Frames that failed message decoding (connection dropped).
    pub decode_errors: u64,
}

impl RealStats {
    fn snapshot(&self) -> RealStatsSnap {
        RealStatsSnap {
            dials: self.dials.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            handshakes_ok: self.handshakes_ok.load(Ordering::Relaxed),
            handshakes_rejected: self.handshakes_rejected.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_recv: self.frames_recv.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }
}

/// Digest identifying one cluster: protocol, size, and seed, mixed
/// splitmix-style. Handshakes carry it; mismatch refuses the peer.
pub fn genesis_digest(protocol: &str, n: usize, seed: u64) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ seed;
    for b in protocol.bytes().chain((n as u64).to_be_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h
}

// ---------------------------------------------------------------------
// Node plumbing
// ---------------------------------------------------------------------

enum Event<M> {
    Deliver { from: NodeIdx, msg: M },
    Stop,
}

/// Shared view of a node's delivered log: `(seq, payload, decide time)`.
type SharedDecided<P> = Arc<Mutex<Vec<(u64, P, SimTime)>>>;

struct Node<A: OrderingActor> {
    stop: Arc<AtomicBool>,
    inbox: mpsc::Sender<Event<A::Msg>>,
    decided: SharedDecided<A::Payload>,
    joins: Vec<JoinHandle<()>>,
    down: bool,
}

/// Applies one callback's effects: encode-once fan-out to peer
/// channels, loopback through the inbox for self-delivery (self last,
/// matching the simulator's broadcast order), timer queue updates.
#[allow(clippy::too_many_arguments)]
fn route_effects<M: WireMsg + Send>(
    ctx: &mut Context<M>,
    timers: &mut TimerQueue,
    peers: &[Option<mpsc::Sender<Arc<Vec<u8>>>>],
    self_tx: &mpsc::Sender<Event<M>>,
    id: NodeIdx,
    cfg: &NetConfig,
) {
    let encode = |msg: &M| frame(&msg.to_wire(), cfg.max_frame).ok().map(Arc::new);
    for effect in ctx.take_effects() {
        match effect {
            Effect::Send { to, msg } => {
                if to == id {
                    let _ = self_tx.send(Event::Deliver { from: id, msg });
                } else if let (Some(link), Some(bytes)) = (&peers[to], encode(&msg)) {
                    let _ = link.send(bytes);
                }
            }
            Effect::Broadcast { msg } => {
                if let Some(bytes) = encode(&msg) {
                    for (j, link) in peers.iter().enumerate() {
                        if j == id {
                            continue;
                        }
                        if let Some(link) = link {
                            let _ = link.send(bytes.clone());
                        }
                    }
                }
                let _ = self_tx.send(Event::Deliver { from: id, msg });
            }
            Effect::Timer { delay, id: tid } => {
                let ns = (cfg.tick.as_nanos() as u64).saturating_mul(delay);
                timers.arm(Instant::now(), Duration::from_nanos(ns), tid);
            }
            Effect::CancelTimer { id: tid } => timers.cancel(tid),
        }
    }
}

/// The event loop owning one actor: inbox messages, due timers, decided
/// publication. `ctx.now` advances on the monotonic clock, quantized to
/// `cfg.tick` — the real-time analogue of the simulator's event clock.
#[allow(clippy::too_many_arguments)]
fn node_loop<A>(
    mut actor: A,
    id: NodeIdx,
    n: usize,
    inbox_rx: mpsc::Receiver<Event<A::Msg>>,
    peers: Vec<Option<mpsc::Sender<Arc<Vec<u8>>>>>,
    self_tx: mpsc::Sender<Event<A::Msg>>,
    decided: SharedDecided<A::Payload>,
    stop: Arc<AtomicBool>,
    cfg: NetConfig,
    epoch: Instant,
) where
    A: OrderingActor,
    A::Msg: WireMsg + Send,
{
    let tick_ns = cfg.tick.as_nanos().max(1) as u64;
    let now_ticks = || (epoch.elapsed().as_nanos() as u64) / tick_ns;
    let mut timers = TimerQueue::new();
    let mut published = 0usize;

    let mut ctx = Context::standalone(now_ticks(), id, n);
    actor.on_start(&mut ctx);
    route_effects(&mut ctx, &mut timers, &peers, &self_tx, id, &cfg);

    'run: loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        let wait = match timers.next_deadline() {
            Some(at) => at.saturating_duration_since(Instant::now()).min(cfg.poll),
            None => cfg.poll,
        };
        match inbox_rx.recv_timeout(wait) {
            Ok(Event::Deliver { from, msg }) => {
                ctx.now = now_ticks();
                actor.on_message(from, &msg, &mut ctx);
                route_effects(&mut ctx, &mut timers, &peers, &self_tx, id, &cfg);
            }
            Ok(Event::Stop) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
        // Drain whatever else is already queued before sleeping again.
        loop {
            match inbox_rx.try_recv() {
                Ok(Event::Deliver { from, msg }) => {
                    ctx.now = now_ticks();
                    actor.on_message(from, &msg, &mut ctx);
                    route_effects(&mut ctx, &mut timers, &peers, &self_tx, id, &cfg);
                }
                Ok(Event::Stop) => break 'run,
                Err(_) => break,
            }
        }
        while let Some(tid) = timers.pop_due(Instant::now()) {
            ctx.now = now_ticks();
            actor.on_timer(tid, &mut ctx);
            route_effects(&mut ctx, &mut timers, &peers, &self_tx, id, &cfg);
        }
        let log = actor.log().delivered();
        if log.len() > published {
            decided.lock().expect("decided lock").extend_from_slice(&log[published..]);
            published = log.len();
        }
    }
}

/// Accept loop: non-blocking accept + stop polling; each accepted
/// connection gets its own reader thread.
#[allow(clippy::too_many_arguments)]
fn listener_loop<M: WireMsg + Send + 'static>(
    listener: TcpListener,
    my_id: NodeIdx,
    n: usize,
    inbox: mpsc::Sender<Event<M>>,
    stop: Arc<AtomicBool>,
    genesis: u64,
    cfg: NetConfig,
    stats: Arc<RealStats>,
) {
    listener.set_nonblocking(true).expect("nonblocking listener");
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let (inbox, stop, stats) = (inbox.clone(), stop.clone(), stats.clone());
                thread::spawn(move || {
                    reader_conn::<M>(stream, my_id, n, inbox, stop, genesis, cfg, stats);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(cfg.poll / 4),
            Err(_) => return,
        }
    }
}

/// One inbound connection: validate the handshake, answer it, then
/// decode frames into inbox messages until the peer goes away, the
/// node stops, or the peer sends garbage (which drops the connection —
/// a peer that frames garbage once will do it again).
#[allow(clippy::too_many_arguments)]
fn reader_conn<M: WireMsg + Send>(
    mut stream: TcpStream,
    my_id: NodeIdx,
    n: usize,
    inbox: mpsc::Sender<Event<M>>,
    stop: Arc<AtomicBool>,
    genesis: u64,
    cfg: NetConfig,
    stats: Arc<RealStats>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.poll));
    let hello = match read_frame_stoppable(&mut stream, cfg.max_frame, &stop)
        .and_then(|body| Hello::decode(&body))
    {
        Ok(h) => h,
        Err(_) => {
            stats.handshakes_rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let from = match hello {
        Hello { genesis: g, .. } if g != genesis => {
            stats.handshakes_rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Clients appear as node 0, the simulator's submit convention.
        Hello { node: CLIENT_NODE, .. } => 0,
        Hello { node, .. } if (node as usize) < n => node as usize,
        _ => {
            stats.handshakes_rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let reply = Hello { genesis, node: my_id as u32 };
    if write_frame(&mut stream, &reply.encode(), cfg.max_frame).is_err() {
        return;
    }
    stats.handshakes_ok.fetch_add(1, Ordering::Relaxed);
    loop {
        match read_frame_stoppable(&mut stream, cfg.max_frame, &stop) {
            Ok(body) => match M::from_wire(&body) {
                Some(msg) => {
                    stats.frames_recv.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_recv.fetch_add(4 + body.len() as u64, Ordering::Relaxed);
                    if inbox.send(Event::Deliver { from, msg }).is_err() {
                        return;
                    }
                }
                None => {
                    stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            },
            Err(_) => return,
        }
    }
}

/// Outbound link to one peer: dial (and re-dial with exponential
/// backoff), handshake, then pump the outbound channel onto the socket.
/// A write failure abandons the connection and re-enters the dial loop;
/// the channel keeps buffering while the peer is away, so messages
/// queued during an outage flush on reconnect.
#[allow(clippy::too_many_arguments)]
fn dialer_loop(
    my_id: NodeIdx,
    peer: NodeIdx,
    addrs: Arc<Mutex<Vec<SocketAddr>>>,
    rx: mpsc::Receiver<Arc<Vec<u8>>>,
    stop: Arc<AtomicBool>,
    genesis: u64,
    cfg: NetConfig,
    stats: Arc<RealStats>,
) {
    let mut delay = cfg.backoff;
    let mut connected_before = false;
    'dial: loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let addr = addrs.lock().expect("addrs lock")[peer];
        stats.dials.fetch_add(1, Ordering::Relaxed);
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => {
                thread::sleep(delay);
                delay = (delay * 2).min(cfg.backoff_max);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(cfg.poll));
        let ours = Hello { genesis, node: my_id as u32 };
        let handshake = write_frame(&mut stream, &ours.encode(), cfg.max_frame)
            .and_then(|()| read_frame_stoppable(&mut stream, cfg.max_frame, &stop))
            .and_then(|body| Hello::decode(&body))
            .and_then(|theirs| {
                if theirs.genesis == genesis {
                    Ok(())
                } else {
                    Err(WireError::GenesisMismatch { ours: genesis, theirs: theirs.genesis })
                }
            });
        match handshake {
            Ok(()) => {}
            Err(WireError::Stopped) => return,
            Err(_) => {
                stats.handshakes_rejected.fetch_add(1, Ordering::Relaxed);
                thread::sleep(delay);
                delay = (delay * 2).min(cfg.backoff_max);
                continue;
            }
        }
        stats.handshakes_ok.fetch_add(1, Ordering::Relaxed);
        if connected_before {
            stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        connected_before = true;
        delay = cfg.backoff;
        loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            match rx.recv_timeout(cfg.poll) {
                Ok(bytes) => {
                    if write_full(&mut stream, &bytes).is_err() {
                        continue 'dial; // peer gone: back to the dial loop
                    }
                    stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_sent.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------

/// Object-safe cluster operations: everything [`RealHandle`] exposes,
/// with the actor type erased behind the impl.
trait ClusterOps<P: Payload>: Send {
    fn addr(&self, node: usize) -> SocketAddr;
    fn submit(&mut self, payload: P);
    fn decided(&self, node: usize) -> Vec<(u64, P, SimTime)>;
    fn kill(&mut self, node: usize);
    fn reboot(&mut self, node: usize) -> io::Result<()>;
    fn is_down(&self, node: usize) -> bool;
    fn shutdown(&mut self);
}

struct NetCluster<A: OrderingActor>
where
    A::Msg: WireMsg + Send,
{
    cfg: NetConfig,
    n: usize,
    genesis: u64,
    make: Box<dyn FnMut(NodeIdx) -> A + Send>,
    addrs: Arc<Mutex<Vec<SocketAddr>>>,
    nodes: Vec<Node<A>>,
    clients: Vec<Option<TcpStream>>,
    stats: Arc<RealStats>,
    epoch: Instant,
}

impl<A> NetCluster<A>
where
    A: OrderingActor + Send + 'static,
    A::Msg: WireMsg + Send,
{
    fn boot(
        cfg: NetConfig,
        n: usize,
        make: Box<dyn FnMut(NodeIdx) -> A + Send>,
        genesis: u64,
    ) -> io::Result<Self> {
        assert!(n > 0, "a cluster needs at least one node");
        // Bind every listener before any dialer starts: peers may dial
        // in any order once threads exist.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            addrs.push(l.local_addr()?);
            listeners.push(l);
        }
        let addrs = Arc::new(Mutex::new(addrs));
        let stats = Arc::new(RealStats::default());
        let epoch = Instant::now();
        let mut cluster = NetCluster {
            cfg,
            n,
            genesis,
            make: Box::new(make),
            addrs,
            nodes: Vec::new(),
            clients: (0..n).map(|_| None).collect(),
            stats,
            epoch,
        };
        for (i, listener) in listeners.into_iter().enumerate() {
            let actor = (cluster.make)(i);
            let node = cluster.spawn_node(i, actor, listener);
            cluster.nodes.push(node);
        }
        Ok(cluster)
    }

    fn spawn_node(&self, id: NodeIdx, actor: A, listener: TcpListener) -> Node<A> {
        let stop = Arc::new(AtomicBool::new(false));
        let (inbox_tx, inbox_rx) = mpsc::channel::<Event<A::Msg>>();
        let decided = Arc::new(Mutex::new(Vec::new()));
        let mut joins = Vec::new();

        let mut peers: Vec<Option<mpsc::Sender<Arc<Vec<u8>>>>> = Vec::with_capacity(self.n);
        for peer in 0..self.n {
            if peer == id {
                peers.push(None);
                continue;
            }
            let (tx, rx) = mpsc::channel::<Arc<Vec<u8>>>();
            peers.push(Some(tx));
            let (addrs, stop, stats, cfg, genesis) =
                (self.addrs.clone(), stop.clone(), self.stats.clone(), self.cfg, self.genesis);
            joins.push(thread::spawn(move || {
                dialer_loop(id, peer, addrs, rx, stop, genesis, cfg, stats);
            }));
        }

        {
            let (inbox, stop, stats, cfg, genesis, n) = (
                inbox_tx.clone(),
                stop.clone(),
                self.stats.clone(),
                self.cfg,
                self.genesis,
                self.n,
            );
            joins.push(thread::spawn(move || {
                listener_loop::<A::Msg>(listener, id, n, inbox, stop, genesis, cfg, stats);
            }));
        }

        {
            let (self_tx, stop, decided, cfg, epoch, n) =
                (inbox_tx.clone(), stop.clone(), decided.clone(), self.cfg, self.epoch, self.n);
            joins.push(thread::spawn(move || {
                node_loop(actor, id, n, inbox_rx, peers, self_tx, decided, stop, cfg, epoch);
            }));
        }

        Node { stop, inbox: inbox_tx, decided, joins, down: false }
    }

    /// Opens (or reuses) the client connection to `node` and sends one
    /// already-encoded message body as a frame.
    fn client_send(&mut self, node: usize, body: &[u8]) -> Result<(), WireError> {
        if self.clients[node].is_none() {
            let addr = self.addrs.lock().expect("addrs lock")[node];
            let mut stream = TcpStream::connect(addr).map_err(WireError::Io)?;
            stream.set_nodelay(true).ok();
            let hello = Hello { genesis: self.genesis, node: CLIENT_NODE };
            write_frame(&mut stream, &hello.encode(), self.cfg.max_frame)?;
            let unstopped = AtomicBool::new(false);
            let reply = read_frame_stoppable(&mut stream, self.cfg.max_frame, &unstopped)
                .and_then(|b| Hello::decode(&b))?;
            if reply.genesis != self.genesis {
                return Err(WireError::GenesisMismatch {
                    ours: self.genesis,
                    theirs: reply.genesis,
                });
            }
            self.clients[node] = Some(stream);
        }
        let stream = self.clients[node].as_mut().expect("just ensured");
        write_frame(stream, body, self.cfg.max_frame)
    }
}

impl<A> ClusterOps<A::Payload> for NetCluster<A>
where
    A: OrderingActor + Send + 'static,
    A::Msg: WireMsg + Send,
{
    fn addr(&self, node: usize) -> SocketAddr {
        self.addrs.lock().expect("addrs lock")[node]
    }

    fn submit(&mut self, payload: A::Payload) {
        let body = A::request_msg(payload).to_wire();
        for node in 0..self.n {
            if self.nodes[node].down {
                continue;
            }
            if self.client_send(node, &body).is_err() {
                // Stale connection (peer restarted): one fresh attempt.
                self.clients[node] = None;
                let _ = self.client_send(node, &body);
            }
        }
    }

    fn decided(&self, node: usize) -> Vec<(u64, A::Payload, SimTime)> {
        self.nodes[node].decided.lock().expect("decided lock").clone()
    }

    fn kill(&mut self, node: usize) {
        if self.nodes[node].down {
            return;
        }
        self.nodes[node].down = true;
        self.nodes[node].stop.store(true, Ordering::Relaxed);
        let _ = self.nodes[node].inbox.send(Event::Stop);
        self.clients[node] = None;
        for join in self.nodes[node].joins.drain(..) {
            let _ = join.join();
        }
    }

    fn reboot(&mut self, node: usize) -> io::Result<()> {
        assert!(self.nodes[node].down, "reboot targets a killed node");
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        self.addrs.lock().expect("addrs lock")[node] = listener.local_addr()?;
        let actor = (self.make)(node);
        self.nodes[node] = self.spawn_node(node, actor, listener);
        Ok(())
    }

    fn is_down(&self, node: usize) -> bool {
        self.nodes[node].down
    }

    fn shutdown(&mut self) {
        for node in 0..self.n {
            self.kill(node);
        }
    }
}

// ---------------------------------------------------------------------
// Public handle + runner
// ---------------------------------------------------------------------

/// A running TCP cluster, erased of its actor type. Dropping the handle
/// shuts the cluster down (stops and joins every node's threads).
pub struct RealHandle<P: Payload> {
    n: usize,
    stats: Arc<RealStats>,
    ops: Box<dyn ClusterOps<P>>,
}

impl<P: Payload + 'static> RealHandle<P> {
    /// Number of nodes (including killed ones).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate empty cluster (never built by
    /// [`NetRunner`], which rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The listener address `node` currently accepts connections on
    /// (changes across a [`reboot`](RealHandle::reboot)).
    pub fn addr(&self, node: usize) -> std::net::SocketAddr {
        self.ops.addr(node)
    }

    /// Submits one payload: the client request fans in to every alive
    /// node over its client connection, like the simulator's `submit`.
    pub fn submit(&mut self, payload: P) {
        self.ops.submit(payload);
    }

    /// Snapshot of `node`'s in-order decided log: `(seq, payload,
    /// decide-time in ticks since cluster boot)`.
    pub fn decided(&self, node: usize) -> Vec<(u64, P, SimTime)> {
        self.ops.decided(node)
    }

    /// Stops a node: its threads exit and are joined, its sockets drop,
    /// and its peers fall into reconnect/backoff against it.
    pub fn kill(&mut self, node: usize) {
        self.ops.kill(node);
    }

    /// Boots a fresh actor for a killed node on a fresh port (peers
    /// pick the new address up on their next dial). The replacement
    /// starts with an empty log — a reboot is amnesia, like the
    /// simulator's `CrashAmnesia` without a durable store.
    pub fn reboot(&mut self, node: usize) -> io::Result<()> {
        self.ops.reboot(node)
    }

    /// Whether `node` is currently killed.
    pub fn is_down(&self, node: usize) -> bool {
        self.ops.is_down(node)
    }

    /// Polls until `node` has at least `target` decided entries or
    /// `timeout` elapses; true on success.
    pub fn wait_decided(&self, node: usize, target: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.ops.decided(node).len() >= target {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(2));
        }
    }

    /// [`wait_decided`](RealHandle::wait_decided) across every alive
    /// node.
    pub fn wait_all_decided(&self, target: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        (0..self.n).filter(|&i| !self.ops.is_down(i)).all(|i| {
            let left = deadline.saturating_duration_since(Instant::now());
            self.wait_decided(i, target, left)
        })
    }

    /// Cumulative transport counters.
    pub fn stats(&self) -> RealStatsSnap {
        self.stats.snapshot()
    }

    /// Stops and joins every node. Also runs on drop.
    pub fn shutdown(&mut self) {
        self.ops.shutdown();
    }
}

impl<P: Payload> Drop for RealHandle<P> {
    fn drop(&mut self) {
        self.ops.shutdown();
    }
}

/// The deployment runtime: mounts a registry protocol's actors on
/// localhost TCP. Use through
/// [`run_real`](pbc_consensus::ordering::run_real):
///
/// ```no_run
/// use pbc_consensus::run_real;
/// use pbc_net::NetRunner;
/// use std::time::Duration;
///
/// let mut cluster = run_real::<u64, _>("pbft", 4, NetRunner::with_seed(7))
///     .expect("pbft is wire-capable")
///     .expect("localhost sockets");
/// cluster.submit(42);
/// assert!(cluster.wait_all_decided(1, Duration::from_secs(10)));
/// assert_eq!(cluster.decided(0)[0].1, 42);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct NetRunner {
    /// Transport tuning; `cfg.seed` keys the genesis digest.
    pub cfg: NetConfig,
}

impl NetRunner {
    /// A runner with default tuning and the given cluster seed.
    pub fn with_seed(seed: u64) -> Self {
        NetRunner { cfg: NetConfig { seed, ..NetConfig::default() } }
    }
}

impl<P: Payload + 'static> RealRuntime<P> for NetRunner {
    type Output = io::Result<RealHandle<P>>;

    fn mount<A, F>(self, n: usize, make: F) -> io::Result<RealHandle<P>>
    where
        A: OrderingActor<Payload = P> + Send + 'static,
        A::Msg: WireMsg + Send,
        F: FnMut(NodeIdx) -> A + Send + 'static,
    {
        let genesis = genesis_digest(A::PROTOCOL, n, self.cfg.seed);
        let cluster = NetCluster::<A>::boot(self.cfg, n, Box::new(make), genesis)?;
        let stats = cluster.stats.clone();
        Ok(RealHandle { n, stats, ops: Box::new(cluster) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_digest_separates_clusters() {
        let a = genesis_digest("pbft", 4, 1);
        assert_eq!(a, genesis_digest("pbft", 4, 1));
        assert_ne!(a, genesis_digest("pbft", 4, 2));
        assert_ne!(a, genesis_digest("pbft", 5, 1));
        assert_ne!(a, genesis_digest("ibft", 4, 1));
    }
}
