//! The monotonic-clock timer queue backing actor `Timer` effects.
//!
//! Actors speak logical ticks ([`pbc_sim::SimTime`]); the deployment
//! runtime maps each tick onto a configurable real [`Duration`] and
//! keeps armed timers in a min-heap keyed by [`Instant`] — wall clock
//! never appears, so suspend/resume and NTP slew cannot fire a timer
//! early. Cancellation is the simulator's watermark scheme:
//! `cancel(id)` marks every *currently armed* timer with that id as
//! dead in O(1), and dead entries are skipped when they surface; a
//! timer armed after the cancellation (even in the same callback) is
//! unaffected — the exact contract of
//! [`Effect::CancelTimer`](pbc_sim::actor::Effect).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::{Duration, Instant};

/// Armed timers for one node, ordered by deadline.
#[derive(Debug, Default)]
pub struct TimerQueue {
    /// `(deadline, arm-sequence, timer id)` — the arm sequence breaks
    /// deadline ties in arming order, matching simulator determinism as
    /// closely as a real clock allows.
    heap: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    /// Monotone arm counter.
    seq: u64,
    /// Per-id cancellation watermark: entries armed at or before the
    /// stored sequence are dead.
    cancelled: HashMap<u64, u64>,
}

impl TimerQueue {
    /// An empty queue.
    pub fn new() -> Self {
        TimerQueue::default()
    }

    /// Arms timer `id` to fire `delay` from now.
    pub fn arm(&mut self, now: Instant, delay: Duration, id: u64) {
        self.seq += 1;
        self.heap.push(Reverse((now + delay, self.seq, id)));
    }

    /// Cancels every currently armed timer with this id, in O(1).
    pub fn cancel(&mut self, id: u64) {
        self.cancelled.insert(id, self.seq);
    }

    /// Pops the next timer due at or before `now`, skipping cancelled
    /// entries. `None` when nothing is due.
    pub fn pop_due(&mut self, now: Instant) -> Option<u64> {
        while let Some(Reverse((at, seq, id))) = self.heap.peek().copied() {
            if at > now {
                return None;
            }
            self.heap.pop();
            if self.cancelled.get(&id).is_some_and(|&w| seq <= w) {
                continue; // armed before its cancellation: dead
            }
            return Some(id);
        }
        None
    }

    /// Deadline of the earliest armed entry (cancelled entries included
    /// — a spurious early wake-up is cheap, a late timer is not).
    pub fn next_deadline(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let t0 = Instant::now();
        let mut q = TimerQueue::new();
        q.arm(t0, Duration::from_millis(20), 2);
        q.arm(t0, Duration::from_millis(10), 1);
        let late = t0 + Duration::from_millis(30);
        assert_eq!(q.pop_due(late), Some(1));
        assert_eq!(q.pop_due(late), Some(2));
        assert_eq!(q.pop_due(late), None);
    }

    #[test]
    fn not_due_yet_stays_armed() {
        let t0 = Instant::now();
        let mut q = TimerQueue::new();
        q.arm(t0, Duration::from_secs(3600), 7);
        assert_eq!(q.pop_due(t0), None);
        assert!(q.next_deadline().is_some());
    }

    #[test]
    fn cancel_kills_only_prior_arms() {
        let t0 = Instant::now();
        let mut q = TimerQueue::new();
        q.arm(t0, Duration::from_millis(1), 9);
        q.cancel(9);
        q.arm(t0, Duration::from_millis(1), 9); // re-armed after cancel
        let late = t0 + Duration::from_millis(10);
        assert_eq!(q.pop_due(late), Some(9), "post-cancel arm must fire");
        assert_eq!(q.pop_due(late), None, "pre-cancel arm must not");
    }
}
