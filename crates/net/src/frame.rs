//! Length-prefixed wire frames and the version/genesis handshake.
//!
//! The framing layer every byte of the deployment mode crosses:
//! `[u32 BE length][body]`, where the length is validated **before any
//! allocation** — a zero length is [`WireError::ZeroFrame`], a length
//! above the configured cap is [`WireError::Oversized`] — so a
//! malicious or corrupt peer cannot make a node allocate 4 GiB by
//! sending four bytes (the `p2p.rs` lesson every production gateway
//! re-learns). Every malformation surfaces as a typed [`WireError`];
//! nothing in this module panics on input bytes.
//!
//! A connection opens with a [`Hello`] exchange: magic, wire version,
//! the cluster's genesis digest, and the sender's node id. Mismatched
//! genesis digests mean "different cluster / different run seed" and
//! the connection is refused — the guard that keeps a stale process
//! from a previous test run out of a fresh cluster.
//!
//! Transfers go through `pbc-store`'s audited [`write_full`] /
//! [`read_full`] helpers: a socket `read`/`write` may legally move any
//! prefix of the buffer, and framing breaks permanently the first time
//! a caller assumes otherwise.

use pbc_store::{read_full, write_full};
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

/// First bytes of every handshake: "PBCN".
pub const WIRE_MAGIC: u32 = 0x5042_434E;

/// Wire protocol version. Bump on any frame- or handshake-layout
/// change; peers refuse mismatched versions at handshake time.
pub const WIRE_VERSION: u32 = 1;

/// The node id clients present in their [`Hello`]. Client-submitted
/// requests are delivered to actors as coming from node 0, matching
/// the simulator's convention (`submit` injects from node 0).
pub const CLIENT_NODE: u32 = u32::MAX;

/// Default frame-size cap: 1 MiB, far above any message this workspace
/// produces, far below anything that could hurt.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Everything that can go wrong between two sockets speaking this
/// protocol. Malformed input from a peer is a value of this type,
/// never a panic.
#[derive(Debug)]
pub enum WireError {
    /// A frame declared a zero-length body (nothing encodes to zero
    /// bytes; an empty frame is a protocol violation, not a message).
    ZeroFrame,
    /// A frame declared a body larger than the configured cap —
    /// detected from the 4-byte header, before allocating.
    Oversized {
        /// Declared body length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The stream ended mid-frame (EOF inside a header or body).
    Truncated,
    /// Handshake opened with bytes that are not [`WIRE_MAGIC`] — the
    /// peer is not speaking this protocol at all.
    BadMagic(u32),
    /// Right magic, wrong [`WIRE_VERSION`].
    BadVersion(u32),
    /// The peer belongs to a different cluster (or a different seed's
    /// run): its genesis digest does not match ours.
    GenesisMismatch {
        /// Our cluster digest.
        ours: u64,
        /// The digest the peer presented.
        theirs: u64,
    },
    /// A frame body that failed to decode as a message or handshake
    /// (bad tag, truncated fields, or trailing bytes).
    Malformed,
    /// The read was abandoned because the node is shutting down.
    Stopped,
    /// An underlying socket error.
    Io(io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::ZeroFrame => write!(f, "zero-length frame"),
            WireError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap of {max}")
            }
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::BadMagic(m) => write!(f, "bad handshake magic 0x{m:08x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::GenesisMismatch { ours, theirs } => {
                write!(f, "genesis mismatch: ours {ours:#x}, peer {theirs:#x}")
            }
            WireError::Malformed => write!(f, "malformed frame body"),
            WireError::Stopped => write!(f, "read abandoned: node stopping"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// Validates a frame header and returns the body length. This is the
/// *only* path from header bytes to an allocation size, and it rejects
/// zero and oversized lengths first — callers allocate only after this
/// returns `Ok`.
pub fn frame_len(header: [u8; 4], max: usize) -> Result<usize, WireError> {
    let len = u32::from_be_bytes(header) as usize;
    if len == 0 {
        return Err(WireError::ZeroFrame);
    }
    if len > max {
        return Err(WireError::Oversized { len, max });
    }
    Ok(len)
}

/// Encodes `body` as one frame (header + body). The same zero/cap
/// validation applies on the way out: a frame we would refuse to read
/// is a frame we refuse to write.
pub fn frame(body: &[u8], max: usize) -> Result<Vec<u8>, WireError> {
    if body.is_empty() {
        return Err(WireError::ZeroFrame);
    }
    if body.len() > max {
        return Err(WireError::Oversized { len: body.len(), max });
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
    Ok(out)
}

/// Writes `body` as one frame via [`write_full`].
pub fn write_frame<W: io::Write>(w: &mut W, body: &[u8], max: usize) -> Result<(), WireError> {
    let framed = frame(body, max)?;
    write_full(w, &framed)?;
    Ok(())
}

/// Reads one frame, blocking until it is complete (or the stream ends:
/// [`WireError::Truncated`]). The body is allocated only after
/// [`frame_len`] accepts the header.
pub fn read_frame<R: io::Read>(r: &mut R, max: usize) -> Result<Vec<u8>, WireError> {
    let mut header = [0u8; 4];
    read_full(r, &mut header)?;
    let len = frame_len(header, max)?;
    let mut body = vec![0u8; len];
    read_full(r, &mut body)?;
    Ok(body)
}

/// [`read_frame`] for a socket with a read timeout: timeouts
/// (`WouldBlock`/`TimedOut`) re-check `stop` and resume *without losing
/// fill progress*, so a slow frame is reassembled correctly while a
/// stopping node still gets out promptly. This is the stop-aware
/// sibling of [`read_full`] — the loop shape is identical, with the
/// shutdown check folded into the timeout tick.
pub fn read_frame_stoppable<R: io::Read>(
    r: &mut R,
    max: usize,
    stop: &AtomicBool,
) -> Result<Vec<u8>, WireError> {
    fn fill<R: io::Read>(r: &mut R, buf: &mut [u8], stop: &AtomicBool) -> Result<(), WireError> {
        let mut filled = 0;
        while filled < buf.len() {
            if stop.load(Ordering::Relaxed) {
                return Err(WireError::Stopped);
            }
            match r.read(&mut buf[filled..]) {
                Ok(0) => return Err(WireError::Truncated),
                Ok(n) => filled += n,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::Interrupted
                            | io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                    ) => {}
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        Ok(())
    }
    let mut header = [0u8; 4];
    fill(r, &mut header, stop)?;
    let len = frame_len(header, max)?;
    let mut body = vec![0u8; len];
    fill(r, &mut body, stop)?;
    Ok(body)
}

/// The handshake message opening every connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Digest identifying the cluster (protocol, size, run seed).
    pub genesis: u64,
    /// The sender's node index, or [`CLIENT_NODE`] for a client.
    pub node: u32,
}

impl Hello {
    /// Encodes the handshake: magic, version, genesis, node.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        out.extend_from_slice(&WIRE_MAGIC.to_be_bytes());
        out.extend_from_slice(&WIRE_VERSION.to_be_bytes());
        out.extend_from_slice(&self.genesis.to_be_bytes());
        out.extend_from_slice(&self.node.to_be_bytes());
        out
    }

    /// Decodes and validates a handshake body. Checks, in order: exact
    /// length, magic, version. Genesis is *returned*, not checked here
    /// — the caller owns the comparison (and the
    /// [`WireError::GenesisMismatch`] it produces), because only the
    /// caller knows which cluster it belongs to.
    pub fn decode(bytes: &[u8]) -> Result<Hello, WireError> {
        if bytes.len() != 20 {
            return Err(WireError::Malformed);
        }
        let word = |i: usize| u32::from_be_bytes(bytes[i..i + 4].try_into().expect("len checked"));
        let magic = word(0);
        if magic != WIRE_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = word(4);
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let genesis = u64::from_be_bytes(bytes[8..16].try_into().expect("len checked"));
        Ok(Hello { genesis, node: word(16) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let body = b"three-phase commit".to_vec();
        let framed = frame(&body, DEFAULT_MAX_FRAME).unwrap();
        let mut r = &framed[..];
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), body);
        assert!(r.is_empty());
    }

    #[test]
    fn zero_and_oversized_rejected_from_header_alone() {
        assert!(matches!(frame_len([0, 0, 0, 0], 64), Err(WireError::ZeroFrame)));
        // u32::MAX declared length against a small cap: rejected before
        // any body allocation could happen.
        assert!(matches!(
            frame_len([0xFF, 0xFF, 0xFF, 0xFF], 64),
            Err(WireError::Oversized { len: 0xFFFF_FFFF, max: 64 })
        ));
        assert!(matches!(frame(&[], 64), Err(WireError::ZeroFrame)));
        assert!(matches!(frame(&[0u8; 65], 64), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn truncated_stream_is_typed_not_a_panic() {
        let framed = frame(b"payload", DEFAULT_MAX_FRAME).unwrap();
        for cut in 0..framed.len() {
            let mut r = &framed[..cut];
            assert!(matches!(read_frame(&mut r, DEFAULT_MAX_FRAME), Err(WireError::Truncated)));
        }
    }

    #[test]
    fn frames_survive_short_transfers() {
        // The frame path composed with the store's short-transfer fault
        // adapters: 1–3 byte slivers with injected interrupts on both
        // sides, and the frame still reassembles exactly.
        let body: Vec<u8> = (0..200u8).collect();
        for seed in 0..4 {
            let mut sink = pbc_store::ShortWriter::new(Vec::new(), seed);
            write_frame(&mut sink, &body, DEFAULT_MAX_FRAME).unwrap();
            let wire = sink.into_inner();
            let mut src = pbc_store::ShortReader::new(&wire[..], seed.wrapping_add(17));
            assert_eq!(read_frame(&mut src, DEFAULT_MAX_FRAME).unwrap(), body, "seed {seed}");
        }
    }

    #[test]
    fn hello_roundtrip_and_rejections() {
        let h = Hello { genesis: 0xFEED_FACE_CAFE_F00D, node: 3 };
        assert_eq!(Hello::decode(&h.encode()).unwrap(), h);

        let mut bad = h.encode();
        bad[0] ^= 0xFF;
        assert!(matches!(Hello::decode(&bad), Err(WireError::BadMagic(_))));

        let mut bad = h.encode();
        bad[7] = 99;
        assert!(matches!(Hello::decode(&bad), Err(WireError::BadVersion(99))));

        assert!(matches!(Hello::decode(&h.encode()[..19]), Err(WireError::Malformed)));
        let mut long = h.encode();
        long.push(0);
        assert!(matches!(Hello::decode(&long), Err(WireError::Malformed)));
    }

    #[test]
    fn stoppable_read_aborts_on_stop() {
        // A reader that never yields bytes, only timeouts.
        struct Stalled;
        impl io::Read for Stalled {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "stall"))
            }
        }
        let stop = AtomicBool::new(true);
        assert!(matches!(read_frame_stoppable(&mut Stalled, 64, &stop), Err(WireError::Stopped)));
    }
}
