//! Quorum-style private asset transfers verified with zero-knowledge
//! proofs (§2.3.2).
//!
//! Assets live in **notes**: Pedersen commitments `C = g^v · h^r` to a
//! value `v` under blinding `r`, known only to the owner. A
//! [`PrivateTransfer`] consumes input notes and creates output notes,
//! revealing neither values nor linkage, while any verifier checks:
//!
//! 1. **authorization** — an [`OpeningProof`] per input shows the spender
//!    knows the note's opening (only the owner does);
//! 2. **no double spend** — each input exposes a deterministic
//!    *nullifier* `H(r)`, recorded in a spent set; reusing a note reuses
//!    its nullifier;
//! 3. **mass conservation** — `Π C_in / Π C_out` must commit to zero,
//!    proved by a discrete-log proof w.r.t. `h` (a prover who changed the
//!    total would need `log_h g`);
//! 4. **no negative outputs** — a bit-decomposition [`RangeProof`] per
//!    output (otherwise "conservation" could mint value via field
//!    wrap-around).
//!
//! The proof sizes and verifier work here are exactly the "considerable
//! overhead" the paper attributes to ZKP verifiability; E7 charts them
//! against Separ's token checks.

use pbc_crypto::group::{GroupElement, Scalar};
use pbc_crypto::pedersen::{commit, Commitment};
use pbc_crypto::range::RangeProof;
use pbc_crypto::schnorr::{DlogProof, OpeningProof};
use std::collections::HashSet;

/// Bit width of note values (`v < 2^VALUE_BITS`).
pub const VALUE_BITS: u32 = 32;

/// Owner-side secret for one note.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NoteSecret {
    /// The note's value.
    pub value: u64,
    /// The Pedersen blinding (spending key for this note).
    pub blinding: Scalar,
}

impl NoteSecret {
    /// The public commitment of this note.
    pub fn commitment(&self) -> Commitment {
        commit(Scalar::new(self.value), self.blinding)
    }

    /// The nullifier revealed when spending: `H(blinding)`.
    pub fn nullifier(&self) -> u64 {
        pbc_crypto::sha256(&self.blinding.0.to_be_bytes()).prefix_u64()
    }
}

/// One spent input inside a transfer.
#[derive(Clone, Debug)]
pub struct TransferInput {
    /// The consumed note's commitment.
    pub commitment: Commitment,
    /// Its nullifier.
    pub nullifier: u64,
    /// Proof of knowledge of the note opening (authorization).
    pub ownership: OpeningProof,
}

/// One created output inside a transfer.
#[derive(Clone, Debug)]
pub struct TransferOutput {
    /// The new note's commitment.
    pub commitment: Commitment,
    /// Range proof that the hidden value is in `[0, 2^VALUE_BITS)`.
    pub range: RangeProof,
}

/// A fully-shielded transfer.
#[derive(Clone, Debug)]
pub struct PrivateTransfer {
    /// Consumed notes.
    pub inputs: Vec<TransferInput>,
    /// Created notes.
    pub outputs: Vec<TransferOutput>,
    /// Mass-conservation proof: `Π C_in / Π C_out = h^δ` with known `δ`.
    pub balance: DlogProof,
    /// Domain-separation context (binds proofs to this transfer).
    pub context: Vec<u8>,
}

impl PrivateTransfer {
    /// Total serialized proof size in bytes (E7's overhead metric).
    pub fn proof_size_bytes(&self) -> usize {
        let inputs = self.inputs.len() * (8 + 8 + 3 * 8); // commitment+nullifier+opening proof
        let outputs: usize = self.outputs.iter().map(|o| 8 + o.range.size_bytes()).sum();
        inputs + outputs + 2 * 8
    }
}

/// Why a transfer failed to build or verify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransferError {
    /// Inputs and outputs don't sum to the same total (prover side).
    Unbalanced {
        /// Total input value.
        inputs: u64,
        /// Total output value.
        outputs: u64,
    },
    /// An output value exceeds the range bound (prover side).
    ValueTooLarge(u64),
    /// An input note is not in the ledger's note set.
    UnknownNote,
    /// An input nullifier was already spent.
    DoubleSpend(u64),
    /// An ownership proof failed.
    BadOwnership,
    /// A range proof failed.
    BadRange,
    /// The mass-conservation proof failed.
    BadBalance,
    /// Empty input or output list.
    Empty,
}

impl std::fmt::Display for TransferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransferError::Unbalanced { inputs, outputs } => {
                write!(f, "inputs {inputs} != outputs {outputs}")
            }
            TransferError::ValueTooLarge(v) => write!(f, "value {v} out of range"),
            TransferError::UnknownNote => write!(f, "unknown input note"),
            TransferError::DoubleSpend(n) => write!(f, "nullifier {n:x} already spent"),
            TransferError::BadOwnership => write!(f, "ownership proof failed"),
            TransferError::BadRange => write!(f, "range proof failed"),
            TransferError::BadBalance => write!(f, "balance proof failed"),
            TransferError::Empty => write!(f, "transfer needs inputs and outputs"),
        }
    }
}

impl std::error::Error for TransferError {}

/// Builds a transfer spending `inputs` into notes of the given `values`.
/// Returns the transfer plus the new notes' secrets (to hand to the
/// recipients out of band).
pub fn build_transfer<R: rand::Rng + ?Sized>(
    inputs: &[NoteSecret],
    values: &[u64],
    context: &[u8],
    rng: &mut R,
) -> Result<(PrivateTransfer, Vec<NoteSecret>), TransferError> {
    if inputs.is_empty() || values.is_empty() {
        return Err(TransferError::Empty);
    }
    let in_total: u64 = inputs.iter().map(|n| n.value).sum();
    let out_total: u64 = values.iter().sum();
    if in_total != out_total {
        return Err(TransferError::Unbalanced { inputs: in_total, outputs: out_total });
    }
    for &v in values {
        if v >> VALUE_BITS != 0 {
            return Err(TransferError::ValueTooLarge(v));
        }
    }
    let out_secrets: Vec<NoteSecret> =
        values.iter().map(|&value| NoteSecret { value, blinding: Scalar::random(rng) }).collect();

    let tx_inputs: Vec<TransferInput> = inputs
        .iter()
        .map(|n| {
            let c = n.commitment();
            TransferInput {
                commitment: c,
                nullifier: n.nullifier(),
                ownership: OpeningProof::prove(&c, Scalar::new(n.value), n.blinding, context, rng),
            }
        })
        .collect();

    let tx_outputs: Vec<TransferOutput> = out_secrets
        .iter()
        .map(|n| {
            let range = RangeProof::prove(n.value, n.blinding, VALUE_BITS, context, rng)
                .expect("range-checked above");
            TransferOutput { commitment: n.commitment(), range }
        })
        .collect();

    // Mass conservation: D = Π C_in / Π C_out = h^δ.
    let delta = inputs
        .iter()
        .map(|n| n.blinding)
        .fold(Scalar::ZERO, |a, b| a.add(b))
        .sub(out_secrets.iter().map(|n| n.blinding).fold(Scalar::ZERO, |a, b| a.add(b)));
    let d = tx_inputs
        .iter()
        .fold(GroupElement::ONE, |acc, i| acc.mul(i.commitment.0))
        .div(tx_outputs.iter().fold(GroupElement::ONE, |acc, o| acc.mul(o.commitment.0)));
    let balance = DlogProof::prove(GroupElement::generator_h(), d, delta, context, rng);

    Ok((
        PrivateTransfer {
            inputs: tx_inputs,
            outputs: tx_outputs,
            balance,
            context: context.to_vec(),
        },
        out_secrets,
    ))
}

/// The shielded-pool ledger state every node replicates: live note
/// commitments and spent nullifiers.
#[derive(Debug, Default)]
pub struct ZkLedger {
    notes: HashSet<Commitment>,
    nullifiers: HashSet<u64>,
    /// Transfers verified and applied.
    pub transfers_applied: u64,
}

impl ZkLedger {
    /// An empty shielded pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trusted issuance (the permissioned analogue of a funding
    /// transaction): mints a note of `value` and returns its secret.
    pub fn mint<R: rand::Rng + ?Sized>(&mut self, value: u64, rng: &mut R) -> NoteSecret {
        let secret = NoteSecret { value, blinding: Scalar::random(rng) };
        self.notes.insert(secret.commitment());
        secret
    }

    /// True if a note commitment is live in the pool.
    pub fn contains_note(&self, c: &Commitment) -> bool {
        self.notes.contains(c)
    }

    /// Number of live notes.
    pub fn note_count(&self) -> usize {
        self.notes.len()
    }

    /// Verifies every proof in `t` without applying it. This is the
    /// verifier work every node performs (E7's latency metric).
    pub fn verify(&self, t: &PrivateTransfer) -> Result<(), TransferError> {
        if t.inputs.is_empty() || t.outputs.is_empty() {
            return Err(TransferError::Empty);
        }
        for input in &t.inputs {
            if !self.notes.contains(&input.commitment) {
                return Err(TransferError::UnknownNote);
            }
            if self.nullifiers.contains(&input.nullifier) {
                return Err(TransferError::DoubleSpend(input.nullifier));
            }
            if !input.ownership.verify(&input.commitment, &t.context) {
                return Err(TransferError::BadOwnership);
            }
        }
        for output in &t.outputs {
            if !output.range.verify(&output.commitment, VALUE_BITS, &t.context) {
                return Err(TransferError::BadRange);
            }
        }
        let d = t
            .inputs
            .iter()
            .fold(GroupElement::ONE, |acc, i| acc.mul(i.commitment.0))
            .div(t.outputs.iter().fold(GroupElement::ONE, |acc, o| acc.mul(o.commitment.0)));
        if !t.balance.verify(GroupElement::generator_h(), d, &t.context) {
            return Err(TransferError::BadBalance);
        }
        Ok(())
    }

    /// Verifies and applies: consumes inputs (records nullifiers) and
    /// adds outputs to the pool.
    pub fn apply(&mut self, t: &PrivateTransfer) -> Result<(), TransferError> {
        self.verify(t)?;
        for input in &t.inputs {
            self.notes.remove(&input.commitment);
            self.nullifiers.insert(input.nullifier);
        }
        for output in &t.outputs {
            self.notes.insert(output.commitment);
        }
        self.transfers_applied += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn setup() -> (ZkLedger, NoteSecret, StdRng) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ledger = ZkLedger::new();
        let note = ledger.mint(100, &mut rng);
        (ledger, note, rng)
    }

    #[test]
    fn honest_transfer_verifies_and_applies() {
        let (mut ledger, note, mut rng) = setup();
        let (t, outs) = build_transfer(&[note], &[60, 40], b"tx1", &mut rng).unwrap();
        ledger.apply(&t).unwrap();
        assert_eq!(ledger.note_count(), 2);
        assert!(ledger.contains_note(&outs[0].commitment()));
        assert!(ledger.contains_note(&outs[1].commitment()));
    }

    #[test]
    fn recipients_can_spend_received_notes() {
        let (mut ledger, note, mut rng) = setup();
        let (t, outs) = build_transfer(&[note], &[60, 40], b"tx1", &mut rng).unwrap();
        ledger.apply(&t).unwrap();
        // The 60-note owner spends onward, merging nothing.
        let (t2, _) =
            build_transfer(std::slice::from_ref(&outs[0]), &[60], b"tx2", &mut rng).unwrap();
        ledger.apply(&t2).unwrap();
        assert_eq!(ledger.transfers_applied, 2);
    }

    #[test]
    fn multi_input_merge() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ledger = ZkLedger::new();
        let a = ledger.mint(30, &mut rng);
        let b = ledger.mint(12, &mut rng);
        let (t, _) = build_transfer(&[a, b], &[42], b"merge", &mut rng).unwrap();
        ledger.apply(&t).unwrap();
        assert_eq!(ledger.note_count(), 1);
    }

    #[test]
    fn double_spend_rejected() {
        let (mut ledger, note, mut rng) = setup();
        let (t1, _) =
            build_transfer(std::slice::from_ref(&note), &[100], b"tx1", &mut rng).unwrap();
        ledger.apply(&t1).unwrap();
        let (t2, _) = build_transfer(&[note], &[100], b"tx2", &mut rng).unwrap();
        // The note is gone from the pool AND its nullifier is burned.
        assert!(matches!(
            ledger.apply(&t2),
            Err(TransferError::UnknownNote | TransferError::DoubleSpend(_))
        ));
    }

    #[test]
    fn unbalanced_transfer_cannot_be_built() {
        let (_, note, mut rng) = setup();
        assert_eq!(
            build_transfer(&[note], &[60, 60], b"tx", &mut rng).unwrap_err(),
            TransferError::Unbalanced { inputs: 100, outputs: 120 }
        );
    }

    #[test]
    fn forged_balance_rejected_by_verifier() {
        // A malicious prover tries to inflate: uses the real machinery to
        // build an honest transfer, then swaps an output commitment for a
        // bigger one. Every proof that binds the commitment must fail.
        let (mut ledger, note, mut rng) = setup();
        let (mut t, _) = build_transfer(&[note], &[100], b"tx", &mut rng).unwrap();
        let fat = NoteSecret { value: 1_000_000, blinding: Scalar::random(&mut rng) };
        t.outputs[0].commitment = fat.commitment();
        assert!(matches!(
            ledger.apply(&t),
            Err(TransferError::BadRange | TransferError::BadBalance)
        ));
    }

    #[test]
    fn thief_without_opening_cannot_spend() {
        let (mut ledger, note, mut rng) = setup();
        // The thief sees the commitment on the ledger but not the secret:
        // fabricates a guess secret and builds a transfer with it.
        let guess = NoteSecret { value: 100, blinding: Scalar::random(&mut rng) };
        let (mut t, _) = build_transfer(&[guess], &[100], b"steal", &mut rng).unwrap();
        // Point the input at the victim's real note.
        t.inputs[0].commitment = note.commitment();
        assert!(matches!(
            ledger.apply(&t),
            Err(TransferError::BadOwnership | TransferError::BadBalance)
        ));
    }

    #[test]
    fn spending_nonexistent_note_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ledger = ZkLedger::new();
        let phantom = NoteSecret { value: 50, blinding: Scalar::random(&mut rng) };
        let (t, _) = build_transfer(&[phantom], &[50], b"tx", &mut rng).unwrap();
        assert_eq!(ledger.apply(&t).unwrap_err(), TransferError::UnknownNote);
    }

    #[test]
    fn commitments_hide_values() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = NoteSecret { value: 100, blinding: Scalar::random(&mut rng) };
        let b = NoteSecret { value: 100, blinding: Scalar::random(&mut rng) };
        assert_ne!(a.commitment(), b.commitment(), "same value, different commitments");
    }

    #[test]
    fn proof_size_grows_with_outputs() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ledger = ZkLedger::new();
        let n1 = ledger.mint(100, &mut rng);
        let n2 = ledger.mint(100, &mut rng);
        let (t1, _) = build_transfer(&[n1], &[100], b"a", &mut rng).unwrap();
        let (t4, _) = build_transfer(&[n2], &[25, 25, 25, 25], b"b", &mut rng).unwrap();
        assert!(t4.proof_size_bytes() > 3 * t1.proof_size_bytes());
    }

    #[test]
    fn out_of_range_value_rejected_at_build() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut ledger = ZkLedger::new();
        let big = ledger.mint(1 << 40, &mut rng);
        assert_eq!(
            build_transfer(&[big], &[1 << 40], b"tx", &mut rng).unwrap_err(),
            TransferError::ValueTooLarge(1 << 40)
        );
    }
}
