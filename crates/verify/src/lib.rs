//! Verifiability techniques for permissioned blockchains (§2.3.2).
//!
//! The paper contrasts two ways for mutually distrusting enterprises to
//! verify each other's transactions without seeing each other's data:
//!
//! * [`zktransfer`] — **cryptographic** (Quorum/Zcash style): private
//!   asset transfers whose validity — sender authorization, no double
//!   spend, mass conservation, non-negative amounts — is checked by any
//!   node via zero-knowledge proofs, with no trusted party. "Truly
//!   decentralized … however, considerable overhead" (E7 measures it).
//! * [`separ`] — **token-based** (Separ): a centralized trusted authority
//!   models global regulations (e.g. FLSA's 40-hour week) as anonymous
//!   blind tokens; platforms verify contributions by redeeming tokens,
//!   learning nothing about the worker's identity or other platforms.
//!   Cheap, but requires trusting the authority.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod separ;
pub mod zktransfer;

pub use separ::{SeparError, SeparSystem, WorkerWallet};
pub use zktransfer::{NoteSecret, PrivateTransfer, TransferError, ZkLedger};
