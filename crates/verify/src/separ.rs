//! Separ (Amiri et al., WWW'21) — token-based verifiability for
//! multi-platform crowdworking (§2.1.3, §2.3.2).
//!
//! A trusted authority models a global regulation — e.g. the FLSA's
//! "at most 40 work hours per week" — as a weekly budget of **anonymous
//! tokens** per worker, issued through the blind VOPRF of
//! [`pbc_crypto::token`]. A worker contributing `h` hours to a task on
//! *any* platform spends `h` tokens; platforms forward tokens to the
//! authority for redemption and record contributions on a ledger shared
//! across platforms. Because tokens are blind-issued, neither platforms
//! nor the authority can link a redemption to the worker's identity or to
//! their activity on other platforms — yet the *global* hour limit is
//! enforced exactly: a worker holding 40 tokens cannot work 41 hours
//! across Uber and Lyft combined.

use pbc_crypto::token::{BlindingSession, Token, TokenAuthority};
use pbc_ledger::ChainLedger;
use pbc_types::{Block, ClientId, NodeId, Op, Transaction, TxId};
use std::collections::HashMap;

/// A crowdworking platform identifier.
pub type PlatformId = u32;

/// Separ errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeparError {
    /// The wallet holds fewer tokens than the contribution needs.
    InsufficientTokens {
        /// Tokens available.
        have: usize,
        /// Tokens needed.
        need: usize,
    },
    /// A token failed redemption (forged or already spent) — the
    /// global-constraint violation Separ exists to catch.
    TokenRejected,
    /// Unknown platform.
    UnknownPlatform(PlatformId),
}

impl std::fmt::Display for SeparError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeparError::InsufficientTokens { have, need } => {
                write!(f, "insufficient tokens: have {have}, need {need}")
            }
            SeparError::TokenRejected => write!(f, "token rejected (forged or double-spent)"),
            SeparError::UnknownPlatform(p) => write!(f, "unknown platform {p}"),
        }
    }
}

impl std::error::Error for SeparError {}

/// A worker's client-side token wallet. Holds unlinkable tokens; the
/// worker identity appears only during issuance, never at spend time.
#[derive(Debug, Default)]
pub struct WorkerWallet {
    tokens: Vec<Token>,
}

impl WorkerWallet {
    /// An empty wallet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokens remaining (work hours still allowed this period).
    pub fn remaining(&self) -> usize {
        self.tokens.len()
    }

    /// Withdraws `n` tokens for spending.
    fn take(&mut self, n: usize) -> Result<Vec<Token>, SeparError> {
        if self.tokens.len() < n {
            return Err(SeparError::InsufficientTokens { have: self.tokens.len(), need: n });
        }
        Ok(self.tokens.split_off(self.tokens.len() - n))
    }
}

/// One platform's record of accepted contributions.
#[derive(Debug, Default)]
pub struct PlatformLog {
    /// Accepted `(task, hours)` contributions.
    pub contributions: Vec<(String, u32)>,
}

/// The Separ deployment: authority + platforms + shared ledger.
pub struct SeparSystem {
    authority: TokenAuthority,
    platforms: HashMap<PlatformId, PlatformLog>,
    /// The blockchain ledger shared across platforms; every accepted
    /// contribution is recorded here (hours are public; workers are not).
    pub ledger: ChainLedger,
    /// Per-worker token budget (the modelled regulation, e.g. 40).
    pub budget: usize,
    next_tx: u64,
}

impl SeparSystem {
    /// Creates a system enforcing `budget` work hours per worker per
    /// period across the given platforms.
    pub fn new<R: rand::Rng + ?Sized>(
        budget: usize,
        platforms: &[PlatformId],
        rng: &mut R,
    ) -> Self {
        SeparSystem {
            authority: TokenAuthority::new(rng),
            platforms: platforms.iter().map(|&p| (p, PlatformLog::default())).collect(),
            ledger: ChainLedger::new(),
            budget,
            next_tx: 0,
        }
    }

    /// Registers a worker: blind-issues a full budget of tokens into a
    /// fresh wallet. The authority sees the issuance but (thanks to
    /// blinding) cannot recognize the tokens when they are later spent.
    pub fn register_worker<R: rand::Rng + ?Sized>(&mut self, rng: &mut R) -> WorkerWallet {
        let mut wallet = WorkerWallet::new();
        for _ in 0..self.budget {
            let session = BlindingSession::start(rng);
            let (signed, proof) = self.authority.issue(session.blinded, rng);
            let token = session
                .finish(self.authority.public_key(), signed, &proof)
                .expect("honest authority issuance");
            wallet.tokens.push(token);
        }
        wallet
    }

    /// A worker contributes `hours` to `task` on `platform`, paying one
    /// token per hour. The platform forwards the tokens to the authority;
    /// any rejection (double spend across *any* platform) fails the whole
    /// contribution.
    pub fn contribute(
        &mut self,
        platform: PlatformId,
        wallet: &mut WorkerWallet,
        task: &str,
        hours: u32,
    ) -> Result<(), SeparError> {
        if !self.platforms.contains_key(&platform) {
            return Err(SeparError::UnknownPlatform(platform));
        }
        let tokens = wallet.take(hours as usize)?;
        // Redeem all tokens; on any failure, refund the unspent ones.
        for (i, token) in tokens.iter().enumerate() {
            if !self.authority.redeem(token) {
                // Refund tokens not yet redeemed (the spent ones are burned).
                wallet.tokens.extend_from_slice(&tokens[i + 1..]);
                return Err(SeparError::TokenRejected);
            }
        }
        // Record on the shared ledger (no worker identity in the record).
        self.next_tx += 1;
        let tx = Transaction::new(
            TxId(self.next_tx),
            ClientId(platform),
            vec![Op::Incr { key: format!("task/{task}/hours"), delta: hours as i64 }],
        );
        let height = self.ledger.height().next();
        let block =
            Block::build(height, self.ledger.head_hash(), NodeId(platform), height.0, vec![tx]);
        self.ledger.append(block).expect("sequential build");
        self.platforms
            .get_mut(&platform)
            .expect("checked above")
            .contributions
            .push((task.to_string(), hours));
        Ok(())
    }

    /// A platform's accepted contributions.
    pub fn platform(&self, p: PlatformId) -> Option<&PlatformLog> {
        self.platforms.get(&p)
    }

    /// Total hours redeemed across all platforms (authority-side view).
    pub fn total_redeemed_hours(&self) -> usize {
        self.authority.redeemed_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn system(budget: usize) -> (SeparSystem, StdRng) {
        let mut rng = StdRng::seed_from_u64(77);
        let sys = SeparSystem::new(budget, &[0, 1], &mut rng);
        (sys, rng)
    }

    #[test]
    fn contribution_within_budget_accepted() {
        let (mut sys, mut rng) = system(40);
        let mut wallet = sys.register_worker(&mut rng);
        sys.contribute(0, &mut wallet, "drive", 8).unwrap();
        assert_eq!(wallet.remaining(), 32);
        assert_eq!(sys.platform(0).unwrap().contributions, vec![("drive".to_string(), 8)]);
    }

    #[test]
    fn global_limit_enforced_across_platforms() {
        // The FLSA scenario: 25h on platform 0 (Uber) + 15h on platform 1
        // (Lyft) exhausts the 40h budget; one more hour anywhere fails.
        let (mut sys, mut rng) = system(40);
        let mut wallet = sys.register_worker(&mut rng);
        sys.contribute(0, &mut wallet, "drive", 25).unwrap();
        sys.contribute(1, &mut wallet, "deliver", 15).unwrap();
        assert_eq!(wallet.remaining(), 0);
        assert_eq!(
            sys.contribute(1, &mut wallet, "deliver", 1).unwrap_err(),
            SeparError::InsufficientTokens { have: 0, need: 1 }
        );
        assert_eq!(sys.total_redeemed_hours(), 40);
    }

    #[test]
    fn token_reuse_detected() {
        let (mut sys, mut rng) = system(5);
        let mut wallet = sys.register_worker(&mut rng);
        // A cheating worker copies a token before spending it.
        let stolen = wallet.tokens[4];
        sys.contribute(0, &mut wallet, "a", 1).unwrap(); // spends tokens[4]
        wallet.tokens.push(stolen); // sneak the copy back in
        assert_eq!(sys.contribute(1, &mut wallet, "b", 1).unwrap_err(), SeparError::TokenRejected);
    }

    #[test]
    fn workers_budgets_are_independent() {
        let (mut sys, mut rng) = system(10);
        let mut alice = sys.register_worker(&mut rng);
        let mut bob = sys.register_worker(&mut rng);
        sys.contribute(0, &mut alice, "t", 10).unwrap();
        // Alice exhausted hers; Bob is unaffected.
        sys.contribute(0, &mut bob, "t", 10).unwrap();
        assert_eq!(sys.total_redeemed_hours(), 20);
    }

    #[test]
    fn ledger_records_contributions_without_identity() {
        let (mut sys, mut rng) = system(10);
        let mut wallet = sys.register_worker(&mut rng);
        sys.contribute(0, &mut wallet, "drive", 3).unwrap();
        sys.ledger.verify().unwrap();
        assert_eq!(sys.ledger.total_txs(), 1);
        // The recorded transaction mentions task and hours, nothing else.
        let tx = &sys.ledger.blocks()[1].txs[0];
        assert!(matches!(
            &tx.ops[0],
            Op::Incr { key, delta: 3 } if key == "task/drive/hours"
        ));
    }

    #[test]
    fn unknown_platform_rejected() {
        let (mut sys, mut rng) = system(10);
        let mut wallet = sys.register_worker(&mut rng);
        assert_eq!(
            sys.contribute(9, &mut wallet, "t", 1).unwrap_err(),
            SeparError::UnknownPlatform(9)
        );
        assert_eq!(wallet.remaining(), 10, "no tokens consumed on bad platform");
    }

    #[test]
    fn failed_contribution_refunds_unspent_tokens() {
        let (mut sys, mut rng) = system(5);
        let mut wallet = sys.register_worker(&mut rng);
        let stolen = wallet.tokens[4];
        sys.contribute(0, &mut wallet, "a", 1).unwrap();
        // Wallet: 4 real tokens + 1 spent copy first in the take order.
        wallet.tokens.insert(0, stolen);
        // take(5) grabs all 5; the copy fails somewhere in the middle.
        let before = wallet.remaining();
        let err = sys.contribute(1, &mut wallet, "b", 5).unwrap_err();
        assert_eq!(err, SeparError::TokenRejected);
        assert!(wallet.remaining() < before, "spent tokens are burned");
    }
}
