//! The blockchain network driver: consensus × architecture × simulation.

use crate::batch::Batch;
use pbc_arch::{
    BlockSeal, EndorsementPolicy, EndorsingPipeline, ExecutionPipeline, FastFabricPipeline,
    OxPipeline, OxiiPipeline, ReorderPolicy, XovPipeline, XoxPipeline,
};
use pbc_consensus::hotstuff::{HotStuffConfig, HotStuffReplica, HsMsg};
use pbc_consensus::minbft::{MinBftConfig, MinBftMsg, MinBftReplica};
use pbc_consensus::paxos::{PaxosConfig, PaxosMsg, PaxosNode};
use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_consensus::raft::{RaftConfig, RaftMsg, RaftNode};
use pbc_consensus::tendermint::{TendermintConfig, TendermintNode, TmMsg};
use pbc_ledger::StateStore;
use pbc_sim::{LatencyModel, NetStats, Network, NetworkConfig, SimTime};
use pbc_types::Transaction;

/// Which ordering protocol the network runs (§2.2, §2.3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsensusKind {
    /// PBFT with a fixed primary per view.
    Pbft,
    /// IBFT-style PBFT with per-height proposer rotation.
    Ibft,
    /// Basic HotStuff (linear message complexity).
    HotStuff,
    /// Tendermint with equal validator powers.
    Tendermint,
    /// Raft (crash fault tolerant).
    Raft,
    /// Multi-decree Paxos (crash fault tolerant).
    Paxos,
    /// MinBFT with trusted hardware (n = 2f+1).
    MinBft,
}

/// Which execution architecture the nodes run (§2.3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArchKind {
    /// Order-execute (sequential execution).
    Ox,
    /// Order-parallel-execute (ParBlockchain).
    Oxii,
    /// Execute-order-validate (Fabric).
    Xov,
    /// XOV with Fabric++ reordering.
    XovFabricPp,
    /// XOV with FabricSharp reordering.
    XovFabricSharp,
    /// XOV with post-order re-execution (XOX Fabric).
    Xox,
    /// XOV with parallel validation (FastFabric).
    FastFabric,
    /// XOV behind a 2-of-3 organization endorsement policy.
    XovEndorsed,
}

impl ArchKind {
    fn make(&self, state: StateStore) -> Box<dyn ExecutionPipeline> {
        match self {
            ArchKind::Ox => Box::new(OxPipeline::with_state(state)),
            ArchKind::Oxii => Box::new(OxiiPipeline::with_state(state)),
            ArchKind::Xov => Box::new(XovPipeline::with_state(state)),
            ArchKind::XovFabricPp => {
                Box::new(XovPipeline::with_state(state).with_reorder(ReorderPolicy::FabricPP))
            }
            ArchKind::XovFabricSharp => {
                Box::new(XovPipeline::with_state(state).with_reorder(ReorderPolicy::FabricSharp))
            }
            ArchKind::Xox => Box::new(XoxPipeline::with_state(state)),
            ArchKind::FastFabric => Box::new(FastFabricPipeline::with_state(state)),
            ArchKind::XovEndorsed => {
                let orgs = (0..3).map(pbc_types::EnterpriseId).collect();
                Box::new(EndorsingPipeline::new(EndorsementPolicy::new(orgs, 2), 0xE5D0, state))
            }
        }
    }
}

/// The consensus layer, enum-dispatched over the protocol actors.
enum Driver {
    Pbft(Network<PbftReplica<Batch>>),
    HotStuff(Network<HotStuffReplica<Batch>>),
    Tendermint(Network<TendermintNode<Batch>>),
    Raft(Network<RaftNode<Batch>>),
    Paxos(Network<PaxosNode<Batch>>),
    MinBft(Network<MinBftReplica<Batch>>),
}

impl Driver {
    fn len(&self) -> usize {
        match self {
            Driver::Pbft(n) => n.len(),
            Driver::HotStuff(n) => n.len(),
            Driver::Tendermint(n) => n.len(),
            Driver::Raft(n) => n.len(),
            Driver::Paxos(n) => n.len(),
            Driver::MinBft(n) => n.len(),
        }
    }

    fn is_crashed(&self, i: usize) -> bool {
        match self {
            Driver::Pbft(n) => n.is_crashed(i),
            Driver::HotStuff(n) => n.is_crashed(i),
            Driver::Tendermint(n) => n.is_crashed(i),
            Driver::Raft(n) => n.is_crashed(i),
            Driver::Paxos(n) => n.is_crashed(i),
            Driver::MinBft(n) => n.is_crashed(i),
        }
    }

    fn crash(&mut self, i: usize) {
        match self {
            Driver::Pbft(n) => n.crash(i),
            Driver::HotStuff(n) => n.crash(i),
            Driver::Tendermint(n) => n.crash(i),
            Driver::Raft(n) => n.crash(i),
            Driver::Paxos(n) => n.crash(i),
            Driver::MinBft(n) => n.crash(i),
        }
    }

    fn inject_batch(&mut self, batch: Batch) {
        let n = self.len();
        for i in 0..n {
            match self {
                Driver::Pbft(net) => net.inject(0, i, PbftMsg::Request(batch.clone()), 1),
                Driver::HotStuff(net) => net.inject(0, i, HsMsg::Request(batch.clone()), 1),
                Driver::Tendermint(net) => net.inject(0, i, TmMsg::Request(batch.clone()), 1),
                Driver::Raft(net) => net.inject(0, i, RaftMsg::Request(batch.clone()), 1),
                Driver::Paxos(net) => net.inject(0, i, PaxosMsg::Request(batch.clone()), 1),
                Driver::MinBft(net) => net.inject(0, i, MinBftMsg::Request(batch.clone()), 1),
            }
        }
    }

    fn decided_len(&self, i: usize) -> usize {
        match self {
            Driver::Pbft(n) => n.actor(i).log.len(),
            Driver::HotStuff(n) => n.actor(i).log.len(),
            Driver::Tendermint(n) => n.actor(i).log.len(),
            Driver::Raft(n) => n.actor(i).log.len(),
            Driver::Paxos(n) => n.actor(i).log.len(),
            Driver::MinBft(n) => n.actor(i).log.len(),
        }
    }

    fn decided(&self, i: usize) -> Vec<(u64, Batch, SimTime)> {
        match self {
            Driver::Pbft(n) => n.actor(i).log.delivered().to_vec(),
            Driver::HotStuff(n) => n.actor(i).log.delivered().to_vec(),
            Driver::Tendermint(n) => n.actor(i).log.delivered().to_vec(),
            Driver::Raft(n) => n.actor(i).log.delivered().to_vec(),
            Driver::Paxos(n) => n.actor(i).log.delivered().to_vec(),
            Driver::MinBft(n) => n.actor(i).log.delivered().to_vec(),
        }
    }

    fn step(&mut self) -> bool {
        match self {
            Driver::Pbft(n) => n.step(),
            Driver::HotStuff(n) => n.step(),
            Driver::Tendermint(n) => n.step(),
            Driver::Raft(n) => n.step(),
            Driver::Paxos(n) => n.step(),
            Driver::MinBft(n) => n.step(),
        }
    }

    fn now(&self) -> SimTime {
        match self {
            Driver::Pbft(n) => n.now(),
            Driver::HotStuff(n) => n.now(),
            Driver::Tendermint(n) => n.now(),
            Driver::Raft(n) => n.now(),
            Driver::Paxos(n) => n.now(),
            Driver::MinBft(n) => n.now(),
        }
    }

    fn stats(&self) -> &NetStats {
        match self {
            Driver::Pbft(n) => n.stats(),
            Driver::HotStuff(n) => n.stats(),
            Driver::Tendermint(n) => n.stats(),
            Driver::Raft(n) => n.stats(),
            Driver::Paxos(n) => n.stats(),
            Driver::MinBft(n) => n.stats(),
        }
    }

    /// Runs until every alive node delivered `target` batches or
    /// `max_events` elapse. Returns whether the target was reached.
    fn run_until_decided(&mut self, target: usize, max_events: u64) -> bool {
        let n = self.len();
        let mut events = 0;
        loop {
            let done =
                (0..n).filter(|&i| !self.is_crashed(i)).all(|i| self.decided_len(i) >= target);
            if done {
                return true;
            }
            if events >= max_events || !self.step() {
                return false;
            }
            events += 1;
        }
    }
}

/// Configures and builds a [`BlockchainNetwork`].
pub struct NetworkBuilder {
    n: usize,
    consensus: ConsensusKind,
    arch: ArchKind,
    latency: LatencyModel,
    seed: u64,
    batch_size: usize,
    initial_state: StateStore,
}

impl NetworkBuilder {
    /// Starts a builder for `n` nodes with PBFT + OX defaults.
    pub fn new(n: usize) -> Self {
        NetworkBuilder {
            n,
            consensus: ConsensusKind::Pbft,
            arch: ArchKind::Ox,
            latency: LatencyModel::lan(),
            seed: 0,
            batch_size: 32,
            initial_state: StateStore::new(),
        }
    }

    /// Selects the consensus protocol.
    pub fn consensus(mut self, kind: ConsensusKind) -> Self {
        self.consensus = kind;
        self
    }

    /// Selects the execution architecture.
    pub fn architecture(mut self, kind: ArchKind) -> Self {
        self.arch = kind;
        self
    }

    /// Sets the link latency model.
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.latency = model;
        self
    }

    /// Sets the simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the transactions-per-block batch size.
    pub fn batch_size(mut self, size: usize) -> Self {
        self.batch_size = size.max(1);
        self
    }

    /// Seeds every node's state store.
    pub fn initial_state(mut self, state: StateStore) -> Self {
        self.initial_state = state;
        self
    }

    /// Builds the network.
    pub fn build(self) -> BlockchainNetwork {
        let cfg = NetworkConfig { latency: self.latency, seed: self.seed, drop_rate: 0.0 };
        let driver = match self.consensus {
            ConsensusKind::Pbft => {
                let c = PbftConfig::new(self.n);
                let actors = (0..self.n).map(|_| PbftReplica::new(c.clone())).collect();
                let mut net = Network::new(actors, cfg);
                net.start();
                Driver::Pbft(net)
            }
            ConsensusKind::Ibft => {
                let c = PbftConfig::ibft(self.n);
                let actors = (0..self.n).map(|_| PbftReplica::new(c.clone())).collect();
                let mut net = Network::new(actors, cfg);
                net.start();
                Driver::Pbft(net)
            }
            ConsensusKind::HotStuff => {
                let c = HotStuffConfig::new(self.n);
                let actors = (0..self.n).map(|_| HotStuffReplica::new(c.clone())).collect();
                let mut net = Network::new(actors, cfg);
                net.start();
                Driver::HotStuff(net)
            }
            ConsensusKind::Tendermint => {
                let c = TendermintConfig::equal(self.n);
                let actors = (0..self.n).map(|_| TendermintNode::new(c.clone())).collect();
                let mut net = Network::new(actors, cfg);
                net.start();
                Driver::Tendermint(net)
            }
            ConsensusKind::Raft => {
                let c = RaftConfig::new(self.n);
                let actors = (0..self.n).map(|i| RaftNode::new(c.clone(), i)).collect();
                let mut net = Network::new(actors, cfg);
                net.start();
                Driver::Raft(net)
            }
            ConsensusKind::Paxos => {
                let c = PaxosConfig::new(self.n);
                let actors = (0..self.n).map(|i| PaxosNode::new(c.clone(), i)).collect();
                let mut net = Network::new(actors, cfg);
                net.start();
                Driver::Paxos(net)
            }
            ConsensusKind::MinBft => {
                let c = MinBftConfig::new(self.n);
                let actors = (0..self.n).map(|i| MinBftReplica::new(c.clone(), i)).collect();
                let mut net = Network::new(actors, cfg);
                net.start();
                Driver::MinBft(net)
            }
        };
        let pipelines = (0..self.n).map(|_| self.arch.make(self.initial_state.clone())).collect();
        BlockchainNetwork {
            driver,
            pipelines,
            pending: Vec::new(),
            batch_size: self.batch_size,
            next_batch_id: 0,
            batches_decided: 0,
            consensus: self.consensus,
            arch: self.arch,
        }
    }
}

/// The outcome of a [`BlockchainNetwork::run_to_completion`] call.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Transactions committed (per node-0's pipeline accounting).
    pub committed: usize,
    /// Transactions aborted.
    pub aborted: usize,
    /// Batches (blocks) decided by consensus.
    pub batches: usize,
    /// Logical time at completion.
    pub sim_time: SimTime,
    /// Messages the consensus layer sent.
    pub msgs_sent: u64,
    /// Bytes the consensus layer sent.
    pub bytes_sent: u64,
    /// Mean decide latency per batch (submission → decision), in ticks.
    pub mean_decide_latency: f64,
    /// True if consensus reached the target (false = stalled).
    pub consensus_complete: bool,
}

/// A running permissioned blockchain (Figure 1, parameterized).
pub struct BlockchainNetwork {
    driver: Driver,
    pipelines: Vec<Box<dyn ExecutionPipeline>>,
    pending: Vec<Transaction>,
    batch_size: usize,
    next_batch_id: u64,
    batches_decided: usize,
    consensus: ConsensusKind,
    arch: ArchKind,
}

impl BlockchainNetwork {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.driver.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.driver.len() == 0
    }

    /// The configured consensus protocol.
    pub fn consensus_kind(&self) -> ConsensusKind {
        self.consensus
    }

    /// The configured architecture.
    pub fn arch_kind(&self) -> ArchKind {
        self.arch
    }

    /// Queues a transaction for the next batch.
    pub fn submit(&mut self, tx: Transaction) {
        self.pending.push(tx);
    }

    /// Queues many transactions.
    pub fn submit_all(&mut self, txs: Vec<Transaction>) {
        self.pending.extend(txs);
    }

    /// Crashes a node (it stops participating in consensus; its pipeline
    /// stops applying blocks).
    pub fn crash(&mut self, node: usize) {
        self.driver.crash(node);
    }

    /// Flushes pending transactions through consensus and executes every
    /// decided batch on every alive node's pipeline.
    pub fn run_to_completion(&mut self) -> RunReport {
        // Batch and inject.
        let mut submitted = 0;
        let pending = std::mem::take(&mut self.pending);
        for chunk in pending.chunks(self.batch_size) {
            let batch = Batch::new(self.next_batch_id, chunk.to_vec());
            self.next_batch_id += 1;
            self.driver.inject_batch(batch);
            submitted += 1;
        }
        let target = self.batches_decided + submitted;
        // Generous budget: protocols with timers need room for recovery.
        let max_events = 200_000 + 400_000 * submitted as u64;
        let complete = self.driver.run_until_decided(target, max_events);

        // Apply newly decided batches to every alive pipeline in order.
        let mut report = RunReport {
            consensus_complete: complete,
            sim_time: self.driver.now(),
            msgs_sent: self.driver.stats().msgs_sent,
            bytes_sent: self.driver.stats().bytes_sent,
            ..Default::default()
        };
        let reference = (0..self.len()).find(|&i| !self.driver.is_crashed(i));
        let Some(reference) = reference else {
            return report;
        };
        // Seal each decided batch with consensus-level metadata taken
        // from the *reference* replica: the proposer responsible for the
        // sequence number (rotating protocols rotate it, fixed-leader
        // protocols pin it to node 0) and the decision time. Every alive
        // node seals seq k identically, so head hashes stay convergent;
        // a node that has decided further ahead than the reference defers
        // those batches until the reference catches up and their seals
        // are known.
        let n = self.len();
        let rotating = matches!(
            self.consensus,
            ConsensusKind::Ibft | ConsensusKind::HotStuff | ConsensusKind::Tendermint
        );
        let seals: std::collections::HashMap<u64, BlockSeal> = self
            .driver
            .decided(reference)
            .iter()
            .map(|(seq, _, t)| {
                let proposer = if rotating { (*seq as usize % n) as u32 } else { 0 };
                (*seq, BlockSeal { proposer: pbc_types::NodeId(proposer), time: *t })
            })
            .collect();
        let decided_len = self.driver.decided(reference).len();
        let mut latency_sum = 0u64;
        let mut latency_n = 0u64;
        for (node, pipeline) in self.pipelines.iter_mut().enumerate() {
            if self.driver.is_crashed(node) {
                continue;
            }
            let node_decided = self.driver.decided(node);
            for (seq, batch, t) in node_decided.iter().skip(self.batches_decided) {
                let Some(&seal) = seals.get(seq) else {
                    break; // ahead of the reference: seal unknown yet
                };
                let outcome = pipeline.process_block_sealed(batch.txs.clone(), seal);
                if node == reference {
                    report.committed += outcome.committed.len();
                    report.aborted += outcome.aborted.len();
                    report.batches += 1;
                    latency_sum += t;
                    latency_n += 1;
                }
            }
        }
        self.batches_decided = decided_len;
        if latency_n > 0 {
            report.mean_decide_latency = latency_sum as f64 / latency_n as f64;
        }
        report
    }

    /// True when all alive nodes hold identical ledgers and states —
    /// the consistency property Figure 1 illustrates.
    pub fn replicas_identical(&self) -> bool {
        let alive: Vec<usize> = (0..self.len()).filter(|&i| !self.driver.is_crashed(i)).collect();
        let Some(&first) = alive.first() else {
            return true;
        };
        let head = self.pipelines[first].ledger().head_hash();
        let digest = self.pipelines[first].state().state_digest();
        alive.iter().all(|&i| {
            self.pipelines[i].ledger().head_hash() == head
                && self.pipelines[i].state().state_digest() == digest
        })
    }

    /// A node's committed state.
    pub fn node_state(&self, node: usize) -> &StateStore {
        self.pipelines[node].state()
    }

    /// A node's block ledger.
    pub fn node_ledger(&self, node: usize) -> &pbc_ledger::ChainLedger {
        self.pipelines[node].ledger()
    }

    /// Consensus-layer network statistics.
    pub fn net_stats(&self) -> &NetStats {
        self.driver.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_workload::PaymentWorkload;

    fn run(
        consensus: ConsensusKind,
        arch: ArchKind,
        n: usize,
        txs: usize,
    ) -> (BlockchainNetwork, RunReport) {
        let w = PaymentWorkload { accounts: 64, ..Default::default() };
        let mut chain = NetworkBuilder::new(n)
            .consensus(consensus)
            .architecture(arch)
            .initial_state(w.initial_state())
            .batch_size(8)
            .build();
        chain.submit_all(w.generate(0, txs));
        let report = chain.run_to_completion();
        (chain, report)
    }

    #[test]
    fn figure1_five_nodes_identical_replicas() {
        let (chain, report) = run(ConsensusKind::Pbft, ArchKind::Ox, 5, 24);
        assert!(report.consensus_complete);
        assert_eq!(report.committed, 24);
        assert_eq!(report.batches, 3);
        assert!(chain.replicas_identical());
        // The ledger chains verify on every node.
        for i in 0..5 {
            chain.node_ledger(i).verify().unwrap();
        }
    }

    #[test]
    fn every_consensus_kind_drives_the_chain() {
        for kind in [
            ConsensusKind::Pbft,
            ConsensusKind::Ibft,
            ConsensusKind::HotStuff,
            ConsensusKind::Tendermint,
            ConsensusKind::Raft,
            ConsensusKind::Paxos,
            ConsensusKind::MinBft,
        ] {
            let n = if kind == ConsensusKind::MinBft { 3 } else { 4 };
            let (chain, report) = run(kind, ArchKind::Ox, n, 16);
            assert!(report.consensus_complete, "{kind:?} stalled");
            assert_eq!(report.committed, 16, "{kind:?}");
            assert!(chain.replicas_identical(), "{kind:?} replicas diverged");
        }
    }

    #[test]
    fn every_arch_kind_commits_consistently() {
        for arch in [
            ArchKind::Ox,
            ArchKind::Oxii,
            ArchKind::Xov,
            ArchKind::XovFabricPp,
            ArchKind::XovFabricSharp,
            ArchKind::Xox,
            ArchKind::FastFabric,
        ] {
            let (chain, report) = run(ConsensusKind::Pbft, arch, 4, 16);
            assert!(report.consensus_complete, "{arch:?}");
            assert!(report.committed + report.aborted == 16, "{arch:?}");
            assert!(chain.replicas_identical(), "{arch:?} replicas diverged");
        }
    }

    #[test]
    fn incremental_submission_rounds() {
        let w = PaymentWorkload { accounts: 64, ..Default::default() };
        let mut chain = NetworkBuilder::new(4)
            .architecture(ArchKind::Oxii)
            .initial_state(w.initial_state())
            .batch_size(4)
            .build();
        chain.submit_all(w.generate(0, 8));
        let r1 = chain.run_to_completion();
        chain.submit_all(w.generate(100, 8));
        let r2 = chain.run_to_completion();
        assert_eq!(r1.committed + r2.committed, 16);
        assert!(chain.replicas_identical());
        assert_eq!(chain.node_ledger(0).len(), 5); // genesis + 4 blocks
    }

    #[test]
    fn crash_tolerance_end_to_end() {
        let w = PaymentWorkload { accounts: 64, ..Default::default() };
        let mut chain = NetworkBuilder::new(4)
            .consensus(ConsensusKind::Pbft)
            .initial_state(w.initial_state())
            .build();
        chain.crash(2);
        chain.submit_all(w.generate(0, 8));
        let report = chain.run_to_completion();
        assert!(report.consensus_complete);
        assert_eq!(report.committed, 8);
        assert!(chain.replicas_identical(), "alive replicas stay identical");
    }

    #[test]
    fn report_metrics_populated() {
        let (_, report) = run(ConsensusKind::Pbft, ArchKind::Ox, 4, 8);
        assert!(report.msgs_sent > 0);
        assert!(report.bytes_sent > 0);
        assert!(report.mean_decide_latency > 0.0);
        assert!(report.sim_time > 0);
    }
}
