//! The blockchain network driver: consensus × architecture × simulation.
//!
//! Consensus is composed through the generic ordering layer
//! ([`pbc_consensus::ordering`]): [`ConsensusKind`] resolves to a
//! registry name once at construction, and everything after dispatches
//! through a boxed [`OrderingCluster`] — there is no per-protocol code
//! in this crate. Adding a protocol to the whole stack is an
//! `OrderingActor` impl plus one registry entry in `pbc-consensus`.

use crate::audit::{AuditTrail, CommitRecord};
use crate::batch::Batch;
use pbc_arch::{
    BlockOutcome, BlockSeal, EndorsementPolicy, EndorsingPipeline, ExecutionPipeline,
    FastFabricPipeline, OxPipeline, OxiiPipeline, ReorderPolicy, XovPipeline, XoxPipeline,
};
use pbc_consensus::{cluster_with, durable_cluster_with, OrderingCluster, Payload};
use pbc_ledger::StateStore;
use pbc_sim::fault::LinkFault;
use pbc_sim::{Attack, LatencyModel, NemesisOp, NetStats, NetworkConfig, SimTime};
use pbc_types::Transaction;

/// Which ordering protocol the network runs (§2.2, §2.3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConsensusKind {
    /// PBFT with a fixed primary per view.
    Pbft,
    /// IBFT-style PBFT with per-height proposer rotation.
    Ibft,
    /// Basic HotStuff (linear message complexity).
    HotStuff,
    /// Tendermint with equal validator powers.
    Tendermint,
    /// Raft (crash fault tolerant).
    Raft,
    /// Multi-decree Paxos (crash fault tolerant).
    Paxos,
    /// MinBFT with trusted hardware (n = 2f+1).
    MinBft,
}

impl ConsensusKind {
    /// Every protocol the stack can run, in catalogue order.
    pub const ALL: [ConsensusKind; 7] = [
        ConsensusKind::Pbft,
        ConsensusKind::Ibft,
        ConsensusKind::HotStuff,
        ConsensusKind::Tendermint,
        ConsensusKind::Raft,
        ConsensusKind::Paxos,
        ConsensusKind::MinBft,
    ];

    /// The protocol's name in the [`pbc_consensus::ordering`] registry.
    pub fn registry_name(&self) -> &'static str {
        match self {
            ConsensusKind::Pbft => "pbft",
            ConsensusKind::Ibft => "ibft",
            ConsensusKind::HotStuff => "hotstuff",
            ConsensusKind::Tendermint => "tendermint",
            ConsensusKind::Raft => "raft",
            ConsensusKind::Paxos => "paxos",
            ConsensusKind::MinBft => "minbft",
        }
    }

    /// Minimum replica count tolerating one fault under this protocol's
    /// fault model (`3f+1` Byzantine, `2f+1` crash / trusted-hardware).
    pub fn min_nodes(&self) -> usize {
        match self {
            ConsensusKind::Raft | ConsensusKind::Paxos | ConsensusKind::MinBft => 3,
            _ => 4,
        }
    }
}

/// Which execution architecture the nodes run (§2.3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArchKind {
    /// Order-execute (sequential execution).
    Ox,
    /// Order-parallel-execute (ParBlockchain).
    Oxii,
    /// Execute-order-validate (Fabric).
    Xov,
    /// XOV with Fabric++ reordering.
    XovFabricPp,
    /// XOV with FabricSharp reordering.
    XovFabricSharp,
    /// XOV with post-order re-execution (XOX Fabric).
    Xox,
    /// XOV with parallel validation (FastFabric).
    FastFabric,
    /// XOV behind a 2-of-3 organization endorsement policy.
    XovEndorsed,
}

impl ArchKind {
    /// Every architecture the stack can run, in catalogue order.
    pub const ALL: [ArchKind; 8] = [
        ArchKind::Ox,
        ArchKind::Oxii,
        ArchKind::Xov,
        ArchKind::XovFabricPp,
        ArchKind::XovFabricSharp,
        ArchKind::Xox,
        ArchKind::FastFabric,
        ArchKind::XovEndorsed,
    ];

    /// Builds a standalone pipeline of this architecture over `state` —
    /// the same construction the network driver uses per node, exposed
    /// so auditors and benches can run an architecture outside a
    /// consensus context.
    pub fn make_pipeline(&self, state: StateStore) -> Box<dyn ExecutionPipeline> {
        match self {
            ArchKind::Ox => Box::new(OxPipeline::with_state(state)),
            ArchKind::Oxii => Box::new(OxiiPipeline::with_state(state)),
            ArchKind::Xov => Box::new(XovPipeline::with_state(state)),
            ArchKind::XovFabricPp => {
                Box::new(XovPipeline::with_state(state).with_reorder(ReorderPolicy::FabricPP))
            }
            ArchKind::XovFabricSharp => {
                Box::new(XovPipeline::with_state(state).with_reorder(ReorderPolicy::FabricSharp))
            }
            ArchKind::Xox => Box::new(XoxPipeline::with_state(state)),
            ArchKind::FastFabric => Box::new(FastFabricPipeline::with_state(state)),
            ArchKind::XovEndorsed => {
                let orgs = (0..3).map(pbc_types::EnterpriseId).collect();
                Box::new(EndorsingPipeline::new(EndorsementPolicy::new(orgs, 2), 0xE5D0, state))
            }
        }
    }
}

/// Configures and builds a [`BlockchainNetwork`].
pub struct NetworkBuilder {
    n: usize,
    consensus: ConsensusKind,
    arch: ArchKind,
    latency: LatencyModel,
    seed: u64,
    lanes: usize,
    batch_size: usize,
    initial_state: StateStore,
    byzantine: Vec<(usize, Vec<Attack>)>,
    audit: bool,
    stores: Option<Vec<pbc_store::NodeStore>>,
}

impl NetworkBuilder {
    /// Starts a builder for `n` nodes with PBFT + OX defaults.
    pub fn new(n: usize) -> Self {
        NetworkBuilder {
            n,
            consensus: ConsensusKind::Pbft,
            arch: ArchKind::Ox,
            latency: LatencyModel::lan(),
            seed: 0,
            lanes: 1,
            batch_size: 32,
            initial_state: StateStore::new(),
            byzantine: Vec::new(),
            audit: false,
            stores: None,
        }
    }

    /// Selects the consensus protocol.
    pub fn consensus(mut self, kind: ConsensusKind) -> Self {
        self.consensus = kind;
        self
    }

    /// Selects the execution architecture.
    pub fn architecture(mut self, kind: ArchKind) -> Self {
        self.arch = kind;
        self
    }

    /// Sets the link latency model.
    pub fn latency(mut self, model: LatencyModel) -> Self {
        self.latency = model;
        self
    }

    /// Sets the simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the event-lane count. With `n > 1` the cluster runs on the
    /// multi-lane parallel simulator core ([`pbc_sim::ParNetwork`]):
    /// windows of events execute concurrently across lanes, while
    /// digests, counters and decided logs stay bit-for-bit identical to
    /// the sequential engine — a performance knob, not a semantic one.
    pub fn lanes(mut self, n: usize) -> Self {
        self.lanes = n.max(1);
        self
    }

    /// Sets the transactions-per-block batch size.
    pub fn batch_size(mut self, size: usize) -> Self {
        self.batch_size = size.max(1);
        self
    }

    /// Seeds every node's state store.
    pub fn initial_state(mut self, state: StateStore) -> Self {
        self.initial_state = state;
        self
    }

    /// Makes `node` Byzantine with the given attack set (replicas are
    /// wrapped in [`pbc_sim::Adversary`] by the ordering registry).
    pub fn byzantine(mut self, node: usize, attacks: Vec<Attack>) -> Self {
        self.byzantine.push((node, attacks));
        self
    }

    /// Records a per-node [`AuditTrail`] of commit claims during runs,
    /// enabling the `pbc-audit` differential auditor to replay and
    /// cross-check the whole run afterwards. Off by default: recording
    /// digests the state after every block.
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// Wires every replica to its own stable [`pbc_store::NodeStore`]
    /// (one per node, in node order): crashes become *total* — RAM is
    /// lost entirely — and restarts recover from staged disk replay.
    /// Enables the disk-fault nemesis ops ([`NemesisOp::FailSyncs`],
    /// [`NemesisOp::CorruptWalTail`], [`NemesisOp::BitRot`]) and the
    /// [`BlockchainNetwork::verify_cold_ledger`] cold re-read check.
    ///
    /// Incompatible with [`byzantine`](NetworkBuilder::byzantine):
    /// `build` panics if both are configured.
    pub fn durable(mut self, stores: Vec<pbc_store::NodeStore>) -> Self {
        self.stores = Some(stores);
        self
    }

    /// Builds the network.
    ///
    /// # Panics
    /// Panics if [`durable`](NetworkBuilder::durable) and
    /// [`byzantine`](NetworkBuilder::byzantine) are both configured, or
    /// if the durable store count differs from `n`.
    pub fn build(self) -> BlockchainNetwork {
        let cfg = NetworkConfig {
            latency: self.latency,
            seed: self.seed,
            drop_rate: 0.0,
            lanes: self.lanes,
        };
        let ordering = if let Some(stores) = self.stores {
            assert!(
                self.byzantine.is_empty(),
                "durable mode wires plain replicas; byzantine adversaries are not yet persisted"
            );
            durable_cluster_with::<Batch>(self.consensus.registry_name(), self.n, cfg, stores)
                .expect("every ConsensusKind maps to a registered ordering protocol")
        } else {
            cluster_with::<Batch>(self.consensus.registry_name(), self.n, cfg, &self.byzantine)
                .expect("every ConsensusKind maps to a registered ordering protocol")
        };
        let pipelines =
            (0..self.n).map(|_| self.arch.make_pipeline(self.initial_state.clone())).collect();
        BlockchainNetwork {
            ordering,
            pipelines,
            pending: Vec::new(),
            batch_size: self.batch_size,
            next_batch_id: 0,
            applied: vec![0; self.n],
            seals: std::collections::HashMap::new(),
            consensus: self.consensus,
            arch: self.arch,
            trails: self.audit.then(|| vec![AuditTrail::new(); self.n]),
            initial_state: self.initial_state,
        }
    }
}

/// The outcome of a [`BlockchainNetwork::run_to_completion`] call.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Transactions committed (per the reference node's pipeline).
    pub committed: usize,
    /// Transactions aborted.
    pub aborted: usize,
    /// Of `aborted`: transactions whose VM invocation exhausted its gas
    /// budget. Always `<= aborted` — a distinct abort *reason*, not a
    /// separate bucket of the commit/abort partition.
    pub out_of_gas: usize,
    /// Dynamic transactions whose declared footprint proved wrong at
    /// commit time and were salvaged (or aborted) by serial
    /// re-execution. Overlaps freely with both verdict buckets.
    pub mispredicted: usize,
    /// Batches (blocks) decided by consensus.
    pub batches: usize,
    /// Logical time at completion.
    pub sim_time: SimTime,
    /// Messages the consensus layer sent.
    pub msgs_sent: u64,
    /// Bytes the consensus layer sent.
    pub bytes_sent: u64,
    /// Mean decide latency per batch (submission → decision), in ticks.
    pub mean_decide_latency: f64,
    /// True if consensus reached the target (false = stalled).
    pub consensus_complete: bool,
    /// True if two alive nodes that applied the same number of batches
    /// hold different ledger heads — silent replica divergence that a
    /// single node's counters would hide. (A node merely *behind* is
    /// lag, not divergence; lag surfaces as `consensus_complete =
    /// false`.)
    pub diverged: bool,
    /// The reference node's ledger head after this run.
    pub head: Option<pbc_crypto::Hash>,
}

/// A running permissioned blockchain (Figure 1, parameterized).
pub struct BlockchainNetwork {
    pub(crate) ordering: Box<dyn OrderingCluster<Batch>>,
    pipelines: Vec<Box<dyn ExecutionPipeline>>,
    pending: Vec<Transaction>,
    pub(crate) batch_size: usize,
    pub(crate) next_batch_id: u64,
    /// Per-node count of batches applied to the pipeline, indexed into
    /// that node's own decided log (a recovered laggard resumes where
    /// *it* stopped, not where node 0 is).
    applied: Vec<usize>,
    /// Canonical per-sequence block seals, pinned the first time a
    /// reference node decides the slot and never recomputed — a laggard
    /// replaying the backlog later (possibly against a *different*
    /// reference, if the original crashed) must seal seq `k` exactly as
    /// the nodes that applied it first did, or heads fork.
    seals: std::collections::HashMap<u64, BlockSeal>,
    consensus: ConsensusKind,
    arch: ArchKind,
    /// Per-node commit audit trails (`NetworkBuilder::with_audit`).
    trails: Option<Vec<AuditTrail>>,
    /// The genesis state every pipeline started from — the root the
    /// auditor replays from.
    initial_state: StateStore,
}

impl BlockchainNetwork {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.ordering.len()
    }

    /// True if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ordering.is_empty()
    }

    /// The configured consensus protocol.
    pub fn consensus_kind(&self) -> ConsensusKind {
        self.consensus
    }

    /// The configured architecture.
    pub fn arch_kind(&self) -> ArchKind {
        self.arch
    }

    /// Queues a transaction for the next batch.
    pub fn submit(&mut self, tx: Transaction) {
        self.pending.push(tx);
    }

    /// Queues many transactions.
    pub fn submit_all(&mut self, txs: Vec<Transaction>) {
        self.pending.extend(txs);
    }

    /// Crashes a node (it stops participating in consensus; its pipeline
    /// stops applying blocks).
    pub fn crash(&mut self, node: usize) {
        self.ordering.crash(node);
    }

    /// Resumes a crashed node with its consensus memory intact; its
    /// pipeline catches up on the next [`run_to_completion`] call.
    ///
    /// [`run_to_completion`]: BlockchainNetwork::run_to_completion
    pub fn recover(&mut self, node: usize) {
        self.ordering.recover(node);
    }

    /// Resumes a crashed node through its `on_start` (re-arms timers).
    pub fn restart(&mut self, node: usize) {
        self.ordering.restart(node);
    }

    /// True if `node` is crashed.
    pub fn is_crashed(&self, node: usize) -> bool {
        self.ordering.is_crashed(node)
    }

    /// Splits the consensus network; cross-group messages drop.
    pub fn partition(&mut self, groups: &[Vec<usize>]) {
        self.ordering.partition(groups);
    }

    /// Removes any partition.
    pub fn heal_partition(&mut self) {
        self.ordering.heal_partition();
    }

    /// Installs a fault on one directed consensus link.
    pub fn degrade_link(&mut self, from: usize, to: usize, fault: LinkFault) {
        self.ordering.degrade_link(from, to, fault);
    }

    /// Restores every consensus link to default behaviour.
    pub fn heal_links(&mut self) {
        self.ordering.heal_links();
    }

    /// Applies one nemesis op to the composed stack's consensus layer,
    /// so seeded chaos schedules (PR 1) can torture consensus ×
    /// execution together. On a [`durable`](NetworkBuilder::durable)
    /// network every op is armed, including `CrashAmnesia` (total RAM
    /// loss, recovery from staged disk replay) and the disk faults
    /// (`FailSyncs`, `CorruptWalTail`, `BitRot`). On a plain network
    /// `CrashAmnesia` panics and disk faults are inert no-ops (see
    /// [`OrderingCluster::apply_nemesis`]).
    pub fn apply_nemesis(&mut self, op: &NemesisOp) {
        self.ordering.apply_nemesis(op);
    }

    /// Persists every alive node's consensus state to its stable store
    /// (checkpoint + decided-block WAL append + sync). A no-op on a
    /// network built without [`durable`](NetworkBuilder::durable)
    /// stores. Sync failures injected by [`NemesisOp::FailSyncs`] are
    /// swallowed here — that is the fault model under test.
    pub fn persist(&mut self) {
        self.ordering.persist();
    }

    /// Cold-reads `node`'s ledger straight off its stable store —
    /// re-running staged recovery on the *current* disk image, bypassing
    /// all RAM state — and checks every recovered block against the
    /// reference replica's decided log. `None` on a non-durable network.
    ///
    /// Returns `Some(true)` when every block that survived on disk
    /// matches the digest the cluster decided at that sequence (the disk
    /// may legitimately hold a *prefix* — blocks decided after the last
    /// [`persist`](BlockchainNetwork::persist) are not on it — but it
    /// must never contradict the decided history).
    pub fn verify_cold_ledger(&mut self, node: usize) -> Option<bool> {
        let cold = self.ordering.cold_decided(node)?;
        let reference = (0..self.len()).find(|&i| !self.ordering.is_crashed(i))?;
        let hot: std::collections::HashMap<u64, u64> = self
            .ordering
            .decided(reference)
            .iter()
            .map(|(seq, batch, _)| (*seq, batch.digest_u64()))
            .collect();
        Some(cold.iter().all(|(seq, batch)| hot.get(seq) == Some(&batch.digest_u64())))
    }

    /// The reference (first alive) node's committed sequence as
    /// backend-neutral [`CommitRow`]s — the shape `sweep --real`
    /// compares against a TCP run of the same seed. `None` when every
    /// node is crashed.
    ///
    /// [`CommitRow`]: crate::report::CommitRow
    pub fn commit_rows(&self) -> Option<Vec<crate::report::CommitRow>> {
        let reference = (0..self.len()).find(|&i| !self.ordering.is_crashed(i))?;
        Some(crate::report::commit_rows(
            self.consensus.registry_name(),
            self.len(),
            self.ordering.decided(reference),
        ))
    }

    /// The consensus-pinned block seals so far, in slot order. Together
    /// with the committed batches these determine the ledger head (see
    /// [`sealed_head`](crate::report::sealed_head)).
    pub fn seals(&self) -> Vec<(u64, BlockSeal)> {
        let mut seals: Vec<(u64, BlockSeal)> = self.seals.iter().map(|(&s, &b)| (s, b)).collect();
        seals.sort_unstable_by_key(|&(s, _)| s);
        seals
    }

    /// The reference node's decided batches in slot order — the block
    /// payloads matching [`seals`](BlockchainNetwork::seals). `None`
    /// when every node is crashed.
    pub fn decided_batches(&self) -> Option<Vec<(u64, Batch)>> {
        let reference = (0..self.len()).find(|&i| !self.ordering.is_crashed(i))?;
        Some(
            self.ordering
                .decided(reference)
                .iter()
                .map(|(seq, batch, _)| (*seq, batch.clone()))
                .collect(),
        )
    }

    /// Every node's decided log as `(seq, payload digest)` pairs — the
    /// shape [`pbc_sim::InvariantChecker::observe`] consumes.
    pub fn decided_views(&self) -> Vec<Vec<(u64, u64)>> {
        (0..self.len())
            .map(|i| {
                self.ordering
                    .decided(i)
                    .iter()
                    .map(|(seq, batch, _)| (*seq, batch.digest_u64()))
                    .collect()
            })
            .collect()
    }

    /// Flushes pending transactions through consensus and executes every
    /// decided batch on every alive node's pipeline.
    pub fn run_to_completion(&mut self) -> RunReport {
        // Batch and inject: each batch is allocated once and fans in to
        // every replica through the Arc-shared broadcast path.
        let mut submitted = 0;
        let pending = std::mem::take(&mut self.pending);
        for chunk in pending.chunks(self.batch_size) {
            let batch = Batch::new(self.next_batch_id, chunk.to_vec());
            self.next_batch_id += 1;
            self.ordering.submit(batch);
            submitted += 1;
        }
        let target = self.next_batch_id as usize;
        // Generous budget: protocols with timers need room for recovery.
        let max_events = 200_000 + 400_000 * submitted as u64;
        let complete = self.ordering.run_until_decided(target, max_events);

        // Apply newly decided batches to every alive pipeline in order.
        let mut report = RunReport {
            consensus_complete: complete,
            sim_time: self.ordering.now(),
            msgs_sent: self.ordering.stats().msgs_sent,
            bytes_sent: self.ordering.stats().bytes_sent,
            ..Default::default()
        };
        let mut latency_sum = 0u64;
        let mut latency_n = 0u64;
        let reference = {
            let RunReport { committed, aborted, out_of_gas, mispredicted, batches, .. } =
                &mut report;
            self.apply_decided(|_seq, _batch, t, outcome| {
                *committed += outcome.committed.len();
                *aborted += outcome.aborted.len();
                *out_of_gas += outcome.out_of_gas.len();
                *mispredicted += outcome.mispredicted.len();
                *batches += 1;
                latency_sum += t;
                latency_n += 1;
            })
        };
        let Some(reference) = reference else {
            return report;
        };
        if latency_n > 0 {
            report.mean_decide_latency = latency_sum as f64 / latency_n as f64;
        }
        report.head = Some(self.pipelines[reference].ledger().head_hash());
        report.diverged = self.check_divergence();
        report
    }

    /// Seals every slot the reference replica has decided, then applies
    /// newly decided batches to every alive node's pipeline in order —
    /// the shared back half of [`run_to_completion`] and the ingress
    /// driver ([`run_ingress`]). `on_reference_batch` fires once per
    /// batch newly applied on the reference node with `(seq, batch,
    /// decide_time, outcome)`; returns the reference node, or `None`
    /// when every node is crashed.
    ///
    /// Seals are pinned with consensus-level metadata taken from the
    /// *reference* replica: the proposer responsible for the sequence
    /// number (rotating protocols rotate it, fixed-leader protocols pin
    /// it to node 0) and the decision time. Every alive node seals seq
    /// `k` identically, so head hashes stay convergent; a node that has
    /// decided further ahead than the reference defers those batches
    /// until the reference catches up and their seals are known.
    ///
    /// [`run_to_completion`]: BlockchainNetwork::run_to_completion
    /// [`run_ingress`]: BlockchainNetwork::run_ingress
    pub(crate) fn apply_decided(
        &mut self,
        mut on_reference_batch: impl FnMut(u64, &Batch, SimTime, &BlockOutcome),
    ) -> Option<usize> {
        let reference = (0..self.len()).find(|&i| !self.ordering.is_crashed(i))?;
        let n = self.len();
        for (seq, _, t) in self.ordering.decided(reference) {
            let proposer = crate::report::seal_proposer(self.consensus.registry_name(), n, *seq);
            self.seals
                .entry(*seq)
                .or_insert(BlockSeal { proposer: pbc_types::NodeId(proposer), time: *t });
        }
        for node in 0..n {
            if self.ordering.is_crashed(node) {
                continue;
            }
            let node_decided = self.ordering.decided(node);
            while self.applied[node] < node_decided.len() {
                let (seq, batch, t) = &node_decided[self.applied[node]];
                let Some(&seal) = self.seals.get(seq) else {
                    break; // ahead of every past reference: seal unknown yet
                };
                let outcome = self.pipelines[node].process_block_sealed(batch.txs.clone(), seal);
                self.applied[node] += 1;
                if let Some(trails) = &mut self.trails {
                    trails[node].record(CommitRecord {
                        seq: *seq,
                        height: self.pipelines[node].ledger().height().0,
                        committed: outcome.committed.clone(),
                        aborted: outcome.aborted.clone(),
                        value_digest: self.pipelines[node].state().value_digest(),
                    });
                }
                if node == reference {
                    on_reference_batch(*seq, batch, *t, &outcome);
                }
            }
        }
        Some(reference)
    }

    /// Convergence check across *all* alive nodes, not just node 0's
    /// counters: any two nodes that applied equally many batches must
    /// hold the same ledger head. (A node merely *behind* is lag, not
    /// divergence.)
    pub(crate) fn check_divergence(&self) -> bool {
        let alive: Vec<usize> = (0..self.len()).filter(|&i| !self.ordering.is_crashed(i)).collect();
        for (k, &i) in alive.iter().enumerate() {
            for &j in &alive[k + 1..] {
                if self.applied[i] == self.applied[j]
                    && self.pipelines[i].ledger().head_hash()
                        != self.pipelines[j].ledger().head_hash()
                {
                    return true;
                }
            }
        }
        false
    }

    /// True when all alive nodes hold identical ledgers and states —
    /// the consistency property Figure 1 illustrates.
    pub fn replicas_identical(&self) -> bool {
        let alive: Vec<usize> = (0..self.len()).filter(|&i| !self.ordering.is_crashed(i)).collect();
        let Some(&first) = alive.first() else {
            return true;
        };
        let head = self.pipelines[first].ledger().head_hash();
        let digest = self.pipelines[first].state().state_digest();
        alive.iter().all(|&i| {
            self.pipelines[i].ledger().head_hash() == head
                && self.pipelines[i].state().state_digest() == digest
        })
    }

    /// A node's committed state.
    pub fn node_state(&self, node: usize) -> &StateStore {
        self.pipelines[node].state()
    }

    /// A node's block ledger.
    pub fn node_ledger(&self, node: usize) -> &pbc_ledger::ChainLedger {
        self.pipelines[node].ledger()
    }

    /// Consensus-layer network statistics.
    pub fn net_stats(&self) -> &NetStats {
        self.ordering.stats()
    }

    /// Current logical time of the consensus simulation.
    pub fn now(&self) -> SimTime {
        self.ordering.now()
    }

    /// Digest of the consensus delivery trace so far — the golden-trace
    /// handle determinism tests compare across engines and repeats.
    pub fn trace_digest(&self) -> u64 {
        self.ordering.trace_digest()
    }

    /// The recorded audit trail for `node`, if the network was built
    /// [`with_audit`](NetworkBuilder::with_audit).
    pub fn audit_trail(&self, node: usize) -> Option<&AuditTrail> {
        self.trails.as_ref().map(|t| &t[node])
    }

    /// The genesis state every node's pipeline started from.
    pub fn initial_state(&self) -> &StateStore {
        &self.initial_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_workload::PaymentWorkload;

    fn run(
        consensus: ConsensusKind,
        arch: ArchKind,
        n: usize,
        txs: usize,
    ) -> (BlockchainNetwork, RunReport) {
        let w = PaymentWorkload { accounts: 64, ..Default::default() };
        let mut chain = NetworkBuilder::new(n)
            .consensus(consensus)
            .architecture(arch)
            .initial_state(w.initial_state())
            .batch_size(8)
            .build();
        chain.submit_all(w.generate(0, txs));
        let report = chain.run_to_completion();
        (chain, report)
    }

    #[test]
    fn figure1_five_nodes_identical_replicas() {
        let (chain, report) = run(ConsensusKind::Pbft, ArchKind::Ox, 5, 24);
        assert!(report.consensus_complete);
        assert_eq!(report.committed, 24);
        assert_eq!(report.batches, 3);
        assert!(chain.replicas_identical());
        // The ledger chains verify on every node.
        for i in 0..5 {
            chain.node_ledger(i).verify().unwrap();
        }
    }

    #[test]
    fn every_consensus_kind_drives_the_chain() {
        for kind in ConsensusKind::ALL {
            let n = if kind == ConsensusKind::MinBft { 3 } else { 4 };
            let (chain, report) = run(kind, ArchKind::Ox, n, 16);
            assert!(report.consensus_complete, "{kind:?} stalled");
            assert_eq!(report.committed, 16, "{kind:?}");
            assert!(chain.replicas_identical(), "{kind:?} replicas diverged");
            assert!(!report.diverged, "{kind:?} reported divergence");
        }
    }

    #[test]
    fn every_arch_kind_commits_consistently() {
        for arch in [
            ArchKind::Ox,
            ArchKind::Oxii,
            ArchKind::Xov,
            ArchKind::XovFabricPp,
            ArchKind::XovFabricSharp,
            ArchKind::Xox,
            ArchKind::FastFabric,
        ] {
            let (chain, report) = run(ConsensusKind::Pbft, arch, 4, 16);
            assert!(report.consensus_complete, "{arch:?}");
            assert!(report.committed + report.aborted == 16, "{arch:?}");
            assert!(chain.replicas_identical(), "{arch:?} replicas diverged");
        }
    }

    #[test]
    fn incremental_submission_rounds() {
        let w = PaymentWorkload { accounts: 64, ..Default::default() };
        let mut chain = NetworkBuilder::new(4)
            .architecture(ArchKind::Oxii)
            .initial_state(w.initial_state())
            .batch_size(4)
            .build();
        chain.submit_all(w.generate(0, 8));
        let r1 = chain.run_to_completion();
        chain.submit_all(w.generate(100, 8));
        let r2 = chain.run_to_completion();
        assert_eq!(r1.committed + r2.committed, 16);
        assert!(chain.replicas_identical());
        assert_eq!(chain.node_ledger(0).len(), 5); // genesis + 4 blocks
    }

    #[test]
    fn crash_tolerance_end_to_end() {
        let w = PaymentWorkload { accounts: 64, ..Default::default() };
        let mut chain = NetworkBuilder::new(4)
            .consensus(ConsensusKind::Pbft)
            .initial_state(w.initial_state())
            .build();
        chain.crash(2);
        chain.submit_all(w.generate(0, 8));
        let report = chain.run_to_completion();
        assert!(report.consensus_complete);
        assert_eq!(report.committed, 8);
        assert!(chain.replicas_identical(), "alive replicas stay identical");
    }

    #[test]
    fn crashed_node_catches_up_after_recovery() {
        // Raft: the leader replays the whole log to a restarted
        // follower, so the laggard's pipeline has a backlog to apply.
        let w = PaymentWorkload { accounts: 64, ..Default::default() };
        let mut chain = NetworkBuilder::new(3)
            .consensus(ConsensusKind::Raft)
            .initial_state(w.initial_state())
            .batch_size(4)
            .build();
        chain.crash(2);
        chain.submit_all(w.generate(0, 8));
        let r1 = chain.run_to_completion();
        assert!(r1.consensus_complete);
        chain.restart(2); // rejoin: leader heartbeats replicate the backlog
        chain.submit_all(w.generate(100, 4));
        let r2 = chain.run_to_completion();
        assert!(r2.consensus_complete);
        assert!(!r2.diverged, "recovered replica must not fork");
        // The per-node applied counters replay node 2's full backlog.
        assert!(chain.replicas_identical(), "node 2 caught up");
        assert_eq!(r1.committed + r2.committed, 12);
    }

    fn fault_stores(n: usize, seed: u64) -> Vec<pbc_store::NodeStore> {
        (0..n)
            .map(|i| {
                let vfs = pbc_store::FaultFs::new(seed ^ (i as u64 * 0x9E37));
                let (store, _) =
                    pbc_store::NodeStore::open(Box::new(vfs), pbc_store::StoreConfig::default())
                        .expect("fresh in-memory store opens");
                store
            })
            .collect()
    }

    #[test]
    fn durable_network_survives_total_crash_and_cold_read_matches() {
        let w = PaymentWorkload { accounts: 64, ..Default::default() };
        let mut chain = NetworkBuilder::new(4)
            .consensus(ConsensusKind::Pbft)
            .initial_state(w.initial_state())
            .batch_size(4)
            .durable(fault_stores(4, 0xD15C))
            .build();
        chain.submit_all(w.generate(0, 8));
        let r1 = chain.run_to_completion();
        assert!(r1.consensus_complete);
        chain.persist();
        // Total crash: node 2 loses ALL memory, then reboots from disk.
        chain.apply_nemesis(&NemesisOp::CrashAmnesia { node: 2 });
        chain.apply_nemesis(&NemesisOp::Restart { node: 2 });
        chain.submit_all(w.generate(100, 8));
        let r2 = chain.run_to_completion();
        assert!(r2.consensus_complete, "rebooted-from-disk node must not stall the cluster");
        assert!(!r2.diverged, "disk-recovered replica must not fork");
        assert!(chain.replicas_identical());
        chain.persist();
        for node in 0..4 {
            assert_eq!(
                chain.verify_cold_ledger(node),
                Some(true),
                "node {node}: cold re-read off disk must match the decided history"
            );
        }
    }

    #[test]
    fn plain_network_has_no_cold_ledger() {
        let (mut chain, _) = run(ConsensusKind::Pbft, ArchKind::Ox, 4, 8);
        chain.persist(); // no-op, must not panic
        assert_eq!(chain.verify_cold_ledger(0), None);
    }

    #[test]
    fn report_metrics_populated() {
        let (_, report) = run(ConsensusKind::Pbft, ArchKind::Ox, 4, 8);
        assert!(report.msgs_sent > 0);
        assert!(report.bytes_sent > 0);
        assert!(report.mean_decide_latency > 0.0);
        assert!(report.sim_time > 0);
        assert!(report.head.is_some());
        assert!(!report.diverged);
    }
}
