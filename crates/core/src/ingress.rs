//! The end-to-end client path: ingress queue → ordering → pipelines.
//!
//! [`BlockchainNetwork::run_ingress`] closes the loop the paper's
//! Figure 1 draws between clients and the replicated network: a seeded
//! [`LoadGen`] produces client arrivals as first-class simulation
//! events, a bounded [`IngressQueue`] applies admission control, full
//! (or lingering partial) batches are scheduled into consensus at their
//! formation tick via `OrderingCluster::submit_at`, and every decided
//! batch resolves its transactions back against the queue — stamping
//! per-client arrival→decision latency through `pbc-trace`.
//!
//! ## Determinism across engines
//!
//! The driver advances the simulation **only** through
//! `run_until_time`, whose deadlines are pure functions of the arrival
//! timeline and of decide times (both engine-invariant). Sequential and
//! multi-lane engines therefore observe identical `now()` values at
//! every decision point, and a seeded run is bit-for-bit reproducible
//! at any lane count — the property the golden ingress tests pin.

use crate::batch::Batch;
use crate::network::BlockchainNetwork;
use pbc_ingress::{Admit, IngressQueue, LoadGen, QueueStats};
use pbc_sim::SimTime;
use pbc_trace::TraceEvent;
use pbc_types::TxId;
use std::collections::HashSet;

/// Tuning knobs of one [`BlockchainNetwork::run_ingress`] call.
#[derive(Clone, Copy, Debug)]
pub struct IngressConfig {
    /// How long (in ticks from the start of the call) new client
    /// arrivals are accepted. Arrivals past the horizon end the run's
    /// admission phase; in-flight work is then drained.
    pub horizon: SimTime,
    /// A partial batch ships once its oldest member has waited this
    /// many ticks — Fabric's `BatchTimeout` analogue, bounding the
    /// queueing delay a lightly loaded system adds.
    pub linger: SimTime,
    /// Slice (in ticks) the engine advances per poll while waiting on
    /// in-flight decisions with no arrivals scheduled.
    pub idle_slice: SimTime,
    /// Event budget for the post-horizon drain of in-flight batches.
    pub drain_events: u64,
    /// Maximum batches submitted to consensus but not yet decided (the
    /// orderer's bounded pipeline). When the window is full the queue
    /// stops draining, fills, and sheds load via capacity rejections
    /// and TTL expiry — the mechanism that makes saturation visible.
    pub max_inflight_batches: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            horizon: 1_000_000,
            linger: 5_000,
            idle_slice: 2_000,
            drain_events: 4_000_000,
            max_inflight_batches: 8,
        }
    }
}

/// The outcome of one [`BlockchainNetwork::run_ingress`] call.
#[derive(Clone, Debug, Default)]
pub struct IngressReport {
    /// Cumulative queue counters (offered/admitted/rejected/expired/
    /// committed/aborted) at the end of the run.
    pub queue: QueueStats,
    /// Admitted transactions still unresolved at the end: waiting in
    /// the queue or submitted to consensus with no decision. The
    /// `in_flight` term of the conservation identity.
    pub in_flight_at_end: usize,
    /// Batches decided and applied on the reference node.
    pub batches: usize,
    /// Logical ticks elapsed over the call.
    pub elapsed: SimTime,
    /// Mean arrival→decision latency of committed transactions, ticks.
    pub mean_latency: f64,
    /// Median commit latency, ticks.
    pub p50_latency: SimTime,
    /// 99th-percentile commit latency, ticks.
    pub p99_latency: SimTime,
    /// Committed transactions per second (ticks are abstract µs).
    pub committed_tps: f64,
    /// True if every submitted batch was decided before the drain
    /// budget ran out.
    pub consensus_complete: bool,
    /// True if two alive nodes at the same applied height hold
    /// different ledger heads.
    pub diverged: bool,
    /// Dynamic transactions whose declared footprint proved wrong at
    /// commit time and were salvaged (or aborted) by serial
    /// re-execution — OXII's speculative-mispredict count. Overlaps
    /// freely with the commit/abort split; out-of-gas aborts are
    /// counted separately in [`QueueStats::aborted_out_of_gas`].
    pub mispredicted: usize,
}

impl IngressReport {
    /// The queue-conservation identity, checked end-to-end:
    /// `admitted = committed + aborted + expired + in_flight`.
    pub fn conserves(&self) -> bool {
        self.queue.conserves(self.in_flight_at_end)
    }
}

impl BlockchainNetwork {
    /// Drives the full client path for one load profile: arrivals →
    /// admission ([`IngressQueue`]) → batching → consensus → pipeline
    /// execution → per-client latency stamps, until the arrival horizon
    /// passes and in-flight work drains.
    ///
    /// Transactions submitted through [`submit`](Self::submit) /
    /// [`submit_all`](Self::submit_all) are not touched; the ingress
    /// path is its own front door.
    pub fn run_ingress(
        &mut self,
        load: &mut LoadGen,
        queue: &mut IngressQueue,
        cfg: &IngressConfig,
    ) -> IngressReport {
        let start = self.ordering.now();
        let horizon = start.saturating_add(cfg.horizon);
        let mut latencies: Vec<SimTime> = Vec::new();
        let mut batches = 0usize;
        let mut mispredicted = 0usize;

        loop {
            match load.peek(horizon) {
                Some(t) => {
                    // Advance to just before the arrival: both engines
                    // process exactly the events scheduled ≤ t-1, so
                    // `now()` is engine-invariant here.
                    self.ordering.run_until_time(t.saturating_sub(1));
                    self.resolve_decided(
                        load,
                        queue,
                        &mut latencies,
                        &mut batches,
                        &mut mispredicted,
                    );
                    // Completions may have scheduled an earlier
                    // closed-loop arrival; service the timeline in
                    // order.
                    match load.peek(horizon) {
                        Some(t2) if t2 < t => continue,
                        None => break,
                        _ => {}
                    }
                    let (at, tx) = load.pop();
                    self.admit_and_batch(load, queue, at, tx, cfg);
                }
                None => {
                    // No arrivals scheduled. Closed-loop clients may
                    // still be waiting on in-flight work — poll in
                    // fixed slices until the horizon or quiescence.
                    let now = self.ordering.now();
                    if now >= horizon || queue.in_flight() == 0 {
                        break;
                    }
                    let flushed = self.flush_lingering(queue, now, cfg);
                    let stepped = self
                        .ordering
                        .run_until_time(now.saturating_add(cfg.idle_slice).min(horizon));
                    self.resolve_decided(
                        load,
                        queue,
                        &mut latencies,
                        &mut batches,
                        &mut mispredicted,
                    );
                    if stepped == 0 && !flushed {
                        if queue.depth() > 0 && self.backlog() < cfg.max_inflight_batches {
                            // Engine idle and nothing lingering long
                            // enough: time cannot advance on its own,
                            // so ship the partial batch now.
                            let txs = queue.drain(self.batch_size, now);
                            self.submit_batch_at(txs, now);
                        } else {
                            break; // truly stalled (e.g. dead majority)
                        }
                    }
                }
            }
        }

        // Drain phase: ship whatever still waits (no further arrivals
        // can top the batch up) while respecting the in-flight window,
        // then run consensus to the end of the event budget.
        let mut budget = cfg.drain_events;
        loop {
            let now = self.ordering.now();
            while self.backlog() < cfg.max_inflight_batches {
                let txs = queue.drain(self.batch_size, now);
                if txs.is_empty() {
                    break;
                }
                self.submit_batch_at(txs, now);
            }
            if queue.depth() == 0 || budget == 0 {
                break;
            }
            // The window is full and work still waits: run consensus
            // until every submitted batch decides, freeing the whole
            // window at once. (Time-sliced polling stalls here — the
            // next consensus event can lie arbitrarily far ahead of a
            // fixed slice.) Events are charged against the budget via
            // the delivery/timer counters.
            let events = |s: &pbc_sim::NetStats| s.msgs_delivered + s.timers_fired;
            let before = events(self.ordering.stats());
            let decided = self.ordering.run_until_decided(self.next_batch_id as usize, budget);
            budget = budget.saturating_sub(events(self.ordering.stats()) - before);
            self.resolve_decided(load, queue, &mut latencies, &mut batches, &mut mispredicted);
            if !decided {
                break; // stalled (e.g. dead majority) or budget spent
            }
        }
        let target = self.next_batch_id as usize;
        let complete = self.ordering.run_until_decided(target, budget);
        self.resolve_decided(load, queue, &mut latencies, &mut batches, &mut mispredicted);

        let end = self.ordering.now();
        let elapsed = end.saturating_sub(start);
        latencies.sort_unstable();
        let pct = |p: f64| -> SimTime {
            if latencies.is_empty() {
                0
            } else {
                latencies[((latencies.len() - 1) as f64 * p) as usize]
            }
        };
        let stats = queue.stats();
        debug_assert!(queue.check_conservation(), "queue identity broken: {stats:?}");
        IngressReport {
            queue: stats,
            in_flight_at_end: queue.in_flight(),
            batches,
            elapsed,
            mean_latency: if latencies.is_empty() {
                0.0
            } else {
                latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
            },
            p50_latency: pct(0.50),
            p99_latency: pct(0.99),
            committed_tps: if elapsed > 0 {
                stats.committed as f64 * 1e6 / elapsed as f64
            } else {
                0.0
            },
            consensus_complete: complete,
            diverged: self.check_divergence(),
            mispredicted,
        }
    }

    /// Admits one arrival at its own tick, feeds rejections straight
    /// back to the load generator (a backpressure error is a response),
    /// and ships any batch the arrival completed.
    /// Batches submitted to consensus whose decision the reference
    /// replica has not yet logged — the fill of the in-flight window.
    fn backlog(&self) -> usize {
        match (0..self.len()).find(|&i| !self.ordering.is_crashed(i)) {
            Some(r) => (self.next_batch_id as usize).saturating_sub(self.ordering.decided_len(r)),
            None => usize::MAX, // all dead: never submit more
        }
    }

    fn admit_and_batch(
        &mut self,
        load: &mut LoadGen,
        queue: &mut IngressQueue,
        at: SimTime,
        tx: pbc_types::Transaction,
        cfg: &IngressConfig,
    ) {
        let (client, txid) = (tx.client.0, tx.id.0);
        let expired_before = queue.stats().expired;
        let admit = queue.offer(tx, at);
        let outcome = match admit {
            Admit::Admitted => "admitted",
            Admit::Full => "full",
            Admit::Duplicate => "duplicate",
        };
        pbc_trace::emit(at, || TraceEvent::IngressAdmit { client, tx: txid, outcome });
        // TTL expiries freed at the door plus an outright rejection are
        // both client-visible responses: closed-loop clients think and
        // retry with fresh transactions, open-loop ones ignore this.
        let expired = queue.stats().expired - expired_before;
        let responses = expired + usize::from(admit != Admit::Admitted);
        if responses > 0 {
            load.on_resolved(responses, at);
        }
        while queue.depth() >= self.batch_size && self.backlog() < cfg.max_inflight_batches {
            let txs = queue.drain(self.batch_size, at);
            self.submit_batch_at(txs, at);
        }
        self.flush_lingering(queue, at, cfg);
    }

    /// Ships a partial batch whose oldest member has lingered past the
    /// timeout, if the in-flight window has room. Returns true if a
    /// batch was submitted.
    fn flush_lingering(
        &mut self,
        queue: &mut IngressQueue,
        now: SimTime,
        cfg: &IngressConfig,
    ) -> bool {
        if self.backlog() >= cfg.max_inflight_batches {
            return false;
        }
        match queue.oldest_arrival() {
            Some(oldest) if oldest.saturating_add(cfg.linger) <= now && queue.depth() > 0 => {
                let txs = queue.drain(self.batch_size, now);
                if txs.is_empty() {
                    return false;
                }
                self.submit_batch_at(txs, now);
                true
            }
            _ => false,
        }
    }

    /// Wraps drained transactions into the next batch and schedules its
    /// client-request fan-in at the absolute tick `at`.
    fn submit_batch_at(&mut self, txs: Vec<pbc_types::Transaction>, at: SimTime) {
        if txs.is_empty() {
            return;
        }
        let batch = Batch::new(self.next_batch_id, txs);
        self.next_batch_id += 1;
        self.ordering.submit_at(batch, at);
    }

    /// Applies every newly decided batch and resolves its transactions
    /// against the queue, stamping per-client latency trace events and
    /// feeding completions back to closed-loop clients at their decide
    /// times.
    fn resolve_decided(
        &mut self,
        load: &mut LoadGen,
        queue: &mut IngressQueue,
        latencies: &mut Vec<SimTime>,
        batches: &mut usize,
        mispredicted: &mut usize,
    ) {
        self.apply_decided(|_seq, batch, t, outcome| {
            let committed: HashSet<TxId> = outcome.committed.iter().copied().collect();
            let out_of_gas: HashSet<TxId> = outcome.out_of_gas.iter().copied().collect();
            *mispredicted += outcome.mispredicted.len();
            let mut resolved = 0usize;
            for tx in &batch.txs {
                let r = if committed.contains(&tx.id) {
                    queue.resolve_committed(tx.id, t).map(|l| (l, "commit"))
                } else if out_of_gas.contains(&tx.id) {
                    queue.resolve_aborted_out_of_gas(tx.id, t).map(|l| (l, "abort-out-of-gas"))
                } else {
                    queue.resolve_aborted(tx.id, t).map(|l| (l, "abort"))
                };
                let Some((latency, label)) = r else {
                    continue; // not ours (submitted out-of-band)
                };
                if label == "commit" {
                    latencies.push(latency);
                }
                pbc_trace::emit(t, || TraceEvent::ClientLatency {
                    client: tx.client.0,
                    tx: tx.id.0,
                    latency,
                    outcome: label,
                });
                resolved += 1;
            }
            if resolved > 0 {
                load.on_resolved(resolved, t);
            }
            *batches += 1;
        });
    }
}
