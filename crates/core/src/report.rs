//! Backend-neutral commit reporting.
//!
//! The simulator (`pbc-sim` under [`BlockchainNetwork`]) and the TCP
//! deployment runtime (`pbc-net`) run the same ordering actors, so a
//! run of each from the same seed must agree on everything consensus
//! determines: the committed batch sequence and the consensus-level
//! seal metadata. This module holds the extraction both backends share
//! so the `sweep --real` cross-check compares like with like:
//!
//! * [`seal_proposer`] — the one rule assigning a proposer to a slot,
//!   used by the simulator's seal pinning and by the deployment-side
//!   row builder;
//! * [`commit_rows`] — a decided log flattened to comparable
//!   [`CommitRow`]s (decide *times* are excluded on purpose: logical
//!   ticks and wall-clock elapsed time never match, and any check
//!   relying on them would be vacuous or flaky);
//! * [`sealed_head`] — replays a committed sequence through a fresh
//!   pipeline, so the TCP run's commit order can be proven to produce
//!   the simulator's ledger head, seals and all.
//!
//! [`BlockchainNetwork`]: crate::network::BlockchainNetwork

use crate::batch::Batch;
use crate::network::ArchKind;
use pbc_arch::BlockSeal;
use pbc_consensus::{protocol_info, Payload};
use pbc_crypto::Hash;
use pbc_ledger::StateStore;
use pbc_sim::SimTime;

/// One committed slot, reduced to the fields every backend must agree
/// on. Two runs of the same protocol/seed/workload are equivalent iff
/// their row vectors are equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitRow {
    /// Consensus slot.
    pub seq: u64,
    /// The committed batch's client-assigned id.
    pub batch_id: u64,
    /// The committed batch's payload digest.
    pub digest: u64,
    /// The proposer the seal pins for this slot.
    pub proposer: u32,
}

/// The proposer responsible for slot `seq` under `protocol` in an
/// `n`-node cluster: rotating protocols rotate it, fixed-leader
/// protocols pin node 0. This is the single source of truth for seal
/// proposers — the network driver's seal pinning and the deployment
/// cross-check both call it.
pub fn seal_proposer(protocol: &str, n: usize, seq: u64) -> u32 {
    let rotating = protocol_info(protocol).map(|p| p.rotating).unwrap_or(false);
    if rotating {
        (seq as usize % n) as u32
    } else {
        0
    }
}

/// Flattens a decided log (any backend's) into comparable rows.
pub fn commit_rows(protocol: &str, n: usize, decided: &[(u64, Batch, SimTime)]) -> Vec<CommitRow> {
    decided
        .iter()
        .map(|(seq, batch, _)| CommitRow {
            seq: *seq,
            batch_id: batch.id,
            digest: batch.digest_u64(),
            proposer: seal_proposer(protocol, n, *seq),
        })
        .collect()
}

/// Replays an already-ordered block sequence through a fresh pipeline
/// of `arch` over `initial_state` and returns the resulting ledger
/// head. Feeding the TCP backend's committed batches with the
/// simulator's seals must reproduce the simulator's head exactly —
/// execution is deterministic once consensus has fixed order and
/// seals.
pub fn sealed_head(
    arch: ArchKind,
    initial_state: StateStore,
    blocks: &[(Batch, BlockSeal)],
) -> Hash {
    let mut pipeline = arch.make_pipeline(initial_state);
    for (batch, seal) in blocks {
        pipeline.process_block_sealed(batch.txs.clone(), *seal);
    }
    pipeline.ledger().head_hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::NodeId;

    #[test]
    fn proposer_rule_matches_protocol_rotation() {
        // ibft rotates per height; pbft pins its fixed primary.
        assert_eq!(seal_proposer("pbft", 4, 7), 0);
        assert_eq!(seal_proposer("ibft", 4, 7), 3);
        assert_eq!(seal_proposer("ibft", 4, 8), 0);
        // Unknown protocols default to the fixed-leader rule.
        assert_eq!(seal_proposer("not-a-protocol", 4, 7), 0);
    }

    #[test]
    fn rows_carry_slot_batch_digest_proposer() {
        let decided =
            vec![(0u64, Batch::new(0, vec![]), 10u64), (1u64, Batch::new(1, vec![]), 20u64)];
        let rows = commit_rows("ibft", 4, &decided);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].seq, 0);
        assert_eq!(rows[0].batch_id, 0);
        assert_eq!(rows[0].proposer, 0);
        assert_eq!(rows[1].proposer, 1);
        assert_eq!(rows[0].digest, Batch::new(0, vec![]).digest_u64());
    }

    #[test]
    fn sealed_head_is_deterministic_in_order_and_seals() {
        let blocks: Vec<(Batch, BlockSeal)> = (0..3)
            .map(|i| (Batch::new(i, vec![]), BlockSeal { proposer: NodeId(0), time: 10 * (i + 1) }))
            .collect();
        let a = sealed_head(ArchKind::Ox, StateStore::new(), &blocks);
        let b = sealed_head(ArchKind::Ox, StateStore::new(), &blocks);
        assert_eq!(a, b, "same blocks, same seals, same head");
        // A different seal time is a different block — heads diverge.
        let mut other = blocks.clone();
        other[2].1.time += 1;
        let c = sealed_head(ArchKind::Ox, StateStore::new(), &other);
        assert_ne!(a, c, "seals are part of the block identity");
    }
}
