//! The integrated permissioned blockchain.
//!
//! This crate ties the workspace together into the system of the paper's
//! Figure 1: a set of known, identified nodes over an asynchronous
//! network, each maintaining a replica of the hash-chained blockchain
//! ledger, with
//!
//! * a pluggable **consensus protocol** ([`ConsensusKind`]) ordering
//!   transaction batches (§2.2),
//! * a pluggable **execution architecture** ([`ArchKind`]) turning the
//!   ordered batches into state (§2.3.3),
//! * the [`pbc_sim`] discrete-event network underneath (latency models,
//!   crashes, partitions).
//!
//! ```
//! use pbc_core::{NetworkBuilder, ConsensusKind, ArchKind};
//! use pbc_workload::PaymentWorkload;
//!
//! // The five-node network of Figure 1.
//! let workload = PaymentWorkload::default();
//! let mut chain = NetworkBuilder::new(5)
//!     .consensus(ConsensusKind::Pbft)
//!     .architecture(ArchKind::Oxii)
//!     .initial_state(workload.initial_state())
//!     .build();
//! chain.submit_all(workload.generate(0, 40));
//! let report = chain.run_to_completion();
//! assert_eq!(report.committed, 40);
//! assert!(chain.replicas_identical());
//! ```
//!
//! The technique crates are re-exported for convenience:
//! [`pbc_confidential`] (§2.3.1), [`pbc_verify`] (§2.3.2),
//! [`pbc_shard`] (§2.3.4), and [`pbc_workload`] generators.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod audit;
pub mod batch;
pub mod ingress;
pub mod network;
pub mod report;

pub use audit::{AuditTrail, CommitRecord};
pub use batch::Batch;
pub use ingress::{IngressConfig, IngressReport};
pub use network::{ArchKind, BlockchainNetwork, ConsensusKind, NetworkBuilder, RunReport};
pub use report::{commit_rows, seal_proposer, sealed_head, CommitRow};

pub use pbc_ingress as ingress_queue;

pub use pbc_arch as arch;
pub use pbc_confidential as confidential;
pub use pbc_consensus as consensus;
pub use pbc_crypto as crypto;
pub use pbc_ledger as ledger;
pub use pbc_shard as shard;
pub use pbc_sim as sim;
pub use pbc_txn as txn;
pub use pbc_types as types;
pub use pbc_verify as verify;
pub use pbc_workload as workload;

/// Compile-checks (and runs) every Rust code block in the repository
/// README as a doctest, so the quickstart can never drift from the API.
#[doc = include_str!("../../../README.md")]
#[cfg(doctest)]
struct ReadmeDoctests;
