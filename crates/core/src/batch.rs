//! The consensus payload: an ordered batch of client transactions.

use pbc_consensus::Payload;
use pbc_types::encode::CanonicalEncode;
use pbc_types::Transaction;

/// A transaction batch proposed to consensus (one batch = one block).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch {
    /// Batch sequence number assigned by the submitting client layer.
    pub id: u64,
    /// The transactions, in client-submission order.
    pub txs: Vec<Transaction>,
}

impl Batch {
    /// Creates a batch.
    pub fn new(id: u64, txs: Vec<Transaction>) -> Self {
        Batch { id, txs }
    }
}

impl Payload for Batch {
    fn digest_u64(&self) -> u64 {
        let mut enc = pbc_types::encode::Encoder::new();
        enc.u64(self.id);
        for tx in &self.txs {
            tx.encode(&mut enc);
        }
        pbc_crypto::sha256(enc.as_slice()).prefix_u64()
    }

    fn wire_size(&self) -> usize {
        16 + self.txs.iter().map(|t| t.canonical_bytes().len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::{ClientId, Op, TxId};

    fn tx(i: u64) -> Transaction {
        Transaction::new(TxId(i), ClientId(0), vec![Op::Get { key: format!("k{i}") }])
    }

    #[test]
    fn digest_depends_on_content_and_id() {
        let a = Batch::new(1, vec![tx(1)]);
        let b = Batch::new(1, vec![tx(1)]);
        let c = Batch::new(2, vec![tx(1)]);
        let d = Batch::new(1, vec![tx(2)]);
        assert_eq!(a.digest_u64(), b.digest_u64());
        assert_ne!(a.digest_u64(), c.digest_u64());
        assert_ne!(a.digest_u64(), d.digest_u64());
    }

    #[test]
    fn wire_size_grows_with_transactions() {
        let small = Batch::new(1, vec![tx(1)]);
        let big = Batch::new(1, (0..10).map(tx).collect());
        assert!(big.wire_size() > small.wire_size());
    }
}
