//! The consensus payload: an ordered batch of client transactions.

use pbc_consensus::{Payload, PersistPayload};
use pbc_types::encode::{CanonicalEncode, Decoder, Encoder};
use pbc_types::Transaction;

/// A transaction batch proposed to consensus (one batch = one block).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch {
    /// Batch sequence number assigned by the submitting client layer.
    pub id: u64,
    /// The transactions, in client-submission order.
    pub txs: Vec<Transaction>,
}

impl Batch {
    /// Creates a batch.
    pub fn new(id: u64, txs: Vec<Transaction>) -> Self {
        Batch { id, txs }
    }
}

impl Payload for Batch {
    fn digest_u64(&self) -> u64 {
        let mut enc = pbc_types::encode::Encoder::new();
        enc.u64(self.id);
        for tx in &self.txs {
            tx.encode(&mut enc);
        }
        pbc_crypto::sha256(enc.as_slice()).prefix_u64()
    }

    fn wire_size(&self) -> usize {
        16 + self.txs.iter().map(|t| t.canonical_bytes().len()).sum::<usize>()
    }
}

impl PersistPayload for Batch {
    fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.id).u64(self.txs.len() as u64);
        for tx in &self.txs {
            tx.encode(&mut e);
        }
        e.finish()
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut d = Decoder::new(bytes);
        let id = d.u64()?;
        let n = d.u64()? as usize;
        let mut txs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            txs.push(Transaction::decode(&mut d)?);
        }
        d.is_empty().then_some(Batch { id, txs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::{ClientId, Op, TxId};

    fn tx(i: u64) -> Transaction {
        Transaction::new(TxId(i), ClientId(0), vec![Op::Get { key: format!("k{i}") }])
    }

    #[test]
    fn digest_depends_on_content_and_id() {
        let a = Batch::new(1, vec![tx(1)]);
        let b = Batch::new(1, vec![tx(1)]);
        let c = Batch::new(2, vec![tx(1)]);
        let d = Batch::new(1, vec![tx(2)]);
        assert_eq!(a.digest_u64(), b.digest_u64());
        assert_ne!(a.digest_u64(), c.digest_u64());
        assert_ne!(a.digest_u64(), d.digest_u64());
    }

    #[test]
    fn persist_codec_roundtrips_and_rejects_malformation() {
        let batch = Batch::new(7, vec![tx(1), tx(2), tx(3)]);
        let bytes = batch.to_bytes();
        assert_eq!(Batch::from_bytes(&bytes), Some(batch.clone()));
        // Truncation at any boundary must degrade to None, never panic:
        // the bytes may have come off a torn WAL tail.
        assert_eq!(Batch::from_bytes(&bytes[..bytes.len() - 1]), None);
        assert_eq!(Batch::from_bytes(&[]), None);
        let mut padded = bytes;
        padded.push(0);
        assert_eq!(Batch::from_bytes(&padded), None, "trailing garbage rejected");
    }

    #[test]
    fn wire_size_grows_with_transactions() {
        let small = Batch::new(1, vec![tx(1)]);
        let big = Batch::new(1, (0..10).map(tx).collect());
        assert!(big.wire_size() > small.wire_size());
    }
}
