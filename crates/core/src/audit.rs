//! The commit audit trail: what each node's pipeline claims it did.
//!
//! The paper's verifiability axis (§2.3.2) demands that a run be
//! *checkable after the fact* by a party that does not trust the system
//! under test. [`BlockchainNetwork`](crate::BlockchainNetwork) can
//! record, per node and per applied block, a [`CommitRecord`] — which
//! transactions the pipeline claims to have committed and aborted, in
//! application order, plus a digest of the observable state after the
//! block. The `pbc-audit` crate treats these records as *untrusted
//! claims* and cross-checks every one of them against an independent
//! sequential replay.
//!
//! Recording is opt-in (`NetworkBuilder::with_audit`) so benchmark hot
//! paths pay nothing; tests and `sweep --audit` turn it on.

use pbc_crypto::Hash;
use pbc_types::TxId;

/// One applied block, as the pipeline reports it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// Consensus sequence number of the decided batch.
    pub seq: u64,
    /// Ledger height the block landed at on this node.
    pub height: u64,
    /// Committed transactions *in application order* — the order whose
    /// serial replay must reproduce `value_digest`.
    pub committed: Vec<TxId>,
    /// Aborted transactions (stale reads, failed execution, rejected
    /// endorsements).
    pub aborted: Vec<TxId>,
    /// [`StateStore::value_digest`](pbc_ledger::StateStore::value_digest)
    /// of the node's state immediately after applying this block.
    pub value_digest: Hash,
}

/// The per-node sequence of [`CommitRecord`]s, indexed by height.
#[derive(Clone, Debug, Default)]
pub struct AuditTrail {
    /// Records in application order; `records[i].height == i + 1`.
    records: Vec<CommitRecord>,
}

impl AuditTrail {
    /// An empty trail.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record. Heights must arrive densely and in order (each
    /// node applies every block exactly once): a gap or repeat panics,
    /// because it would mean the *driver* is broken, not the pipeline.
    pub fn record(&mut self, record: CommitRecord) {
        assert_eq!(
            record.height,
            self.records.len() as u64 + 1,
            "audit trail heights must be dense and in order"
        );
        self.records.push(record);
    }

    /// The record for `height` (1-based, as ledger heights are).
    pub fn at_height(&self, height: u64) -> Option<&CommitRecord> {
        height.checked_sub(1).and_then(|i| self.records.get(i as usize))
    }

    /// Number of recorded blocks.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates records in height order.
    pub fn iter(&self) -> impl Iterator<Item = &CommitRecord> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(height: u64) -> CommitRecord {
        CommitRecord {
            seq: height - 1,
            height,
            committed: vec![TxId(height * 10)],
            aborted: vec![],
            value_digest: Hash::ZERO,
        }
    }

    #[test]
    fn records_index_by_height() {
        let mut t = AuditTrail::new();
        t.record(rec(1));
        t.record(rec(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.at_height(1).unwrap().committed, vec![TxId(10)]);
        assert_eq!(t.at_height(2).unwrap().committed, vec![TxId(20)]);
        assert!(t.at_height(0).is_none());
        assert!(t.at_height(3).is_none());
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn height_gap_panics() {
        let mut t = AuditTrail::new();
        t.record(rec(2));
    }
}
