//! Common vocabulary types for the permissioned-blockchain workspace.
//!
//! * [`ids`] — newtyped identities: nodes, clients, enterprises, shards,
//!   channels, plus protocol counters (view, height, round).
//! * [`tx`] — the transaction model: a deterministic mini-language of
//!   key-value operations ([`tx::Op`]) with a scope describing which
//!   enterprises a transaction touches (§2.3.1's internal vs
//!   cross-enterprise distinction).
//! * [`block`] — blocks and headers for the hash-chained ledger of §2.2.
//! * [`encode`] — the canonical byte encoding used for hashing and
//!   signing (stable across runs and platforms).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod block;
pub mod encode;
pub mod ids;
pub mod tx;

pub use block::{Block, BlockHeader};
pub use ids::{ChannelId, ClientId, EnterpriseId, Height, NodeId, Round, ShardId, TxId, View};
pub use tx::{Executable, Key, KeyRefs, Op, Transaction, TxScope, Value, VmCall};
