//! Blocks and block headers for the hash-chained ledger of §2.2.
//!
//! Each block batches transactions; the total order of blocks is captured
//! by chaining — every header carries the cryptographic hash of its
//! predecessor, exactly as Figure 1 of the paper illustrates.

use crate::encode::{CanonicalEncode, Encoder};
use crate::ids::{Height, NodeId};
use crate::tx::Transaction;
use pbc_crypto::merkle::MerkleTree;
use pbc_crypto::Hash;
use serde::{Deserialize, Serialize};

/// A block header.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Position in the chain (genesis = 0).
    pub height: Height,
    /// Hash of the previous block's header (`Hash::ZERO` for genesis).
    pub prev: Hash,
    /// Merkle root over the block's transactions.
    pub tx_root: Hash,
    /// The node that proposed/constructed the block.
    pub proposer: NodeId,
    /// Simulated timestamp (logical ticks from `pbc-sim`).
    pub time: u64,
}

impl CanonicalEncode for BlockHeader {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.height.0)
            .bytes(&self.prev.0)
            .bytes(&self.tx_root.0)
            .u32(self.proposer.0)
            .u64(self.time);
    }
}

impl BlockHeader {
    /// The block hash: digest of the canonical header encoding.
    pub fn hash(&self) -> Hash {
        self.digest()
    }
}

/// A block: header plus the batched transactions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The header (chained by hash).
    pub header: BlockHeader,
    /// The ordered transaction batch.
    pub txs: Vec<Transaction>,
}

impl Block {
    /// Builds a block over `txs`, computing the Merkle transaction root.
    pub fn build(
        height: Height,
        prev: Hash,
        proposer: NodeId,
        time: u64,
        txs: Vec<Transaction>,
    ) -> Block {
        let tx_root = Self::tx_root(&txs);
        Block { header: BlockHeader { height, prev, tx_root, proposer, time }, txs }
    }

    /// The genesis block (height 0, no transactions, zero predecessor).
    pub fn genesis() -> Block {
        Block::build(Height(0), Hash::ZERO, NodeId(0), 0, vec![])
    }

    /// Computes the Merkle root over a transaction batch.
    pub fn tx_root(txs: &[Transaction]) -> Hash {
        let leaves: Vec<Vec<u8>> = txs.iter().map(|t| t.canonical_bytes()).collect();
        MerkleTree::build(&leaves).root()
    }

    /// The block hash (header hash).
    pub fn hash(&self) -> Hash {
        self.header.hash()
    }

    /// Checks internal consistency: the header's root matches the body.
    pub fn verify_tx_root(&self) -> bool {
        Self::tx_root(&self.txs) == self.header.tx_root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ClientId, TxId};
    use crate::tx::Op;

    fn sample_txs(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::new(TxId(i), ClientId(0), vec![Op::Get { key: format!("k{i}") }]))
            .collect()
    }

    #[test]
    fn genesis_has_zero_prev() {
        let g = Block::genesis();
        assert_eq!(g.header.height, Height(0));
        assert!(g.header.prev.is_zero());
        assert!(g.verify_tx_root());
    }

    #[test]
    fn chaining_changes_hash() {
        let g = Block::genesis();
        let b1 = Block::build(Height(1), g.hash(), NodeId(1), 10, sample_txs(3));
        let b1_alt = Block::build(Height(1), Hash::ZERO, NodeId(1), 10, sample_txs(3));
        assert_ne!(b1.hash(), b1_alt.hash(), "prev pointer must affect the hash");
    }

    #[test]
    fn tx_root_detects_tampering() {
        let mut b = Block::build(Height(1), Hash::ZERO, NodeId(1), 10, sample_txs(3));
        assert!(b.verify_tx_root());
        b.txs[0] = Transaction::new(TxId(99), ClientId(9), vec![]);
        assert!(!b.verify_tx_root());
    }

    #[test]
    fn tx_order_affects_root() {
        let mut txs = sample_txs(2);
        let r1 = Block::tx_root(&txs);
        txs.swap(0, 1);
        let r2 = Block::tx_root(&txs);
        assert_ne!(r1, r2);
    }

    #[test]
    fn identical_content_identical_hash() {
        let a = Block::build(Height(1), Hash::ZERO, NodeId(1), 10, sample_txs(2));
        let b = Block::build(Height(1), Hash::ZERO, NodeId(1), 10, sample_txs(2));
        assert_eq!(a.hash(), b.hash());
    }
}
