//! Newtyped identities and protocol counters.
//!
//! Each identity is a thin wrapper over a small integer so it stays
//! `Copy`, hashes fast, and cannot be confused with another id kind at
//! compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A replica/peer in the network (orderer, executor, endorser, or validator).
    NodeId, u32, "n"
);
id_type!(
    /// A client submitting transactions.
    ClientId, u32, "c"
);
id_type!(
    /// A collaborating enterprise (Caper application, Fabric organization).
    EnterpriseId, u32, "e"
);
id_type!(
    /// A data/ledger shard maintained by one cluster (§2.3.4).
    ShardId, u32, "s"
);
id_type!(
    /// A Fabric channel (§2.3.1).
    ChannelId, u32, "ch"
);
id_type!(
    /// A unique transaction identifier.
    TxId, u64, "tx"
);
id_type!(
    /// A consensus view number (PBFT/IBFT) or term (Raft).
    View, u64, "v"
);
id_type!(
    /// A ledger height / sequence number.
    Height, u64, "h"
);
id_type!(
    /// A consensus round within a height (Tendermint).
    Round, u64, "r"
);

impl Height {
    /// The next height.
    pub fn next(self) -> Height {
        Height(self.0 + 1)
    }
}

impl View {
    /// The next view.
    pub fn next(self) -> View {
        View(self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(ShardId(1).to_string(), "s1");
        assert_eq!(TxId(42).to_string(), "tx42");
        assert_eq!(format!("{:?}", ChannelId(2)), "ch2");
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn counters_advance() {
        assert_eq!(Height(0).next(), Height(1));
        assert_eq!(View(7).next(), View(8));
    }

    #[test]
    fn from_inner() {
        let n: NodeId = 5u32.into();
        assert_eq!(n, NodeId(5));
    }
}
