//! The transaction model.
//!
//! Smart contracts are replaced by a deterministic mini-language of
//! key-value operations ([`Op`]) that every execution architecture in
//! `pbc-arch` interprets identically — the workspace's stand-in for
//! chaincode/EVM, per `DESIGN.md` §3. Each transaction also carries a
//! [`TxScope`] distinguishing internal, cross-enterprise, and global
//! transactions, the load-bearing distinction of §2.3.1 (Caper, channels)
//! and §2.3.4 (intra- vs cross-shard).

use crate::encode::{CanonicalEncode, Decoder, Encoder};
use crate::ids::{ClientId, EnterpriseId, TxId};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A state key. Keys are UTF-8 strings; sharding and enterprise views
/// partition the key space by prefix or hash.
pub type Key = String;

/// A state value: cheaply clonable bytes.
pub type Value = Bytes;

/// One deterministic key-value operation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Read a key (populates the read set).
    Get {
        /// Key to read.
        key: Key,
    },
    /// Blind write of a value.
    Put {
        /// Key to write.
        key: Key,
        /// Value to store.
        value: Value,
    },
    /// Read-modify-write increment of an integer value (8-byte BE).
    Incr {
        /// Key holding the counter.
        key: Key,
        /// Signed delta to apply.
        delta: i64,
    },
    /// Conditional balance transfer; aborts the transaction if `from`
    /// holds less than `amount`.
    Transfer {
        /// Debited account key.
        from: Key,
        /// Credited account key.
        to: Key,
        /// Amount to move.
        amount: u64,
    },
    /// Does nothing; used to pad workloads with configurable execution
    /// cost (`busy_work` simulated instruction count).
    Noop {
        /// Simulated execution cost in abstract work units.
        busy_work: u32,
    },
    /// Deletes a key (Fabric's `DelState`). Commits a *tombstone* version
    /// so MVCC validation still detects a read of the deleted key as
    /// stale; the state root stops committing to the key.
    Delete {
        /// Key to delete.
        key: Key,
    },
    /// Invokes a VM program (`pbc-vm` bytecode): the dynamic-footprint
    /// payload. The keys the program actually touches are discovered at
    /// execution time; [`VmCall::declared_reads`]/`declared_writes` are
    /// the client's *prediction*, which schedulers may trust and
    /// validators must check.
    Invoke {
        /// The program, its arguments, gas budget, and declared footprint.
        call: VmCall,
    },
}

/// A VM invocation payload: bytecode plus call context.
///
/// `bytecode` is opaque at this layer (decoded and validated by
/// `pbc-vm`), which keeps `pbc-types` free of a dependency on the VM.
/// The declared read/write sets are what static-footprint machinery
/// (OXII dependency graphs, FastFabric layering, `conflicts_with`) sees
/// before execution — deliberately *allowed to be wrong*, because
/// measuring the cost of wrong predictions is the point.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmCall {
    /// Canonical `pbc-vm` bytecode (see `pbc_vm::Program::from_bytes`).
    pub bytecode: Value,
    /// Call arguments, addressable via the VM's `Arg` instruction.
    pub args: Vec<u64>,
    /// Gas budget; execution aborts with out-of-gas beyond it.
    pub gas_limit: u64,
    /// Keys the client predicts the program will read (sorted order not
    /// required; may be incomplete or overbroad).
    pub declared_reads: Vec<Key>,
    /// Keys the client predicts the program will write.
    pub declared_writes: Vec<Key>,
}

/// A borrowed view of the keys an [`Op`] statically declares, without
/// heap allocation — `Op::reads`/`Op::writes` sit on the hot paths of
/// dependency-graph construction and conflict checks, where the former
/// per-call `Vec<&str>` showed up as allocator traffic (see the `e12`
/// bench group).
#[derive(Clone, Debug)]
pub enum KeyRefs<'a> {
    /// No keys.
    None,
    /// Exactly one key.
    One(&'a str),
    /// Exactly two keys (e.g. `Transfer`).
    Two(&'a str, &'a str),
    /// A declared key list (VM invocations).
    Slice(std::slice::Iter<'a, Key>),
}

impl<'a> Iterator for KeyRefs<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        match std::mem::replace(self, KeyRefs::None) {
            KeyRefs::None => None,
            KeyRefs::One(a) => Some(a),
            KeyRefs::Two(a, b) => {
                *self = KeyRefs::One(b);
                Some(a)
            }
            KeyRefs::Slice(mut it) => {
                let head = it.next().map(|k| k.as_str());
                *self = KeyRefs::Slice(it);
                head
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            KeyRefs::None => 0,
            KeyRefs::One(_) => 1,
            KeyRefs::Two(_, _) => 2,
            KeyRefs::Slice(it) => it.len(),
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for KeyRefs<'_> {}

impl Op {
    /// Keys this operation *declares* it reads (allocation-free). For
    /// `Invoke` these are the client's predicted reads, which the real
    /// execution may contradict.
    pub fn reads(&self) -> KeyRefs<'_> {
        match self {
            Op::Get { key } => KeyRefs::One(key),
            Op::Put { .. } => KeyRefs::None,
            Op::Incr { key, .. } => KeyRefs::One(key),
            Op::Transfer { from, to, .. } => KeyRefs::Two(from, to),
            Op::Noop { .. } => KeyRefs::None,
            Op::Delete { .. } => KeyRefs::None,
            Op::Invoke { call } => KeyRefs::Slice(call.declared_reads.iter()),
        }
    }

    /// Keys this operation *declares* it writes (allocation-free).
    pub fn writes(&self) -> KeyRefs<'_> {
        match self {
            Op::Get { .. } => KeyRefs::None,
            Op::Put { key, .. } => KeyRefs::One(key),
            Op::Incr { key, .. } => KeyRefs::One(key),
            Op::Transfer { from, to, .. } => KeyRefs::Two(from, to),
            Op::Noop { .. } => KeyRefs::None,
            Op::Delete { key } => KeyRefs::One(key),
            Op::Invoke { call } => KeyRefs::Slice(call.declared_writes.iter()),
        }
    }
}

impl CanonicalEncode for Op {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Op::Get { key } => {
                enc.tag(0).str(key);
            }
            Op::Put { key, value } => {
                enc.tag(1).str(key).bytes(value);
            }
            Op::Incr { key, delta } => {
                enc.tag(2).str(key).i64(*delta);
            }
            Op::Transfer { from, to, amount } => {
                enc.tag(3).str(from).str(to).u64(*amount);
            }
            Op::Noop { busy_work } => {
                enc.tag(4).u32(*busy_work);
            }
            Op::Delete { key } => {
                enc.tag(5).str(key);
            }
            Op::Invoke { call } => {
                // Tag 6 extends the op space; tags 0–5 and every legacy
                // encoding stay bit-identical, which is what keeps the
                // golden traces and persisted batches stable.
                enc.tag(6).bytes(&call.bytecode);
                enc.u64(call.args.len() as u64);
                for a in &call.args {
                    enc.u64(*a);
                }
                enc.u64(call.gas_limit);
                enc.u64(call.declared_reads.len() as u64);
                for k in &call.declared_reads {
                    enc.str(k);
                }
                enc.u64(call.declared_writes.len() as u64);
                for k in &call.declared_writes {
                    enc.str(k);
                }
            }
        }
    }
}

impl Op {
    /// Decodes one operation from its canonical encoding. `None` on
    /// malformed bytes (the input may come off a damaged disk).
    pub fn decode(dec: &mut Decoder<'_>) -> Option<Op> {
        Some(match dec.tag()? {
            0 => Op::Get { key: dec.str()?.to_string() },
            1 => {
                let key = dec.str()?.to_string();
                Op::Put { key, value: Bytes::copy_from_slice(dec.bytes()?) }
            }
            2 => Op::Incr { key: dec.str()?.to_string(), delta: dec.i64()? },
            3 => {
                let from = dec.str()?.to_string();
                let to = dec.str()?.to_string();
                Op::Transfer { from, to, amount: dec.u64()? }
            }
            4 => Op::Noop { busy_work: dec.u32()? },
            5 => Op::Delete { key: dec.str()?.to_string() },
            6 => {
                let bytecode = Bytes::copy_from_slice(dec.bytes()?);
                let n_args = dec.u64()?;
                let mut args = Vec::with_capacity(n_args.min(1024) as usize);
                for _ in 0..n_args {
                    args.push(dec.u64()?);
                }
                let gas_limit = dec.u64()?;
                let n_reads = dec.u64()?;
                let mut declared_reads = Vec::with_capacity(n_reads.min(1024) as usize);
                for _ in 0..n_reads {
                    declared_reads.push(dec.str()?.to_string());
                }
                let n_writes = dec.u64()?;
                let mut declared_writes = Vec::with_capacity(n_writes.min(1024) as usize);
                for _ in 0..n_writes {
                    declared_writes.push(dec.str()?.to_string());
                }
                Op::Invoke {
                    call: VmCall { bytecode, args, gas_limit, declared_reads, declared_writes },
                }
            }
            _ => return None,
        })
    }
}

/// Which parties a transaction involves (§2.3.1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxScope {
    /// Internal transaction of a single enterprise; confidential to it.
    Internal(EnterpriseId),
    /// Cross-enterprise transaction among the listed enterprises; visible
    /// to all of them (and, in Caper, to everyone).
    CrossEnterprise(Vec<EnterpriseId>),
    /// Ordinary transaction with no enterprise affiliation (single-domain
    /// deployments, sharding experiments).
    Global,
}

impl TxScope {
    /// True for internal (single-enterprise) transactions.
    pub fn is_internal(&self) -> bool {
        matches!(self, TxScope::Internal(_))
    }

    /// The enterprises involved, if enterprise-scoped.
    pub fn enterprises(&self) -> Vec<EnterpriseId> {
        match self {
            TxScope::Internal(e) => vec![*e],
            TxScope::CrossEnterprise(es) => es.clone(),
            TxScope::Global => vec![],
        }
    }
}

impl CanonicalEncode for TxScope {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            TxScope::Internal(e) => {
                enc.tag(0).u32(e.0);
            }
            TxScope::CrossEnterprise(es) => {
                enc.tag(1).u64(es.len() as u64);
                for e in es {
                    enc.u32(e.0);
                }
            }
            TxScope::Global => {
                enc.tag(2);
            }
        }
    }
}

impl TxScope {
    /// Decodes a scope from its canonical encoding.
    pub fn decode(dec: &mut Decoder<'_>) -> Option<TxScope> {
        Some(match dec.tag()? {
            0 => TxScope::Internal(EnterpriseId(dec.u32()?)),
            1 => {
                let n = dec.u64()?;
                let mut es = Vec::with_capacity(n.min(1024) as usize);
                for _ in 0..n {
                    es.push(EnterpriseId(dec.u32()?));
                }
                TxScope::CrossEnterprise(es)
            }
            2 => TxScope::Global,
            _ => return None,
        })
    }
}

/// A client transaction: an ordered list of operations plus metadata.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// Unique id assigned by the submitting client/workload generator.
    pub id: TxId,
    /// The submitting client.
    pub client: ClientId,
    /// Enterprise scope.
    pub scope: TxScope,
    /// Operations executed in order; a failing `Transfer` aborts the whole
    /// transaction (no partial effects).
    pub ops: Vec<Op>,
}

impl Transaction {
    /// Creates a global-scope transaction.
    pub fn new(id: TxId, client: ClientId, ops: Vec<Op>) -> Self {
        Transaction { id, client, scope: TxScope::Global, ops }
    }

    /// Creates a transaction with an explicit scope.
    pub fn with_scope(id: TxId, client: ClientId, scope: TxScope, ops: Vec<Op>) -> Self {
        Transaction { id, client, scope, ops }
    }

    /// Creates a global-scope transaction whose whole payload is one VM
    /// invocation.
    pub fn invoke(id: TxId, client: ClientId, call: VmCall) -> Self {
        Transaction::new(id, client, vec![Op::Invoke { call }])
    }

    /// What this transaction executes: the legacy static op list, or a
    /// VM program when the payload is a single `Invoke`. Mixed lists
    /// (static ops *and* invocations) are executed op-by-op and show up
    /// as `Ops`.
    pub fn executable(&self) -> Executable<'_> {
        match self.ops.as_slice() {
            [Op::Invoke { call }] => Executable::Program { call },
            ops => Executable::Ops(ops),
        }
    }

    /// The first VM invocation payload, if any op carries one.
    pub fn vm_call(&self) -> Option<&VmCall> {
        self.ops.iter().find_map(|op| match op {
            Op::Invoke { call } => Some(call),
            _ => None,
        })
    }

    /// Total gas budget across the transaction's VM invocations. Static
    /// ops are not metered (their cost model is `work`), so a purely
    /// static transaction reports `None`.
    pub fn gas_limit(&self) -> Option<u64> {
        let mut total: Option<u64> = None;
        for op in &self.ops {
            if let Op::Invoke { call } = op {
                total = Some(total.unwrap_or(0).saturating_add(call.gas_limit));
            }
        }
        total
    }

    /// The statically known read set (deduplicated, sorted).
    pub fn read_keys(&self) -> Vec<&str> {
        let mut ks: Vec<&str> = self.ops.iter().flat_map(|o| o.reads()).collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }

    /// The statically known write set (deduplicated, sorted).
    pub fn write_keys(&self) -> Vec<&str> {
        let mut ks: Vec<&str> = self.ops.iter().flat_map(|o| o.writes()).collect();
        ks.sort_unstable();
        ks.dedup();
        ks
    }

    /// True if the two transactions conflict: one writes a key the other
    /// reads or writes. This static notion drives OXII dependency graphs
    /// and XOV validation analysis.
    pub fn conflicts_with(&self, other: &Transaction) -> bool {
        let my_writes = self.write_keys();
        let their_writes = other.write_keys();
        let overlaps = |a: &[&str], b: &[&str]| {
            // Both sorted: linear merge.
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return true,
                }
            }
            false
        };
        overlaps(&my_writes, &their_writes)
            || overlaps(&my_writes, &other.read_keys())
            || overlaps(&self.read_keys(), &their_writes)
    }
}

impl CanonicalEncode for Transaction {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.id.0).u32(self.client.0);
        self.scope.encode(enc);
        enc.u64(self.ops.len() as u64);
        for op in &self.ops {
            op.encode(enc);
        }
    }
}

impl Transaction {
    /// Decodes a transaction from its canonical encoding — the exact
    /// inverse of its [`CanonicalEncode`] impl, so a persisted batch
    /// rehydrates to bytes that re-digest identically.
    pub fn decode(dec: &mut Decoder<'_>) -> Option<Transaction> {
        let id = TxId(dec.u64()?);
        let client = ClientId(dec.u32()?);
        let scope = TxScope::decode(dec)?;
        let n = dec.u64()?;
        let mut ops = Vec::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            ops.push(Op::decode(dec)?);
        }
        Some(Transaction { id, client, scope, ops })
    }
}

/// A borrowed view of a transaction's payload: the two execution forms
/// every pipeline's shared `execute` entry point accepts.
#[derive(Clone, Copy, Debug)]
pub enum Executable<'a> {
    /// The legacy static op list — footprints known before execution.
    Ops(&'a [Op]),
    /// A VM program + args — the footprint is discovered by running it.
    Program {
        /// The invocation payload.
        call: &'a VmCall,
    },
}

/// Helper: encodes a `u64` balance as a state value.
pub fn balance_value(v: u64) -> Value {
    Bytes::copy_from_slice(&v.to_be_bytes())
}

/// Helper: decodes a state value as a `u64` balance (missing/short values
/// read as zero, matching how accounts spring into existence on credit).
pub fn balance_of(v: Option<&Value>) -> u64 {
    match v {
        Some(b) if b.len() >= 8 => u64::from_be_bytes(b[..8].try_into().unwrap()),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(id: u64, ops: Vec<Op>) -> Transaction {
        Transaction::new(TxId(id), ClientId(0), ops)
    }

    #[test]
    fn read_write_sets() {
        let t = tx(
            1,
            vec![
                Op::Get { key: "a".into() },
                Op::Put { key: "b".into(), value: Bytes::from_static(b"v") },
                Op::Incr { key: "c".into(), delta: 1 },
                Op::Transfer { from: "x".into(), to: "y".into(), amount: 5 },
            ],
        );
        assert_eq!(t.read_keys(), vec!["a", "c", "x", "y"]);
        assert_eq!(t.write_keys(), vec!["b", "c", "x", "y"]);
    }

    #[test]
    fn duplicate_keys_deduplicated() {
        let t = tx(1, vec![Op::Get { key: "a".into() }, Op::Get { key: "a".into() }]);
        assert_eq!(t.read_keys(), vec!["a"]);
    }

    #[test]
    fn conflict_write_write() {
        let a = tx(1, vec![Op::Put { key: "k".into(), value: Bytes::new() }]);
        let b = tx(2, vec![Op::Put { key: "k".into(), value: Bytes::new() }]);
        assert!(a.conflicts_with(&b));
    }

    #[test]
    fn conflict_read_write() {
        let a = tx(1, vec![Op::Get { key: "k".into() }]);
        let b = tx(2, vec![Op::Put { key: "k".into(), value: Bytes::new() }]);
        assert!(a.conflicts_with(&b));
        assert!(b.conflicts_with(&a));
    }

    #[test]
    fn no_conflict_read_read() {
        let a = tx(1, vec![Op::Get { key: "k".into() }]);
        let b = tx(2, vec![Op::Get { key: "k".into() }]);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn no_conflict_disjoint() {
        let a = tx(1, vec![Op::Put { key: "a".into(), value: Bytes::new() }]);
        let b = tx(2, vec![Op::Put { key: "b".into(), value: Bytes::new() }]);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn digest_is_content_addressed() {
        use crate::encode::CanonicalEncode;
        let a = tx(1, vec![Op::Get { key: "k".into() }]);
        let b = tx(1, vec![Op::Get { key: "k".into() }]);
        let c = tx(2, vec![Op::Get { key: "k".into() }]);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn delete_is_a_blind_write() {
        let t = tx(1, vec![Op::Delete { key: "a".into() }]);
        assert!(t.read_keys().is_empty());
        assert_eq!(t.write_keys(), vec!["a"]);
        // Delete and Get of the same key must not encode identically.
        let g = tx(1, vec![Op::Get { key: "a".into() }]);
        assert_ne!(t.digest(), g.digest());
        // Write-write conflict with a Put of the same key.
        let p = tx(2, vec![Op::Put { key: "a".into(), value: Bytes::new() }]);
        assert!(t.conflicts_with(&p));
    }

    #[test]
    fn scope_helpers() {
        assert!(TxScope::Internal(EnterpriseId(1)).is_internal());
        assert!(!TxScope::Global.is_internal());
        assert_eq!(
            TxScope::CrossEnterprise(vec![EnterpriseId(1), EnterpriseId(2)]).enterprises(),
            vec![EnterpriseId(1), EnterpriseId(2)]
        );
    }

    #[test]
    fn transaction_decode_inverts_encode() {
        let t = Transaction::with_scope(
            TxId(42),
            ClientId(7),
            TxScope::CrossEnterprise(vec![EnterpriseId(1), EnterpriseId(3)]),
            vec![
                Op::Get { key: "a".into() },
                Op::Put { key: "b".into(), value: Bytes::from_static(b"v") },
                Op::Incr { key: "c".into(), delta: -9 },
                Op::Transfer { from: "x".into(), to: "y".into(), amount: 5 },
                Op::Noop { busy_work: 11 },
                Op::Delete { key: "d".into() },
            ],
        );
        let bytes = t.canonical_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = Transaction::decode(&mut dec).unwrap();
        assert!(dec.is_empty());
        assert_eq!(back, t);
        assert_eq!(back.canonical_bytes(), bytes);
    }

    #[test]
    fn transaction_decode_rejects_truncation() {
        let t = tx(1, vec![Op::Put { key: "k".into(), value: Bytes::from_static(b"vv") }]);
        let bytes = t.canonical_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Transaction::decode(&mut Decoder::new(&bytes[..cut])).is_none(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn balance_coding() {
        assert_eq!(balance_of(Some(&balance_value(42))), 42);
        assert_eq!(balance_of(None), 0);
        assert_eq!(balance_of(Some(&Bytes::from_static(b"xx"))), 0);
    }
}
