//! Canonical byte encoding for hashing and signing.
//!
//! A minimal, explicit, length-prefixed binary format. We avoid
//! serialization frameworks on the hashing path so digests are stable
//! across serde versions and cheap to compute.

/// A canonical byte-stream writer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: Vec::with_capacity(cap) }
    }

    /// Appends a fixed tag byte (for enum discriminants).
    pub fn tag(&mut self, t: u8) -> &mut Self {
        self.buf.push(t);
        self
    }

    /// Appends a `u32` big-endian.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a `u64` big-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an `i64` big-endian (two's complement).
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends length-prefixed bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Consumes the encoder, returning the canonical bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Types with a canonical encoding suitable for hashing/signing.
pub trait CanonicalEncode {
    /// Writes the canonical representation of `self` into `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: the canonical bytes of `self`.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Convenience: the SHA-256 digest of the canonical bytes.
    fn digest(&self) -> pbc_crypto::Hash {
        pbc_crypto::sha256(&self.canonical_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_prefixing_prevents_ambiguity() {
        // ("ab", "c") and ("a", "bc") must encode differently.
        let mut e1 = Encoder::new();
        e1.str("ab").str("c");
        let mut e2 = Encoder::new();
        e2.str("a").str("bc");
        assert_ne!(e1.finish(), e2.finish());
    }

    #[test]
    fn big_endian_layout() {
        let mut e = Encoder::new();
        e.u32(0x01020304);
        assert_eq!(e.finish(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn i64_roundtrip_layout() {
        let mut e = Encoder::new();
        e.i64(-1);
        assert_eq!(e.finish(), vec![0xFF; 8]);
    }

    #[test]
    fn bytes_are_length_prefixed() {
        let mut e = Encoder::new();
        e.bytes(b"xy");
        let out = e.finish();
        assert_eq!(&out[..8], &2u64.to_be_bytes());
        assert_eq!(&out[8..], b"xy");
    }
}
