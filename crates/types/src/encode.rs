//! Canonical byte encoding for hashing and signing.
//!
//! A minimal, explicit, length-prefixed binary format. We avoid
//! serialization frameworks on the hashing path so digests are stable
//! across serde versions and cheap to compute.

/// A canonical byte-stream writer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: Vec::with_capacity(cap) }
    }

    /// Appends a fixed tag byte (for enum discriminants).
    pub fn tag(&mut self, t: u8) -> &mut Self {
        self.buf.push(t);
        self
    }

    /// Appends a `u32` big-endian.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a `u64` big-endian.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an `i64` big-endian (two's complement).
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends length-prefixed bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Consumes the encoder, returning the canonical bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// A checked cursor over canonical bytes, mirroring [`Encoder`].
///
/// Every accessor returns `None` on underrun (or invalid UTF-8 for
/// [`Decoder::str`]) instead of panicking: the bytes being decoded may
/// have just been recovered from a torn or rotted disk, and a decode
/// failure must degrade to "checkpoint unusable", never crash recovery.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Reads one tag byte.
    pub fn tag(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_be_bytes(s.try_into().expect("4 bytes")))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_be_bytes(s.try_into().expect("8 bytes")))
    }

    /// Reads a big-endian two's-complement `i64`.
    pub fn i64(&mut self) -> Option<i64> {
        self.take(8).map(|s| i64::from_be_bytes(s.try_into().expect("8 bytes")))
    }

    /// Reads length-prefixed bytes.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u64()?;
        if len > self.remaining() as u64 {
            return None;
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

/// Types with a canonical encoding suitable for hashing/signing.
pub trait CanonicalEncode {
    /// Writes the canonical representation of `self` into `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: the canonical bytes of `self`.
    fn canonical_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Convenience: the SHA-256 digest of the canonical bytes.
    fn digest(&self) -> pbc_crypto::Hash {
        pbc_crypto::sha256(&self.canonical_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_prefixing_prevents_ambiguity() {
        // ("ab", "c") and ("a", "bc") must encode differently.
        let mut e1 = Encoder::new();
        e1.str("ab").str("c");
        let mut e2 = Encoder::new();
        e2.str("a").str("bc");
        assert_ne!(e1.finish(), e2.finish());
    }

    #[test]
    fn big_endian_layout() {
        let mut e = Encoder::new();
        e.u32(0x01020304);
        assert_eq!(e.finish(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn i64_roundtrip_layout() {
        let mut e = Encoder::new();
        e.i64(-1);
        assert_eq!(e.finish(), vec![0xFF; 8]);
    }

    #[test]
    fn bytes_are_length_prefixed() {
        let mut e = Encoder::new();
        e.bytes(b"xy");
        let out = e.finish();
        assert_eq!(&out[..8], &2u64.to_be_bytes());
        assert_eq!(&out[8..], b"xy");
    }

    #[test]
    fn decoder_roundtrips_every_primitive() {
        let mut e = Encoder::new();
        e.tag(7).u32(0xDEAD_BEEF).u64(u64::MAX).i64(-42).bytes(b"raw").str("text");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.tag(), Some(7));
        assert_eq!(d.u32(), Some(0xDEAD_BEEF));
        assert_eq!(d.u64(), Some(u64::MAX));
        assert_eq!(d.i64(), Some(-42));
        assert_eq!(d.bytes(), Some(b"raw".as_slice()));
        assert_eq!(d.str(), Some("text"));
        assert!(d.is_empty());
    }

    #[test]
    fn decoder_underrun_is_none_not_panic() {
        let mut d = Decoder::new(&[1, 2]);
        assert_eq!(d.u32(), None);
        // A length prefix larger than the buffer must not be trusted.
        let mut e = Encoder::new();
        e.u64(1 << 40);
        let bytes = e.finish();
        assert_eq!(Decoder::new(&bytes).bytes(), None);
    }

    #[test]
    fn decoder_rejects_invalid_utf8() {
        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let bytes = e.finish();
        assert_eq!(Decoder::new(&bytes).str(), None);
    }
}
