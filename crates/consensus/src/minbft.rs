//! MinBFT / A2M-PBFT-EA (Veronese et al. \[59\], Chun et al. \[21\]) — BFT
//! with trusted hardware: `n = 2f + 1` replicas, quorums of `f + 1`,
//! **two** phases instead of PBFT's three.
//!
//! The primary attests every `Prepare` through its [`crate::a2m::Usig`]
//! module; replicas process the primary's prepares in strict counter
//! order, so the attested counter doubles as the slot number and the
//! primary *cannot* equivocate (same counter, different payload) or leave
//! gaps unnoticed. With equivocation gone, the prepare/commit exchange
//! with `f + 1` matching commits suffices — this is the mechanism AHL
//! (§2.3.4) cites for shrinking committees from `3f+1` (and experiment
//! E10's subject).

use crate::a2m::{A2mVerifier, Attestation, Usig};
use crate::common::{hooks, DecidedLog, Payload};
use pbc_sim::{Actor, Context, Durable, Message, NodeIdx, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// MinBFT wire messages.
#[derive(Clone, Debug)]
pub enum MinBftMsg<P> {
    /// Client request.
    Request(P),
    /// Primary's attested proposal; `att.counter` orders the slots.
    Prepare {
        /// Proposal view.
        view: u64,
        /// Assigned slot.
        seq: u64,
        /// Proposed payload.
        payload: P,
        /// USIG attestation binding (view, seq, payload digest).
        att: Attestation,
    },
    /// Replica commit vote.
    Commit {
        /// Vote view.
        view: u64,
        /// Slot.
        seq: u64,
        /// Payload digest.
        digest: u64,
    },
    /// Vote to install `new_view`, carrying accepted-but-undecided slots.
    ReqViewChange {
        /// The requested view.
        new_view: u64,
        /// Sender's accepted undecided `(seq, payload)` slots.
        accepted: Vec<(u64, P)>,
    },
    /// New primary's attested view installation.
    NewView {
        /// The installed view.
        view: u64,
        /// Re-proposals for accepted slots plus fresh pending requests.
        proposals: Vec<(u64, P)>,
        /// Attestation over the new-view digest.
        att: Attestation,
    },
    /// State transfer for a replica that missed decided slots: the
    /// sender's decided log, attested as a batch by the sender's USIG.
    /// A receiver installs an entry only once `f + 1` distinct senders
    /// vouch the same `(seq, digest)` — one of them must be honest.
    CatchUp {
        /// Decided `(seq, payload)` entries.
        entries: Vec<(u64, P)>,
        /// Attestation over the batch digest.
        att: Attestation,
    },
}

impl<P: Payload> Message for MinBftMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            MinBftMsg::Request(p) => 24 + p.wire_size(),
            MinBftMsg::Prepare { payload, .. } => 88 + payload.wire_size(),
            MinBftMsg::Commit { .. } => 48,
            MinBftMsg::ReqViewChange { accepted, .. } => {
                48 + accepted.iter().map(|(_, p)| 8 + p.wire_size()).sum::<usize>()
            }
            MinBftMsg::NewView { proposals, .. } => {
                88 + proposals.iter().map(|(_, p)| 8 + p.wire_size()).sum::<usize>()
            }
            MinBftMsg::CatchUp { entries, .. } => {
                88 + entries.iter().map(|(_, p)| 8 + p.wire_size()).sum::<usize>()
            }
        }
    }
}

/// Static configuration.
#[derive(Clone, Debug)]
pub struct MinBftConfig {
    /// Number of replicas (`2f + 1`).
    pub n: usize,
    /// Progress timeout before a view change.
    pub timeout: SimTime,
    /// Trusted-setup seed for the USIG modules.
    pub a2m_seed: u64,
}

impl MinBftConfig {
    /// Defaults.
    pub fn new(n: usize) -> Self {
        MinBftConfig { n, timeout: 50_000, a2m_seed: 0xA2A2 }
    }

    /// Tolerated faults (`⌊(n-1)/2⌋` — twice PBFT's for the same n).
    pub fn f(&self) -> usize {
        crate::common::quorum::a2m_f(self.n)
    }

    /// Commit quorum (`f + 1`).
    pub fn quorum(&self) -> usize {
        crate::common::quorum::a2m_quorum(self.n)
    }

    /// Primary of a view.
    pub fn primary(&self, view: u64) -> NodeIdx {
        (view % self.n as u64) as NodeIdx
    }
}

fn prepare_digest(view: u64, seq: u64, payload_digest: u64) -> u64 {
    let mut z = view
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(seq.rotate_left(21))
        .wrapping_add(payload_digest.rotate_left(42));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z ^ (z >> 27)
}

#[derive(Clone, Debug)]
struct SlotState<P> {
    payload: Option<P>,
    digest: u64,
    commits: HashSet<NodeIdx>,
    decided: bool,
}

impl<P> Default for SlotState<P> {
    fn default() -> Self {
        SlotState { payload: None, digest: 0, commits: HashSet::new(), decided: false }
    }
}

/// One MinBFT replica (owns its trusted USIG module).
#[derive(Debug)]
pub struct MinBftReplica<P> {
    cfg: MinBftConfig,
    view: u64,
    usig: Usig,
    verifier: A2mVerifier,
    slots: BTreeMap<u64, SlotState<P>>,
    pending: BTreeMap<u64, P>,
    delivered_digests: HashSet<u64>,
    assigned: HashMap<u64, u64>,
    next_assign: u64,
    vc_votes: HashMap<u64, HashMap<NodeIdx, Vec<(u64, P)>>>,
    /// Catch-up vouchers: `(seq, digest)` → senders who attested it as
    /// decided. Volatile bookkeeping; rebuilt from scratch after a crash.
    catchup_votes: HashMap<(u64, u64), HashSet<NodeIdx>>,
    /// Payloads carried by catch-up vouchers, keyed by digest.
    catchup_payloads: HashMap<u64, P>,
    /// The in-order decided log.
    pub log: DecidedLog<P>,
    /// View changes entered (observability).
    pub view_changes: u64,
}

impl<P: Payload> MinBftReplica<P> {
    /// Creates replica `id` with its provisioned trusted module.
    pub fn new(cfg: MinBftConfig, id: NodeIdx) -> Self {
        let usig = Usig::new(cfg.a2m_seed, id);
        let verifier = A2mVerifier::new(cfg.a2m_seed, cfg.n);
        MinBftReplica {
            view: 0,
            usig,
            verifier,
            slots: BTreeMap::new(),
            pending: BTreeMap::new(),
            delivered_digests: HashSet::new(),
            assigned: HashMap::new(),
            next_assign: 0,
            vc_votes: HashMap::new(),
            catchup_votes: HashMap::new(),
            catchup_payloads: HashMap::new(),
            log: DecidedLog::default(),
            view_changes: 0,
            cfg,
        }
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    fn try_propose(&mut self, ctx: &mut Context<MinBftMsg<P>>) {
        if self.cfg.primary(self.view) != ctx.self_id {
            return;
        }
        let unassigned: Vec<(u64, P)> = self
            .pending
            .iter()
            .filter(|(d, _)| !self.assigned.contains_key(d))
            .map(|(d, p)| (*d, p.clone()))
            .collect();
        if !unassigned.is_empty() {
            hooks::leader("minbft", ctx.self_id, ctx.now, self.view);
        }
        for (digest, payload) in unassigned {
            let seq = self.next_assign;
            self.next_assign += 1;
            self.assigned.insert(digest, seq);
            let att = self.usig.attest(prepare_digest(self.view, seq, digest));
            ctx.broadcast(MinBftMsg::Prepare { view: self.view, seq, payload, att });
        }
    }

    fn accept_prepare(
        &mut self,
        from: NodeIdx,
        view: u64,
        seq: u64,
        payload: P,
        att: &Attestation,
        ctx: &mut Context<MinBftMsg<P>>,
    ) {
        if view != self.view || self.cfg.primary(view) != from || att.node != from {
            return;
        }
        let pd = payload.digest_u64();
        if att.digest != prepare_digest(view, seq, pd) {
            return;
        }
        // Trusted-module check: MAC valid and counter never seen before.
        // A primary equivocating on `seq` would need to reuse a counter.
        if !self.verifier.verify_fresh(att) {
            return;
        }
        if self.delivered_digests.contains(&pd) {
            return;
        }
        let slot = self.slots.entry(seq).or_default();
        if slot.decided || slot.payload.is_some() {
            return;
        }
        slot.payload = Some(payload);
        slot.digest = pd;
        self.assigned.insert(pd, seq);
        ctx.broadcast(MinBftMsg::Commit { view, seq, digest: pd });
        self.check_decide(seq, ctx.self_id, ctx.now);
    }

    fn check_decide(&mut self, seq: u64, node: NodeIdx, now: SimTime) {
        let q = self.cfg.quorum();
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        if slot.decided || slot.payload.is_none() {
            return;
        }
        if slot.commits.len() >= q {
            slot.decided = true;
            let payload = slot.payload.clone().expect("payload set");
            let pd = slot.digest;
            self.pending.remove(&pd);
            self.delivered_digests.insert(pd);
            hooks::commit("minbft", node, now, seq, pd);
            self.log.decide(seq, payload, now);
        }
    }

    fn accepted_undecided(&self) -> Vec<(u64, P)> {
        self.slots
            .iter()
            .filter(|(_, s)| !s.decided && s.payload.is_some())
            .map(|(seq, s)| (*seq, s.payload.clone().expect("payload set")))
            .collect()
    }

    fn arm_timer(&mut self, ctx: &mut Context<MinBftMsg<P>>) {
        if !self.pending.is_empty() {
            ctx.set_timer(self.cfg.timeout, self.view);
        }
    }

    fn maybe_new_view(&mut self, new_view: u64, ctx: &mut Context<MinBftMsg<P>>) {
        if self.cfg.primary(new_view) != ctx.self_id {
            return;
        }
        let Some(votes) = self.vc_votes.get(&new_view) else {
            return;
        };
        if votes.len() < self.cfg.quorum() {
            return;
        }
        // Union of accepted slots across the quorum covers every slot
        // that could have decided anywhere (f+1 ∩ f+1 ≥ 1 of 2f+1).
        let mut proposals: BTreeMap<u64, P> = BTreeMap::new();
        for accepted in votes.values() {
            for (seq, payload) in accepted {
                proposals.entry(*seq).or_insert_with(|| payload.clone());
            }
        }
        for (seq, payload) in self.accepted_undecided() {
            proposals.entry(seq).or_insert(payload);
        }
        self.view = self.view.max(new_view);
        self.assigned.clear();
        let mut max_seq = self.log.next_seq();
        for seq in proposals.keys() {
            max_seq = max_seq.max(seq + 1);
        }
        let covered: HashSet<u64> = proposals.values().map(|p| p.digest_u64()).collect();
        let uncovered: Vec<P> =
            self.pending.values().filter(|p| !covered.contains(&p.digest_u64())).cloned().collect();
        for p in uncovered {
            proposals.insert(max_seq, p);
            max_seq += 1;
        }
        self.next_assign = max_seq;
        let list: Vec<(u64, P)> = proposals.into_iter().collect();
        let digest = list
            .iter()
            .fold(new_view, |acc, (s, p)| acc ^ prepare_digest(new_view, *s, p.digest_u64()));
        let att = self.usig.attest(digest);
        ctx.broadcast(MinBftMsg::NewView { view: new_view, proposals: list, att });
    }

    /// Order-independent digest of a catch-up batch. The `u64::MAX`
    /// pseudo-view keeps it disjoint from any real prepare digest.
    fn catchup_batch_digest(entries: &[(u64, P)]) -> u64 {
        entries
            .iter()
            .fold(0xCA7C_4B01, |acc, (s, p)| acc ^ prepare_digest(u64::MAX, *s, p.digest_u64()))
    }

    /// Vouches our decided log to a replica that appears stalled.
    fn send_catchup(&mut self, to: NodeIdx, ctx: &mut Context<MinBftMsg<P>>) {
        let entries: Vec<(u64, P)> =
            self.log.snapshot().into_iter().map(|(s, p, _)| (s, p)).collect();
        if entries.is_empty() {
            return;
        }
        let att = self.usig.attest(Self::catchup_batch_digest(&entries));
        ctx.send(to, MinBftMsg::CatchUp { entries, att });
    }
}

impl<P: Payload + 'static> crate::ordering::OrderingActor for MinBftReplica<P> {
    type Payload = P;
    const PROTOCOL: &'static str = "minbft";

    fn request_msg(payload: P) -> MinBftMsg<P> {
        MinBftMsg::Request(payload)
    }

    fn log(&self) -> &DecidedLog<P> {
        &self.log
    }
}

impl<P: Payload> Actor for MinBftReplica<P> {
    type Msg = MinBftMsg<P>;

    fn on_message(&mut self, from: NodeIdx, msg: &MinBftMsg<P>, ctx: &mut Context<MinBftMsg<P>>) {
        match msg {
            MinBftMsg::Request(p) => {
                let d = p.digest_u64();
                if self.delivered_digests.contains(&d) || self.pending.contains_key(&d) {
                    return;
                }
                self.pending.insert(d, p.clone());
                self.arm_timer(ctx);
                self.try_propose(ctx);
            }
            MinBftMsg::Prepare { view, seq, payload, att } => {
                self.accept_prepare(from, *view, *seq, payload.clone(), att, ctx);
            }
            MinBftMsg::Commit { view, seq, digest } => {
                if *view != self.view {
                    return;
                }
                let slot = self.slots.entry(*seq).or_default();
                if slot.payload.is_some() && slot.digest != *digest {
                    return; // conflicting commit for another payload
                }
                slot.commits.insert(from);
                self.check_decide(*seq, ctx.self_id, ctx.now);
            }
            MinBftMsg::ReqViewChange { new_view, accepted } => {
                if *new_view < self.view {
                    return;
                }
                // A replica with nothing in flight won't join the view
                // change — but the requester is usually stalled on slots
                // we already decided (it missed a prepare or the
                // commits). Vouch our decided log so it can catch up;
                // it installs a slot only once f+1 senders agree.
                if *new_view > self.view && self.pending.is_empty() {
                    self.send_catchup(from, ctx);
                }
                self.vc_votes.entry(*new_view).or_default().insert(from, accepted.clone());
                if *new_view > self.view && self.vc_votes[new_view].len() >= self.cfg.quorum() {
                    self.view = *new_view;
                    self.view_changes += 1;
                    hooks::view_change("minbft", ctx.self_id, ctx.now, *new_view);
                    self.assigned.clear();
                    ctx.broadcast(MinBftMsg::ReqViewChange {
                        new_view: *new_view,
                        accepted: self.accepted_undecided(),
                    });
                    self.arm_timer(ctx);
                }
                self.maybe_new_view(*new_view, ctx);
            }
            MinBftMsg::NewView { view, proposals, att } => {
                if *view < self.view || self.cfg.primary(*view) != from || att.node != from {
                    return;
                }
                let digest = proposals
                    .iter()
                    .fold(*view, |acc, (s, p)| acc ^ prepare_digest(*view, *s, p.digest_u64()));
                if att.digest != digest || !self.verifier.verify_fresh(att) {
                    return;
                }
                self.view = *view;
                for (seq, payload) in proposals {
                    // Treat as prepares: accept and commit-vote. (Attested
                    // collectively by the NewView attestation.)
                    let pd = payload.digest_u64();
                    if self.delivered_digests.contains(&pd) {
                        continue;
                    }
                    let slot = self.slots.entry(*seq).or_default();
                    if slot.decided || slot.payload.is_some() {
                        continue;
                    }
                    slot.payload = Some(payload.clone());
                    slot.digest = pd;
                    self.assigned.insert(pd, *seq);
                    ctx.broadcast(MinBftMsg::Commit { view: *view, seq: *seq, digest: pd });
                    self.check_decide(*seq, ctx.self_id, ctx.now);
                }
                self.arm_timer(ctx);
            }
            MinBftMsg::CatchUp { entries, att } => {
                if att.node != from
                    || att.digest != Self::catchup_batch_digest(entries)
                    || !self.verifier.verify_fresh(att)
                {
                    return;
                }
                let q = self.cfg.quorum();
                for (seq, payload) in entries {
                    let pd = payload.digest_u64();
                    if self.delivered_digests.contains(&pd)
                        || self.slots.get(seq).is_some_and(|s| s.decided)
                    {
                        continue;
                    }
                    self.catchup_payloads.entry(pd).or_insert_with(|| payload.clone());
                    let votes = self.catchup_votes.entry((*seq, pd)).or_default();
                    votes.insert(from);
                    if votes.len() >= q {
                        // f+1 vouchers intersect every commit quorum in
                        // at least one honest replica: install as decided.
                        let payload = self.catchup_payloads[&pd].clone();
                        let slot = self.slots.entry(*seq).or_default();
                        slot.payload = Some(payload.clone());
                        slot.digest = pd;
                        slot.decided = true;
                        self.pending.remove(&pd);
                        self.delivered_digests.insert(pd);
                        hooks::commit("minbft", ctx.self_id, ctx.now, *seq, pd);
                        self.log.decide(*seq, payload, ctx.now);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, timer_view: u64, ctx: &mut Context<MinBftMsg<P>>) {
        if timer_view != self.view || self.pending.is_empty() {
            return;
        }
        let new_view = self.view + 1;
        self.view = new_view;
        self.view_changes += 1;
        hooks::view_change("minbft", ctx.self_id, ctx.now, new_view);
        self.assigned.clear();
        ctx.broadcast(MinBftMsg::ReqViewChange { new_view, accepted: self.accepted_undecided() });
        self.arm_timer(ctx);
    }
}

/// MinBFT's stable state (opaque). Two distinct kinds of durability are
/// bundled here: the replica's *disk* (view, accepted slots, decisions,
/// the verifier's used-counter sets) and the USIG's *tamper-proof
/// counter*, which by the hardware model can never rewind — a crash
/// that forgot it would re-enable the equivocation the module exists to
/// prevent.
#[derive(Clone, Debug)]
pub struct MinBftStable<P> {
    view: u64,
    usig_counter: u64,
    verifier: A2mVerifier,
    slots: BTreeMap<u64, SlotState<P>>,
    delivered_digests: HashSet<u64>,
    decided: Vec<(u64, P, SimTime)>,
}

impl<P: crate::common::PersistPayload> Durable for MinBftReplica<P> {
    type Stable = MinBftStable<P>;

    fn checkpoint(&self) -> MinBftStable<P> {
        MinBftStable {
            view: self.view,
            usig_counter: self.usig.counter(),
            verifier: self.verifier.clone(),
            slots: self.slots.clone(),
            delivered_digests: self.delivered_digests.clone(),
            decided: self.log.snapshot(),
        }
    }

    fn restore(crashed: &Self, stable: MinBftStable<P>) -> Self {
        let id = crashed.usig.node();
        let mut r = MinBftReplica::new(crashed.cfg.clone(), id);
        r.view = stable.view;
        r.usig = Usig::resume(crashed.cfg.a2m_seed, id, stable.usig_counter);
        r.verifier = stable.verifier;
        r.slots = stable.slots;
        r.delivered_digests = stable.delivered_digests;
        r.log = DecidedLog::from_snapshot(0, stable.decided);
        for (seq, slot) in &r.slots {
            if slot.payload.is_some() {
                r.assigned.insert(slot.digest, *seq);
            }
            r.next_assign = r.next_assign.max(seq + 1);
        }
        r
    }

    fn encode_stable(stable: &MinBftStable<P>) -> Vec<u8> {
        let mut e = pbc_types::encode::Encoder::new();
        e.u64(stable.view).u64(stable.usig_counter);
        // The verifier's keys re-derive from (a2m_seed, n); only the
        // accepted-counter sets need to survive (a forgotten set would
        // re-admit replayed attestations).
        let used = stable.verifier.used_counters();
        e.u64(used.len() as u64);
        for (node, counters) in used {
            e.u64(node as u64).u64(counters.len() as u64);
            for c in counters {
                e.u64(c);
            }
        }
        e.u64(stable.slots.len() as u64);
        for (seq, slot) in &stable.slots {
            e.u64(*seq);
            match &slot.payload {
                Some(p) => {
                    e.tag(1).bytes(&p.to_bytes());
                }
                None => {
                    e.tag(0);
                }
            }
            e.u64(slot.digest);
            let mut voters: Vec<NodeIdx> = slot.commits.iter().copied().collect();
            voters.sort_unstable();
            e.u64(voters.len() as u64);
            for v in voters {
                e.u64(v as u64);
            }
            e.tag(slot.decided as u8);
        }
        let mut digests: Vec<u64> = stable.delivered_digests.iter().copied().collect();
        digests.sort_unstable();
        e.u64(digests.len() as u64);
        for d in digests {
            e.u64(d);
        }
        e.u64(stable.decided.len() as u64);
        for (seq, payload, time) in &stable.decided {
            e.u64(*seq).bytes(&payload.to_bytes()).u64(*time);
        }
        e.finish()
    }

    fn decode_stable(crashed: &Self, bytes: &[u8]) -> Option<MinBftStable<P>> {
        let mut d = pbc_types::encode::Decoder::new(bytes);
        let view = d.u64()?;
        let usig_counter = d.u64()?;
        let mut verifier = A2mVerifier::new(crashed.cfg.a2m_seed, crashed.cfg.n);
        let n_nodes = d.u64()? as usize;
        for _ in 0..n_nodes {
            let node = d.u64()? as usize;
            let n_counters = d.u64()? as usize;
            for _ in 0..n_counters {
                verifier.mark_used(node, d.u64()?);
            }
        }
        let n_slots = d.u64()? as usize;
        let mut slots = BTreeMap::new();
        for _ in 0..n_slots {
            let seq = d.u64()?;
            let payload = match d.tag()? {
                0 => None,
                1 => Some(P::from_bytes(d.bytes()?)?),
                _ => return None,
            };
            let digest = d.u64()?;
            let n_voters = d.u64()? as usize;
            let mut commits = HashSet::with_capacity(n_voters.min(1024));
            for _ in 0..n_voters {
                commits.insert(d.u64()? as NodeIdx);
            }
            let decided = match d.tag()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            slots.insert(seq, SlotState { payload, digest, commits, decided });
        }
        let n_digests = d.u64()? as usize;
        let mut delivered_digests = HashSet::with_capacity(n_digests.min(1024));
        for _ in 0..n_digests {
            delivered_digests.insert(d.u64()?);
        }
        let n_decided = d.u64()? as usize;
        let mut decided = Vec::with_capacity(n_decided.min(1024));
        for _ in 0..n_decided {
            let seq = d.u64()?;
            let payload = P::from_bytes(d.bytes()?)?;
            let time = d.u64()?;
            decided.push((seq, payload, time));
        }
        d.is_empty().then_some(MinBftStable {
            view,
            usig_counter,
            verifier,
            slots,
            delivered_digests,
            decided,
        })
    }

    fn blank_stable(crashed: &Self) -> MinBftStable<P> {
        MinBftStable {
            view: 0,
            // Even a blank disk cannot rewind the USIG: its counter lives
            // in the module's NVRAM, not on the host's disk.
            usig_counter: crashed.usig.counter(),
            verifier: A2mVerifier::new(crashed.cfg.a2m_seed, crashed.cfg.n),
            slots: BTreeMap::new(),
            delivered_digests: HashSet::new(),
            decided: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_sim::{Network, NetworkConfig};

    fn cluster(n: usize, seed: u64) -> Network<MinBftReplica<u64>> {
        let cfg = MinBftConfig::new(n);
        let actors = (0..n).map(|i| MinBftReplica::new(cfg.clone(), i)).collect();
        Network::new(actors, NetworkConfig { seed, ..Default::default() })
    }

    fn submit(net: &mut Network<MinBftReplica<u64>>, p: u64) {
        for i in 0..net.len() {
            net.inject(0, i, MinBftMsg::Request(p), 1);
        }
    }

    fn logs_agree(net: &Network<MinBftReplica<u64>>, expected: usize) {
        let first = (0..net.len()).find(|&i| !net.is_crashed(i)).unwrap();
        let reference: Vec<u64> =
            net.actor(first).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(reference.len(), expected);
        for i in 0..net.len() {
            if net.is_crashed(i) {
                continue;
            }
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, reference, "node {i}");
        }
    }

    #[test]
    fn three_nodes_decide() {
        // n = 3 = 2f+1 with f = 1: impossible for classic PBFT, fine here.
        let mut net = cluster(3, 1);
        submit(&mut net, 42);
        net.run_to_quiescence(1_000_000);
        logs_agree(&net, 1);
    }

    #[test]
    fn pipelined_requests_in_order() {
        let mut net = cluster(3, 2);
        for p in 1..=15u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(3_000_000);
        logs_agree(&net, 15);
    }

    #[test]
    fn tolerates_one_crash_with_three_nodes() {
        let mut net = cluster(3, 3);
        net.crash(2); // backup
        for p in 1..=5u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(2_000_000);
        let log0: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log0.len(), 5);
    }

    #[test]
    fn primary_crash_view_change_recovers() {
        let mut net = cluster(3, 4);
        net.crash(0); // primary of view 0
        submit(&mut net, 7);
        net.run_to_quiescence(10_000_000);
        for i in 1..3 {
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, vec![7], "node {i}");
            assert!(net.actor(i).view() >= 1);
        }
    }

    #[test]
    fn fewer_messages_than_pbft_same_fault_tolerance() {
        // Tolerating f=1: MinBFT needs n=3, PBFT needs n=4, and MinBFT
        // has one fewer phase → substantially fewer messages (E10).
        let mut minbft = cluster(3, 5);
        submit(&mut minbft, 1);
        minbft.run_to_quiescence(1_000_000);
        assert_eq!(minbft.actor(0).log.len(), 1);
        let minbft_msgs = minbft.stats().msgs_sent;

        let cfg = crate::pbft::PbftConfig::new(4);
        let actors = (0..4).map(|_| crate::pbft::PbftReplica::new(cfg.clone())).collect();
        let mut pbft: Network<crate::pbft::PbftReplica<u64>> =
            Network::new(actors, NetworkConfig { seed: 5, ..Default::default() });
        for i in 0..4 {
            pbft.inject(0, i, crate::pbft::PbftMsg::Request(1), 1);
        }
        pbft.run_to_quiescence(1_000_000);
        let pbft_msgs = pbft.stats().msgs_sent;
        assert!(minbft_msgs < pbft_msgs / 2, "minbft {minbft_msgs} vs pbft {pbft_msgs}");
    }

    /// A Byzantine primary that replays one attestation for two payloads.
    #[allow(clippy::large_enum_variant)]
    enum TestNode {
        Honest(MinBftReplica<u64>),
        ReplayingPrimary { usig: Usig, fired: bool },
    }

    impl Actor for TestNode {
        type Msg = MinBftMsg<u64>;
        fn on_message(
            &mut self,
            from: NodeIdx,
            msg: &MinBftMsg<u64>,
            ctx: &mut Context<MinBftMsg<u64>>,
        ) {
            match self {
                TestNode::Honest(r) => r.on_message(from, msg, ctx),
                TestNode::ReplayingPrimary { usig, fired } => {
                    if let MinBftMsg::Request(_) = msg {
                        if !*fired {
                            *fired = true;
                            // Attest payload 1000 once, then try to reuse
                            // the attestation for payload 1001 on half the
                            // replicas.
                            let att =
                                usig.attest(prepare_digest(0, 0, Payload::digest_u64(&1000u64)));
                            for to in 0..ctx.n {
                                let payload = if to % 2 == 0 { 1000u64 } else { 1001 };
                                ctx.send(to, MinBftMsg::Prepare { view: 0, seq: 0, payload, att });
                            }
                        }
                    }
                }
            }
        }
        fn on_timer(&mut self, id: u64, ctx: &mut Context<MinBftMsg<u64>>) {
            if let TestNode::Honest(r) = self {
                r.on_timer(id, ctx);
            }
        }
    }

    #[test]
    fn attestation_replay_equivocation_rejected() {
        let cfg = MinBftConfig::new(3);
        let actors: Vec<TestNode> = (0..3)
            .map(|i| {
                if i == 0 {
                    TestNode::ReplayingPrimary { usig: Usig::new(cfg.a2m_seed, 0), fired: false }
                } else {
                    TestNode::Honest(MinBftReplica::new(cfg.clone(), i))
                }
            })
            .collect();
        let mut net = Network::new(actors, NetworkConfig { seed: 6, ..Default::default() });
        for i in 0..3 {
            net.inject(0, i, MinBftMsg::Request(7), 1);
        }
        net.run_to_quiescence(10_000_000);
        // Replica 1 (odd) got payload 1001 with an attestation whose
        // digest binds payload 1000 → rejected outright. Replica 2 (even)
        // got the genuine pair. Neither payload can gather f+1 = 2 commits
        // from honest nodes, and the honest request 7 decides after the
        // view change.
        for i in 1..3 {
            if let TestNode::Honest(r) = net.actor(i) {
                let log: Vec<u64> = r.log.delivered().iter().map(|(_, p, _)| *p).collect();
                assert!(!log.contains(&1001), "node {i} accepted a replayed attestation");
                assert!(log.contains(&7), "node {i} must decide the honest request: {log:?}");
            }
        }
    }

    #[test]
    fn stable_codec_roundtrips_and_rejects_truncation() {
        let mut net = cluster(3, 31);
        for p in 1..=3u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(1_000_000);
        for i in 0..3 {
            let stable = net.actor(i).checkpoint();
            assert!(!stable.decided.is_empty(), "node {i} decided something");
            let bytes = MinBftReplica::<u64>::encode_stable(&stable);
            let back = MinBftReplica::decode_stable(net.actor(i), &bytes).expect("decodes");
            assert_eq!(MinBftReplica::<u64>::encode_stable(&back), bytes, "canonical roundtrip");
            assert_eq!(back.usig_counter, stable.usig_counter, "USIG counter survives");
            assert!(MinBftReplica::decode_stable(net.actor(i), &bytes[..bytes.len() - 1]).is_none());
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(MinBftReplica::decode_stable(net.actor(i), &padded).is_none());
        }
    }
}
