//! Raft (Ongaro & Ousterhout) — the crash-fault-tolerant ordering
//! protocol used by Quorum and by Fabric's ordering service (§2.3.3).
//!
//! `n = 2f + 1` nodes tolerate `f` crashes. A leader is elected with
//! randomized timeouts; client requests are appended to the leader's log
//! and replicated with `AppendEntries`; an entry commits once a majority
//! stores it in the leader's current term. Compared to the BFT protocols
//! in this crate, Raft needs fewer phases and no all-to-all exchange —
//! the CFT-vs-BFT gap experiment E5 quantifies exactly that.

use crate::common::{hooks, quorum, DecidedLog, Payload};
use pbc_sim::{Actor, Context, Durable, Message, NodeIdx, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Raft wire messages.
#[derive(Clone, Debug)]
pub enum RaftMsg<P> {
    /// A client request (injected to every node; only the leader acts).
    Request(P),
    /// Candidate solicitation.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of candidate's last log entry.
        last_log_index: u64,
        /// Term of candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote reply.
    Vote {
        /// Voter's term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Log replication / heartbeat.
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Index of the entry preceding `entries`.
        prev_index: u64,
        /// Term of that entry.
        prev_term: u64,
        /// Entries to append (`(term, payload)`).
        entries: Vec<(u64, P)>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Follower's replication acknowledgement.
    AppendReply {
        /// Follower's term.
        term: u64,
        /// Whether the append matched.
        success: bool,
        /// Highest index known replicated on the follower.
        match_index: u64,
    },
}

impl<P: Payload> Message for RaftMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            RaftMsg::Request(p) => 24 + p.wire_size(),
            RaftMsg::RequestVote { .. } | RaftMsg::Vote { .. } => 40,
            RaftMsg::AppendEntries { entries, .. } => {
                56 + entries.iter().map(|(_, p)| 8 + p.wire_size()).sum::<usize>()
            }
            RaftMsg::AppendReply { .. } => 40,
        }
    }
}

/// Raft role.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Passive replica.
    Follower,
    /// Election in progress.
    Candidate,
    /// The elected leader.
    Leader,
}

// Timer ids carry the kind in the low byte and an epoch in the upper
// bits: the simulator cannot cancel timers, so re-arming the election
// timer (which happens on every heartbeat) bumps the epoch and lets
// every previously-armed timer die silently when it fires. Without
// this, stale timers accumulate one per heartbeat and each re-arms
// itself forever — a quadratic event storm.
const TIMER_ELECTION: u64 = 1;
const TIMER_HEARTBEAT: u64 = 2;
const TIMER_KIND_MASK: u64 = 0xFF;

/// Static Raft configuration.
#[derive(Clone, Debug)]
pub struct RaftConfig {
    /// Cluster size.
    pub n: usize,
    /// Election timeout lower bound (randomized in `[min, 2·min]`).
    pub election_timeout: SimTime,
    /// Heartbeat interval (must be well under the election timeout).
    pub heartbeat: SimTime,
    /// Seed for per-node timeout randomization.
    pub seed: u64,
}

impl RaftConfig {
    /// Sensible defaults for a LAN-latency simulation.
    pub fn new(n: usize) -> Self {
        RaftConfig { n, election_timeout: 10_000, heartbeat: 2_000, seed: 7 }
    }
}

/// One Raft node.
#[derive(Debug)]
pub struct RaftNode<P> {
    cfg: RaftConfig,
    id: NodeIdx,
    term: u64,
    voted_for: Option<NodeIdx>,
    role: Role,
    /// 1-indexed log; index 0 is a sentinel.
    log_entries: Vec<(u64, P)>,
    log_digests: HashSet<u64>,
    commit_index: u64,
    last_applied: u64,
    /// Leader state.
    next_index: Vec<u64>,
    match_index: Vec<u64>,
    votes: HashSet<NodeIdx>,
    /// Requests waiting for a leader.
    pending: Vec<P>,
    last_heartbeat: SimTime,
    election_epoch: u64,
    rng: StdRng,
    /// The in-order decided log.
    pub log: DecidedLog<P>,
    /// Elections this node has started (observability).
    pub elections_started: u64,
}

impl<P: Payload> RaftNode<P> {
    /// Creates a node; `id` must match its index in the network.
    pub fn new(cfg: RaftConfig, id: NodeIdx) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed ^ (id as u64).wrapping_mul(0x9e3779b9));
        RaftNode {
            id,
            term: 0,
            voted_for: None,
            role: Role::Follower,
            log_entries: Vec::new(),
            log_digests: HashSet::new(),
            commit_index: 0,
            last_applied: 0,
            next_index: vec![1; cfg.n],
            match_index: vec![0; cfg.n],
            votes: HashSet::new(),
            pending: Vec::new(),
            last_heartbeat: 0,
            election_epoch: 0,
            rng,
            log: DecidedLog::starting_at(0),
            elections_started: 0,
            cfg,
        }
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    fn last_log_index(&self) -> u64 {
        self.log_entries.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log_entries.last().map_or(0, |(t, _)| *t)
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else {
            self.log_entries.get(index as usize - 1).map_or(0, |(t, _)| *t)
        }
    }

    fn arm_election_timer(&mut self, ctx: &mut Context<RaftMsg<P>>) {
        let d = self.cfg.election_timeout + self.rng.gen_range(0..self.cfg.election_timeout);
        self.election_epoch += 1;
        ctx.set_timer(d, TIMER_ELECTION | (self.election_epoch << 8));
    }

    fn become_follower(&mut self, term: u64, ctx: &mut Context<RaftMsg<P>>) {
        let was_leader = self.role == Role::Leader;
        if term > self.term {
            self.term = term;
            self.voted_for = None;
        }
        self.role = Role::Follower;
        self.votes.clear();
        if was_leader {
            // Stop issuing heartbeats implicitly (timer checks role).
        }
        self.arm_election_timer(ctx);
    }

    fn start_election(&mut self, ctx: &mut Context<RaftMsg<P>>) {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes.clear();
        self.votes.insert(self.id);
        self.elections_started += 1;
        hooks::election("raft", self.id, ctx.now, self.term);
        ctx.broadcast(RaftMsg::RequestVote {
            term: self.term,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        });
        self.arm_election_timer(ctx);
    }

    fn become_leader(&mut self, ctx: &mut Context<RaftMsg<P>>) {
        self.role = Role::Leader;
        hooks::leader("raft", self.id, ctx.now, self.term);
        self.next_index = vec![self.last_log_index() + 1; self.cfg.n];
        self.match_index = vec![0; self.cfg.n];
        self.match_index[self.id] = self.last_log_index();
        // Adopt buffered client requests.
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            self.append_if_new(p);
        }
        self.replicate_all(ctx);
        ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
    }

    fn append_if_new(&mut self, p: P) {
        let d = p.digest_u64();
        if self.log_digests.insert(d) {
            self.log_entries.push((self.term, p));
            self.match_index[self.id] = self.last_log_index();
        }
    }

    fn replicate_all(&mut self, ctx: &mut Context<RaftMsg<P>>) {
        for peer in 0..self.cfg.n {
            if peer == self.id {
                continue;
            }
            let next = self.next_index[peer];
            let prev_index = next - 1;
            let prev_term = self.term_at(prev_index);
            let entries: Vec<(u64, P)> =
                self.log_entries.iter().skip(prev_index as usize).cloned().collect();
            ctx.send(
                peer,
                RaftMsg::AppendEntries {
                    term: self.term,
                    prev_index,
                    prev_term,
                    entries,
                    leader_commit: self.commit_index,
                },
            );
        }
    }

    fn advance_commit(&mut self, ctx: &mut Context<RaftMsg<P>>) {
        let maj = quorum::majority(self.cfg.n);
        for n in (self.commit_index + 1..=self.last_log_index()).rev() {
            if self.term_at(n) != self.term {
                continue;
            }
            let count = self.match_index.iter().filter(|&&m| m >= n).count();
            if count >= maj {
                self.commit_index = n;
                break;
            }
        }
        self.apply_committed(ctx.now);
    }

    fn apply_committed(&mut self, now: SimTime) {
        while self.last_applied < self.commit_index {
            self.last_applied += 1;
            let (_, p) = &self.log_entries[self.last_applied as usize - 1];
            hooks::commit("raft", self.id, now, self.last_applied - 1, p.digest_u64());
            self.log.decide(self.last_applied - 1, p.clone(), now);
        }
    }
}

impl<P: Payload + 'static> crate::ordering::OrderingActor for RaftNode<P> {
    type Payload = P;
    const PROTOCOL: &'static str = "raft";

    fn request_msg(payload: P) -> RaftMsg<P> {
        RaftMsg::Request(payload)
    }

    fn log(&self) -> &DecidedLog<P> {
        &self.log
    }
}

impl<P: Payload> Actor for RaftNode<P> {
    type Msg = RaftMsg<P>;

    fn on_start(&mut self, ctx: &mut Context<RaftMsg<P>>) {
        self.arm_election_timer(ctx);
    }

    fn on_message(&mut self, from: NodeIdx, msg: &RaftMsg<P>, ctx: &mut Context<RaftMsg<P>>) {
        match msg {
            RaftMsg::Request(p) => {
                if self.role == Role::Leader {
                    self.append_if_new(p.clone());
                    self.replicate_all(ctx);
                } else if !self.log_digests.contains(&p.digest_u64())
                    && !self.pending.iter().any(|q| q.digest_u64() == p.digest_u64())
                {
                    self.pending.push(p.clone());
                }
            }
            RaftMsg::RequestVote { term, last_log_index, last_log_term } => {
                if *term > self.term {
                    self.become_follower(*term, ctx);
                }
                let up_to_date = (*last_log_term, *last_log_index)
                    >= (self.last_log_term(), self.last_log_index());
                let granted = *term == self.term
                    && up_to_date
                    && (self.voted_for.is_none() || self.voted_for == Some(from));
                if granted {
                    self.voted_for = Some(from);
                    self.last_heartbeat = ctx.now; // don't start a rival election
                    self.arm_election_timer(ctx);
                }
                ctx.send(from, RaftMsg::Vote { term: self.term, granted });
            }
            RaftMsg::Vote { term, granted } => {
                if *term > self.term {
                    self.become_follower(*term, ctx);
                    return;
                }
                if self.role == Role::Candidate && *granted && *term == self.term {
                    self.votes.insert(from);
                    if self.votes.len() >= quorum::majority(self.cfg.n) {
                        self.become_leader(ctx);
                    }
                }
            }
            RaftMsg::AppendEntries { term, prev_index, prev_term, entries, leader_commit } => {
                if *term < self.term {
                    ctx.send(
                        from,
                        RaftMsg::AppendReply { term: self.term, success: false, match_index: 0 },
                    );
                    return;
                }
                self.become_follower(*term, ctx);
                self.last_heartbeat = ctx.now;
                // Consistency check.
                if *prev_index > self.last_log_index() || self.term_at(*prev_index) != *prev_term {
                    ctx.send(
                        from,
                        RaftMsg::AppendReply {
                            term: self.term,
                            success: false,
                            match_index: self.commit_index,
                        },
                    );
                    return;
                }
                // Truncate conflicts, append new entries.
                let mut idx = *prev_index;
                for (eterm, payload) in entries {
                    idx += 1;
                    if idx <= self.last_log_index() {
                        if self.term_at(idx) != *eterm {
                            for (_, p) in self.log_entries.drain(idx as usize - 1..) {
                                self.log_digests.remove(&p.digest_u64());
                            }
                            self.log_digests.insert(payload.digest_u64());
                            self.log_entries.push((*eterm, payload.clone()));
                        }
                    } else {
                        self.log_digests.insert(payload.digest_u64());
                        self.log_entries.push((*eterm, payload.clone()));
                    }
                }
                if *leader_commit > self.commit_index {
                    self.commit_index = (*leader_commit).min(self.last_log_index());
                    self.apply_committed(ctx.now);
                }
                ctx.send(
                    from,
                    RaftMsg::AppendReply {
                        term: self.term,
                        success: true,
                        match_index: idx.max(self.last_log_index().min(*prev_index)),
                    },
                );
            }
            RaftMsg::AppendReply { term, success, match_index } => {
                if *term > self.term {
                    self.become_follower(*term, ctx);
                    return;
                }
                if self.role != Role::Leader || *term != self.term {
                    return;
                }
                if *success {
                    self.match_index[from] = self.match_index[from].max(*match_index);
                    self.next_index[from] = self.match_index[from] + 1;
                    self.advance_commit(ctx);
                } else {
                    self.next_index[from] = self.next_index[from].saturating_sub(1).max(1);
                }
            }
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<RaftMsg<P>>) {
        match id & TIMER_KIND_MASK {
            TIMER_ELECTION => {
                if id >> 8 != self.election_epoch || self.role == Role::Leader {
                    return;
                }
                let elapsed = ctx.now.saturating_sub(self.last_heartbeat);
                if elapsed >= self.cfg.election_timeout {
                    self.start_election(ctx);
                } else {
                    self.arm_election_timer(ctx);
                }
            }
            TIMER_HEARTBEAT if self.role == Role::Leader => {
                self.replicate_all(ctx);
                ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
            }
            _ => {}
        }
    }
}

/// Raft's persistent state, exactly the three fields the paper requires
/// on stable storage before any RPC response: `currentTerm`, `votedFor`
/// and the log.
#[derive(Clone, Debug)]
pub struct RaftStable<P> {
    /// `currentTerm`.
    pub term: u64,
    /// `votedFor` in the current term.
    pub voted_for: Option<NodeIdx>,
    /// The full log (`(term, payload)`, 1-indexed externally).
    pub log_entries: Vec<(u64, P)>,
}

impl<P: crate::common::PersistPayload> Durable for RaftNode<P> {
    type Stable = RaftStable<P>;

    fn checkpoint(&self) -> RaftStable<P> {
        RaftStable {
            term: self.term,
            voted_for: self.voted_for,
            log_entries: self.log_entries.clone(),
        }
    }

    fn restore(crashed: &Self, stable: RaftStable<P>) -> Self {
        let mut node = RaftNode::new(crashed.cfg.clone(), crashed.id);
        node.term = stable.term;
        node.voted_for = stable.voted_for;
        node.log_digests = stable.log_entries.iter().map(|(_, p)| p.digest_u64()).collect();
        node.log_entries = stable.log_entries;
        // commit_index/last_applied restart at 0 (volatile, per the
        // paper); the next AppendEntries re-teaches the commit point and
        // the decided log re-fills identically from the same entries.
        node
    }

    fn encode_stable(stable: &RaftStable<P>) -> Vec<u8> {
        let mut e = pbc_types::encode::Encoder::new();
        e.u64(stable.term);
        match stable.voted_for {
            Some(v) => {
                e.tag(1).u64(v as u64);
            }
            None => {
                e.tag(0);
            }
        }
        e.u64(stable.log_entries.len() as u64);
        for (term, payload) in &stable.log_entries {
            e.u64(*term).bytes(&payload.to_bytes());
        }
        e.finish()
    }

    fn decode_stable(_crashed: &Self, bytes: &[u8]) -> Option<RaftStable<P>> {
        let mut d = pbc_types::encode::Decoder::new(bytes);
        let term = d.u64()?;
        let voted_for = match d.tag()? {
            0 => None,
            1 => Some(d.u64()? as NodeIdx),
            _ => return None,
        };
        let n = d.u64()? as usize;
        let mut log_entries = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let entry_term = d.u64()?;
            let payload = P::from_bytes(d.bytes()?)?;
            log_entries.push((entry_term, payload));
        }
        d.is_empty().then_some(RaftStable { term, voted_for, log_entries })
    }

    fn blank_stable(_crashed: &Self) -> RaftStable<P> {
        RaftStable { term: 0, voted_for: None, log_entries: Vec::new() }
    }
}

/// A **deliberately broken** Raft variant that persists *nothing* across
/// an amnesia crash — it rejoins with term 0, no vote memory, and an
/// empty log. Exists to demonstrate, in the chaos tests, that Raft's
/// stable-storage rules are load-bearing: two such nodes crashing and
/// re-forming a quorum can re-elect at a stale term and overwrite
/// committed entries, which [`pbc_sim::InvariantChecker`] flags as a
/// safety violation. Never use outside fault-injection experiments.
#[derive(Debug)]
pub struct VolatileRaft<P>(pub RaftNode<P>);

impl<P: Payload> VolatileRaft<P> {
    /// Wraps a fresh node.
    pub fn new(cfg: RaftConfig, id: NodeIdx) -> Self {
        VolatileRaft(RaftNode::new(cfg, id))
    }
}

impl<P: Payload> Actor for VolatileRaft<P> {
    type Msg = RaftMsg<P>;

    fn on_start(&mut self, ctx: &mut Context<RaftMsg<P>>) {
        self.0.on_start(ctx);
    }

    fn on_message(&mut self, from: NodeIdx, msg: &RaftMsg<P>, ctx: &mut Context<RaftMsg<P>>) {
        self.0.on_message(from, msg, ctx);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<RaftMsg<P>>) {
        self.0.on_timer(id, ctx);
    }
}

/// Drivable by the generic ordering layer, so the chaos suite can put
/// the broken variant under a [`crate::ordering::DurableNet`] too: a
/// node that persists nothing violates safety *even with a perfectly
/// healthy disk attached* — the store faithfully round-trips the empty
/// state it was given.
impl<P: Payload + 'static> crate::ordering::OrderingActor for VolatileRaft<P> {
    type Payload = P;
    const PROTOCOL: &'static str = "volatile-raft";

    fn request_msg(payload: P) -> RaftMsg<P> {
        RaftMsg::Request(payload)
    }

    fn log(&self) -> &DecidedLog<P> {
        &self.0.log
    }
}

impl<P: Payload> Durable for VolatileRaft<P> {
    /// Nothing survives — the point of the exercise.
    type Stable = ();

    fn checkpoint(&self) {}

    fn restore(crashed: &Self, _stable: ()) -> Self {
        VolatileRaft(RaftNode::new(crashed.0.cfg.clone(), crashed.0.id))
    }

    fn encode_stable(_stable: &()) -> Vec<u8> {
        Vec::new()
    }

    fn decode_stable(_crashed: &Self, _bytes: &[u8]) -> Option<()> {
        Some(())
    }

    fn blank_stable(_crashed: &Self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_sim::{Network, NetworkConfig};

    fn cluster(n: usize, seed: u64) -> Network<RaftNode<u64>> {
        let cfg = RaftConfig::new(n);
        let actors = (0..n).map(|i| RaftNode::new(cfg.clone(), i)).collect();
        let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
        net.start();
        net
    }

    fn leader(net: &Network<RaftNode<u64>>) -> Option<NodeIdx> {
        (0..net.len()).find(|&i| !net.is_crashed(i) && net.actor(i).role() == Role::Leader)
    }

    fn submit(net: &mut Network<RaftNode<u64>>, p: u64) {
        for i in 0..net.len() {
            net.inject(0, i, RaftMsg::Request(p), 1);
        }
    }

    /// Heartbeat timers run forever; run until all (alive) logs reach `target`.
    fn run_until_delivered(net: &mut Network<RaftNode<u64>>, target: usize, max_events: u64) {
        let mut events = 0;
        while events < max_events {
            let done = (0..net.len())
                .filter(|&i| !net.is_crashed(i))
                .all(|i| net.actor(i).log.len() >= target);
            if done {
                return;
            }
            if !net.step() {
                return;
            }
            events += 1;
        }
    }

    #[test]
    fn elects_exactly_one_leader() {
        let mut net = cluster(5, 1);
        net.run_until(200_000);
        let leaders: Vec<_> = (0..5).filter(|&i| net.actor(i).role() == Role::Leader).collect();
        assert_eq!(
            leaders.len(),
            1,
            "roles: {:?}",
            (0..5).map(|i| net.actor(i).role()).collect::<Vec<_>>()
        );
        // All on the same term as the leader.
        let lt = net.actor(leaders[0]).term();
        for i in 0..5 {
            assert!(net.actor(i).term() <= lt);
        }
    }

    #[test]
    fn replicates_and_commits() {
        let mut net = cluster(3, 2);
        net.run_until(100_000);
        assert!(leader(&net).is_some());
        for p in 1..=10u64 {
            submit(&mut net, p);
        }
        run_until_delivered(&mut net, 10, 5_000_000);
        let reference: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(reference.len(), 10);
        for i in 1..3 {
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, reference, "node {i}");
        }
    }

    #[test]
    fn survives_leader_crash() {
        let mut net = cluster(5, 3);
        net.run_until(200_000);
        let old_leader = leader(&net).expect("initial leader");
        submit(&mut net, 1);
        run_until_delivered(&mut net, 1, 2_000_000);
        net.crash(old_leader);
        submit(&mut net, 2);
        run_until_delivered(&mut net, 2, 20_000_000);
        let new_leader = leader(&net).expect("new leader elected");
        assert_ne!(new_leader, old_leader);
        for i in 0..5 {
            if net.is_crashed(i) {
                continue;
            }
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, vec![1, 2], "node {i}");
        }
    }

    #[test]
    fn tolerates_minority_crashes() {
        let mut net = cluster(5, 4);
        net.run_until(200_000);
        let l = leader(&net).unwrap();
        // Crash two non-leaders.
        let victims: Vec<_> = (0..5).filter(|&i| i != l).take(2).collect();
        for v in victims {
            net.crash(v);
        }
        for p in 1..=5u64 {
            submit(&mut net, p);
        }
        run_until_delivered(&mut net, 5, 5_000_000);
        let log: Vec<u64> = net.actor(l).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log.len(), 5);
    }

    #[test]
    fn majority_loss_halts_commits() {
        let mut net = cluster(5, 5);
        net.run_until(200_000);
        let l = leader(&net).unwrap();
        // Crash three nodes (a majority), sparing the leader.
        let victims: Vec<_> = (0..5).filter(|&i| i != l).take(3).collect();
        for v in victims {
            net.crash(v);
        }
        submit(&mut net, 9);
        net.run_until(3_000_000);
        assert_eq!(net.actor(l).log.len(), 0, "no commit without a majority");
    }

    #[test]
    fn duplicate_requests_committed_once() {
        let mut net = cluster(3, 6);
        net.run_until(100_000);
        submit(&mut net, 42);
        submit(&mut net, 42);
        run_until_delivered(&mut net, 1, 2_000_000);
        // Give duplicates a chance to (incorrectly) appear.
        net.run_until(net.now() + 100_000);
        for i in 0..3 {
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, vec![42], "node {i}");
        }
    }

    #[test]
    fn durable_restore_preserves_term_and_log() {
        let mut net = cluster(3, 11);
        net.run_until(200_000);
        submit(&mut net, 1);
        run_until_delivered(&mut net, 1, 2_000_000);
        let victim = (0..3).find(|&i| net.actor(i).role() != Role::Leader).unwrap();
        let term_before = net.actor(victim).term();
        net.crash_and_lose_memory(victim);
        assert_eq!(net.actor(victim).term(), term_before, "term persisted");
        assert_eq!(net.actor(victim).log.len(), 0, "applied log is volatile");
        net.restart(victim);
        submit(&mut net, 2);
        run_until_delivered(&mut net, 2, 20_000_000);
        let log: Vec<u64> = net.actor(victim).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log, vec![1, 2], "restored node recommits the persisted entry");
    }

    #[test]
    fn volatile_variant_forgets_everything() {
        let cfg = RaftConfig::new(3);
        let actors = (0..3).map(|i| VolatileRaft::<u64>::new(cfg.clone(), i)).collect();
        let mut net: Network<VolatileRaft<u64>> =
            Network::new(actors, NetworkConfig { seed: 12, ..Default::default() });
        net.start();
        net.run_until(200_000);
        let l = (0..3).find(|&i| net.actor(i).0.role() == Role::Leader).unwrap();
        assert!(net.actor(l).0.term() > 0);
        net.crash_and_lose_memory(l);
        assert_eq!(net.actor(l).0.term(), 0, "nothing persisted");
        assert_eq!(net.actor(l).0.role(), Role::Follower);
    }

    #[test]
    fn fewer_messages_than_pbft_per_decision() {
        // E5's qualitative claim: CFT needs less communication than BFT.
        let mut raft = cluster(4, 7);
        raft.run_until(100_000);
        let baseline = raft.stats().msgs_sent;
        submit(&mut raft, 1);
        run_until_delivered(&mut raft, 1, 2_000_000);
        let raft_msgs = raft.stats().msgs_sent - baseline;

        let cfg = crate::pbft::PbftConfig::new(4);
        let actors = (0..4).map(|_| crate::pbft::PbftReplica::new(cfg.clone())).collect();
        let mut pbft: Network<crate::pbft::PbftReplica<u64>> =
            Network::new(actors, NetworkConfig { seed: 7, ..Default::default() });
        for i in 0..4 {
            pbft.inject(0, i, crate::pbft::PbftMsg::Request(1), 1);
        }
        pbft.run_to_quiescence(1_000_000);
        let pbft_msgs = pbft.stats().msgs_sent;
        assert!(
            raft_msgs < pbft_msgs,
            "raft {raft_msgs} should use fewer msgs than pbft {pbft_msgs}"
        );
    }

    #[test]
    fn stable_codec_roundtrips_and_rejects_truncation() {
        let mut net = cluster(3, 31);
        net.run_until(100_000);
        for p in 1..=4u64 {
            submit(&mut net, p);
        }
        run_until_delivered(&mut net, 4, 2_000_000);
        for i in 0..3 {
            let stable = net.actor(i).checkpoint();
            assert!(!stable.log_entries.is_empty(), "node {i} persisted entries");
            let bytes = RaftNode::<u64>::encode_stable(&stable);
            let back = RaftNode::decode_stable(net.actor(i), &bytes).expect("decodes");
            assert_eq!(RaftNode::<u64>::encode_stable(&back), bytes, "canonical roundtrip");
            assert_eq!(back.term, stable.term);
            assert_eq!(back.log_entries, stable.log_entries);
            // Any strict prefix is malformed, as is trailing garbage.
            assert!(RaftNode::decode_stable(net.actor(i), &bytes[..bytes.len() - 1]).is_none());
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(RaftNode::decode_stable(net.actor(i), &padded).is_none());
        }
    }
}
