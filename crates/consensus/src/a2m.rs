//! Attested append-only memory (A2M) / USIG — the trusted-hardware
//! primitive of Chun et al. \[21\] and Veronese et al. \[59\] that AHL
//! (§2.3.4) uses to shrink its committees.
//!
//! Each node owns a [`Usig`] ("unique sequential identifier generator"):
//! a tamper-evident module holding a secret MAC key and a strictly
//! monotonic counter. `attest(digest)` binds the digest to the *next*
//! counter value; because the module never reuses or rewinds the counter
//! and the host cannot forge MACs, a Byzantine node **cannot send two
//! different messages claiming the same position** — equivocation, the
//! attack that forces `3f+1` replicas in classic BFT, becomes detectable.
//! That is exactly the paper's claim: with attested memory, `2f+1` nodes
//! tolerate `f` Byzantine faults (see [`crate::minbft`], experiment E10).
//!
//! In this simulation the trusted boundary is the Rust module boundary:
//! protocol actors (including Byzantine test actors) can only obtain
//! attestations through [`Usig::attest`], which they cannot rewind.

use pbc_crypto::hmac::hmac_sha256;
use pbc_crypto::Hash;
use std::collections::{HashMap, HashSet};

/// A counter-bound MAC over a message digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attestation {
    /// The attesting node.
    pub node: usize,
    /// The (strictly monotonic) counter value assigned to this message.
    pub counter: u64,
    /// The attested message digest.
    pub digest: u64,
    /// MAC over `(node, counter, digest)` under the module's key.
    pub mac: Hash,
}

fn mac_input(node: usize, counter: u64, digest: u64) -> [u8; 24] {
    let mut buf = [0u8; 24];
    buf[..8].copy_from_slice(&(node as u64).to_be_bytes());
    buf[8..16].copy_from_slice(&counter.to_be_bytes());
    buf[16..24].copy_from_slice(&digest.to_be_bytes());
    buf
}

fn module_key(seed: u64, node: usize) -> [u8; 32] {
    let mut input = [0u8; 16];
    input[..8].copy_from_slice(&seed.to_be_bytes());
    input[8..].copy_from_slice(&(node as u64).to_be_bytes());
    pbc_crypto::sha256(&input).0
}

/// The per-node trusted module: key + monotonic counter.
///
/// The host can request attestations but can never rewind the counter or
/// extract the key.
#[derive(Debug)]
pub struct Usig {
    key: [u8; 32],
    counter: u64,
    node: usize,
}

impl Usig {
    /// Provisions a module for `node` (trusted setup with shared `seed`).
    pub fn new(seed: u64, node: usize) -> Self {
        Usig { key: module_key(seed, node), counter: 0, node }
    }

    /// Re-provisions the module after a host crash: the counter lives in
    /// the module's tamper-proof non-volatile memory, so it resumes from
    /// where it was — **never** from zero. (A rewound counter would let a
    /// recovered primary re-attest old positions, which is exactly the
    /// equivocation the hardware exists to prevent.)
    pub fn resume(seed: u64, node: usize, counter: u64) -> Self {
        Usig { key: module_key(seed, node), counter, node }
    }

    /// Attests `digest` with the next counter value.
    pub fn attest(&mut self, digest: u64) -> Attestation {
        self.counter += 1;
        let mac = hmac_sha256(&self.key, &mac_input(self.node, self.counter, digest));
        Attestation { node: self.node, counter: self.counter, digest, mac }
    }

    /// The last counter value issued.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// The node this module is provisioned for.
    pub fn node(&self) -> usize {
        self.node
    }
}

/// Verifier-side registry: knows every module's key (trusted setup) and
/// tracks used counters per node to reject replays/equivocation.
#[derive(Clone, Debug, Default)]
pub struct A2mVerifier {
    keys: HashMap<usize, [u8; 32]>,
    used: HashMap<usize, HashSet<u64>>,
}

impl A2mVerifier {
    /// Builds a verifier for nodes `0..n` provisioned with `seed`.
    pub fn new(seed: u64, n: usize) -> Self {
        let keys = (0..n).map(|i| (i, module_key(seed, i))).collect();
        A2mVerifier { keys, used: HashMap::new() }
    }

    /// Verifies the MAC only (no freshness tracking).
    pub fn mac_valid(&self, att: &Attestation) -> bool {
        match self.keys.get(&att.node) {
            Some(key) => hmac_sha256(key, &mac_input(att.node, att.counter, att.digest)) == att.mac,
            None => false,
        }
    }

    /// Verifies the MAC *and* that this counter was never accepted from
    /// this node before (equivocation/replay rejection). Marks the
    /// counter used on success.
    pub fn verify_fresh(&mut self, att: &Attestation) -> bool {
        if !self.mac_valid(att) {
            return false;
        }
        self.used.entry(att.node).or_default().insert(att.counter)
    }

    /// Every `(node, counter)` pair accepted so far, sorted — the part
    /// of the verifier's state that must survive a crash (a forgotten
    /// counter set would re-admit replayed attestations).
    pub fn used_counters(&self) -> Vec<(usize, Vec<u64>)> {
        let mut out: Vec<(usize, Vec<u64>)> = self
            .used
            .iter()
            .map(|(node, set)| {
                let mut counters: Vec<u64> = set.iter().copied().collect();
                counters.sort_unstable();
                (*node, counters)
            })
            .collect();
        out.sort_unstable_by_key(|(node, _)| *node);
        out
    }

    /// Marks a counter as already accepted without a MAC check — used
    /// when rebuilding a verifier from persisted state (the counters
    /// were verified before they were written).
    pub fn mark_used(&mut self, node: usize, counter: u64) {
        self.used.entry(node).or_default().insert(counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attest_verify_roundtrip() {
        let mut usig = Usig::new(9, 2);
        let mut v = A2mVerifier::new(9, 4);
        let att = usig.attest(0xAB);
        assert!(v.verify_fresh(&att));
    }

    #[test]
    fn counters_strictly_increase() {
        let mut usig = Usig::new(9, 0);
        let a1 = usig.attest(1);
        let a2 = usig.attest(2);
        assert_eq!(a1.counter, 1);
        assert_eq!(a2.counter, 2);
    }

    #[test]
    fn resume_continues_counter_monotonically() {
        let mut usig = Usig::new(9, 1);
        let a = usig.attest(5);
        // Host crashes; the module's NVRAM keeps the counter.
        let mut resumed = Usig::resume(9, 1, usig.counter());
        let b = resumed.attest(6);
        assert_eq!(b.counter, a.counter + 1, "no rewind across crash");
        let mut v = A2mVerifier::new(9, 4);
        assert!(v.verify_fresh(&a));
        assert!(v.verify_fresh(&b), "resumed module still produces valid MACs");
    }

    #[test]
    fn replay_rejected() {
        let mut usig = Usig::new(9, 0);
        let mut v = A2mVerifier::new(9, 4);
        let att = usig.attest(7);
        assert!(v.verify_fresh(&att));
        assert!(!v.verify_fresh(&att), "same counter twice must fail");
    }

    #[test]
    fn forged_mac_rejected() {
        let mut usig = Usig::new(9, 0);
        let v = A2mVerifier::new(9, 4);
        let mut att = usig.attest(7);
        att.digest = 8; // host tampers with the digest after attestation
        assert!(!v.mac_valid(&att));
    }

    #[test]
    fn equivocation_requires_counter_reuse_which_fails() {
        // A Byzantine host wanting to claim two messages at position 1
        // must forge the second attestation (it can only get counter 2
        // from the module).
        let mut usig = Usig::new(9, 0);
        let mut v = A2mVerifier::new(9, 4);
        let real = usig.attest(100);
        assert!(v.verify_fresh(&real));
        // Forgery attempt: same counter, different digest, stolen MAC.
        let forged = Attestation { digest: 200, ..real };
        assert!(!v.verify_fresh(&forged), "MAC check must fail");
        // Honest path: the module only hands out counter 2.
        let next = usig.attest(200);
        assert_eq!(next.counter, 2);
    }

    #[test]
    fn wrong_node_key_rejected() {
        let mut usig = Usig::new(9, 0);
        let v = A2mVerifier::new(9, 4);
        let mut att = usig.attest(7);
        att.node = 1; // claim another node's identity
        assert!(!v.mac_valid(&att));
    }

    #[test]
    fn used_counters_roundtrip_through_mark_used() {
        let mut usig0 = Usig::new(9, 0);
        let mut usig1 = Usig::new(9, 1);
        let mut v = A2mVerifier::new(9, 4);
        let a = usig0.attest(1);
        let b = usig0.attest(2);
        let c = usig1.attest(3);
        assert!(v.verify_fresh(&a) && v.verify_fresh(&b) && v.verify_fresh(&c));
        // Persist the counter sets, rebuild a fresh verifier, replay them.
        let mut rebuilt = A2mVerifier::new(9, 4);
        for (node, counters) in v.used_counters() {
            for counter in counters {
                rebuilt.mark_used(node, counter);
            }
        }
        assert!(!rebuilt.verify_fresh(&a), "replay must still be rejected after restore");
        assert!(!rebuilt.verify_fresh(&c));
        let fresh = usig0.attest(4);
        assert!(rebuilt.verify_fresh(&fresh), "new attestations still verify");
    }

    #[test]
    fn unknown_node_rejected() {
        let mut usig = Usig::new(9, 10);
        let v = A2mVerifier::new(9, 4); // only nodes 0..4
        let att = usig.attest(7);
        assert!(!v.mac_valid(&att));
    }
}
