//! Consensus protocols for permissioned blockchains (§2.2, §2.3.3, §2.3.4).
//!
//! Every protocol is a deterministic [`pbc_sim::Actor`]; the same seed
//! reproduces the same run. The catalogue mirrors the paper's:
//!
//! | module | protocol | fault model | quorum | leader policy |
//! |---|---|---|---|---|
//! | [`pbft`] | PBFT (Castro–Liskov) | Byzantine, `n = 3f+1` | `2f+1` | fixed per view + view change |
//! | [`pbft`] (rotating mode) | IBFT-style | Byzantine | `2f+1` | round-robin per height |
//! | [`tendermint`] | Tendermint | Byzantine, proof-of-stake weights | ⅔ of voting power | rotates every round |
//! | [`hotstuff`] | HotStuff (basic) | Byzantine | `2f+1` votes to leader (linear) | rotates every view |
//! | [`raft`] | Raft | crash, `n = 2f+1` | majority | elected, randomized timeouts |
//! | [`paxos`] | multi-decree Paxos | crash | majority | stable proposer + takeover |
//! | [`minbft`] | MinBFT / A2M-PBFT-EA | Byzantine with trusted [`a2m`] module, `n = 2f+1` | `f+1` | fixed + view change |
//!
//! [`a2m`] implements the attested append-only memory (\[21\]/\[59\] in the
//! paper) that AHL (§2.3.4) uses to shrink committees: a tamper-evident
//! monotonic counter that makes equivocation detectable, reducing the
//! replica requirement from `3f+1` to `2f+1`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod a2m;
pub mod common;
pub mod hotstuff;
pub mod minbft;
pub mod ordering;
pub mod paxos;
pub mod pbft;
pub mod raft;
pub mod tendermint;
pub mod wire;

pub use common::{DecidedLog, Payload, PersistPayload};
pub use ordering::{cluster, cluster_with, protocol_info, OrderingActor, OrderingCluster};
pub use ordering::{durable_cluster_with, DurableNet};
pub use ordering::{run_real, RealRuntime};
pub use ordering::{ProtocolInfo, PROTOCOLS};
pub use wire::WireMsg;
