//! Tendermint (Kwon) — the PBFT-derived, proof-of-stake protocol the
//! paper singles out in §2.3.3.
//!
//! Differences from PBFT that the paper highlights, all implemented here:
//!
//! 1. only *validators* participate, each with a **voting power** (bonded
//!    stake); quorums are two-thirds of total *power*, not node count;
//! 2. the proposer **rotates every round** via Tendermint's deterministic
//!    priority algorithm (`priority += power; proposer = argmax;
//!    priority[proposer] -= total`), so proposal frequency is
//!    proportional to stake;
//! 3. heights are decided one at a time with Propose → Prevote →
//!    Precommit rounds, with value **locking** on a polka (> ⅔ prevotes)
//!    for safety across rounds.

use crate::common::{hooks, DecidedLog, Payload};
use pbc_sim::{Actor, Context, Durable, Message, NodeIdx, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Tendermint wire messages.
#[derive(Clone, Debug)]
pub enum TmMsg<P> {
    /// Client request.
    Request(P),
    /// The round proposer's block proposal.
    Proposal {
        /// Height.
        height: u64,
        /// Round within the height.
        round: u64,
        /// Proposed payload.
        payload: P,
    },
    /// First vote phase (`None` = nil prevote).
    Prevote {
        /// Height.
        height: u64,
        /// Round.
        round: u64,
        /// Voted payload digest, or nil.
        digest: Option<u64>,
    },
    /// Second vote phase (`None` = nil precommit).
    Precommit {
        /// Height.
        height: u64,
        /// Round.
        round: u64,
        /// Voted payload digest, or nil.
        digest: Option<u64>,
    },
}

impl<P: Payload> Message for TmMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            TmMsg::Request(p) => 24 + p.wire_size(),
            TmMsg::Proposal { payload, .. } => 56 + payload.wire_size(),
            TmMsg::Prevote { .. } | TmMsg::Precommit { .. } => 48,
        }
    }
}

/// Static configuration: validator voting powers.
#[derive(Clone, Debug)]
pub struct TendermintConfig {
    /// Voting power per validator (index = node index).
    pub powers: Vec<u64>,
    /// Round timeout.
    pub timeout: SimTime,
}

impl TendermintConfig {
    /// Equal-power validators.
    pub fn equal(n: usize) -> Self {
        TendermintConfig { powers: vec![1; n], timeout: 30_000 }
    }

    /// Weighted validators.
    pub fn weighted(powers: Vec<u64>) -> Self {
        TendermintConfig { powers, timeout: 30_000 }
    }

    /// Total voting power.
    pub fn total_power(&self) -> u64 {
        self.powers.iter().sum()
    }

    /// True if `weight` exceeds two-thirds of total power.
    pub fn is_quorum(&self, weight: u64) -> bool {
        3 * weight > 2 * self.total_power()
    }
}

/// Deterministic proposer schedule via Tendermint's priority algorithm.
///
/// `proposer(step)` replays the algorithm; every validator computes the
/// same schedule. Proposal frequency converges to stake proportion.
#[derive(Clone, Debug)]
pub struct ProposerSchedule {
    powers: Vec<u64>,
    cache: Vec<NodeIdx>,
    priorities: Vec<i128>,
}

impl ProposerSchedule {
    /// Builds a schedule for the given powers.
    pub fn new(powers: Vec<u64>) -> Self {
        let n = powers.len();
        ProposerSchedule { powers, cache: Vec::new(), priorities: vec![0; n] }
    }

    /// The proposer at schedule step `step` (0-based).
    pub fn proposer(&mut self, step: u64) -> NodeIdx {
        while self.cache.len() <= step as usize {
            let total: i128 = self.powers.iter().map(|&p| p as i128).sum();
            for (i, p) in self.powers.iter().enumerate() {
                self.priorities[i] += *p as i128;
            }
            let (best, _) = self
                .priorities
                .iter()
                .enumerate()
                .max_by_key(|(i, &pr)| (pr, std::cmp::Reverse(*i)))
                .expect("non-empty validator set");
            self.priorities[best] -= total;
            self.cache.push(best);
        }
        self.cache[step as usize]
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct RoundKey {
    height: u64,
    round: u64,
}

#[derive(Default, Debug)]
struct RoundVotes {
    /// digest option → (voters, accumulated power).
    tallies: HashMap<Option<u64>, (HashSet<NodeIdx>, u64)>,
}

impl RoundVotes {
    fn add(&mut self, from: NodeIdx, power: u64, digest: Option<u64>) -> u64 {
        let entry = self.tallies.entry(digest).or_default();
        if entry.0.insert(from) {
            entry.1 += power;
        }
        entry.1
    }
}

/// One Tendermint validator.
#[derive(Debug)]
pub struct TendermintNode<P> {
    cfg: TendermintConfig,
    height: u64,
    round: u64,
    schedule: ProposerSchedule,
    /// Proposals seen: (height, round) → payload.
    proposals: HashMap<RoundKey, P>,
    /// Payloads by digest (to deliver on decision).
    by_digest: HashMap<u64, P>,
    prevotes: HashMap<RoundKey, RoundVotes>,
    precommits: HashMap<RoundKey, RoundVotes>,
    /// Locked value: (round locked at, digest).
    locked: Option<(u64, u64)>,
    sent_prevote: HashSet<RoundKey>,
    sent_precommit: HashSet<RoundKey>,
    proposed: HashSet<RoundKey>,
    pending: BTreeMap<u64, P>,
    delivered_digests: HashSet<u64>,
    /// The in-order decided log (seq = height - 1).
    pub log: DecidedLog<P>,
    /// Rounds beyond 0 entered (observability: rotation/timeout cost).
    pub extra_rounds: u64,
}

impl<P: Payload> TendermintNode<P> {
    /// Creates a validator.
    pub fn new(cfg: TendermintConfig) -> Self {
        let schedule = ProposerSchedule::new(cfg.powers.clone());
        TendermintNode {
            height: 1,
            round: 0,
            schedule,
            proposals: HashMap::new(),
            by_digest: HashMap::new(),
            prevotes: HashMap::new(),
            precommits: HashMap::new(),
            locked: None,
            sent_prevote: HashSet::new(),
            sent_precommit: HashSet::new(),
            proposed: HashSet::new(),
            pending: BTreeMap::new(),
            delivered_digests: HashSet::new(),
            log: DecidedLog::default(),
            extra_rounds: 0,
            cfg,
        }
    }

    /// Current height.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The proposer of `(height, round)`.
    pub fn proposer_of(&mut self, height: u64, round: u64) -> NodeIdx {
        // Schedule step: heights and rounds both advance the schedule.
        self.schedule.proposer(height + round)
    }

    fn key(&self) -> RoundKey {
        RoundKey { height: self.height, round: self.round }
    }

    fn try_propose(&mut self, ctx: &mut Context<TmMsg<P>>) {
        let key = self.key();
        if self.proposed.contains(&key) {
            return;
        }
        if self.proposer_of(key.height, key.round) != ctx.self_id {
            return;
        }
        // Re-propose the locked value if any, else the oldest pending.
        let payload = if let Some((_, d)) = self.locked {
            self.by_digest.get(&d).cloned()
        } else {
            self.pending.values().next().cloned()
        };
        let Some(payload) = payload else {
            return;
        };
        self.proposed.insert(key);
        hooks::leader("tendermint", ctx.self_id, ctx.now, key.round);
        ctx.broadcast(TmMsg::Proposal { height: key.height, round: key.round, payload });
    }

    fn maybe_prevote(&mut self, ctx: &mut Context<TmMsg<P>>) {
        let key = self.key();
        if self.sent_prevote.contains(&key) {
            return;
        }
        let Some(p) = self.proposals.get(&key) else {
            return;
        };
        let digest = p.digest_u64();
        // Lock rule: if locked, only prevote the locked value.
        let vote = match self.locked {
            Some((_, d)) if d != digest => None, // nil
            _ => Some(digest),
        };
        self.sent_prevote.insert(key);
        hooks::phase("tendermint", ctx.self_id, ctx.now, key.round, "prevote");
        ctx.broadcast(TmMsg::Prevote { height: key.height, round: key.round, digest: vote });
    }

    fn on_polka(&mut self, key: RoundKey, digest: Option<u64>, ctx: &mut Context<TmMsg<P>>) {
        // > 2/3 prevotes for `digest` at `key`.
        if let Some(d) = digest {
            // Lock (or re-lock at a higher round).
            match self.locked {
                Some((r, _)) if r >= key.round => {}
                _ => self.locked = Some((key.round, d)),
            }
        }
        if key == self.key() && !self.sent_precommit.contains(&key) {
            self.sent_precommit.insert(key);
            hooks::phase("tendermint", ctx.self_id, ctx.now, key.round, "precommit");
            ctx.broadcast(TmMsg::Precommit { height: key.height, round: key.round, digest });
        }
    }

    fn advance_round(&mut self, ctx: &mut Context<TmMsg<P>>) {
        self.round += 1;
        self.extra_rounds += 1;
        hooks::view_change("tendermint", ctx.self_id, ctx.now, self.round);
        self.arm_timer(ctx);
        self.try_propose(ctx);
        self.maybe_prevote(ctx);
    }

    fn decide(&mut self, digest: u64, ctx: &mut Context<TmMsg<P>>) {
        let Some(payload) = self.by_digest.get(&digest).cloned() else {
            return;
        };
        if !self.delivered_digests.insert(digest) {
            return;
        }
        self.pending.remove(&digest);
        hooks::commit("tendermint", ctx.self_id, ctx.now, self.height - 1, digest);
        self.log.decide(self.height - 1, payload, ctx.now);
        self.height += 1;
        self.round = 0;
        self.locked = None;
        self.arm_timer(ctx);
        self.try_propose(ctx);
        self.maybe_prevote(ctx);
    }

    fn arm_timer(&mut self, ctx: &mut Context<TmMsg<P>>) {
        if !self.pending.is_empty() {
            // Timer id encodes (height, round).
            ctx.set_timer(self.cfg.timeout, self.height * 1_000 + self.round);
        }
    }

    fn power_of(&self, node: NodeIdx) -> u64 {
        self.cfg.powers.get(node).copied().unwrap_or(0)
    }
}

impl<P: Payload + 'static> crate::ordering::OrderingActor for TendermintNode<P> {
    type Payload = P;
    const PROTOCOL: &'static str = "tendermint";

    fn request_msg(payload: P) -> TmMsg<P> {
        TmMsg::Request(payload)
    }

    fn log(&self) -> &DecidedLog<P> {
        &self.log
    }
}

impl<P: Payload> Actor for TendermintNode<P> {
    type Msg = TmMsg<P>;

    fn on_message(&mut self, from: NodeIdx, msg: &TmMsg<P>, ctx: &mut Context<TmMsg<P>>) {
        match msg {
            TmMsg::Request(p) => {
                let d = p.digest_u64();
                if self.delivered_digests.contains(&d) || self.pending.contains_key(&d) {
                    return;
                }
                self.pending.insert(d, p.clone());
                self.by_digest.insert(d, p.clone());
                self.arm_timer(ctx);
                self.try_propose(ctx);
            }
            TmMsg::Proposal { height, round, payload } => {
                let key = RoundKey { height: *height, round: *round };
                if *height != self.height
                    || self.proposer_of(*height, *round) != from
                    || self.proposals.contains_key(&key)
                {
                    return;
                }
                if self.delivered_digests.contains(&payload.digest_u64()) {
                    return;
                }
                self.by_digest.insert(payload.digest_u64(), payload.clone());
                self.proposals.insert(key, payload.clone());
                if *round == self.round {
                    self.maybe_prevote(ctx);
                }
            }
            TmMsg::Prevote { height, round, digest } => {
                if *height != self.height {
                    return;
                }
                let key = RoundKey { height: *height, round: *round };
                let power = self.power_of(from);
                let weight = self.prevotes.entry(key).or_default().add(from, power, *digest);
                if self.cfg.is_quorum(weight) {
                    self.on_polka(key, *digest, ctx);
                }
            }
            TmMsg::Precommit { height, round, digest } => {
                if *height != self.height {
                    return;
                }
                let key = RoundKey { height: *height, round: *round };
                let power = self.power_of(from);
                let weight = self.precommits.entry(key).or_default().add(from, power, *digest);
                if self.cfg.is_quorum(weight) {
                    match *digest {
                        Some(d) => self.decide(d, ctx),
                        None => {
                            // > 2/3 nil precommits: the round is dead.
                            if key == self.key() {
                                self.advance_round(ctx);
                            }
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<TmMsg<P>>) {
        let (h, r) = (id / 1_000, id % 1_000);
        if h != self.height || r != self.round || self.pending.is_empty() {
            return;
        }
        // No decision in this round: precommit nil (if we haven't
        // precommitted a value) and move on.
        let key = self.key();
        if !self.sent_precommit.contains(&key) {
            self.sent_precommit.insert(key);
            ctx.broadcast(TmMsg::Precommit { height: key.height, round: key.round, digest: None });
        }
        self.advance_round(ctx);
    }
}

/// Tendermint's stable state (opaque): the current height, the lock —
/// the safety-critical piece; a validator that forgot its lock could
/// prevote a conflicting value in a later round — with the locked
/// payload itself (so a recovered proposer can re-propose it), and the
/// decided log. Round number, vote tallies and pending requests are
/// volatile: the validator rejoins at round 0 of its height and the
/// protocol's nil-precommit timeouts walk it forward.
#[derive(Clone, Debug)]
pub struct TmStable<P> {
    height: u64,
    locked: Option<(u64, u64, P)>,
    delivered_digests: HashSet<u64>,
    decided: Vec<(u64, P, SimTime)>,
}

impl<P: crate::common::PersistPayload> Durable for TendermintNode<P> {
    type Stable = TmStable<P>;

    fn checkpoint(&self) -> TmStable<P> {
        TmStable {
            height: self.height,
            locked: self.locked.and_then(|(round, digest)| {
                self.by_digest.get(&digest).map(|p| (round, digest, p.clone()))
            }),
            delivered_digests: self.delivered_digests.clone(),
            decided: self.log.snapshot(),
        }
    }

    fn restore(crashed: &Self, stable: TmStable<P>) -> Self {
        let mut node = TendermintNode::new(crashed.cfg.clone());
        node.height = stable.height;
        if let Some((round, digest, payload)) = stable.locked {
            node.locked = Some((round, digest));
            node.by_digest.insert(digest, payload);
        }
        node.delivered_digests = stable.delivered_digests;
        node.log = DecidedLog::from_snapshot(0, stable.decided);
        node
    }

    fn encode_stable(stable: &TmStable<P>) -> Vec<u8> {
        let mut e = pbc_types::encode::Encoder::new();
        e.u64(stable.height);
        match &stable.locked {
            Some((round, digest, payload)) => {
                e.tag(1).u64(*round).u64(*digest).bytes(&payload.to_bytes());
            }
            None => {
                e.tag(0);
            }
        }
        let mut digests: Vec<u64> = stable.delivered_digests.iter().copied().collect();
        digests.sort_unstable();
        e.u64(digests.len() as u64);
        for d in digests {
            e.u64(d);
        }
        e.u64(stable.decided.len() as u64);
        for (seq, payload, time) in &stable.decided {
            e.u64(*seq).bytes(&payload.to_bytes()).u64(*time);
        }
        e.finish()
    }

    fn decode_stable(_crashed: &Self, bytes: &[u8]) -> Option<TmStable<P>> {
        let mut d = pbc_types::encode::Decoder::new(bytes);
        let height = d.u64()?;
        let locked = match d.tag()? {
            0 => None,
            1 => {
                let round = d.u64()?;
                let digest = d.u64()?;
                let payload = P::from_bytes(d.bytes()?)?;
                Some((round, digest, payload))
            }
            _ => return None,
        };
        let n_digests = d.u64()? as usize;
        let mut delivered_digests = HashSet::with_capacity(n_digests.min(1024));
        for _ in 0..n_digests {
            delivered_digests.insert(d.u64()?);
        }
        let n_decided = d.u64()? as usize;
        let mut decided = Vec::with_capacity(n_decided.min(1024));
        for _ in 0..n_decided {
            let seq = d.u64()?;
            let payload = P::from_bytes(d.bytes()?)?;
            let time = d.u64()?;
            decided.push((seq, payload, time));
        }
        d.is_empty().then_some(TmStable { height, locked, delivered_digests, decided })
    }

    fn blank_stable(_crashed: &Self) -> TmStable<P> {
        TmStable { height: 1, locked: None, delivered_digests: HashSet::new(), decided: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_sim::{Network, NetworkConfig};

    fn cluster(cfg: TendermintConfig, seed: u64) -> Network<TendermintNode<u64>> {
        let n = cfg.powers.len();
        let actors = (0..n).map(|_| TendermintNode::new(cfg.clone())).collect();
        Network::new(actors, NetworkConfig { seed, ..Default::default() })
    }

    fn submit(net: &mut Network<TendermintNode<u64>>, p: u64) {
        for i in 0..net.len() {
            net.inject(0, i, TmMsg::Request(p), 1);
        }
    }

    fn run_until_delivered(net: &mut Network<TendermintNode<u64>>, target: usize, max: u64) {
        let mut events = 0;
        while events < max {
            let done = (0..net.len())
                .filter(|&i| !net.is_crashed(i))
                .all(|i| net.actor(i).log.len() >= target);
            if done || !net.step() {
                return;
            }
            events += 1;
        }
        panic!("exhausted {max} events before delivering {target}");
    }

    fn logs_agree(net: &Network<TendermintNode<u64>>, expected: usize) {
        let first = (0..net.len()).find(|&i| !net.is_crashed(i)).unwrap();
        let reference: Vec<u64> =
            net.actor(first).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(reference.len(), expected);
        for i in 0..net.len() {
            if net.is_crashed(i) {
                continue;
            }
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, reference, "node {i}");
        }
    }

    #[test]
    fn equal_power_decides() {
        let mut net = cluster(TendermintConfig::equal(4), 1);
        submit(&mut net, 42);
        run_until_delivered(&mut net, 1, 2_000_000);
        logs_agree(&net, 1);
    }

    #[test]
    fn many_heights_agree() {
        let mut net = cluster(TendermintConfig::equal(4), 2);
        for p in 1..=10u64 {
            submit(&mut net, p);
        }
        run_until_delivered(&mut net, 10, 20_000_000);
        logs_agree(&net, 10);
    }

    #[test]
    fn proposer_schedule_is_stake_proportional() {
        let mut sched = ProposerSchedule::new(vec![3, 1, 1]);
        let mut counts = [0usize; 3];
        for step in 0..5_000u64 {
            counts[sched.proposer(step)] += 1;
        }
        // Validator 0 holds 3/5 of the stake.
        let share = counts[0] as f64 / 5_000.0;
        assert!((share - 0.6).abs() < 0.02, "share {share}");
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn weighted_quorum_counts_power_not_nodes() {
        // 4 validators; validator 0 holds 70% of power. A quorum without
        // it is impossible: crash it and no height decides.
        let cfg = TendermintConfig::weighted(vec![70, 10, 10, 10]);
        let mut net = cluster(cfg, 3);
        net.crash(0);
        submit(&mut net, 7);
        net.run_until(2_000_000);
        for i in 1..4 {
            assert_eq!(net.actor(i).log.len(), 0, "node {i} must not decide");
        }
    }

    #[test]
    fn small_validator_crash_is_tolerated() {
        let cfg = TendermintConfig::weighted(vec![40, 40, 10, 10]);
        let mut net = cluster(cfg, 4);
        net.crash(3); // 10% of power
        for p in 1..=3u64 {
            submit(&mut net, p);
        }
        run_until_delivered(&mut net, 3, 30_000_000);
        logs_agree(&net, 3);
    }

    #[test]
    fn crashed_proposer_round_advances() {
        let mut net = cluster(TendermintConfig::equal(4), 5);
        // Find the first proposer of (h=1, r=0) and crash it.
        let first = net.actor_mut(0).proposer_of(1, 0);
        net.crash(first);
        submit(&mut net, 9);
        run_until_delivered(&mut net, 1, 30_000_000);
        for i in 0..4 {
            if net.is_crashed(i) {
                continue;
            }
            assert!(net.actor(i).extra_rounds >= 1, "node {i} must have advanced rounds");
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, vec![9]);
        }
    }

    #[test]
    fn duplicates_decided_once() {
        let mut net = cluster(TendermintConfig::equal(4), 6);
        submit(&mut net, 42);
        submit(&mut net, 42);
        run_until_delivered(&mut net, 1, 5_000_000);
        net.run_to_quiescence(5_000_000);
        logs_agree(&net, 1);
    }

    #[test]
    fn quorum_arithmetic() {
        let cfg = TendermintConfig::weighted(vec![1, 1, 1]);
        assert!(!cfg.is_quorum(2));
        assert!(cfg.is_quorum(3));
        let cfg = TendermintConfig::weighted(vec![70, 10, 10, 10]);
        assert!(!cfg.is_quorum(66));
        assert!(cfg.is_quorum(67));
    }

    #[test]
    fn stable_codec_roundtrips_and_rejects_truncation() {
        let mut net = cluster(TendermintConfig::equal(4), 31);
        for p in 1..=3u64 {
            submit(&mut net, p);
        }
        run_until_delivered(&mut net, 3, 20_000_000);
        for i in 0..4 {
            let stable = net.actor(i).checkpoint();
            assert!(!stable.decided.is_empty(), "node {i} decided something");
            let bytes = TendermintNode::<u64>::encode_stable(&stable);
            let back = TendermintNode::decode_stable(net.actor(i), &bytes).expect("decodes");
            assert_eq!(TendermintNode::<u64>::encode_stable(&back), bytes, "canonical roundtrip");
            assert_eq!(back.height, stable.height);
            assert!(
                TendermintNode::decode_stable(net.actor(i), &bytes[..bytes.len() - 1]).is_none()
            );
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(TendermintNode::decode_stable(net.actor(i), &padded).is_none());
        }
    }
}
