//! Multi-decree Paxos (Lamport) — the classic crash-fault-tolerant
//! protocol the paper cites as the other CFT ordering option (§2.2).
//!
//! A distinguished proposer runs phase 1 (`Prepare`/`Promise`) once per
//! leadership with ballot `b`, learning any previously accepted values it
//! must re-propose; it then drives phase 2 (`Accept`/`Accepted`) per
//! slot. Every node learns a slot once a majority of acceptors accept the
//! same value. Failover: a node holding undecided requests past its
//! timeout claims leadership with a higher ballot.

use crate::common::{hooks, quorum, DecidedLog, Payload};
use pbc_sim::{Actor, Context, Durable, Message, NodeIdx, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Paxos wire messages.
#[derive(Clone, Debug)]
pub enum PaxosMsg<P> {
    /// Client request (injected to every node).
    Request(P),
    /// Phase-1a: claim leadership at `ballot`.
    Prepare {
        /// Proposer's ballot.
        ballot: u64,
    },
    /// Phase-1b: acknowledge `ballot`, reporting accepted values.
    Promise {
        /// The promised ballot.
        ballot: u64,
        /// Previously accepted `(slot, ballot, value)` triples.
        accepted: Vec<(u64, u64, P)>,
    },
    /// Phase-2a: propose `value` for `slot` at `ballot`.
    Accept {
        /// Proposer's ballot.
        ballot: u64,
        /// Slot being decided.
        slot: u64,
        /// Proposed value.
        value: P,
    },
    /// Phase-2b: acceptance notification (broadcast so everyone learns).
    Accepted {
        /// The accepting ballot.
        ballot: u64,
        /// Slot.
        slot: u64,
        /// Value digest (learners count matching digests).
        digest: u64,
        /// The value itself (so learners can deliver).
        value: P,
    },
}

impl<P: Payload> Message for PaxosMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            PaxosMsg::Request(p) => 24 + p.wire_size(),
            PaxosMsg::Prepare { .. } => 32,
            PaxosMsg::Promise { accepted, .. } => {
                40 + accepted.iter().map(|(_, _, p)| 16 + p.wire_size()).sum::<usize>()
            }
            PaxosMsg::Accept { value, .. } => 48 + value.wire_size(),
            PaxosMsg::Accepted { value, .. } => 56 + value.wire_size(),
        }
    }
}

const TIMER_PROGRESS: u64 = 1;

/// Static configuration.
#[derive(Clone, Debug)]
pub struct PaxosConfig {
    /// Cluster size.
    pub n: usize,
    /// Progress timeout before a node tries to take over leadership.
    pub timeout: SimTime,
}

impl PaxosConfig {
    /// Defaults for LAN simulation.
    pub fn new(n: usize) -> Self {
        PaxosConfig { n, timeout: 30_000 }
    }
}

/// One Paxos node (proposer + acceptor + learner).
#[derive(Debug)]
pub struct PaxosNode<P> {
    cfg: PaxosConfig,
    id: NodeIdx,
    // --- acceptor ---
    promised: u64,
    accepted: BTreeMap<u64, (u64, P)>,
    // --- proposer ---
    ballot: u64,
    leading: bool,
    promises: HashMap<NodeIdx, Vec<(u64, u64, P)>>,
    next_slot: u64,
    /// digest → slot proposed (this leadership).
    proposed: HashMap<u64, u64>,
    // --- learner ---
    learn_votes: HashMap<(u64, u64), HashSet<NodeIdx>>,
    // --- requests ---
    pending: BTreeMap<u64, P>,
    delivered_digests: HashSet<u64>,
    /// The in-order decided log.
    pub log: DecidedLog<P>,
    /// Leadership takeover attempts (observability).
    pub takeovers: u64,
}

impl<P: Payload> PaxosNode<P> {
    /// Creates a node; `id` must match its network index. Node 0 assumes
    /// initial leadership.
    pub fn new(cfg: PaxosConfig, id: NodeIdx) -> Self {
        PaxosNode {
            id,
            promised: 0,
            accepted: BTreeMap::new(),
            ballot: 0,
            leading: false,
            promises: HashMap::new(),
            next_slot: 0,
            proposed: HashMap::new(),
            learn_votes: HashMap::new(),
            pending: BTreeMap::new(),
            delivered_digests: HashSet::new(),
            log: DecidedLog::default(),
            takeovers: 0,
            cfg,
        }
    }

    /// Whether this node currently leads.
    pub fn is_leading(&self) -> bool {
        self.leading
    }

    fn ballot_for_round(&self, round: u64) -> u64 {
        round * self.cfg.n as u64 + self.id as u64
    }

    fn claim_leadership(&mut self, ctx: &mut Context<PaxosMsg<P>>) {
        let round = self.promised / self.cfg.n as u64 + 1;
        self.ballot = self.ballot_for_round(round);
        self.leading = false;
        self.promises.clear();
        self.takeovers += 1;
        hooks::election("paxos", ctx.self_id, ctx.now, self.ballot);
        ctx.broadcast(PaxosMsg::Prepare { ballot: self.ballot });
        self.arm_timer(ctx);
    }

    fn arm_timer(&mut self, ctx: &mut Context<PaxosMsg<P>>) {
        if !self.pending.is_empty() {
            ctx.set_timer(self.cfg.timeout, TIMER_PROGRESS);
        }
    }

    fn propose_pending(&mut self, ctx: &mut Context<PaxosMsg<P>>) {
        if !self.leading {
            return;
        }
        let todo: Vec<(u64, P)> = self
            .pending
            .iter()
            .filter(|(d, _)| !self.proposed.contains_key(d))
            .map(|(d, p)| (*d, p.clone()))
            .collect();
        for (digest, value) in todo {
            let slot = self.next_slot;
            self.next_slot += 1;
            self.proposed.insert(digest, slot);
            ctx.broadcast(PaxosMsg::Accept { ballot: self.ballot, slot, value });
        }
    }
}

impl<P: Payload + 'static> crate::ordering::OrderingActor for PaxosNode<P> {
    type Payload = P;
    const PROTOCOL: &'static str = "paxos";

    fn request_msg(payload: P) -> PaxosMsg<P> {
        PaxosMsg::Request(payload)
    }

    fn log(&self) -> &DecidedLog<P> {
        &self.log
    }
}

impl<P: Payload> Actor for PaxosNode<P> {
    type Msg = PaxosMsg<P>;

    fn on_start(&mut self, ctx: &mut Context<PaxosMsg<P>>) {
        if self.id == 0 {
            self.ballot = 0;
            self.promises.clear();
            ctx.broadcast(PaxosMsg::Prepare { ballot: 0 });
        }
    }

    fn on_message(&mut self, from: NodeIdx, msg: &PaxosMsg<P>, ctx: &mut Context<PaxosMsg<P>>) {
        match msg {
            PaxosMsg::Request(p) => {
                let d = p.digest_u64();
                if self.delivered_digests.contains(&d) || self.pending.contains_key(&d) {
                    return;
                }
                self.pending.insert(d, p.clone());
                self.arm_timer(ctx);
                self.propose_pending(ctx);
            }
            PaxosMsg::Prepare { ballot } => {
                if *ballot >= self.promised {
                    self.promised = *ballot;
                    if self.leading && *ballot > self.ballot {
                        self.leading = false;
                    }
                    let accepted: Vec<(u64, u64, P)> =
                        self.accepted.iter().map(|(s, (b, v))| (*s, *b, v.clone())).collect();
                    ctx.send(from, PaxosMsg::Promise { ballot: *ballot, accepted });
                }
            }
            PaxosMsg::Promise { ballot, accepted } => {
                if *ballot != self.ballot || self.leading {
                    return;
                }
                self.promises.insert(from, accepted.clone());
                if self.promises.len() >= quorum::majority(self.cfg.n) {
                    self.leading = true;
                    hooks::leader("paxos", ctx.self_id, ctx.now, self.ballot);
                    self.proposed.clear();
                    // Re-propose the highest-ballot accepted value per slot.
                    let mut per_slot: BTreeMap<u64, (u64, P)> = BTreeMap::new();
                    for acc in self.promises.values() {
                        for (slot, b, v) in acc {
                            match per_slot.get(slot) {
                                Some((cur, _)) if cur >= b => {}
                                _ => {
                                    per_slot.insert(*slot, (*b, v.clone()));
                                }
                            }
                        }
                    }
                    self.next_slot = self
                        .next_slot
                        .max(per_slot.keys().next_back().map_or(0, |s| s + 1))
                        .max(self.log.next_seq());
                    for (slot, (_, value)) in per_slot {
                        self.proposed.insert(value.digest_u64(), slot);
                        ctx.broadcast(PaxosMsg::Accept { ballot: self.ballot, slot, value });
                    }
                    self.propose_pending(ctx);
                }
            }
            PaxosMsg::Accept { ballot, slot, value } => {
                if *ballot >= self.promised {
                    self.promised = *ballot;
                    self.accepted.insert(*slot, (*ballot, value.clone()));
                    hooks::phase("paxos", ctx.self_id, ctx.now, *ballot, "accepted");
                    ctx.broadcast(PaxosMsg::Accepted {
                        ballot: *ballot,
                        slot: *slot,
                        digest: value.digest_u64(),
                        value: value.clone(),
                    });
                }
            }
            PaxosMsg::Accepted { ballot: _, slot, digest, value } => {
                let votes = self.learn_votes.entry((*slot, *digest)).or_default();
                votes.insert(from);
                if votes.len() >= quorum::majority(self.cfg.n)
                    && !self.delivered_digests.contains(digest)
                {
                    self.delivered_digests.insert(*digest);
                    self.pending.remove(digest);
                    hooks::commit("paxos", ctx.self_id, ctx.now, *slot, *digest);
                    self.log.decide(*slot, value.clone(), ctx.now);
                    self.propose_pending(ctx);
                    self.arm_timer(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<PaxosMsg<P>>) {
        if id == TIMER_PROGRESS && !self.pending.is_empty() {
            self.claim_leadership(ctx);
        }
    }
}

/// Paxos's stable state (opaque): the acceptor's promise and accepted
/// values — the safety-critical pieces; an acceptor that forgot a
/// promise could promise a stale ballot, and one that forgot an
/// accepted value could let a conflicting value win its slot — plus
/// the learner's decided log. Proposer state (ballot, leadership,
/// promise tallies) is volatile: a recovered node simply isn't leading
/// and re-runs phase 1 if its timeout fires.
#[derive(Clone, Debug)]
pub struct PaxosStable<P> {
    promised: u64,
    accepted: BTreeMap<u64, (u64, P)>,
    delivered_digests: HashSet<u64>,
    decided: Vec<(u64, P, SimTime)>,
}

impl<P: crate::common::PersistPayload> Durable for PaxosNode<P> {
    type Stable = PaxosStable<P>;

    fn checkpoint(&self) -> PaxosStable<P> {
        PaxosStable {
            promised: self.promised,
            accepted: self.accepted.clone(),
            delivered_digests: self.delivered_digests.clone(),
            decided: self.log.snapshot(),
        }
    }

    fn restore(crashed: &Self, stable: PaxosStable<P>) -> Self {
        let mut node = PaxosNode::new(crashed.cfg.clone(), crashed.id);
        node.promised = stable.promised;
        node.accepted = stable.accepted;
        node.delivered_digests = stable.delivered_digests;
        node.log = DecidedLog::from_snapshot(0, stable.decided);
        node.next_slot = node.log.next_seq();
        node
    }

    fn encode_stable(stable: &PaxosStable<P>) -> Vec<u8> {
        let mut e = pbc_types::encode::Encoder::new();
        e.u64(stable.promised);
        e.u64(stable.accepted.len() as u64);
        for (slot, (ballot, value)) in &stable.accepted {
            e.u64(*slot).u64(*ballot).bytes(&value.to_bytes());
        }
        let mut digests: Vec<u64> = stable.delivered_digests.iter().copied().collect();
        digests.sort_unstable();
        e.u64(digests.len() as u64);
        for d in digests {
            e.u64(d);
        }
        e.u64(stable.decided.len() as u64);
        for (seq, payload, time) in &stable.decided {
            e.u64(*seq).bytes(&payload.to_bytes()).u64(*time);
        }
        e.finish()
    }

    fn decode_stable(_crashed: &Self, bytes: &[u8]) -> Option<PaxosStable<P>> {
        let mut d = pbc_types::encode::Decoder::new(bytes);
        let promised = d.u64()?;
        let n_accepted = d.u64()? as usize;
        let mut accepted = BTreeMap::new();
        for _ in 0..n_accepted {
            let slot = d.u64()?;
            let ballot = d.u64()?;
            let value = P::from_bytes(d.bytes()?)?;
            accepted.insert(slot, (ballot, value));
        }
        let n_digests = d.u64()? as usize;
        let mut delivered_digests = HashSet::with_capacity(n_digests.min(1024));
        for _ in 0..n_digests {
            delivered_digests.insert(d.u64()?);
        }
        let n_decided = d.u64()? as usize;
        let mut decided = Vec::with_capacity(n_decided.min(1024));
        for _ in 0..n_decided {
            let seq = d.u64()?;
            let payload = P::from_bytes(d.bytes()?)?;
            let time = d.u64()?;
            decided.push((seq, payload, time));
        }
        d.is_empty().then_some(PaxosStable { promised, accepted, delivered_digests, decided })
    }

    fn blank_stable(_crashed: &Self) -> PaxosStable<P> {
        PaxosStable {
            promised: 0,
            accepted: BTreeMap::new(),
            delivered_digests: HashSet::new(),
            decided: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_sim::{Network, NetworkConfig};

    fn cluster(n: usize, seed: u64) -> Network<PaxosNode<u64>> {
        let cfg = PaxosConfig::new(n);
        let actors = (0..n).map(|i| PaxosNode::new(cfg.clone(), i)).collect();
        let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
        net.start();
        net
    }

    fn submit(net: &mut Network<PaxosNode<u64>>, p: u64) {
        for i in 0..net.len() {
            net.inject(0, i, PaxosMsg::Request(p), 1);
        }
    }

    fn logs_agree(net: &Network<PaxosNode<u64>>, expected: usize) {
        let reference: Vec<u64> = net
            .actor((0..net.len()).find(|&i| !net.is_crashed(i)).unwrap())
            .log
            .delivered()
            .iter()
            .map(|(_, p, _)| *p)
            .collect();
        assert_eq!(reference.len(), expected);
        for i in 0..net.len() {
            if net.is_crashed(i) {
                continue;
            }
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, reference, "node {i}");
        }
    }

    #[test]
    fn node0_leads_and_decides() {
        let mut net = cluster(3, 1);
        net.run_until(10_000);
        assert!(net.actor(0).is_leading());
        submit(&mut net, 7);
        net.run_to_quiescence(1_000_000);
        logs_agree(&net, 1);
    }

    #[test]
    fn many_requests_total_order() {
        let mut net = cluster(5, 2);
        net.run_until(10_000);
        for p in 1..=15u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(3_000_000);
        logs_agree(&net, 15);
    }

    #[test]
    fn leader_crash_failover() {
        let mut net = cluster(3, 3);
        net.run_until(10_000);
        submit(&mut net, 1);
        net.run_to_quiescence(1_000_000);
        net.crash(0);
        submit(&mut net, 2);
        net.run_to_quiescence(10_000_000);
        for i in 1..3 {
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, vec![1, 2], "node {i}");
            assert!(net.actor(i).takeovers <= 3);
        }
    }

    #[test]
    fn no_progress_without_majority() {
        let mut net = cluster(5, 4);
        net.run_until(10_000);
        net.crash(1);
        net.crash(2);
        net.crash(3); // majority gone (leader 0 alive)
        submit(&mut net, 9);
        net.run_until(net.now() + 2_000_000);
        assert_eq!(net.actor(0).log.len(), 0);
    }

    #[test]
    fn duplicates_decided_once() {
        let mut net = cluster(3, 5);
        net.run_until(10_000);
        submit(&mut net, 42);
        submit(&mut net, 42);
        net.run_to_quiescence(1_000_000);
        logs_agree(&net, 1);
    }

    #[test]
    fn backup_crash_harmless() {
        let mut net = cluster(5, 6);
        net.run_until(10_000);
        net.crash(4);
        net.crash(3);
        for p in 1..=5u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(3_000_000);
        logs_agree(&net, 5);
    }

    #[test]
    fn stable_codec_roundtrips_and_rejects_truncation() {
        let mut net = cluster(3, 31);
        net.run_until(10_000);
        for p in 1..=3u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(1_000_000);
        for i in 0..3 {
            let stable = net.actor(i).checkpoint();
            assert!(!stable.decided.is_empty(), "node {i} decided something");
            assert!(!stable.accepted.is_empty(), "node {i} accepted values");
            let bytes = PaxosNode::<u64>::encode_stable(&stable);
            let back = PaxosNode::decode_stable(net.actor(i), &bytes).expect("decodes");
            assert_eq!(PaxosNode::<u64>::encode_stable(&back), bytes, "canonical roundtrip");
            assert_eq!(back.promised, stable.promised);
            assert_eq!(back.accepted, stable.accepted);
            assert!(PaxosNode::decode_stable(net.actor(i), &bytes[..bytes.len() - 1]).is_none());
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(PaxosNode::decode_stable(net.actor(i), &padded).is_none());
        }
    }
}
