//! The generic ordering layer: one trait, one registry, any protocol.
//!
//! The paper's design space is a cross-product — ordering (§2.2, §2.3.3)
//! × execution architecture (§2.3.3) × sharding (§2.3.4) — so the
//! composition point must not be a closed enum. This module makes every
//! consensus implementation in the crate interchangeable behind two
//! small interfaces:
//!
//! * [`OrderingActor`] — what a protocol actor must expose to be driven
//!   generically: how to wrap a payload into its client-request message,
//!   and where its in-order [`DecidedLog`] lives. All six protocols
//!   (PBFT/IBFT, HotStuff, Tendermint, Raft, Paxos, MinBFT) implement
//!   it, as does the Byzantine [`Adversary`] wrapper by delegation.
//! * [`OrderingCluster`] — an object-safe view of a whole replica group
//!   (`pbc_sim::Network<A>` implements it for every `A: OrderingActor`),
//!   with generic driving helpers: zero-copy request fan-in
//!   ([`OrderingCluster::submit`]), [`OrderingCluster::run_until_decided`],
//!   crash/partition/link-fault controls, and
//!   [`OrderingCluster::apply_nemesis`] for chaos schedules.
//!
//! The [`cluster`] / [`cluster_with`] constructors replace per-protocol
//! `match` arms everywhere else in the workspace: callers name a
//! protocol (`"pbft"`, `"raft"`, …) and get a boxed cluster generic
//! over any [`Payload`]. The mapping lives in one `ordering_registry!`
//! invocation — adding a protocol is an [`OrderingActor`] impl plus one
//! registry line.
//!
//! # Example: a new protocol in one impl + one registry line
//!
//! A (toy) single-broadcast sequencer, made drivable by the whole
//! generic stack with nothing but an [`OrderingActor`] impl:
//!
//! ```
//! use pbc_consensus::ordering::{OrderingActor, OrderingCluster};
//! use pbc_consensus::DecidedLog;
//! use pbc_sim::{Actor, Context, Message, Network, NetworkConfig, NodeIdx};
//!
//! /// Node 0 stamps a sequence number on each request and broadcasts.
//! #[derive(Default)]
//! struct Sequencer {
//!     log: DecidedLog<u64>,
//!     next: u64,
//! }
//!
//! #[derive(Clone, Debug)]
//! enum SeqMsg {
//!     Request(u64),
//!     Decide(u64, u64),
//! }
//! impl Message for SeqMsg {}
//!
//! impl Actor for Sequencer {
//!     type Msg = SeqMsg;
//!     fn on_message(&mut self, _from: NodeIdx, msg: &SeqMsg, ctx: &mut Context<SeqMsg>) {
//!         match msg {
//!             SeqMsg::Request(v) if ctx.self_id == 0 => {
//!                 let seq = self.next;
//!                 self.next += 1;
//!                 ctx.broadcast(SeqMsg::Decide(seq, *v));
//!             }
//!             SeqMsg::Decide(seq, v) => self.log.decide(*seq, *v, ctx.now),
//!             _ => {}
//!         }
//!     }
//! }
//!
//! // The whole integration: one trait impl. (For name-based lookup,
//! // add one `"sequencer" => …` line to the `ordering_registry!` list.)
//! impl OrderingActor for Sequencer {
//!     type Payload = u64;
//!     const PROTOCOL: &'static str = "sequencer";
//!     fn request_msg(payload: u64) -> SeqMsg {
//!         SeqMsg::Request(payload)
//!     }
//!     fn log(&self) -> &DecidedLog<u64> {
//!         &self.log
//!     }
//! }
//!
//! let actors = (0..3).map(|_| Sequencer::default()).collect();
//! let mut cluster: Box<dyn OrderingCluster<u64>> =
//!     Box::new(Network::new(actors, NetworkConfig::default()));
//! cluster.submit(42); // zero-copy fan-in to all three replicas
//! assert!(cluster.run_until_decided(1, 10_000));
//! assert_eq!(cluster.decided(2)[0].1, 42);
//! ```

use crate::common::{DecidedLog, Payload, PersistPayload};
use crate::hotstuff::{HotStuffConfig, HotStuffReplica};
use crate::minbft::{MinBftConfig, MinBftReplica};
use crate::paxos::{PaxosConfig, PaxosNode};
use crate::pbft::{PbftConfig, PbftReplica};
use crate::raft::{RaftConfig, RaftNode};
use crate::tendermint::{TendermintConfig, TendermintNode};
use crate::wire::WireMsg;
use pbc_sim::fault::LinkFault;
use pbc_sim::{Actor, Adversary, Attack, Durable, NemesisOp, NetStats, Network, NetworkConfig};
use pbc_sim::{NodeIdx, ParNetwork, SimNet, SimTime};
use pbc_store::{NodeStore, Recovery};
use pbc_trace::TraceEvent;
use std::marker::PhantomData;

/// A consensus actor drivable by the generic ordering layer.
///
/// The contract every protocol in this crate satisfies: client requests
/// are ordinary messages built by [`OrderingActor::request_msg`], and
/// decisions surface through an in-order [`DecidedLog`]. That is all the
/// rest of the system needs — `pbc-core` composes execution pipelines on
/// top, `pbc-shard` puts replica groups under shards, and the nemesis
/// engine chaos-tests any of it, without naming a protocol.
pub trait OrderingActor: Actor {
    /// What this actor agrees on.
    type Payload: Payload + 'static;

    /// Registry / metrics label of the protocol.
    const PROTOCOL: &'static str;

    /// Wraps a payload into the protocol's client-request message.
    fn request_msg(payload: Self::Payload) -> Self::Msg;

    /// The actor's in-order decided log.
    fn log(&self) -> &DecidedLog<Self::Payload>;
}

/// The Byzantine wrapper stays drivable: requests and the decided log
/// delegate to the wrapped actor, so a registry-built cluster can host
/// adversarial replicas with no protocol-specific code.
impl<A: OrderingActor> OrderingActor for Adversary<A> {
    type Payload = A::Payload;
    const PROTOCOL: &'static str = A::PROTOCOL;

    fn request_msg(payload: Self::Payload) -> Self::Msg {
        A::request_msg(payload)
    }

    fn log(&self) -> &DecidedLog<Self::Payload> {
        self.inner().log()
    }
}

/// An object-safe replica group running one ordering protocol.
///
/// This is the single vtable point the rest of the workspace dispatches
/// through: `pbc_sim::Network<A>` implements it for every
/// `A: OrderingActor`, and the [`cluster`] registry hands it out boxed.
/// Callers drive consensus ([`submit`](OrderingCluster::submit),
/// [`run_until_decided`](OrderingCluster::run_until_decided)), read
/// decisions, and inject faults without knowing the protocol.
pub trait OrderingCluster<P: Payload> {
    /// Number of replicas.
    fn len(&self) -> usize;

    /// Protocol label (the registry name of the actor type).
    fn protocol(&self) -> &'static str;

    /// Submits a payload for ordering: the client request fans in to
    /// every replica through one shared allocation (zero-copy).
    fn submit(&mut self, payload: P);

    /// Submits a payload whose client request is **scheduled** at the
    /// absolute tick `at` (clamped to `now + 1` if already past): the
    /// ingress path's client-arrival primitive, making arrivals
    /// first-class simulation events with engine-invariant timing.
    fn submit_at(&mut self, payload: P, at: SimTime);

    /// Runs until the event queues drain or logical time exceeds
    /// `deadline`; returns the number of events processed. Exact on
    /// both engines (windows never cross the deadline), so ingress
    /// drivers that advance time only through this call observe
    /// identical `now()` values at any lane count.
    fn run_until_time(&mut self, deadline: SimTime) -> u64;

    /// Digest of the delivery trace so far — the golden-trace handle
    /// e2e determinism tests compare across engines and repeats.
    fn trace_digest(&self) -> u64;

    /// Replica `node`'s in-order decided prefix.
    fn decided(&self, node: NodeIdx) -> &[(u64, P, SimTime)];

    /// Processes one simulation event; `false` when idle.
    fn step(&mut self) -> bool;

    /// Current logical time.
    fn now(&self) -> SimTime;

    /// Network accounting.
    fn stats(&self) -> &NetStats;

    /// True if `node` is crashed.
    fn is_crashed(&self, node: NodeIdx) -> bool;

    /// Crash-stops a replica (RAM intact).
    fn crash(&mut self, node: NodeIdx);

    /// Resumes a crashed replica with its memory intact.
    fn recover(&mut self, node: NodeIdx);

    /// Resumes a crashed replica through its `on_start` (re-arms timers).
    fn restart(&mut self, node: NodeIdx);

    /// Splits the group; cross-group messages drop.
    fn partition(&mut self, groups: &[Vec<NodeIdx>]);

    /// Removes any partition.
    fn heal_partition(&mut self);

    /// Installs a fault on one directed link.
    fn degrade_link(&mut self, from: NodeIdx, to: NodeIdx, fault: LinkFault);

    /// Restores every link to default behaviour.
    fn heal_links(&mut self);

    /// True if the group has no replicas.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of replica `node`'s decided prefix.
    fn decided_len(&self, node: NodeIdx) -> usize {
        self.decided(node).len()
    }

    /// Runs until every **alive** replica has decided at least `target`
    /// slots, the simulation idles, or `max_events` elapse. Returns
    /// whether the target was reached.
    fn run_until_decided(&mut self, target: usize, max_events: u64) -> bool {
        let n = self.len();
        let mut events = 0;
        loop {
            let done =
                (0..n).filter(|&i| !self.is_crashed(i)).all(|i| self.decided_len(i) >= target);
            if done {
                return true;
            }
            if events >= max_events || !self.step() {
                return false;
            }
            events += 1;
        }
    }

    /// Applies one nemesis op to the group, so seeded chaos schedules
    /// drive the composed stack through the same vtable as everything
    /// else.
    ///
    /// # Panics
    /// Panics on [`NemesisOp::CrashAmnesia`]: amnesia needs a
    /// [`pbc_sim::Durable`] actor, which the erased view cannot assume.
    /// Generate composed-stack schedules with `amnesia: false`.
    fn apply_nemesis(&mut self, op: &NemesisOp) {
        pbc_trace::emit(self.now(), || TraceEvent::NemesisOp {
            op: op.label(),
            node: op.primary_node(),
        });
        match op {
            NemesisOp::Partition { groups } => self.partition(groups),
            NemesisOp::HealPartition => self.heal_partition(),
            NemesisOp::Crash { node } => self.crash(*node),
            NemesisOp::Recover { node } => self.recover(*node),
            NemesisOp::CrashAmnesia { .. } => {
                panic!("CrashAmnesia needs a Durable actor; erased clusters support plain crashes")
            }
            NemesisOp::Restart { node } => self.restart(*node),
            NemesisOp::DegradeLink { from, to, fault } => self.degrade_link(*from, *to, *fault),
            NemesisOp::HealLinks => self.heal_links(),
            // Disk faults only bite when the cluster owns real stores
            // ([`DurableNet`] overrides this method); a RAM-checkpointed
            // cluster has no disk to hurt.
            NemesisOp::FailSyncs { .. }
            | NemesisOp::CorruptWalTail { .. }
            | NemesisOp::BitRot { .. } => {}
        }
    }

    /// Flushes every alive replica's durable state to its stable store.
    /// A no-op for clusters without real stores (the default).
    fn persist(&mut self) {}

    /// Re-reads replica `node`'s decided log **from disk** — reopening
    /// its store cold and decoding what actually survived, bypassing all
    /// in-memory state. `None` for clusters without real stores.
    fn cold_decided(&mut self, _node: NodeIdx) -> Option<Vec<(u64, P)>> {
        None
    }
}

/// Every simulated network of ordering actors is an ordering cluster —
/// the generic driving helpers the rest of the workspace builds on.
impl<A: OrderingActor> OrderingCluster<A::Payload> for Network<A> {
    fn len(&self) -> usize {
        Network::len(self)
    }

    fn protocol(&self) -> &'static str {
        A::PROTOCOL
    }

    fn submit(&mut self, payload: A::Payload) {
        // One allocation for the whole fan-in (PR 2's shared-payload
        // path); clients appear as node 0, matching the former
        // per-node inject loop tuple-for-tuple.
        self.inject_all(0, A::request_msg(payload), 1);
    }

    fn submit_at(&mut self, payload: A::Payload, at: SimTime) {
        self.inject_all_at(0, A::request_msg(payload), at);
    }

    fn run_until_time(&mut self, deadline: SimTime) -> u64 {
        Network::run_until(self, deadline)
    }

    fn trace_digest(&self) -> u64 {
        Network::trace_digest(self)
    }

    fn decided(&self, node: NodeIdx) -> &[(u64, A::Payload, SimTime)] {
        self.actor(node).log().delivered()
    }

    fn step(&mut self) -> bool {
        Network::step(self)
    }

    fn now(&self) -> SimTime {
        Network::now(self)
    }

    fn stats(&self) -> &NetStats {
        Network::stats(self)
    }

    fn is_crashed(&self, node: NodeIdx) -> bool {
        Network::is_crashed(self, node)
    }

    fn crash(&mut self, node: NodeIdx) {
        Network::crash(self, node)
    }

    fn recover(&mut self, node: NodeIdx) {
        Network::recover(self, node)
    }

    fn restart(&mut self, node: NodeIdx) {
        Network::restart(self, node)
    }

    fn partition(&mut self, groups: &[Vec<NodeIdx>]) {
        Network::partition(self, groups)
    }

    fn heal_partition(&mut self) {
        Network::heal_partition(self)
    }

    fn degrade_link(&mut self, from: NodeIdx, to: NodeIdx, fault: LinkFault) {
        self.fault_model_mut().set_link(from, to, fault);
    }

    fn heal_links(&mut self) {
        self.fault_model_mut().heal_all();
    }
}

/// The multi-lane parallel core is an ordering cluster too — with the
/// same observable behaviour: digests, stats and decided logs are
/// bit-for-bit those of the sequential engine at any lane count, so a
/// consensus harness may swap engines freely. The one granularity
/// difference is [`step`](OrderingCluster::step), which advances a whole
/// conservative window rather than a single event (coarser, never
/// different in outcome).
impl<A> OrderingCluster<A::Payload> for ParNetwork<A>
where
    A: OrderingActor + Send,
    A::Msg: Send + Sync,
{
    fn len(&self) -> usize {
        ParNetwork::len(self)
    }

    fn protocol(&self) -> &'static str {
        A::PROTOCOL
    }

    fn submit(&mut self, payload: A::Payload) {
        self.inject_all(0, A::request_msg(payload), 1);
    }

    fn submit_at(&mut self, payload: A::Payload, at: SimTime) {
        self.inject_all_at(0, A::request_msg(payload), at);
    }

    fn run_until_time(&mut self, deadline: SimTime) -> u64 {
        ParNetwork::run_until(self, deadline)
    }

    fn trace_digest(&self) -> u64 {
        ParNetwork::trace_digest(self)
    }

    fn decided(&self, node: NodeIdx) -> &[(u64, A::Payload, SimTime)] {
        self.actor(node).log().delivered()
    }

    fn step(&mut self) -> bool {
        ParNetwork::step(self)
    }

    fn now(&self) -> SimTime {
        ParNetwork::now(self)
    }

    fn stats(&self) -> &NetStats {
        ParNetwork::stats(self)
    }

    fn is_crashed(&self, node: NodeIdx) -> bool {
        ParNetwork::is_crashed(self, node)
    }

    fn crash(&mut self, node: NodeIdx) {
        ParNetwork::crash(self, node)
    }

    fn recover(&mut self, node: NodeIdx) {
        ParNetwork::recover(self, node)
    }

    fn restart(&mut self, node: NodeIdx) {
        ParNetwork::restart(self, node)
    }

    fn partition(&mut self, groups: &[Vec<NodeIdx>]) {
        ParNetwork::partition(self, groups)
    }

    fn heal_partition(&mut self) {
        ParNetwork::heal_partition(self)
    }

    fn degrade_link(&mut self, from: NodeIdx, to: NodeIdx, fault: LinkFault) {
        self.fault_model_mut().set_link(from, to, fault);
    }

    fn heal_links(&mut self) {
        self.fault_model_mut().heal_all();
    }
}

/// A replica group whose checkpoints live on **real stable stores**:
/// every node owns a [`pbc_store::NodeStore`] (over a real or
/// fault-injecting filesystem), crashes go through the total-loss path
/// ([`Network::crash_total`]), and restarts recover exclusively from
/// whatever the disk hands back — torn tails truncated, rotted segments
/// quarantined, checkpoints decoded or degraded to a blank boot.
///
/// This is where the [`NemesisOp`] disk faults land: `FailSyncs` arms
/// the node's store to swallow fsyncs, `CorruptWalTail` tears the last
/// WAL record, `BitRot` flips bits in a sealed segment. The store's
/// staged recovery is then on the hook to keep the replica's safety
/// state intact — which `tests/chaos.rs` audits end to end.
/// The engine is a type parameter (`N: SimNet<A>`, defaulting to the
/// sequential [`Network`]) so the same disk-backed nemesis semantics run
/// unchanged on the multi-lane parallel core: [`durable_cluster_with`]
/// picks [`ParNetwork`] whenever `cfg.lanes > 1`.
pub struct DurableNet<A: OrderingActor + Durable, N: SimNet<A> = Network<A>> {
    net: N,
    stores: Vec<NodeStore>,
    /// Nodes currently down via `CrashAmnesia` (their restart must go
    /// through disk recovery, not plain resume).
    amnesiac: Vec<bool>,
    /// Deterministic seed counter for corruption faults.
    fault_seq: u64,
    recoveries: Vec<(NodeIdx, Recovery)>,
    _actor: PhantomData<fn() -> A>,
}

impl<A> DurableNet<A>
where
    A: OrderingActor + Durable,
    A::Payload: PersistPayload,
{
    /// Wires `actors` to per-node `stores` and starts the network.
    ///
    /// # Panics
    /// Panics unless `stores.len() == actors.len()`.
    pub fn new(actors: Vec<A>, cfg: NetworkConfig, stores: Vec<NodeStore>) -> Self {
        assert_eq!(actors.len(), stores.len(), "one store per replica");
        Self::with_net(Network::new(actors, cfg), stores)
    }
}

impl<A, N> DurableNet<A, N>
where
    A: OrderingActor + Durable,
    A::Payload: PersistPayload,
    N: SimNet<A>,
{
    /// Wires an already-built (but not yet started) engine to per-node
    /// `stores` and starts it. This is how the registry mounts durable
    /// clusters on the parallel core.
    ///
    /// # Panics
    /// Panics unless `stores.len()` matches the engine's node count.
    pub fn with_net(mut net: N, stores: Vec<NodeStore>) -> Self {
        assert_eq!(net.len(), stores.len(), "one store per replica");
        let n = net.len();
        net.start();
        DurableNet {
            net,
            stores,
            amnesiac: vec![false; n],
            fault_seq: 0,
            recoveries: Vec::new(),
            _actor: PhantomData,
        }
    }

    /// Flushes one replica's checkpoint and decided blocks to its store.
    ///
    /// Write or sync errors are swallowed deliberately: a failed fsync
    /// leaves the data vulnerable, it does not stop the replica — that
    /// exposure is exactly the fault model the store exists to survive.
    fn persist_node(&mut self, node: NodeIdx) {
        let stable = self.net.actor(node).checkpoint();
        let bytes = A::encode_stable(&stable);
        let _ = self.stores[node].put_checkpoint(&bytes);
        let decided: Vec<(u64, Vec<u8>)> = self
            .net
            .actor(node)
            .log()
            .delivered()
            .iter()
            .map(|(seq, p, _)| (*seq, p.to_bytes()))
            .collect();
        for (seq, payload) in decided {
            let _ = self.stores[node].append_block(seq, &payload);
        }
        let _ = self.stores[node].sync();
    }

    /// What each disk recovery found and repaired, in the order the
    /// restarts happened.
    pub fn recoveries(&self) -> &[(NodeIdx, Recovery)] {
        &self.recoveries
    }

    /// Direct access to one replica's store (tests, harnesses).
    pub fn store_mut(&mut self, node: NodeIdx) -> &mut NodeStore {
        &mut self.stores[node]
    }

    /// The underlying engine (read access for assertions).
    pub fn network(&self) -> &N {
        &self.net
    }

    /// The underlying engine, mutably — for harnesses that need raw
    /// injection or time control beyond the [`OrderingCluster`] surface
    /// (e.g. replaying a golden scenario event-for-event).
    pub fn network_mut(&mut self) -> &mut N {
        &mut self.net
    }
}

impl<A, N> OrderingCluster<A::Payload> for DurableNet<A, N>
where
    A: OrderingActor + Durable,
    A::Payload: PersistPayload,
    N: SimNet<A>,
{
    fn len(&self) -> usize {
        self.net.len()
    }

    fn protocol(&self) -> &'static str {
        A::PROTOCOL
    }

    fn submit(&mut self, payload: A::Payload) {
        self.net.inject_all(0, A::request_msg(payload), 1);
    }

    fn submit_at(&mut self, payload: A::Payload, at: SimTime) {
        self.net.inject_all_at(0, A::request_msg(payload), at);
    }

    fn run_until_time(&mut self, deadline: SimTime) -> u64 {
        self.net.run_until(deadline)
    }

    fn trace_digest(&self) -> u64 {
        self.net.trace_digest()
    }

    fn decided(&self, node: NodeIdx) -> &[(u64, A::Payload, SimTime)] {
        self.net.actor(node).log().delivered()
    }

    fn step(&mut self) -> bool {
        self.net.step()
    }

    fn now(&self) -> SimTime {
        self.net.now()
    }

    fn stats(&self) -> &NetStats {
        self.net.stats()
    }

    fn is_crashed(&self, node: NodeIdx) -> bool {
        self.net.is_crashed(node)
    }

    fn crash(&mut self, node: NodeIdx) {
        self.net.crash(node)
    }

    fn recover(&mut self, node: NodeIdx) {
        self.net.recover(node)
    }

    fn restart(&mut self, node: NodeIdx) {
        self.net.restart(node)
    }

    fn partition(&mut self, groups: &[Vec<NodeIdx>]) {
        self.net.partition(groups)
    }

    fn heal_partition(&mut self) {
        self.net.heal_partition()
    }

    fn degrade_link(&mut self, from: NodeIdx, to: NodeIdx, fault: LinkFault) {
        self.net.fault_model_mut().set_link(from, to, fault);
    }

    fn heal_links(&mut self) {
        self.net.fault_model_mut().heal_all();
    }

    /// The disk-backed nemesis semantics: amnesia crashes flush then
    /// wipe RAM entirely, restarts of amnesiac nodes recover **only**
    /// from staged disk replay, and the three disk-fault ops arm the
    /// node's store.
    fn apply_nemesis(&mut self, op: &NemesisOp) {
        pbc_trace::emit(self.net.now(), || TraceEvent::NemesisOp {
            op: op.label(),
            node: op.primary_node(),
        });
        match op {
            NemesisOp::Partition { groups } => self.net.partition(groups),
            NemesisOp::HealPartition => self.net.heal_partition(),
            NemesisOp::Crash { node } => self.net.crash(*node),
            NemesisOp::Recover { node } => self.net.recover(*node),
            NemesisOp::CrashAmnesia { node } => {
                // Flush what the replica managed to persist, then drop
                // the in-flight (unsynced) writes and all RAM.
                self.persist_node(*node);
                self.stores[*node].fault_crash();
                self.net.crash_total(*node);
                self.amnesiac[*node] = true;
            }
            NemesisOp::Restart { node } => {
                if !self.amnesiac[*node] {
                    self.net.restart(*node);
                    return;
                }
                self.amnesiac[*node] = false;
                let stable = match self.stores[*node].reopen() {
                    Ok(rec) => {
                        let stable = rec
                            .checkpoint
                            .as_deref()
                            .and_then(|b| A::decode_stable(self.net.actor(*node), b))
                            .unwrap_or_else(|| A::blank_stable(self.net.actor(*node)));
                        self.recoveries.push((*node, rec));
                        stable
                    }
                    // An unrecoverable disk is a fresh boot, not a halt.
                    Err(_) => A::blank_stable(self.net.actor(*node)),
                };
                self.net.restart_with(*node, stable);
            }
            NemesisOp::DegradeLink { from, to, fault } => {
                self.net.fault_model_mut().set_link(*from, *to, *fault);
            }
            NemesisOp::HealLinks => self.net.fault_model_mut().heal_all(),
            NemesisOp::FailSyncs { node, count } => self.stores[*node].fault_fail_syncs(*count),
            NemesisOp::CorruptWalTail { node } => {
                self.fault_seq += 1;
                self.stores[*node].fault_corrupt_wal_tail(self.fault_seq);
            }
            NemesisOp::BitRot { node } => {
                self.fault_seq += 1;
                self.stores[*node].fault_bit_rot(self.fault_seq);
            }
        }
    }

    fn persist(&mut self) {
        for node in 0..self.net.len() {
            if !self.net.is_crashed(node) {
                self.persist_node(node);
            }
        }
    }

    fn cold_decided(&mut self, node: NodeIdx) -> Option<Vec<(u64, A::Payload)>> {
        // Reopen is idempotent staged replay, so a cold read is just a
        // recovery pass over whatever is on disk right now. Blocks that
        // fail payload decoding are dropped — bit rot that slipped past
        // the checksums must degrade, not panic.
        let rec = self.stores[node].reopen().ok()?;
        Some(
            rec.blocks
                .iter()
                .filter_map(|(seq, bytes)| {
                    <A::Payload as PersistPayload>::from_bytes(bytes).map(|p| (*seq, p))
                })
                .collect(),
        )
    }
}

/// Registry metadata for one protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolInfo {
    /// Registry name (what [`cluster`] matches on).
    pub name: &'static str,
    /// True if the protocol rotates its proposer per decided height
    /// (consumers stamp block seals with the rotating proposer).
    pub rotating: bool,
}

/// Looks up a protocol's registry metadata.
pub fn protocol_info(name: &str) -> Option<&'static ProtocolInfo> {
    PROTOCOLS.iter().find(|p| p.name == name)
}

/// Builds and starts the engine `cfg` asks for: the sequential
/// [`Network`] at `lanes <= 1`, the multi-lane [`ParNetwork`] above —
/// observably identical either way (bit-for-bit digests and stats).
fn engine<A>(actors: Vec<A>, cfg: NetworkConfig) -> Box<dyn OrderingCluster<A::Payload>>
where
    A: OrderingActor + Send + 'static,
    A::Msg: Send + Sync,
{
    if cfg.lanes > 1 {
        let mut net = ParNetwork::new(actors, cfg);
        net.start();
        Box::new(net)
    } else {
        let mut net = Network::new(actors, cfg);
        net.start();
        Box::new(net)
    }
}

/// [`engine`]'s durable counterpart: mounts [`DurableNet`] on whichever
/// engine `cfg.lanes` selects, so disk-backed chaos runs scale across
/// lanes with identical traces.
fn durable_engine<A>(
    actors: Vec<A>,
    cfg: NetworkConfig,
    stores: Vec<NodeStore>,
) -> Box<dyn OrderingCluster<A::Payload>>
where
    A: OrderingActor + Durable + Send + 'static,
    A::Msg: Send + Sync,
    A::Payload: PersistPayload,
{
    if cfg.lanes > 1 {
        Box::new(DurableNet::with_net(ParNetwork::new(actors, cfg), stores))
    } else {
        Box::new(DurableNet::new(actors, cfg, stores))
    }
}

/// Builds, wires, and starts a cluster over `actors`, wrapping every
/// replica in a Byzantine [`Adversary`] when any attacks are requested.
fn finish<A>(
    actors: Vec<A>,
    cfg: NetworkConfig,
    byzantine: &[(NodeIdx, Vec<Attack>)],
) -> Box<dyn OrderingCluster<A::Payload>>
where
    A: OrderingActor + Send + 'static,
    A::Msg: Send + Sync,
{
    if byzantine.is_empty() {
        engine(actors, cfg)
    } else {
        let wrapped: Vec<Adversary<A>> = actors
            .into_iter()
            .enumerate()
            .map(|(i, a)| match byzantine.iter().find(|(node, _)| *node == i) {
                Some((_, attacks)) => Adversary::new(a, attacks.clone()),
                None => Adversary::honest(a),
            })
            .collect();
        engine(wrapped, cfg)
    }
}

// Uniform per-protocol constructors: each takes a replica count and
// returns the actor vector. These (plus the registry entries below) are
// the only protocol-specific lines in the whole composition story.

fn pbft_actors<P: Payload + 'static>(n: usize) -> Vec<PbftReplica<P>> {
    let cfg = PbftConfig::new(n);
    (0..n).map(|_| PbftReplica::new(cfg.clone())).collect()
}

fn ibft_actors<P: Payload + 'static>(n: usize) -> Vec<PbftReplica<P>> {
    let cfg = PbftConfig::ibft(n);
    (0..n).map(|_| PbftReplica::new(cfg.clone())).collect()
}

fn hotstuff_actors<P: Payload + 'static>(n: usize) -> Vec<HotStuffReplica<P>> {
    let cfg = HotStuffConfig::new(n);
    (0..n).map(|_| HotStuffReplica::new(cfg.clone())).collect()
}

fn tendermint_actors<P: Payload + 'static>(n: usize) -> Vec<TendermintNode<P>> {
    let cfg = TendermintConfig::equal(n);
    (0..n).map(|_| TendermintNode::new(cfg.clone())).collect()
}

fn raft_actors<P: Payload + 'static>(n: usize) -> Vec<RaftNode<P>> {
    let cfg = RaftConfig::new(n);
    (0..n).map(|i| RaftNode::new(cfg.clone(), i)).collect()
}

fn paxos_actors<P: Payload + 'static>(n: usize) -> Vec<PaxosNode<P>> {
    let cfg = PaxosConfig::new(n);
    (0..n).map(|i| PaxosNode::new(cfg.clone(), i)).collect()
}

fn minbft_actors<P: Payload + 'static>(n: usize) -> Vec<MinBftReplica<P>> {
    let cfg = MinBftConfig::new(n);
    (0..n).map(|i| MinBftReplica::new(cfg.clone(), i)).collect()
}

/// Generates the protocol registry: the static metadata table plus the
/// name → constructor dispatch of [`cluster_with`]. One entry per line;
/// this is the single point a new protocol hooks into.
macro_rules! ordering_registry {
    ($( $name:literal => rotating $rot:literal, $builder:path; )*) => {
        /// Every registered protocol, in registry order.
        pub const PROTOCOLS: &[ProtocolInfo] = &[
            $( ProtocolInfo { name: $name, rotating: $rot } ),*
        ];

        /// Builds a started `proto` cluster of `n` replicas, optionally
        /// wrapping the listed nodes in Byzantine [`Adversary`]s with
        /// the given attack sets. Returns `None` for an unknown name.
        pub fn cluster_with<P: Payload + 'static>(
            proto: &str,
            n: usize,
            cfg: NetworkConfig,
            byzantine: &[(NodeIdx, Vec<Attack>)],
        ) -> Option<Box<dyn OrderingCluster<P>>> {
            match proto {
                $( $name => Some(finish($builder(n), cfg, byzantine)), )*
                _ => None,
            }
        }

        /// Builds a started `proto` cluster whose `n` replicas are wired
        /// to real per-node stable `stores` (a [`DurableNet`]): crashes
        /// lose RAM entirely and restarts recover from staged disk
        /// replay. Returns `None` for an unknown name.
        ///
        /// # Panics
        /// Panics unless `stores.len() == n`.
        pub fn durable_cluster_with<P: PersistPayload + 'static>(
            proto: &str,
            n: usize,
            cfg: NetworkConfig,
            stores: Vec<NodeStore>,
        ) -> Option<Box<dyn OrderingCluster<P>>> {
            match proto {
                $( $name => Some(durable_engine($builder(n), cfg, stores)), )*
                _ => None,
            }
        }
    };
}

ordering_registry! {
    "pbft"       => rotating false, pbft_actors;
    "ibft"       => rotating true,  ibft_actors;
    "hotstuff"   => rotating true,  hotstuff_actors;
    "tendermint" => rotating true,  tendermint_actors;
    "raft"       => rotating false, raft_actors;
    "paxos"      => rotating false, paxos_actors;
    "minbft"     => rotating false, minbft_actors;
}

/// [`cluster_with`] without adversaries: the common case.
pub fn cluster<P: Payload + 'static>(
    proto: &str,
    n: usize,
    cfg: NetworkConfig,
) -> Option<Box<dyn OrderingCluster<P>>> {
    cluster_with(proto, n, cfg, &[])
}

/// A runtime that can mount ordering actors on a **real** transport —
/// the callback side of [`run_real`]'s dispatch.
///
/// The simulator's registry can hand back a `Box<dyn OrderingCluster>`
/// because every engine is defined in this crate; a real runtime
/// (pbc-net's TCP cluster) lives downstream, so the registry inverts
/// control instead: [`run_real`] resolves the protocol name to a
/// concrete actor type and calls [`mount`](RealRuntime::mount) with a
/// *factory*, keeping the actor generics confined to the runtime while
/// the protocol dispatch stays here, one line per protocol like
/// [`cluster_with`]. The factory (rather than a pre-built `Vec`) lets
/// the runtime re-create a node's actor after a kill/reboot.
pub trait RealRuntime<P: Payload + 'static> {
    /// What mounting yields — typically a running-cluster handle,
    /// erased of the actor type.
    type Output;

    /// Boots a cluster of `n` actors built by `make` on this runtime.
    fn mount<A, F>(self, n: usize, make: F) -> Self::Output
    where
        A: OrderingActor<Payload = P> + Send + 'static,
        A::Msg: WireMsg + Send,
        F: FnMut(NodeIdx) -> A + Send + 'static;
}

/// [`cluster`]'s real-transport sibling: resolves `proto` to its actor
/// constructor and mounts `n` replicas on `runtime`. Returns `None` for
/// a protocol that is unknown *or not yet wire-capable* — a protocol
/// becomes wire-capable by implementing [`WireMsg`] for its message
/// type and adding one arm here. PBFT and IBFT qualify today; that is
/// exactly the pair the §2.3.3 sim-vs-TCP cross-check exercises.
pub fn run_real<P, R>(proto: &str, n: usize, runtime: R) -> Option<R::Output>
where
    P: PersistPayload + 'static,
    R: RealRuntime<P>,
{
    match proto {
        "pbft" => {
            let cfg = PbftConfig::new(n);
            Some(runtime.mount(n, move |_| PbftReplica::new(cfg.clone())))
        }
        "ibft" => {
            let cfg = PbftConfig::ibft(n);
            Some(runtime.mount(n, move |_| PbftReplica::new(cfg.clone())))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(proto: &str, n: usize, requests: u64) -> Box<dyn OrderingCluster<u64>> {
        let cfg = NetworkConfig { seed: 0x0D0E, ..Default::default() };
        let mut c = cluster::<u64>(proto, n, cfg).expect("registered protocol");
        for r in 0..requests {
            c.submit(100 + r);
        }
        assert!(c.run_until_decided(requests as usize, 2_000_000), "{proto} stalled");
        c
    }

    #[test]
    fn every_registered_protocol_orders_and_agrees() {
        for info in PROTOCOLS {
            let n = if info.name == "minbft" { 3 } else { 4 };
            let c = drive(info.name, n, 3);
            assert_eq!(c.protocol(), protocol_info(info.name).unwrap().name.max(c.protocol()));
            let reference: Vec<u64> = c.decided(0).iter().map(|(_, p, _)| *p).collect();
            assert_eq!(reference.len(), 3, "{}", info.name);
            for i in 1..n {
                let log: Vec<u64> = c.decided(i).iter().map(|(_, p, _)| *p).collect();
                assert_eq!(log, reference, "{} node {i} diverged", info.name);
            }
        }
    }

    #[test]
    fn lane_built_clusters_decide_identically() {
        // `lanes > 1` routes the registry through the parallel core. The
        // decided logs of every replica must match the sequential run
        // slot-for-slot. (Final `now`/stats are *not* compared here:
        // `run_until_decided` stops at engine-granular points — one event
        // vs one window — so the stopping time differs even though the
        // underlying executions are bit-for-bit identical, which the
        // golden-trace suite pins at equal deadlines.)
        for info in PROTOCOLS {
            let n = if info.name == "minbft" { 3 } else { 4 };
            let mut runs = Vec::new();
            for lanes in [1usize, 3] {
                let cfg = NetworkConfig { seed: 0x1A9E5, lanes, ..Default::default() };
                let mut c = cluster::<u64>(info.name, n, cfg).expect("registered protocol");
                for r in 0..3u64 {
                    c.submit(500 + r);
                }
                assert!(c.run_until_decided(3, 2_000_000), "{} lanes={lanes}", info.name);
                let logs: Vec<Vec<u64>> =
                    (0..n).map(|i| c.decided(i).iter().map(|(_, p, _)| *p).collect()).collect();
                runs.push(logs);
            }
            assert_eq!(runs[0], runs[1], "{}: lanes=3 diverged from sequential", info.name);
        }
    }

    #[test]
    fn lane_built_durable_cluster_survives_amnesia() {
        let cfg = NetworkConfig { seed: 0xD15C, lanes: 2, ..Default::default() };
        let mut c = durable_cluster_with::<u64>("raft", 3, cfg, fault_stores(3, 0xD15C)).unwrap();
        c.submit(41);
        assert!(c.run_until_decided(1, 20_000_000), "parallel durable raft stalled");
        c.persist();
        c.apply_nemesis(&NemesisOp::CrashAmnesia { node: 1 });
        c.apply_nemesis(&NemesisOp::Restart { node: 1 });
        assert!(c.run_until_decided(1, 20_000_000), "post-restart convergence");
        assert_eq!(c.decided(1)[0].1, 41);
        let cold = c.cold_decided(1).expect("durable cluster reads cold");
        assert_eq!(cold[0].1, 41);
    }

    #[test]
    fn unknown_protocol_is_none() {
        assert!(cluster::<u64>("zab", 4, NetworkConfig::default()).is_none());
        assert!(protocol_info("zab").is_none());
    }

    #[test]
    fn registry_metadata_matches_rotation_story() {
        // The three per-height rotating protocols, per §2.3.3.
        for (name, rotating) in
            [("pbft", false), ("ibft", true), ("hotstuff", true), ("tendermint", true)]
        {
            assert_eq!(protocol_info(name).unwrap().rotating, rotating, "{name}");
        }
    }

    #[test]
    fn erased_cluster_survives_a_crash() {
        let cfg = NetworkConfig { seed: 7, ..Default::default() };
        let mut c = cluster::<u64>("pbft", 4, cfg).unwrap();
        c.apply_nemesis(&NemesisOp::Crash { node: 3 });
        assert!(c.is_crashed(3));
        c.submit(9);
        assert!(c.run_until_decided(1, 2_000_000));
        assert_eq!(c.decided(0)[0].1, 9);
        c.apply_nemesis(&NemesisOp::Recover { node: 3 });
        assert!(!c.is_crashed(3));
    }

    fn fault_stores(n: usize, seed: u64) -> Vec<NodeStore> {
        (0..n)
            .map(|i| {
                let vfs = pbc_store::FaultFs::new(seed ^ (i as u64).wrapping_mul(0x9E37));
                NodeStore::open(Box::new(vfs), pbc_store::StoreConfig::default()).unwrap().0
            })
            .collect()
    }

    #[test]
    fn durable_cluster_recovers_decided_log_from_disk() {
        for proto in ["pbft", "raft", "hotstuff", "tendermint", "paxos", "minbft", "ibft"] {
            let n = if proto == "minbft" { 3 } else { 4 };
            let cfg = NetworkConfig { seed: 0xD15C, ..Default::default() };
            let mut c =
                durable_cluster_with::<u64>(proto, n, cfg, fault_stores(n, 0xD15C)).unwrap();
            for r in 0..3u64 {
                c.submit(100 + r);
            }
            assert!(c.run_until_decided(3, 20_000_000), "{proto} stalled");
            let reference: Vec<u64> = c.decided(0).iter().map(|(_, p, _)| *p).collect();
            c.persist();
            // Total crash: RAM and checkpoint gone; only the disk is left.
            c.apply_nemesis(&NemesisOp::CrashAmnesia { node: 1 });
            c.apply_nemesis(&NemesisOp::Restart { node: 1 });
            // Raft re-derives its decided log from the recovered entries
            // once a leader re-teaches the commit index; others restore
            // it straight off the checkpoint. Either way a short run
            // converges.
            assert!(c.run_until_decided(3, 20_000_000), "{proto}: post-restart convergence");
            let recovered: Vec<u64> = c.decided(1).iter().map(|(_, p, _)| *p).collect();
            assert_eq!(recovered, reference, "{proto}: disk recovery");
            // The cold re-read of node 1's store sees the same blocks.
            let cold = c.cold_decided(1).expect("durable cluster reads cold");
            assert_eq!(
                cold.iter().map(|(_, p)| *p).collect::<Vec<u64>>(),
                reference,
                "{proto}: cold ledger"
            );
        }
    }

    #[test]
    fn erased_cluster_ignores_disk_faults_and_durable_net_arms_them() {
        // Plain clusters: disk ops are no-ops (no store to hurt).
        let mut plain = cluster::<u64>("pbft", 4, NetworkConfig::default()).unwrap();
        plain.apply_nemesis(&NemesisOp::FailSyncs { node: 0, count: 2 });
        plain.apply_nemesis(&NemesisOp::BitRot { node: 0 });
        assert!(plain.cold_decided(0).is_none(), "no store, no cold read");
        // Durable clusters survive an armed sync failure before the crash.
        let cfg = NetworkConfig { seed: 0xFA17, ..Default::default() };
        let mut c = durable_cluster_with::<u64>("raft", 3, cfg, fault_stores(3, 0xFA17)).unwrap();
        c.submit(7);
        assert!(c.run_until_decided(1, 5_000_000));
        c.apply_nemesis(&NemesisOp::FailSyncs { node: 2, count: 8 });
        c.persist(); // syncs swallowed on node 2: appends stay volatile
        c.apply_nemesis(&NemesisOp::CrashAmnesia { node: 2 });
        c.apply_nemesis(&NemesisOp::Restart { node: 2 });
        // Node 2 lost its unsynced writes but must re-join and re-learn
        // the decided prefix from its peers (Raft re-replicates).
        assert!(c.run_until_decided(1, 20_000_000), "node 2 re-learns after data loss");
        assert_eq!(c.decided(2)[0].1, 7);
    }

    #[test]
    fn byzantine_replicas_build_through_the_registry() {
        let cfg = NetworkConfig { seed: 11, ..Default::default() };
        let byz = [(3usize, vec![Attack::Mute])];
        let mut c = cluster_with::<u64>("pbft", 4, cfg, &byz).unwrap();
        c.submit(5);
        assert!(c.run_until_decided(1, 2_000_000), "f=1 tolerates one mute replica");
        for i in 0..3 {
            assert_eq!(c.decided(i)[0].1, 5, "honest node {i}");
        }
    }
}
