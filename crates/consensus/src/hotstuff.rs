//! HotStuff (Yin et al., PODC'19) — BFT consensus with *linear* message
//! complexity and leader rotation (§2.3.3's modern BFT option).
//!
//! This is the **basic** (non-chained) protocol: the leader of view `v`
//! drives three vote phases — Prepare, PreCommit, Commit — each a
//! leader-broadcast followed by replica-to-leader votes that the leader
//! aggregates into a quorum certificate (QC). Every phase costs `O(n)`
//! messages, versus PBFT's `O(n²)` all-to-all exchange (measured in E5),
//! and a single correct leader suffices to decide its view, so liveness
//! under crash faults needs no consecutive-honest-leader window.
//!
//! Safety follows the HotStuff rules: replicas *lock* on the commit-phase
//! QC and only vote for proposals that extend their locked block or carry
//! a newer justify QC.

use crate::common::{hooks, quorum, DecidedLog, Payload};
use pbc_sim::{Actor, Context, Durable, Message, NodeIdx, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A quorum certificate over `(phase, view, digest)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Qc {
    /// The certified view.
    pub view: u64,
    /// The certified block digest.
    pub digest: u64,
}

/// Vote/QC phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Phase 1: accept the proposal.
    Prepare,
    /// Phase 2: the prepare QC exists.
    PreCommit,
    /// Phase 3: the precommit QC exists (replicas lock).
    Commit,
}

/// HotStuff wire messages.
#[derive(Clone, Debug)]
pub enum HsMsg<P> {
    /// Client request.
    Request(P),
    /// Replica → leader(view): enter `view`, carrying the sender's
    /// highest prepare QC.
    NewView {
        /// The view being entered.
        view: u64,
        /// Sender's highest prepare QC.
        justify: Qc,
    },
    /// Leader's proposal for `view`.
    Propose {
        /// Proposal view.
        view: u64,
        /// Digest of the proposed block.
        digest: u64,
        /// Parent block digest (the justify QC's block).
        parent: u64,
        /// QC justifying the extension.
        justify: Qc,
        /// The proposed payload.
        payload: P,
    },
    /// Replica → leader(view): phase vote.
    Vote {
        /// The voted phase.
        phase: Phase,
        /// View.
        view: u64,
        /// Block digest.
        digest: u64,
    },
    /// Leader broadcast: the QC of `phase` formed; proceed.
    PhaseQc {
        /// The phase whose QC formed.
        phase: Phase,
        /// View.
        view: u64,
        /// Block digest.
        digest: u64,
    },
}

impl<P: Payload> Message for HsMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            HsMsg::Request(p) => 24 + p.wire_size(),
            HsMsg::NewView { .. } => 48,
            HsMsg::Propose { payload, .. } => 72 + payload.wire_size(),
            HsMsg::Vote { .. } | HsMsg::PhaseQc { .. } => 48,
        }
    }
}

#[derive(Clone, Debug)]
struct BlockRec<P> {
    parent: u64,
    payload: Option<P>,
    committed: bool,
}

/// Static configuration.
#[derive(Clone, Debug)]
pub struct HotStuffConfig {
    /// Number of replicas (`3f + 1`).
    pub n: usize,
    /// View timeout.
    pub timeout: SimTime,
}

impl HotStuffConfig {
    /// Defaults for LAN simulation.
    pub fn new(n: usize) -> Self {
        HotStuffConfig { n, timeout: 30_000 }
    }

    /// Vote quorum (`2f + 1`).
    pub fn quorum(&self) -> usize {
        quorum::bft_quorum(self.n)
    }

    /// Leader of a view.
    pub fn leader(&self, view: u64) -> NodeIdx {
        (view % self.n as u64) as NodeIdx
    }
}

const GENESIS: u64 = 0;

/// One HotStuff replica.
#[derive(Debug)]
pub struct HotStuffReplica<P> {
    cfg: HotStuffConfig,
    view: u64,
    blocks: HashMap<u64, BlockRec<P>>,
    /// Highest prepare QC seen (what new proposals extend).
    prepare_qc: Qc,
    /// Locked QC (set at commit phase).
    locked_qc: Qc,
    /// Leader vote tallies.
    votes: HashMap<(Phase, u64, u64), HashSet<NodeIdx>>,
    /// Leader NewView tallies: view → (senders, highest justify).
    new_views: HashMap<u64, (HashSet<NodeIdx>, Qc)>,
    pending: BTreeMap<u64, P>,
    delivered_digests: HashSet<u64>,
    proposed_in_view: HashSet<u64>,
    next_commit_seq: u64,
    nonce: u64,
    /// The in-order decided log.
    pub log: DecidedLog<P>,
    /// Timeouts fired (observability).
    pub timeouts: u64,
}

impl<P: Payload> HotStuffReplica<P> {
    /// Creates a replica.
    pub fn new(cfg: HotStuffConfig) -> Self {
        let mut blocks = HashMap::new();
        blocks.insert(GENESIS, BlockRec { parent: GENESIS, payload: None, committed: true });
        HotStuffReplica {
            cfg,
            view: 1,
            blocks,
            prepare_qc: Qc { view: 0, digest: GENESIS },
            locked_qc: Qc { view: 0, digest: GENESIS },
            votes: HashMap::new(),
            new_views: HashMap::new(),
            pending: BTreeMap::new(),
            delivered_digests: HashSet::new(),
            proposed_in_view: HashSet::new(),
            next_commit_seq: 0,
            nonce: 1,
            log: DecidedLog::default(),
            timeouts: 0,
        }
    }

    /// The replica's current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    fn block_digest(&mut self, view: u64, parent: u64, payload: &P) -> u64 {
        let mut z = view
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(parent.rotate_left(17))
            .wrapping_add(payload.digest_u64().rotate_left(31))
            .wrapping_add(self.nonce);
        self.nonce += 1;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        (z ^ (z >> 27)) | 1 // never collide with GENESIS = 0
    }

    /// True if `descendant`'s parent chain reaches `ancestor`.
    fn extends(&self, mut descendant: u64, ancestor: u64) -> bool {
        loop {
            if descendant == ancestor {
                return true;
            }
            match self.blocks.get(&descendant) {
                Some(b) if b.parent != descendant => descendant = b.parent,
                _ => return false,
            }
        }
    }

    /// Leader: propose if we have a NewView quorum and a payload.
    fn try_propose(&mut self, ctx: &mut Context<HsMsg<P>>) {
        let v = self.view;
        if self.cfg.leader(v) != ctx.self_id || self.proposed_in_view.contains(&v) {
            return;
        }
        let Some((senders, high)) = self.new_views.get(&v) else {
            return;
        };
        if senders.len() < self.cfg.quorum() {
            return;
        }
        let justify = if high.view > self.prepare_qc.view { *high } else { self.prepare_qc };
        let Some((_, payload)) = self
            .pending
            .iter()
            .find(|(d, _)| !self.delivered_digests.contains(d))
            .map(|(d, p)| (*d, p.clone()))
        else {
            return;
        };
        let parent = justify.digest;
        let digest = self.block_digest(v, parent, &payload);
        self.proposed_in_view.insert(v);
        hooks::leader("hotstuff", ctx.self_id, ctx.now, v);
        ctx.broadcast(HsMsg::Propose { view: v, digest, parent, justify, payload });
    }

    fn enter_view(&mut self, view: u64, ctx: &mut Context<HsMsg<P>>) {
        if view <= self.view {
            return;
        }
        self.view = view;
        ctx.send(self.cfg.leader(view), HsMsg::NewView { view, justify: self.prepare_qc });
        self.arm_timer(ctx);
        self.try_propose(ctx);
    }

    fn arm_timer(&mut self, ctx: &mut Context<HsMsg<P>>) {
        if !self.pending.is_empty() {
            ctx.set_timer(self.cfg.timeout, self.view);
        }
    }

    fn commit_block(&mut self, digest: u64, node: NodeIdx, now: SimTime) {
        // Commit the block and any uncommitted ancestors, oldest first.
        let mut chain = Vec::new();
        let mut cur = digest;
        loop {
            if cur == GENESIS {
                break;
            }
            let Some(b) = self.blocks.get(&cur) else {
                // A gap in the ancestry: we were unreachable when this
                // ancestor was proposed. Committing the tip now would
                // assign it the wrong local sequence number and diverge
                // from the quorum's log — stay behind (safe) instead.
                return;
            };
            if b.committed {
                break;
            }
            chain.push(cur);
            if b.parent == cur {
                break;
            }
            cur = b.parent;
        }
        for d in chain.into_iter().rev() {
            let block = self.blocks.get_mut(&d).expect("block exists");
            block.committed = true;
            if let Some(p) = block.payload.clone() {
                let pd = p.digest_u64();
                if self.delivered_digests.insert(pd) {
                    self.pending.remove(&pd);
                    hooks::commit("hotstuff", node, now, self.next_commit_seq, pd);
                    self.log.decide(self.next_commit_seq, p, now);
                    self.next_commit_seq += 1;
                }
            }
        }
    }
}

impl<P: Payload + 'static> crate::ordering::OrderingActor for HotStuffReplica<P> {
    type Payload = P;
    const PROTOCOL: &'static str = "hotstuff";

    fn request_msg(payload: P) -> HsMsg<P> {
        HsMsg::Request(payload)
    }

    fn log(&self) -> &DecidedLog<P> {
        &self.log
    }
}

impl<P: Payload> Actor for HotStuffReplica<P> {
    type Msg = HsMsg<P>;

    fn on_start(&mut self, ctx: &mut Context<HsMsg<P>>) {
        // Everyone announces view 1 to its leader.
        ctx.send(
            self.cfg.leader(self.view),
            HsMsg::NewView { view: self.view, justify: self.prepare_qc },
        );
    }

    fn on_message(&mut self, from: NodeIdx, msg: &HsMsg<P>, ctx: &mut Context<HsMsg<P>>) {
        match msg {
            HsMsg::Request(p) => {
                let d = p.digest_u64();
                if self.delivered_digests.contains(&d) || self.pending.contains_key(&d) {
                    return;
                }
                self.pending.insert(d, p.clone());
                self.arm_timer(ctx);
                self.try_propose(ctx);
            }
            HsMsg::NewView { view, justify } => {
                if *view < self.view {
                    return;
                }
                let entry = self
                    .new_views
                    .entry(*view)
                    .or_insert((HashSet::new(), Qc { view: 0, digest: GENESIS }));
                entry.0.insert(from);
                if justify.view > entry.1.view {
                    entry.1 = *justify;
                }
                if *view == self.view {
                    self.try_propose(ctx);
                }
            }
            HsMsg::Propose { view, digest, parent, justify, payload } => {
                if self.cfg.leader(*view) != from || *view < self.view {
                    return;
                }
                if self.delivered_digests.contains(&payload.digest_u64()) {
                    return;
                }
                self.blocks.entry(*digest).or_insert(BlockRec {
                    parent: *parent,
                    payload: Some(payload.clone()),
                    committed: false,
                });
                if *view > self.view {
                    // Catch up to the network's view.
                    self.view = *view;
                    self.arm_timer(ctx);
                }
                // SafeNode rule.
                let safe = self.extends(*parent, self.locked_qc.digest)
                    || justify.view > self.locked_qc.view;
                if safe {
                    ctx.send(
                        from,
                        HsMsg::Vote { phase: Phase::Prepare, view: *view, digest: *digest },
                    );
                }
            }
            HsMsg::Vote { phase, view, digest } => {
                // Only the view's leader tallies.
                if self.cfg.leader(*view) != ctx.self_id {
                    return;
                }
                let voters = self.votes.entry((*phase, *view, *digest)).or_default();
                voters.insert(from);
                if voters.len() == self.cfg.quorum() {
                    ctx.broadcast(HsMsg::PhaseQc { phase: *phase, view: *view, digest: *digest });
                }
            }
            HsMsg::PhaseQc { phase, view, digest } => {
                if self.cfg.leader(*view) != from || *view < self.view {
                    return;
                }
                let (view, digest) = (*view, *digest);
                match phase {
                    Phase::Prepare => {
                        let qc = Qc { view, digest };
                        if qc.view > self.prepare_qc.view {
                            self.prepare_qc = qc;
                            hooks::phase("hotstuff", ctx.self_id, ctx.now, view, "prepared");
                        }
                        ctx.send(from, HsMsg::Vote { phase: Phase::PreCommit, view, digest });
                    }
                    Phase::PreCommit => {
                        let qc = Qc { view, digest };
                        if qc.view > self.locked_qc.view {
                            self.locked_qc = qc;
                            hooks::phase("hotstuff", ctx.self_id, ctx.now, view, "locked");
                        }
                        ctx.send(from, HsMsg::Vote { phase: Phase::Commit, view, digest });
                    }
                    Phase::Commit => {
                        // Decide.
                        self.commit_block(digest, ctx.self_id, ctx.now);
                        self.enter_view(view + 1, ctx);
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, timer_view: u64, ctx: &mut Context<HsMsg<P>>) {
        if timer_view != self.view || self.pending.is_empty() {
            return;
        }
        self.timeouts += 1;
        let next = self.view + 1;
        self.view = next;
        hooks::view_change("hotstuff", ctx.self_id, ctx.now, next);
        ctx.send(self.cfg.leader(next), HsMsg::NewView { view: next, justify: self.prepare_qc });
        self.arm_timer(ctx);
        self.try_propose(ctx);
    }
}

/// HotStuff's stable state (opaque): the block tree with its commit
/// marks, the two safety-critical QCs (`prepare_qc` for liveness,
/// `locked_qc` for safety — a replica that forgot its lock could vote
/// for a conflicting branch), the commit sequence counter, and the
/// decided log. Vote tallies, NewView tallies and pending requests are
/// volatile: leaders re-collect them and clients retransmit.
#[derive(Clone, Debug)]
pub struct HsStable<P> {
    view: u64,
    blocks: Vec<(u64, u64, Option<P>, bool)>,
    prepare_qc: Qc,
    locked_qc: Qc,
    delivered_digests: HashSet<u64>,
    next_commit_seq: u64,
    nonce: u64,
    decided: Vec<(u64, P, SimTime)>,
}

impl<P: crate::common::PersistPayload> Durable for HotStuffReplica<P> {
    type Stable = HsStable<P>;

    fn checkpoint(&self) -> HsStable<P> {
        let mut blocks: Vec<(u64, u64, Option<P>, bool)> = self
            .blocks
            .iter()
            .map(|(d, b)| (*d, b.parent, b.payload.clone(), b.committed))
            .collect();
        blocks.sort_unstable_by_key(|(d, ..)| *d);
        HsStable {
            view: self.view,
            blocks,
            prepare_qc: self.prepare_qc,
            locked_qc: self.locked_qc,
            delivered_digests: self.delivered_digests.clone(),
            next_commit_seq: self.next_commit_seq,
            nonce: self.nonce,
            decided: self.log.snapshot(),
        }
    }

    fn restore(crashed: &Self, stable: HsStable<P>) -> Self {
        let mut r = HotStuffReplica::new(crashed.cfg.clone());
        r.view = r.view.max(stable.view);
        r.blocks = stable
            .blocks
            .into_iter()
            .map(|(d, parent, payload, committed)| (d, BlockRec { parent, payload, committed }))
            .collect();
        r.blocks.entry(GENESIS).or_insert(BlockRec {
            parent: GENESIS,
            payload: None,
            committed: true,
        });
        r.prepare_qc = stable.prepare_qc;
        r.locked_qc = stable.locked_qc;
        r.delivered_digests = stable.delivered_digests;
        r.next_commit_seq = stable.next_commit_seq;
        r.nonce = stable.nonce.max(1);
        r.log = DecidedLog::from_snapshot(0, stable.decided);
        // `on_start` re-announces the current view to its leader, which
        // re-joins the replica into the protocol.
        r
    }

    fn encode_stable(stable: &HsStable<P>) -> Vec<u8> {
        let mut e = pbc_types::encode::Encoder::new();
        e.u64(stable.view);
        e.u64(stable.blocks.len() as u64);
        for (digest, parent, payload, committed) in &stable.blocks {
            e.u64(*digest).u64(*parent);
            match payload {
                Some(p) => {
                    e.tag(1).bytes(&p.to_bytes());
                }
                None => {
                    e.tag(0);
                }
            }
            e.tag(*committed as u8);
        }
        e.u64(stable.prepare_qc.view).u64(stable.prepare_qc.digest);
        e.u64(stable.locked_qc.view).u64(stable.locked_qc.digest);
        let mut digests: Vec<u64> = stable.delivered_digests.iter().copied().collect();
        digests.sort_unstable();
        e.u64(digests.len() as u64);
        for d in digests {
            e.u64(d);
        }
        e.u64(stable.next_commit_seq).u64(stable.nonce);
        e.u64(stable.decided.len() as u64);
        for (seq, payload, time) in &stable.decided {
            e.u64(*seq).bytes(&payload.to_bytes()).u64(*time);
        }
        e.finish()
    }

    fn decode_stable(_crashed: &Self, bytes: &[u8]) -> Option<HsStable<P>> {
        let mut d = pbc_types::encode::Decoder::new(bytes);
        let view = d.u64()?;
        let n_blocks = d.u64()? as usize;
        let mut blocks = Vec::with_capacity(n_blocks.min(1024));
        for _ in 0..n_blocks {
            let digest = d.u64()?;
            let parent = d.u64()?;
            let payload = match d.tag()? {
                0 => None,
                1 => Some(P::from_bytes(d.bytes()?)?),
                _ => return None,
            };
            let committed = match d.tag()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            blocks.push((digest, parent, payload, committed));
        }
        let prepare_qc = Qc { view: d.u64()?, digest: d.u64()? };
        let locked_qc = Qc { view: d.u64()?, digest: d.u64()? };
        let n_digests = d.u64()? as usize;
        let mut delivered_digests = HashSet::with_capacity(n_digests.min(1024));
        for _ in 0..n_digests {
            delivered_digests.insert(d.u64()?);
        }
        let next_commit_seq = d.u64()?;
        let nonce = d.u64()?;
        let n_decided = d.u64()? as usize;
        let mut decided = Vec::with_capacity(n_decided.min(1024));
        for _ in 0..n_decided {
            let seq = d.u64()?;
            let payload = P::from_bytes(d.bytes()?)?;
            let time = d.u64()?;
            decided.push((seq, payload, time));
        }
        d.is_empty().then_some(HsStable {
            view,
            blocks,
            prepare_qc,
            locked_qc,
            delivered_digests,
            next_commit_seq,
            nonce,
            decided,
        })
    }

    fn blank_stable(_crashed: &Self) -> HsStable<P> {
        HsStable {
            view: 1,
            blocks: vec![(GENESIS, GENESIS, None, true)],
            prepare_qc: Qc { view: 0, digest: GENESIS },
            locked_qc: Qc { view: 0, digest: GENESIS },
            delivered_digests: HashSet::new(),
            next_commit_seq: 0,
            nonce: 1,
            decided: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_sim::{Network, NetworkConfig};

    fn cluster(n: usize, seed: u64) -> Network<HotStuffReplica<u64>> {
        let cfg = HotStuffConfig::new(n);
        let actors = (0..n).map(|_| HotStuffReplica::new(cfg.clone())).collect();
        let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
        net.start();
        net
    }

    fn submit(net: &mut Network<HotStuffReplica<u64>>, p: u64) {
        for i in 0..net.len() {
            net.inject(0, i, HsMsg::Request(p), 1);
        }
    }

    fn run_until_delivered(net: &mut Network<HotStuffReplica<u64>>, target: usize, max: u64) {
        let mut events = 0;
        while events < max {
            let done = (0..net.len())
                .filter(|&i| !net.is_crashed(i))
                .all(|i| net.actor(i).log.len() >= target);
            if done || !net.step() {
                return;
            }
            events += 1;
        }
        panic!("exhausted {max} events before delivering {target}");
    }

    fn logs_agree(net: &Network<HotStuffReplica<u64>>, expected: usize) {
        let first = (0..net.len()).find(|&i| !net.is_crashed(i)).unwrap();
        let reference: Vec<u64> =
            net.actor(first).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(reference.len(), expected, "delivered count");
        for i in 0..net.len() {
            if net.is_crashed(i) {
                continue;
            }
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, reference, "node {i}");
        }
    }

    #[test]
    fn single_request_decides() {
        let mut net = cluster(4, 1);
        submit(&mut net, 42);
        run_until_delivered(&mut net, 1, 2_000_000);
        logs_agree(&net, 1);
    }

    #[test]
    fn many_requests_agree() {
        let mut net = cluster(4, 2);
        for p in 1..=12u64 {
            submit(&mut net, p);
        }
        run_until_delivered(&mut net, 12, 10_000_000);
        logs_agree(&net, 12);
    }

    #[test]
    fn leaders_rotate_per_view() {
        let mut net = cluster(4, 3);
        for p in 1..=6u64 {
            submit(&mut net, p);
        }
        run_until_delivered(&mut net, 6, 10_000_000);
        // Six payloads decided → the view advanced at least six times.
        assert!(net.actor(0).view() >= 6);
    }

    #[test]
    fn crashed_leader_timeout_recovers() {
        let mut net = cluster(4, 4);
        net.crash(1); // leader of view 1, the first proposer
        submit(&mut net, 7);
        run_until_delivered(&mut net, 1, 20_000_000);
        for i in [0usize, 2, 3] {
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, vec![7], "node {i}");
            assert!(net.actor(i).timeouts >= 1, "node {i} must have timed out");
        }
    }

    #[test]
    fn crashed_backup_is_harmless() {
        let mut net = cluster(7, 5);
        net.crash(3);
        net.crash(5);
        for p in 1..=5u64 {
            submit(&mut net, p);
        }
        run_until_delivered(&mut net, 5, 20_000_000);
        logs_agree(&net, 5);
    }

    #[test]
    fn linear_vs_pbft_message_complexity() {
        // HotStuff messages per decision grow ~linearly in n; the
        // n=16 / n=4 ratio stays well under PBFT's quadratic growth (≈16).
        let msgs = |n: usize| {
            let mut net = cluster(n, 5);
            submit(&mut net, 1);
            run_until_delivered(&mut net, 1, 10_000_000);
            net.stats().msgs_sent as f64
        };
        let m4 = msgs(4);
        let m16 = msgs(16);
        assert!(m16 / m4 < 9.0, "ratio {:.1} too high for linear protocol", m16 / m4);
    }

    #[test]
    fn duplicates_commit_once() {
        let mut net = cluster(4, 7);
        submit(&mut net, 42);
        submit(&mut net, 42);
        run_until_delivered(&mut net, 1, 5_000_000);
        net.run_to_quiescence(5_000_000);
        logs_agree(&net, 1);
    }

    #[test]
    fn network_quiesces_after_decisions() {
        let mut net = cluster(4, 8);
        submit(&mut net, 5);
        run_until_delivered(&mut net, 1, 5_000_000);
        let steps = net.run_to_quiescence(10_000_000);
        assert!(steps < 10_000_000, "network must quiesce after deciding");
    }

    #[test]
    fn stable_codec_roundtrips_and_rejects_truncation() {
        let mut net = cluster(4, 31);
        for p in 1..=3u64 {
            submit(&mut net, p);
        }
        run_until_delivered(&mut net, 3, 10_000_000);
        for i in 0..4 {
            let stable = net.actor(i).checkpoint();
            assert!(!stable.decided.is_empty(), "node {i} decided something");
            let bytes = HotStuffReplica::<u64>::encode_stable(&stable);
            let back = HotStuffReplica::decode_stable(net.actor(i), &bytes).expect("decodes");
            assert_eq!(HotStuffReplica::<u64>::encode_stable(&back), bytes, "canonical roundtrip");
            assert_eq!(back.locked_qc, stable.locked_qc, "lock survives");
            assert!(
                HotStuffReplica::decode_stable(net.actor(i), &bytes[..bytes.len() - 1]).is_none()
            );
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(HotStuffReplica::decode_stable(net.actor(i), &padded).is_none());
        }
    }
}
