//! Byte-level message codecs: what a protocol needs to leave the
//! simulator.
//!
//! Inside the simulator, messages travel as cloned Rust values and
//! never need a byte representation. The moment the same actor runs
//! over a real socket (`pbc-net`, ROADMAP item 5), every message must
//! cross the wire as bytes and — crucially — be decodable from bytes an
//! *untrusted peer* produced. [`WireMsg`] is that contract: a canonical
//! encoding via [`pbc_types::encode`] plus a checked decoder that
//! returns `None` on truncation, unknown tags, or trailing garbage
//! instead of panicking.
//!
//! A protocol becomes deployable over TCP by implementing `WireMsg` for
//! its message type and adding one arm to
//! [`run_real`](crate::run_real) — the registry keeps the same
//! one-line-per-protocol shape it has for simulator clusters. PBFT and
//! IBFT (both [`PbftMsg`]) are wire-capable today.

use crate::common::PersistPayload;
use crate::pbft::PbftMsg;
use pbc_sim::Message;
use pbc_types::encode::{Decoder, Encoder};

/// A consensus message with a canonical byte encoding, decodable from
/// untrusted input.
///
/// Implementations must be **total** on the decode side: any byte
/// string either decodes to a value or yields `None` — never a panic —
/// because the bytes arrive from a network peer, not from our own
/// serializer. [`from_wire`](WireMsg::from_wire) additionally rejects
/// trailing bytes, so a frame is either exactly one message or invalid.
pub trait WireMsg: Message + Sized {
    /// Appends the canonical encoding of `self` to `e`.
    fn encode_wire(&self, e: &mut Encoder);

    /// Decodes one message from the front of `d`, consuming exactly the
    /// bytes [`encode_wire`](WireMsg::encode_wire) produced. `None` on
    /// any malformation.
    fn decode_wire(d: &mut Decoder<'_>) -> Option<Self>;

    /// The canonical encoding as an owned buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_wire(&mut e);
        e.finish()
    }

    /// Decodes a buffer holding exactly one message; trailing bytes are
    /// rejected (a frame carries one message, nothing more).
    fn from_wire(bytes: &[u8]) -> Option<Self> {
        let mut d = Decoder::new(bytes);
        let msg = Self::decode_wire(&mut d)?;
        d.is_empty().then_some(msg)
    }
}

// Message kind tags. Explicit and stable: the wire format is part of
// the deployment surface, not an implementation detail.
const T_REQUEST: u8 = 1;
const T_PRE_PREPARE: u8 = 2;
const T_PREPARE: u8 = 3;
const T_COMMIT: u8 = 4;
const T_VIEW_CHANGE: u8 = 5;
const T_NEW_VIEW: u8 = 6;
const T_DECIDED: u8 = 7;

/// Bound on `ViewChange`/`NewView` proposal lists accepted from the
/// wire. The protocol never produces anywhere near this many in-flight
/// slots; a declared length beyond it is malformed input (and must be
/// rejected *before* any proportional allocation).
const MAX_WIRE_SLOTS: u64 = 1 << 16;

fn encode_slots<P: PersistPayload>(e: &mut Encoder, slots: &[(u64, P)]) {
    e.u64(slots.len() as u64);
    for (seq, payload) in slots {
        e.u64(*seq).bytes(&payload.to_bytes());
    }
}

fn decode_slots<P: PersistPayload>(d: &mut Decoder<'_>) -> Option<Vec<(u64, P)>> {
    let n = d.u64()?;
    if n > MAX_WIRE_SLOTS {
        return None;
    }
    let mut slots = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let seq = d.u64()?;
        let payload = P::from_bytes(d.bytes()?)?;
        slots.push((seq, payload));
    }
    Some(slots)
}

impl<P: PersistPayload> WireMsg for PbftMsg<P> {
    fn encode_wire(&self, e: &mut Encoder) {
        match self {
            PbftMsg::Request(p) => {
                e.tag(T_REQUEST).bytes(&p.to_bytes());
            }
            PbftMsg::PrePrepare { view, seq, payload } => {
                e.tag(T_PRE_PREPARE).u64(*view).u64(*seq).bytes(&payload.to_bytes());
            }
            PbftMsg::Prepare { view, seq, digest } => {
                e.tag(T_PREPARE).u64(*view).u64(*seq).u64(*digest);
            }
            PbftMsg::Commit { view, seq, digest } => {
                e.tag(T_COMMIT).u64(*view).u64(*seq).u64(*digest);
            }
            PbftMsg::ViewChange { new_view, prepared, delivered } => {
                e.tag(T_VIEW_CHANGE).u64(*new_view).u64(*delivered);
                encode_slots(e, prepared);
            }
            PbftMsg::NewView { view, proposals } => {
                e.tag(T_NEW_VIEW).u64(*view);
                encode_slots(e, proposals);
            }
            PbftMsg::Decided { seq, payload } => {
                e.tag(T_DECIDED).u64(*seq).bytes(&payload.to_bytes());
            }
        }
    }

    fn decode_wire(d: &mut Decoder<'_>) -> Option<Self> {
        Some(match d.tag()? {
            T_REQUEST => PbftMsg::Request(P::from_bytes(d.bytes()?)?),
            T_PRE_PREPARE => PbftMsg::PrePrepare {
                view: d.u64()?,
                seq: d.u64()?,
                payload: P::from_bytes(d.bytes()?)?,
            },
            T_PREPARE => PbftMsg::Prepare { view: d.u64()?, seq: d.u64()?, digest: d.u64()? },
            T_COMMIT => PbftMsg::Commit { view: d.u64()?, seq: d.u64()?, digest: d.u64()? },
            T_VIEW_CHANGE => {
                let new_view = d.u64()?;
                let delivered = d.u64()?;
                PbftMsg::ViewChange { new_view, prepared: decode_slots(d)?, delivered }
            }
            T_NEW_VIEW => PbftMsg::NewView { view: d.u64()?, proposals: decode_slots(d)? },
            T_DECIDED => PbftMsg::Decided { seq: d.u64()?, payload: P::from_bytes(d.bytes()?)? },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_msgs() -> Vec<PbftMsg<u64>> {
        vec![
            PbftMsg::Request(42),
            PbftMsg::PrePrepare { view: 3, seq: 9, payload: 7 },
            PbftMsg::Prepare { view: 3, seq: 9, digest: 0xDEAD },
            PbftMsg::Commit { view: 3, seq: 9, digest: 0xBEEF },
            PbftMsg::ViewChange { new_view: 4, prepared: vec![(9, 7), (10, 8)], delivered: 8 },
            PbftMsg::NewView { view: 4, proposals: vec![(9, 7)] },
            PbftMsg::Decided { seq: 9, payload: 7 },
        ]
    }

    fn same(a: &PbftMsg<u64>, b: &PbftMsg<u64>) -> bool {
        // PbftMsg has no PartialEq (payloads may not); compare encodings.
        a.to_wire() == b.to_wire()
    }

    #[test]
    fn every_variant_roundtrips() {
        for msg in all_msgs() {
            let bytes = msg.to_wire();
            let back = PbftMsg::<u64>::from_wire(&bytes).expect("roundtrip");
            assert!(same(&msg, &back), "{msg:?} != {back:?}");
        }
    }

    #[test]
    fn every_truncation_is_rejected_not_panicking() {
        for msg in all_msgs() {
            let bytes = msg.to_wire();
            for cut in 0..bytes.len() {
                assert!(
                    PbftMsg::<u64>::from_wire(&bytes[..cut]).is_none(),
                    "{msg:?} truncated to {cut} bytes decoded"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        for msg in all_msgs() {
            let mut bytes = msg.to_wire();
            bytes.push(0);
            assert!(PbftMsg::<u64>::from_wire(&bytes).is_none(), "{msg:?} + garbage decoded");
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert!(PbftMsg::<u64>::from_wire(&[0xEE]).is_none());
        assert!(PbftMsg::<u64>::from_wire(&[]).is_none());
    }

    #[test]
    fn absurd_slot_count_is_rejected_before_allocating() {
        // A ViewChange claiming u64::MAX prepared slots: the declared
        // length must be bounds-checked before any Vec::with_capacity.
        let mut e = Encoder::new();
        e.tag(T_VIEW_CHANGE).u64(5).u64(0).u64(u64::MAX);
        assert!(PbftMsg::<u64>::from_wire(&e.finish()).is_none());
    }
}
