//! Shared consensus vocabulary: payloads, decided logs, quorum math.

use pbc_sim::SimTime;

/// What a consensus protocol agrees on.
///
/// Protocol proposals carry the full payload; votes carry only
/// `digest_u64()`. Benches use `u64` payloads; the architecture crates
/// decide on serialized blocks.
///
/// `Send + Sync` are supertraits so any protocol message generic over a
/// payload can cross lane-worker threads: the multi-lane simulator core
/// (`pbc_sim::ParNetwork`) shares in-flight messages between lanes by
/// `Arc`, and every payload in this workspace is plain owned data.
pub trait Payload: Clone + PartialEq + std::fmt::Debug + Send + Sync {
    /// A collision-resistant-enough digest for vote messages.
    fn digest_u64(&self) -> u64;

    /// Approximate serialized size for byte accounting.
    fn wire_size(&self) -> usize {
        256
    }

    /// A *conflicting* payload (different digest) an equivocating
    /// proposer could substitute, or `None` if this payload type cannot
    /// fabricate one. Drives [`pbc_sim::Message::equivocate`] for
    /// proposal messages, letting the generic [`pbc_sim::Adversary`]
    /// fork proposals without protocol knowledge.
    fn forked(&self) -> Option<Self> {
        None
    }
}

/// A payload that can round-trip through a real stable store.
///
/// [`Payload`] is enough to *order* values; persisting them to a
/// `pbc-store` WAL additionally needs a byte codec. `from_bytes` returns
/// `None` on malformed input — the bytes may have just been recovered
/// from a torn or rotted disk, and decoding must degrade, never panic.
pub trait PersistPayload: Payload {
    /// Serializes the payload for stable storage.
    fn to_bytes(&self) -> Vec<u8>;

    /// Deserializes bytes produced by [`PersistPayload::to_bytes`];
    /// `None` on any malformation.
    fn from_bytes(bytes: &[u8]) -> Option<Self>;
}

impl PersistPayload for u64 {
    fn to_bytes(&self) -> Vec<u8> {
        self.to_be_bytes().to_vec()
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_be_bytes(bytes.try_into().ok()?))
    }
}

impl Payload for u64 {
    fn digest_u64(&self) -> u64 {
        // splitmix64 finalizer: decorrelates sequential ids.
        let mut z = self.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn wire_size(&self) -> usize {
        8
    }

    fn forked(&self) -> Option<Self> {
        Some(self.wrapping_add(1))
    }
}

/// An in-order decided log with decision timestamps.
///
/// Protocols push decisions as slots finalize (possibly out of order);
/// the log delivers them in sequence-number order, which is what state
/// machine replication requires (§2.2).
#[derive(Clone, Debug)]
pub struct DecidedLog<P> {
    delivered: Vec<(u64, P, SimTime)>,
    buffer: std::collections::BTreeMap<u64, (P, SimTime)>,
    next_seq: u64,
}

impl<P> Default for DecidedLog<P> {
    fn default() -> Self {
        DecidedLog { delivered: Vec::new(), buffer: std::collections::BTreeMap::new(), next_seq: 0 }
    }
}

impl<P: Clone> DecidedLog<P> {
    /// A fresh log expecting sequence number `first_seq` first.
    pub fn starting_at(first_seq: u64) -> Self {
        DecidedLog { next_seq: first_seq, ..Default::default() }
    }

    /// Records that `seq` decided `payload` at `time`. Duplicate
    /// decisions for an already-delivered or buffered slot are ignored.
    pub fn decide(&mut self, seq: u64, payload: P, time: SimTime) {
        if seq < self.next_seq || self.buffer.contains_key(&seq) {
            return;
        }
        self.buffer.insert(seq, (payload, time));
        while let Some((p, t)) = self.buffer.remove(&self.next_seq) {
            self.delivered.push((self.next_seq, p, t));
            self.next_seq += 1;
        }
    }

    /// The contiguous, in-order delivered prefix.
    pub fn delivered(&self) -> &[(u64, P, SimTime)] {
        &self.delivered
    }

    /// Number of delivered entries.
    pub fn len(&self) -> usize {
        self.delivered.len()
    }

    /// True if nothing was delivered yet.
    pub fn is_empty(&self) -> bool {
        self.delivered.is_empty()
    }

    /// The payloads in delivery order (for agreement assertions).
    pub fn payloads(&self) -> Vec<&P> {
        self.delivered.iter().map(|(_, p, _)| p).collect()
    }

    /// Next expected sequence number.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Every known decision — the delivered prefix plus buffered
    /// out-of-order decisions — for checkpointing to stable storage.
    pub fn snapshot(&self) -> Vec<(u64, P, SimTime)> {
        let mut all = self.delivered.clone();
        all.extend(self.buffer.iter().map(|(s, (p, t))| (*s, p.clone(), *t)));
        all
    }

    /// Rebuilds a log (first expected sequence `first_seq`) from a
    /// [`DecidedLog::snapshot`].
    pub fn from_snapshot(first_seq: u64, entries: Vec<(u64, P, SimTime)>) -> Self {
        let mut log = DecidedLog::starting_at(first_seq);
        for (seq, payload, time) in entries {
            log.decide(seq, payload, time);
        }
        log
    }
}

/// Trace hooks shared by every protocol implementation.
///
/// Thin wrappers over [`pbc_trace::emit`] so protocol code states *what*
/// happened (a phase entry, a view change, a commit) and the emission
/// mechanics — the enabled check, the closure guard, the event shape —
/// live in one place. All hooks are free when tracing is disabled: the
/// `#[inline]` enabled check in `pbc_trace` short-circuits before any
/// argument is packed into an event.
pub mod hooks {
    use pbc_sim::{NodeIdx, SimTime};
    use pbc_trace::TraceEvent;

    /// A replica entered `phase` of `view` (PBFT pre-prepared/prepared,
    /// HotStuff locked, Tendermint prevote/precommit, ...).
    #[inline]
    pub fn phase(proto: &'static str, node: NodeIdx, now: SimTime, view: u64, phase: &'static str) {
        pbc_trace::emit(now, || TraceEvent::Phase { proto, node, view, phase });
    }

    /// A replica started or joined a view change targeting `view`.
    #[inline]
    pub fn view_change(proto: &'static str, node: NodeIdx, now: SimTime, view: u64) {
        pbc_trace::emit(now, || TraceEvent::ViewChange { proto, node, view });
    }

    /// A node became a candidate for `term` (Raft-style elections).
    #[inline]
    pub fn election(proto: &'static str, node: NodeIdx, now: SimTime, term: u64) {
        pbc_trace::emit(now, || TraceEvent::Election { proto, node, term });
    }

    /// A node won leadership of `term`/view.
    #[inline]
    pub fn leader(proto: &'static str, node: NodeIdx, now: SimTime, term: u64) {
        pbc_trace::emit(now, || TraceEvent::LeaderElected { proto, node, term });
    }

    /// A replica decided log slot `seq` (call next to
    /// [`super::DecidedLog::decide`]).
    #[inline]
    pub fn commit(proto: &'static str, node: NodeIdx, now: SimTime, seq: u64, digest: u64) {
        pbc_trace::emit(now, || TraceEvent::Commit { proto, node, seq, digest });
    }
}

/// Quorum sizes for the standard fault models.
pub mod quorum {
    /// Max Byzantine faults tolerable with `n` replicas (`⌊(n-1)/3⌋`).
    pub fn bft_f(n: usize) -> usize {
        (n - 1) / 3
    }

    /// Byzantine quorum `2f+1` for `n` replicas.
    pub fn bft_quorum(n: usize) -> usize {
        2 * bft_f(n) + 1
    }

    /// Max crash faults tolerable with `n` replicas (`⌊(n-1)/2⌋`).
    pub fn cft_f(n: usize) -> usize {
        (n - 1) / 2
    }

    /// Majority quorum.
    pub fn majority(n: usize) -> usize {
        n / 2 + 1
    }

    /// MinBFT / A2M fault bound: `n = 2f+1` tolerates `f` with trusted
    /// hardware, quorum `f+1`.
    pub fn a2m_f(n: usize) -> usize {
        (n - 1) / 2
    }

    /// MinBFT quorum `f+1`.
    pub fn a2m_quorum(n: usize) -> usize {
        a2m_f(n) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decided_log_orders_out_of_order_decisions() {
        let mut log: DecidedLog<u64> = DecidedLog::default();
        log.decide(2, 20, 5);
        assert!(log.is_empty(), "gap before seq 0");
        log.decide(0, 0, 1);
        assert_eq!(log.len(), 1);
        log.decide(1, 10, 3);
        assert_eq!(log.len(), 3);
        assert_eq!(log.payloads(), vec![&0, &10, &20]);
        assert_eq!(log.next_seq(), 3);
    }

    #[test]
    fn duplicate_decisions_ignored() {
        let mut log: DecidedLog<u64> = DecidedLog::default();
        log.decide(0, 5, 1);
        log.decide(0, 99, 2);
        assert_eq!(log.payloads(), vec![&5]);
    }

    #[test]
    fn starting_at_offsets_delivery() {
        let mut log: DecidedLog<u64> = DecidedLog::starting_at(10);
        log.decide(10, 1, 0);
        assert_eq!(log.len(), 1);
        log.decide(9, 9, 0); // below the floor: ignored
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_buffered_decisions() {
        let mut log: DecidedLog<u64> = DecidedLog::default();
        log.decide(0, 10, 1);
        log.decide(2, 30, 5); // buffered: gap at seq 1
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        let mut restored = DecidedLog::from_snapshot(0, snap);
        assert_eq!(restored.payloads(), vec![&10]);
        restored.decide(1, 20, 9);
        assert_eq!(restored.payloads(), vec![&10, &20, &30]);
    }

    #[test]
    fn quorum_math() {
        use quorum::*;
        assert_eq!(bft_f(4), 1);
        assert_eq!(bft_quorum(4), 3);
        assert_eq!(bft_f(7), 2);
        assert_eq!(bft_quorum(7), 5);
        assert_eq!(cft_f(5), 2);
        assert_eq!(majority(5), 3);
        assert_eq!(a2m_f(3), 1);
        assert_eq!(a2m_quorum(3), 2);
    }

    #[test]
    fn u64_payload_digest_spreads() {
        assert_ne!(Payload::digest_u64(&1u64), Payload::digest_u64(&2u64));
        assert_eq!(1u64.wire_size(), 8);
    }

    #[test]
    fn u64_persist_roundtrip_and_rejection() {
        let bytes = PersistPayload::to_bytes(&0xDEAD_BEEFu64);
        assert_eq!(<u64 as PersistPayload>::from_bytes(&bytes), Some(0xDEAD_BEEF));
        assert_eq!(<u64 as PersistPayload>::from_bytes(&bytes[..7]), None);
        assert_eq!(<u64 as PersistPayload>::from_bytes(&[]), None);
    }
}
