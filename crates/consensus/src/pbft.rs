//! PBFT (Castro–Liskov) with view changes, plus an IBFT-style
//! rotating-proposer mode.
//!
//! The protocol of §2.2: `n = 3f + 1` replicas, a primary assigns
//! sequence numbers and the replicas run the classic three-phase exchange
//! — `PrePrepare` (primary → all), `Prepare` (all → all), `Commit`
//! (all → all) — deciding a slot once `2f + 1` distinct replicas commit
//! the same `(view, digest)`. Message complexity is `O(n²)` per decision,
//! the baseline HotStuff's linear scheme is measured against (E5).
//!
//! A progress timer guards liveness: replicas that hold undecided client
//! requests past the timeout broadcast `ViewChange` for the next view;
//! the new primary collects `2f + 1` view-change votes, re-proposes every
//! prepared slot (safety) plus all pending requests, and announces them
//! in `NewView`.
//!
//! [`LeaderPolicy::RotatePerHeight`] turns the module into an IBFT-style
//! protocol: the proposer of height `h` is `(h + view) mod n` and heights
//! are decided one at a time.

use crate::common::{hooks, quorum, DecidedLog, Payload};
use pbc_sim::{Actor, Context, Durable, Message, NodeIdx, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Who proposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaderPolicy {
    /// Classic PBFT: primary = `view mod n`, pipelined sequence numbers.
    FixedPerView,
    /// IBFT-style: proposer of height `h` is `(h + view) mod n`; one
    /// height in flight at a time.
    RotatePerHeight,
}

/// Static configuration shared by all replicas.
#[derive(Clone, Debug)]
pub struct PbftConfig {
    /// Number of replicas (`3f + 1` for full Byzantine tolerance;
    /// `2u + r + 1` in hybrid mode).
    pub n: usize,
    /// Progress timeout before starting a view change.
    pub timeout: SimTime,
    /// Leader policy (PBFT vs IBFT mode).
    pub policy: LeaderPolicy,
    /// Vote quorum size.
    quorum_size: usize,
    /// Byzantine-fault bound (drives the view-change join threshold).
    byz_bound: usize,
}

impl PbftConfig {
    /// Classic PBFT with the given replica count (`quorum = 2f + 1`).
    pub fn new(n: usize) -> Self {
        PbftConfig {
            n,
            timeout: 50_000,
            policy: LeaderPolicy::FixedPerView,
            quorum_size: quorum::bft_quorum(n),
            byz_bound: quorum::bft_f(n),
        }
    }

    /// IBFT-style rotating proposer.
    pub fn ibft(n: usize) -> Self {
        PbftConfig { policy: LeaderPolicy::RotatePerHeight, ..Self::new(n) }
    }

    /// Hybrid fault model (SeeMoRe \[14\] / UpRight \[22\], §2.3.3): tolerate
    /// up to `u` total failures of which at most `r` are Byzantine, with
    /// `n = 2u + r + 1` replicas and quorums of `u + r + 1`. Two quorums
    /// intersect in `r + 1` replicas — at least one honest — so safety
    /// holds with fewer replicas than PBFT whenever `r < u` (e.g.
    /// tolerating 2 crashes + 1 Byzantine takes 6 nodes instead of 10).
    ///
    /// # Panics
    /// Panics if `r > u` (the Byzantine bound counts toward `u`).
    pub fn hybrid(u: usize, r: usize) -> Self {
        assert!(r <= u, "byzantine faults count toward the total bound");
        let n = 2 * u + r + 1;
        PbftConfig {
            n,
            timeout: 50_000,
            policy: LeaderPolicy::FixedPerView,
            quorum_size: u + r + 1,
            byz_bound: r,
        }
    }

    /// Tolerated Byzantine faults (`r` in hybrid mode).
    pub fn f(&self) -> usize {
        self.byz_bound
    }

    /// Quorum size (`2f + 1` classic, `u + r + 1` hybrid).
    pub fn quorum(&self) -> usize {
        self.quorum_size
    }

    /// The proposer of `(view, seq)` under the configured policy.
    pub fn proposer(&self, view: u64, seq: u64) -> NodeIdx {
        match self.policy {
            LeaderPolicy::FixedPerView => (view % self.n as u64) as NodeIdx,
            LeaderPolicy::RotatePerHeight => ((view + seq) % self.n as u64) as NodeIdx,
        }
    }
}

/// PBFT wire messages.
#[derive(Clone, Debug)]
pub enum PbftMsg<P> {
    /// A client request (injected by the harness to every replica).
    Request(P),
    /// Primary's proposal for a slot.
    PrePrepare {
        /// Proposal view.
        view: u64,
        /// Slot.
        seq: u64,
        /// Proposed payload.
        payload: P,
    },
    /// Phase-2 vote.
    Prepare {
        /// Vote view.
        view: u64,
        /// Slot.
        seq: u64,
        /// Payload digest.
        digest: u64,
    },
    /// Phase-3 vote.
    Commit {
        /// Vote view.
        view: u64,
        /// Slot.
        seq: u64,
        /// Payload digest.
        digest: u64,
    },
    /// Vote to move to `new_view`, carrying the sender's prepared slots.
    ViewChange {
        /// The proposed new view.
        new_view: u64,
        /// Slots the sender prepared (2f+1 prepares) but not decided.
        prepared: Vec<(u64, P)>,
        /// The sender's contiguous delivered watermark (peers ahead of it
        /// respond with `Decided` state transfer).
        delivered: u64,
    },
    /// New primary's announcement re-proposing slots in `view`.
    NewView {
        /// The installed view.
        view: u64,
        /// Re-proposals `(seq, payload)`.
        proposals: Vec<(u64, P)>,
    },
    /// State-transfer aid: "I decided `payload` at `seq`". A replica
    /// adopts a slot once `f + 1` distinct peers assert the same decision
    /// (at least one of them is honest and only asserts after deciding).
    Decided {
        /// The decided slot.
        seq: u64,
        /// The decided payload.
        payload: P,
    },
}

impl<P: Payload> Message for PbftMsg<P> {
    fn wire_size(&self) -> usize {
        match self {
            PbftMsg::Request(p) => 24 + p.wire_size(),
            PbftMsg::PrePrepare { payload, .. } => 48 + payload.wire_size(),
            PbftMsg::Prepare { .. } | PbftMsg::Commit { .. } => 48,
            PbftMsg::ViewChange { prepared, .. } => {
                64 + prepared.iter().map(|(_, p)| 8 + p.wire_size()).sum::<usize>()
            }
            PbftMsg::NewView { proposals, .. } => {
                64 + proposals.iter().map(|(_, p)| 8 + p.wire_size()).sum::<usize>()
            }
            PbftMsg::Decided { payload, .. } => 32 + payload.wire_size(),
        }
    }

    /// The only PBFT message a Byzantine sender can usefully fork is the
    /// proposal: same `(view, seq)`, conflicting payload.
    fn equivocate(&self) -> Option<Self> {
        match self {
            PbftMsg::PrePrepare { view, seq, payload } => {
                payload.forked().map(|p| PbftMsg::PrePrepare { view: *view, seq: *seq, payload: p })
            }
            _ => None,
        }
    }
}

#[derive(Clone, Debug)]
struct Slot<P> {
    /// The accepted proposal for this slot: (view, digest, payload).
    accepted: Option<(u64, u64, P)>,
    /// Prepare votes keyed by (view, digest).
    prepares: HashMap<(u64, u64), HashSet<NodeIdx>>,
    /// Commit votes keyed by (view, digest).
    commits: HashMap<(u64, u64), HashSet<NodeIdx>>,
    sent_commit: bool,
    decided: bool,
}

impl<P> Default for Slot<P> {
    fn default() -> Self {
        Slot {
            accepted: None,
            prepares: HashMap::new(),
            commits: HashMap::new(),
            sent_commit: false,
            decided: false,
        }
    }
}

/// One PBFT replica.
#[derive(Debug)]
pub struct PbftReplica<P> {
    cfg: PbftConfig,
    view: u64,
    slots: BTreeMap<u64, Slot<P>>,
    /// Undecided client requests by digest.
    pending: BTreeMap<u64, P>,
    /// Digests already delivered (dedup across re-proposals).
    delivered_digests: HashSet<u64>,
    /// digest → seq assigned in the current view.
    assigned: HashMap<u64, u64>,
    /// Next sequence number to assign (as primary).
    next_assign: u64,
    /// View-change votes: new_view → sender → prepared set.
    vc_votes: HashMap<u64, HashMap<NodeIdx, Vec<(u64, P)>>>,
    /// State-transfer tallies: (seq, digest) → asserting peers.
    decided_certs: HashMap<(u64, u64), HashSet<NodeIdx>>,
    /// The in-order decided log.
    pub log: DecidedLog<P>,
    /// Count of view changes this replica has entered (observability).
    pub view_changes: u64,
}

impl<P: Payload> PbftReplica<P> {
    /// Creates a replica with the given configuration.
    pub fn new(cfg: PbftConfig) -> Self {
        PbftReplica {
            cfg,
            view: 0,
            slots: BTreeMap::new(),
            pending: BTreeMap::new(),
            delivered_digests: HashSet::new(),
            assigned: HashMap::new(),
            next_assign: 0,
            vc_votes: HashMap::new(),
            decided_certs: HashMap::new(),
            log: DecidedLog::default(),
            view_changes: 0,
        }
    }

    /// The replica's current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Undecided requests currently known.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn is_proposer(&self, ctx: &Context<PbftMsg<P>>, seq: u64) -> bool {
        self.cfg.proposer(self.view, seq) == ctx.self_id
    }

    /// Proposes pending requests if this replica is the proposer.
    fn try_propose(&mut self, ctx: &mut Context<PbftMsg<P>>) {
        match self.cfg.policy {
            LeaderPolicy::FixedPerView => {
                if self.cfg.proposer(self.view, 0) != ctx.self_id {
                    return;
                }
                let unassigned: Vec<(u64, P)> = self
                    .pending
                    .iter()
                    .filter(|(d, _)| !self.assigned.contains_key(d))
                    .map(|(d, p)| (*d, p.clone()))
                    .collect();
                for (digest, payload) in unassigned {
                    let seq = self.next_assign;
                    self.next_assign += 1;
                    self.assigned.insert(digest, seq);
                    ctx.broadcast(PbftMsg::PrePrepare { view: self.view, seq, payload });
                }
            }
            LeaderPolicy::RotatePerHeight => {
                // One height in flight: the next undelivered slot.
                let h = self.log.next_seq();
                if !self.is_proposer(ctx, h) {
                    return;
                }
                // In flight if the slot accepted a proposal in this view
                // or we already assigned a payload to it (our own
                // PrePrepare may still be in transit to ourselves).
                let in_flight = self
                    .slots
                    .get(&h)
                    .map(|s| s.accepted.as_ref().is_some_and(|(v, _, _)| *v == self.view))
                    .unwrap_or(false)
                    || self.assigned.values().any(|&s| s == h);
                if in_flight {
                    return;
                }
                let Some((digest, payload)) = self
                    .pending
                    .iter()
                    .find(|(d, _)| !self.assigned.contains_key(d))
                    .map(|(d, p)| (*d, p.clone()))
                else {
                    return;
                };
                self.assigned.insert(digest, h);
                self.next_assign = self.next_assign.max(h + 1);
                ctx.broadcast(PbftMsg::PrePrepare { view: self.view, seq: h, payload });
            }
        }
    }

    fn accept_preprepare(
        &mut self,
        from: NodeIdx,
        view: u64,
        seq: u64,
        payload: P,
        ctx: &mut Context<PbftMsg<P>>,
    ) {
        if view != self.view || self.cfg.proposer(view, seq) != from {
            return;
        }
        let digest = payload.digest_u64();
        if self.delivered_digests.contains(&digest) {
            return;
        }
        let slot = self.slots.entry(seq).or_default();
        if slot.decided {
            return;
        }
        match &slot.accepted {
            // Equivocation guard: accept only the first proposal per view.
            Some((v, d, _)) if *v == view && *d != digest => return,
            Some((v, d, _)) if *v == view && *d == digest => return, // duplicate
            _ => {}
        }
        slot.accepted = Some((view, digest, payload));
        slot.sent_commit = false;
        self.assigned.insert(digest, seq);
        hooks::phase("pbft", ctx.self_id, ctx.now, view, "pre-prepared");
        ctx.broadcast(PbftMsg::Prepare { view, seq, digest });
        self.check_progress(seq, ctx);
    }

    fn check_progress(&mut self, seq: u64, ctx: &mut Context<PbftMsg<P>>) {
        let q = self.cfg.quorum();
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        if slot.decided {
            return;
        }
        let Some((view, digest, payload)) = slot.accepted.clone() else {
            return;
        };
        let prepared = slot.prepares.get(&(view, digest)).is_some_and(|s| s.len() >= q);
        if prepared && !slot.sent_commit {
            slot.sent_commit = true;
            hooks::phase("pbft", ctx.self_id, ctx.now, view, "prepared");
            ctx.broadcast(PbftMsg::Commit { view, seq, digest });
        }
        let committed = slot.commits.get(&(view, digest)).is_some_and(|s| s.len() >= q);
        if committed {
            slot.decided = true;
            self.pending.remove(&digest);
            self.delivered_digests.insert(digest);
            hooks::commit("pbft", ctx.self_id, ctx.now, seq, digest);
            self.log.decide(seq, payload, ctx.now);
            // Rotate mode: the next height's proposer may now act.
            self.try_propose(ctx);
            self.arm_timer_if_pending(ctx);
        }
    }

    /// Slots this replica has *prepared* (quorum of prepares) but not
    /// decided — the safety cargo of a view-change message.
    fn prepared_undecided(&self) -> Vec<(u64, P)> {
        let q = self.cfg.quorum();
        self.slots
            .iter()
            .filter(|(_, s)| !s.decided)
            .filter_map(|(seq, s)| {
                let (v, d, p) = s.accepted.as_ref()?;
                s.prepares
                    .get(&(*v, *d))
                    .is_some_and(|set| set.len() >= q)
                    .then(|| (*seq, p.clone()))
            })
            .collect()
    }

    fn arm_timer_if_pending(&mut self, ctx: &mut Context<PbftMsg<P>>) {
        if !self.pending.is_empty() {
            ctx.set_timer(self.cfg.timeout, self.view);
        }
    }

    fn start_view_change(&mut self, ctx: &mut Context<PbftMsg<P>>) {
        self.view += 1;
        self.view_changes += 1;
        self.assigned.clear();
        hooks::view_change("pbft", ctx.self_id, ctx.now, self.view);
        ctx.broadcast(PbftMsg::ViewChange {
            new_view: self.view,
            prepared: self.prepared_undecided(),
            delivered: self.log.next_seq(),
        });
        // Guard the new view too.
        self.arm_timer_if_pending(ctx);
    }

    fn maybe_new_view(&mut self, new_view: u64, ctx: &mut Context<PbftMsg<P>>) {
        if self.cfg.proposer(new_view, self.log.next_seq()) != ctx.self_id {
            return;
        }
        let Some(votes) = self.vc_votes.get(&new_view) else {
            return;
        };
        if votes.len() < self.cfg.quorum() {
            return;
        }
        // Collect prepared slots from the quorum (honest senders cannot
        // conflict on a prepared slot).
        let mut proposals: BTreeMap<u64, P> = BTreeMap::new();
        for prepared in votes.values() {
            for (seq, payload) in prepared {
                proposals.entry(*seq).or_insert_with(|| payload.clone());
            }
        }
        // Plus our own prepared knowledge.
        for (seq, payload) in self.prepared_undecided() {
            proposals.entry(seq).or_insert(payload);
        }
        self.view = self.view.max(new_view);
        self.assigned.clear();
        let mut max_seq = self.log.next_seq();
        for seq in proposals.keys() {
            max_seq = max_seq.max(seq + 1);
        }
        // Re-propose pending requests not covered by prepared slots.
        let covered: HashSet<u64> = proposals.values().map(|p| p.digest_u64()).collect();
        let uncovered: Vec<P> =
            self.pending.values().filter(|p| !covered.contains(&p.digest_u64())).cloned().collect();
        match self.cfg.policy {
            LeaderPolicy::FixedPerView => {
                for p in uncovered {
                    proposals.insert(max_seq, p);
                    max_seq += 1;
                }
            }
            LeaderPolicy::RotatePerHeight => {
                // Only the next height may be re-proposed by us.
                let h = self.log.next_seq();
                if let std::collections::btree_map::Entry::Vacant(e) = proposals.entry(h) {
                    if let Some(p) = uncovered.into_iter().next() {
                        e.insert(p);
                    }
                }
            }
        }
        self.next_assign = max_seq;
        let list: Vec<(u64, P)> = proposals.into_iter().collect();
        hooks::leader("pbft", ctx.self_id, ctx.now, self.view);
        ctx.broadcast(PbftMsg::NewView { view: self.view, proposals: list });
    }
}

impl<P: Payload + 'static> crate::ordering::OrderingActor for PbftReplica<P> {
    type Payload = P;
    const PROTOCOL: &'static str = "pbft";

    fn request_msg(payload: P) -> PbftMsg<P> {
        PbftMsg::Request(payload)
    }

    fn log(&self) -> &DecidedLog<P> {
        &self.log
    }
}

impl<P: Payload> Actor for PbftReplica<P> {
    type Msg = PbftMsg<P>;

    fn on_message(&mut self, from: NodeIdx, msg: &PbftMsg<P>, ctx: &mut Context<PbftMsg<P>>) {
        match msg {
            PbftMsg::Request(p) => {
                let digest = p.digest_u64();
                if self.delivered_digests.contains(&digest) || self.pending.contains_key(&digest) {
                    return;
                }
                self.pending.insert(digest, p.clone());
                self.arm_timer_if_pending(ctx);
                self.try_propose(ctx);
            }
            PbftMsg::PrePrepare { view, seq, payload } => {
                self.accept_preprepare(from, *view, *seq, payload.clone(), ctx);
            }
            PbftMsg::Prepare { view, seq, digest } => {
                let slot = self.slots.entry(*seq).or_default();
                slot.prepares.entry((*view, *digest)).or_default().insert(from);
                self.check_progress(*seq, ctx);
            }
            PbftMsg::Commit { view, seq, digest } => {
                let slot = self.slots.entry(*seq).or_default();
                slot.commits.entry((*view, *digest)).or_default().insert(from);
                self.check_progress(*seq, ctx);
            }
            PbftMsg::ViewChange { new_view, prepared, delivered } => {
                // A view change from a peer that is behind our delivered
                // watermark signals a straggler: assist with our decided
                // slots (PBFT's checkpoint/state transfer, simplified to
                // f+1 matching assertions).
                if *delivered < self.log.next_seq() {
                    for (seq, payload, _) in self.log.delivered().to_vec() {
                        if seq >= *delivered {
                            ctx.send(from, PbftMsg::Decided { seq, payload });
                        }
                    }
                }
                if *new_view < self.view {
                    return;
                }
                self.vc_votes.entry(*new_view).or_default().insert(from, prepared.clone());
                // f+1 view changes: join even without timing out ourselves.
                let join_threshold = self.cfg.f() + 1;
                if *new_view > self.view && self.vc_votes[new_view].len() >= join_threshold {
                    self.view = *new_view;
                    self.view_changes += 1;
                    self.assigned.clear();
                    hooks::view_change("pbft", ctx.self_id, ctx.now, *new_view);
                    ctx.broadcast(PbftMsg::ViewChange {
                        new_view: *new_view,
                        prepared: self.prepared_undecided(),
                        delivered: self.log.next_seq(),
                    });
                    self.arm_timer_if_pending(ctx);
                }
                self.maybe_new_view(*new_view, ctx);
            }
            PbftMsg::Decided { seq, payload } => {
                let digest = payload.digest_u64();
                if self.delivered_digests.contains(&digest) {
                    return;
                }
                let voters = self.decided_certs.entry((*seq, digest)).or_default();
                voters.insert(from);
                if voters.len() > self.cfg.f() {
                    // f+1 assertions ⇒ at least one honest decider.
                    self.pending.remove(&digest);
                    self.delivered_digests.insert(digest);
                    self.slots.entry(*seq).or_default().decided = true;
                    hooks::commit("pbft", ctx.self_id, ctx.now, *seq, digest);
                    self.log.decide(*seq, payload.clone(), ctx.now);
                    self.arm_timer_if_pending(ctx);
                }
            }
            PbftMsg::NewView { view, proposals } => {
                if *view < self.view {
                    return;
                }
                // Only accept from the legitimate new primary.
                if self.cfg.proposer(*view, self.log.next_seq()) != from
                    && self.cfg.policy == LeaderPolicy::FixedPerView
                {
                    return;
                }
                self.view = *view;
                for (seq, payload) in proposals {
                    self.accept_preprepare(from, *view, *seq, payload.clone(), ctx);
                }
                self.arm_timer_if_pending(ctx);
            }
        }
    }

    fn on_timer(&mut self, timer_view: u64, ctx: &mut Context<PbftMsg<P>>) {
        // Fire only if we are still in the view the timer guarded and
        // requests remain undecided.
        if timer_view == self.view && !self.pending.is_empty() {
            self.start_view_change(ctx);
        }
    }
}

/// PBFT's stable-storage checkpoint (opaque): the current view plus the
/// message log — accepted proposals with their prepare/commit
/// certificates — and every decision, per Castro–Liskov's requirement
/// that protocol messages hit stable storage before being acted on.
/// Client-request buffers and view-change tallies are volatile (clients
/// retransmit; view changes re-run).
#[derive(Clone, Debug)]
pub struct PbftStable<P> {
    view: u64,
    slots: BTreeMap<u64, Slot<P>>,
    delivered_digests: HashSet<u64>,
    decided: Vec<(u64, P, SimTime)>,
}

/// Encodes a `(view, digest) → voters` vote map with deterministic
/// ordering (keys sorted, then voters sorted).
fn encode_votes(e: &mut pbc_types::encode::Encoder, votes: &HashMap<(u64, u64), HashSet<NodeIdx>>) {
    let mut keys: Vec<&(u64, u64)> = votes.keys().collect();
    keys.sort_unstable();
    e.u64(keys.len() as u64);
    for key in keys {
        e.u64(key.0).u64(key.1);
        let mut voters: Vec<NodeIdx> = votes[key].iter().copied().collect();
        voters.sort_unstable();
        e.u64(voters.len() as u64);
        for v in voters {
            e.u64(v as u64);
        }
    }
}

fn decode_votes(
    d: &mut pbc_types::encode::Decoder<'_>,
) -> Option<HashMap<(u64, u64), HashSet<NodeIdx>>> {
    let n = d.u64()? as usize;
    let mut votes = HashMap::with_capacity(n.min(1024));
    for _ in 0..n {
        let view = d.u64()?;
        let digest = d.u64()?;
        let m = d.u64()? as usize;
        let mut voters = HashSet::with_capacity(m.min(1024));
        for _ in 0..m {
            voters.insert(d.u64()? as NodeIdx);
        }
        votes.insert((view, digest), voters);
    }
    Some(votes)
}

impl<P: crate::common::PersistPayload> Durable for PbftReplica<P> {
    type Stable = PbftStable<P>;

    fn checkpoint(&self) -> PbftStable<P> {
        PbftStable {
            view: self.view,
            slots: self.slots.clone(),
            delivered_digests: self.delivered_digests.clone(),
            decided: self.log.snapshot(),
        }
    }

    fn restore(crashed: &Self, stable: PbftStable<P>) -> Self {
        let mut r = PbftReplica::new(crashed.cfg.clone());
        r.view = stable.view;
        r.slots = stable.slots;
        r.delivered_digests = stable.delivered_digests;
        r.log = DecidedLog::from_snapshot(0, stable.decided);
        // Rebuild the assignment index from the persisted slots so a
        // recovered primary never re-assigns a sequence number.
        for (seq, slot) in &r.slots {
            if let Some((_, digest, _)) = &slot.accepted {
                r.assigned.insert(*digest, *seq);
            }
            r.next_assign = r.next_assign.max(seq + 1);
        }
        r
    }

    fn encode_stable(stable: &PbftStable<P>) -> Vec<u8> {
        let mut e = pbc_types::encode::Encoder::new();
        e.u64(stable.view);
        e.u64(stable.slots.len() as u64);
        for (seq, slot) in &stable.slots {
            e.u64(*seq);
            match &slot.accepted {
                Some((view, digest, payload)) => {
                    e.tag(1).u64(*view).u64(*digest).bytes(&payload.to_bytes());
                }
                None => {
                    e.tag(0);
                }
            }
            encode_votes(&mut e, &slot.prepares);
            encode_votes(&mut e, &slot.commits);
            e.tag(slot.sent_commit as u8).tag(slot.decided as u8);
        }
        let mut digests: Vec<u64> = stable.delivered_digests.iter().copied().collect();
        digests.sort_unstable();
        e.u64(digests.len() as u64);
        for d in digests {
            e.u64(d);
        }
        e.u64(stable.decided.len() as u64);
        for (seq, payload, time) in &stable.decided {
            e.u64(*seq).bytes(&payload.to_bytes()).u64(*time);
        }
        e.finish()
    }

    fn decode_stable(_crashed: &Self, bytes: &[u8]) -> Option<PbftStable<P>> {
        let mut d = pbc_types::encode::Decoder::new(bytes);
        let view = d.u64()?;
        let n_slots = d.u64()? as usize;
        let mut slots = BTreeMap::new();
        for _ in 0..n_slots {
            let seq = d.u64()?;
            let accepted = match d.tag()? {
                0 => None,
                1 => {
                    let v = d.u64()?;
                    let digest = d.u64()?;
                    let payload = P::from_bytes(d.bytes()?)?;
                    Some((v, digest, payload))
                }
                _ => return None,
            };
            let prepares = decode_votes(&mut d)?;
            let commits = decode_votes(&mut d)?;
            let sent_commit = match d.tag()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            let decided = match d.tag()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            slots.insert(seq, Slot { accepted, prepares, commits, sent_commit, decided });
        }
        let n_digests = d.u64()? as usize;
        let mut delivered_digests = HashSet::with_capacity(n_digests.min(1024));
        for _ in 0..n_digests {
            delivered_digests.insert(d.u64()?);
        }
        let n_decided = d.u64()? as usize;
        let mut decided = Vec::with_capacity(n_decided.min(1024));
        for _ in 0..n_decided {
            let seq = d.u64()?;
            let payload = P::from_bytes(d.bytes()?)?;
            let time = d.u64()?;
            decided.push((seq, payload, time));
        }
        d.is_empty().then_some(PbftStable { view, slots, delivered_digests, decided })
    }

    fn blank_stable(_crashed: &Self) -> PbftStable<P> {
        PbftStable {
            view: 0,
            slots: BTreeMap::new(),
            delivered_digests: HashSet::new(),
            decided: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_sim::{Network, NetworkConfig};

    fn cluster(n: usize, seed: u64, policy: LeaderPolicy) -> Network<PbftReplica<u64>> {
        let mut cfg = PbftConfig::new(n);
        cfg.policy = policy;
        let actors = (0..n).map(|_| PbftReplica::new(cfg.clone())).collect();
        Network::new(actors, NetworkConfig { seed, ..Default::default() })
    }

    fn submit(net: &mut Network<PbftReplica<u64>>, payload: u64) {
        // Clients broadcast requests to every replica.
        for i in 0..net.len() {
            net.inject(0, i, PbftMsg::Request(payload), 1);
        }
    }

    fn assert_agreement(net: &Network<PbftReplica<u64>>, expected: usize) {
        let reference: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(reference.len(), expected, "node 0 delivered count");
        for i in 1..net.len() {
            if net.is_crashed(i) {
                continue;
            }
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, reference, "node {i} diverged");
        }
    }

    #[test]
    fn four_nodes_decide_one_request() {
        let mut net = cluster(4, 1, LeaderPolicy::FixedPerView);
        submit(&mut net, 42);
        net.run_to_quiescence(100_000);
        assert_agreement(&net, 1);
    }

    #[test]
    fn pipelined_requests_decide_in_order() {
        let mut net = cluster(4, 2, LeaderPolicy::FixedPerView);
        for p in 1..=20u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(1_000_000);
        assert_agreement(&net, 20);
    }

    #[test]
    fn ibft_mode_rotates_proposers() {
        let mut net = cluster(4, 3, LeaderPolicy::RotatePerHeight);
        for p in 1..=8u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(2_000_000);
        assert_agreement(&net, 8);
        // Heights rotate proposers: the decided log is identical anyway,
        // and no view change was needed.
        assert_eq!(net.actor(0).view_changes, 0);
    }

    #[test]
    fn survives_backup_crash() {
        let mut net = cluster(4, 4, LeaderPolicy::FixedPerView);
        net.crash(2); // backup, not primary (primary of view 0 is node 0)
        for p in 1..=5u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(1_000_000);
        let log0: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log0.len(), 5);
    }

    #[test]
    fn primary_crash_triggers_view_change_and_recovers() {
        let mut net = cluster(4, 5, LeaderPolicy::FixedPerView);
        net.crash(0); // primary of view 0
        submit(&mut net, 7);
        // Allow timers to fire and the new view to decide.
        net.run_to_quiescence(5_000_000);
        for i in 1..4 {
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, vec![7], "node {i}");
            assert!(net.actor(i).view() >= 1, "node {i} must have changed view");
        }
    }

    #[test]
    fn seven_nodes_tolerate_two_crashes() {
        let mut net = cluster(7, 6, LeaderPolicy::FixedPerView);
        net.crash(3);
        net.crash(5);
        for p in 1..=10u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(2_000_000);
        let log0: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log0.len(), 10);
    }

    #[test]
    fn duplicate_requests_decided_once() {
        let mut net = cluster(4, 7, LeaderPolicy::FixedPerView);
        submit(&mut net, 42);
        submit(&mut net, 42);
        submit(&mut net, 42);
        net.run_to_quiescence(500_000);
        assert_agreement(&net, 1);
    }

    #[test]
    fn message_complexity_is_quadratic() {
        // Doubling n should roughly quadruple messages per decision.
        let count = |n: usize| {
            let mut net = cluster(n, 8, LeaderPolicy::FixedPerView);
            submit(&mut net, 1);
            net.run_to_quiescence(1_000_000);
            assert_eq!(net.actor(0).log.len(), 1);
            net.stats().msgs_sent as f64
        };
        let m4 = count(4);
        let m8 = count(8);
        let ratio = m8 / m4;
        assert!(ratio > 2.5, "expected superlinear growth, got {m4} → {m8} (ratio {ratio:.2})");
    }

    /// A Byzantine primary that equivocates: different payloads to
    /// different replicas for the same slot.
    #[allow(clippy::large_enum_variant)]
    enum TestNode {
        Honest(PbftReplica<u64>),
        EquivocatingPrimary { proposed: bool },
    }

    impl Actor for TestNode {
        type Msg = PbftMsg<u64>;
        fn on_message(
            &mut self,
            from: NodeIdx,
            msg: &PbftMsg<u64>,
            ctx: &mut Context<PbftMsg<u64>>,
        ) {
            match self {
                TestNode::Honest(r) => r.on_message(from, msg, ctx),
                TestNode::EquivocatingPrimary { proposed } => {
                    if let PbftMsg::Request(_) = msg {
                        if !*proposed {
                            *proposed = true;
                            // Send conflicting proposals for seq 0.
                            for to in 0..ctx.n {
                                let payload = 1000 + (to % 2) as u64;
                                ctx.send(to, PbftMsg::PrePrepare { view: 0, seq: 0, payload });
                            }
                        }
                    }
                    // Otherwise stay silent (worst case: no progress help).
                }
            }
        }
        fn on_timer(&mut self, id: u64, ctx: &mut Context<PbftMsg<u64>>) {
            if let TestNode::Honest(r) = self {
                r.on_timer(id, ctx);
            }
        }
    }

    #[test]
    fn equivocating_primary_cannot_split_honest_replicas() {
        let cfg = PbftConfig::new(4);
        let actors: Vec<TestNode> = (0..4)
            .map(|i| {
                if i == 0 {
                    TestNode::EquivocatingPrimary { proposed: false }
                } else {
                    TestNode::Honest(PbftReplica::new(cfg.clone()))
                }
            })
            .collect();
        let mut net = Network::new(actors, NetworkConfig { seed: 9, ..Default::default() });
        for i in 0..4 {
            net.inject(0, i, PbftMsg::Request(7), 1);
        }
        net.run_to_quiescence(10_000_000);
        // The equivocation (1000 to half, 1001 to the other half) must not
        // decide; after view change, the honest request 7 decides. All
        // honest logs must agree.
        let mut logs = Vec::new();
        for i in 1..4 {
            if let TestNode::Honest(r) = net.actor(i) {
                let log: Vec<u64> = r.log.delivered().iter().map(|(_, p, _)| *p).collect();
                assert!(
                    !log.contains(&1000) || !log.contains(&1001),
                    "node {i} decided both equivocated payloads"
                );
                logs.push(log);
            }
        }
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);
        assert!(logs[0].contains(&7), "honest request must eventually decide: {logs:?}");
    }

    #[test]
    fn ibft_survives_proposer_crash() {
        let mut net = cluster(4, 10, LeaderPolicy::RotatePerHeight);
        net.crash(0); // proposer of height 0 in view 0
        submit(&mut net, 5);
        net.run_to_quiescence(5_000_000);
        for i in 1..4 {
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, vec![5], "node {i}");
        }
    }

    #[test]
    fn hybrid_quorum_math() {
        // u=2 total faults, r=1 Byzantine: 6 replicas, quorum 4.
        let cfg = PbftConfig::hybrid(2, 1);
        assert_eq!(cfg.n, 6);
        assert_eq!(cfg.quorum(), 4);
        assert_eq!(cfg.f(), 1);
        // Crash-only hybrid (r=0) degenerates to majority quorums.
        let cft = PbftConfig::hybrid(2, 0);
        assert_eq!(cft.n, 5);
        assert_eq!(cft.quorum(), 3);
    }

    #[test]
    fn hybrid_tolerates_u_crashes_with_fewer_nodes_than_pbft() {
        // Tolerating u=2, r=1 needs n=6 here; classic PBFT would need
        // 3·2+1 = 7 to survive two arbitrary faults. Crash two backups.
        let cfg = PbftConfig::hybrid(2, 1);
        let actors = (0..cfg.n).map(|_| PbftReplica::new(cfg.clone())).collect();
        let mut net: Network<PbftReplica<u64>> =
            Network::new(actors, NetworkConfig { seed: 21, ..Default::default() });
        net.crash(4);
        net.crash(5);
        for p in 1..=6u64 {
            for i in 0..net.len() {
                net.inject(0, i, PbftMsg::Request(p), 1);
            }
        }
        net.run_to_quiescence(2_000_000);
        let log0: Vec<u64> = net.actor(0).log.delivered().iter().map(|(_, p, _)| *p).collect();
        assert_eq!(log0.len(), 6);
        for i in 1..4 {
            let log: Vec<u64> = net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
            assert_eq!(log, log0, "node {i}");
        }
    }

    #[test]
    fn hybrid_equivocating_primary_cannot_split_network() {
        // n=6, quorum=4: two quorums intersect in 2 ≥ r+1 nodes, so an
        // equivocating primary (the one allowed Byzantine fault) cannot
        // get both conflicting payloads decided.
        let cfg = PbftConfig::hybrid(2, 1);
        let actors: Vec<TestNode> = (0..cfg.n)
            .map(|i| {
                if i == 0 {
                    TestNode::EquivocatingPrimary { proposed: false }
                } else {
                    TestNode::Honest(PbftReplica::new(cfg.clone()))
                }
            })
            .collect();
        let mut net = Network::new(actors, NetworkConfig { seed: 22, ..Default::default() });
        for i in 0..6 {
            net.inject(0, i, PbftMsg::Request(7), 1);
        }
        net.run_to_quiescence(10_000_000);
        let mut logs = Vec::new();
        for i in 1..6 {
            if let TestNode::Honest(r) = net.actor(i) {
                let log: Vec<u64> = r.log.delivered().iter().map(|(_, p, _)| *p).collect();
                assert!(
                    !(log.contains(&1000) && log.contains(&1001)),
                    "node {i} decided both equivocated payloads"
                );
                logs.push(log);
            }
        }
        for w in logs.windows(2) {
            assert_eq!(w[0], w[1], "honest replicas diverged");
        }
        assert!(logs[0].contains(&7), "honest request must decide: {logs:?}");
    }

    #[test]
    fn stable_codec_roundtrips_and_rejects_truncation() {
        let mut net = cluster(4, 31, LeaderPolicy::FixedPerView);
        for p in 1..=3u64 {
            submit(&mut net, p);
        }
        net.run_to_quiescence(1_000_000);
        for i in 0..4 {
            let stable = net.actor(i).checkpoint();
            assert!(!stable.decided.is_empty(), "node {i} decided something");
            let bytes = PbftReplica::<u64>::encode_stable(&stable);
            let back = PbftReplica::decode_stable(net.actor(i), &bytes).expect("decodes");
            assert_eq!(PbftReplica::<u64>::encode_stable(&back), bytes, "canonical roundtrip");
            assert!(PbftReplica::decode_stable(net.actor(i), &bytes[..bytes.len() - 1]).is_none());
            let mut padded = bytes.clone();
            padded.push(0);
            assert!(PbftReplica::decode_stable(net.actor(i), &padded).is_none());
        }
    }
}
