//! A Schnorr group: the order-`q` subgroup of `Z_p^*`.
//!
//! `p = 2q + 1` is a 61-bit safe prime, so the squares of `Z_p^*` form a
//! prime-order-`q` subgroup in which the decisional Diffie–Hellman
//! structure needed by Pedersen commitments and Σ-protocols holds. The
//! group is intentionally small (see the crate-level security note); the
//! unit tests re-verify all the constants with Miller–Rabin.

use crate::field::{invmod_prime, mulmod, powmod, submod};
use crate::hash::Hash;
use serde::{Deserialize, Serialize};

/// The 61-bit safe prime modulus `p`.
pub const P: u64 = 2_305_843_009_213_691_579;
/// The prime group order `q = (p - 1) / 2`.
pub const Q: u64 = 1_152_921_504_606_845_789;
/// Generator of the order-`q` subgroup: `g = 2²`.
pub const G: u64 = 4;
/// Second generator `h = 3²` with unknown discrete log w.r.t. `g`
/// (nothing-up-my-sleeve choice), required by Pedersen binding.
pub const H: u64 = 9;

/// A scalar modulo the group order `q`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub struct Scalar(pub u64);

// Arithmetic methods use the conventional short names (`add`, `mul`, …)
// by-value rather than the operator traits: proofs chain them heavily and
// the explicit form keeps modular-arithmetic call sites obvious.
#[allow(clippy::should_implement_trait)]
impl Scalar {
    /// The additive identity.
    pub const ZERO: Scalar = Scalar(0);
    /// The multiplicative identity.
    pub const ONE: Scalar = Scalar(1);

    /// Reduces an arbitrary `u64` into the scalar field.
    pub fn new(v: u64) -> Scalar {
        Scalar(v % Q)
    }

    /// Uniformly random scalar.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Scalar {
        Scalar(rng.gen_range(0..Q))
    }

    /// `self + rhs (mod q)`.
    pub fn add(self, rhs: Scalar) -> Scalar {
        Scalar(((self.0 as u128 + rhs.0 as u128) % Q as u128) as u64)
    }

    /// `self - rhs (mod q)`.
    pub fn sub(self, rhs: Scalar) -> Scalar {
        Scalar(submod(self.0, rhs.0, Q))
    }

    /// `self * rhs (mod q)`.
    pub fn mul(self, rhs: Scalar) -> Scalar {
        Scalar(mulmod(self.0, rhs.0, Q))
    }

    /// `-self (mod q)`.
    pub fn neg(self) -> Scalar {
        Scalar(submod(0, self.0, Q))
    }

    /// Multiplicative inverse; panics on zero.
    pub fn inv(self) -> Scalar {
        Scalar(invmod_prime(self.0, Q))
    }
}

/// An element of the order-`q` subgroup of `Z_p^*`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub struct GroupElement(pub u64);

#[allow(clippy::should_implement_trait)]
impl GroupElement {
    /// The group identity.
    pub const ONE: GroupElement = GroupElement(1);

    /// The standard generator `g`.
    pub fn generator() -> GroupElement {
        GroupElement(G)
    }

    /// The second Pedersen generator `h`.
    pub fn generator_h() -> GroupElement {
        GroupElement(H)
    }

    /// `g^e` for the standard generator.
    pub fn g_pow(e: Scalar) -> GroupElement {
        GroupElement(powmod(G, e.0, P))
    }

    /// `h^e` for the second generator.
    pub fn h_pow(e: Scalar) -> GroupElement {
        GroupElement(powmod(H, e.0, P))
    }

    /// `self^e`.
    pub fn pow(self, e: Scalar) -> GroupElement {
        GroupElement(powmod(self.0, e.0, P))
    }

    /// Group operation `self * rhs (mod p)`.
    pub fn mul(self, rhs: GroupElement) -> GroupElement {
        GroupElement(mulmod(self.0, rhs.0, P))
    }

    /// Inverse element `self^{-1} (mod p)`.
    pub fn inv(self) -> GroupElement {
        GroupElement(invmod_prime(self.0, P))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: GroupElement) -> GroupElement {
        self.mul(rhs.inv())
    }

    /// True if this element is in the order-`q` subgroup (a square mod p).
    pub fn is_valid(self) -> bool {
        self.0 != 0 && self.0 < P && powmod(self.0, Q, P) == 1
    }
}

/// Interleaved (Straus) multi-exponentiation: `Π bases[i]^exps[i] (mod p)`
/// in one shared square-and-multiply scan.
///
/// Separate [`GroupElement::pow`] calls each pay ~60 squarings; Straus
/// shares them. With a 4-bit window the cost is 15 table
/// multiplications per base up front, then 60 squarings *total* plus at
/// most 16 multiplications per base — the batched-verification kernel
/// the Schnorr [`crate::schnorr_sig::verify_batch`] check reduces to.
/// Empty input yields the identity; a single pair falls through to
/// plain `pow`.
pub fn multi_exp(pairs: &[(GroupElement, Scalar)]) -> GroupElement {
    match pairs {
        [] => return GroupElement::ONE,
        [(base, exp)] => return base.pow(*exp),
        _ => {}
    }
    // tables[j][d-1] = base_j^d, d in 1..=15.
    let tables: Vec<[u64; 15]> = pairs
        .iter()
        .map(|(base, _)| {
            let mut t = [0u64; 15];
            t[0] = base.0;
            for d in 1..15 {
                t[d] = mulmod(t[d - 1], base.0, P);
            }
            t
        })
        .collect();
    // Scalars are < q < 2^61: sixteen 4-bit windows cover them.
    let mut acc = 1u64;
    for win in (0..16).rev() {
        if acc != 1 {
            for _ in 0..4 {
                acc = mulmod(acc, acc, P);
            }
        }
        for (table, (_, exp)) in tables.iter().zip(pairs) {
            let digit = ((exp.0 >> (win * 4)) & 0xF) as usize;
            if digit != 0 {
                acc = mulmod(acc, table[digit - 1], P);
            }
        }
    }
    GroupElement(acc)
}

/// Maps a digest onto a scalar (used for Fiat–Shamir challenges).
pub fn hash_to_scalar(h: &Hash) -> Scalar {
    Scalar::new(h.prefix_u64())
}

/// Maps arbitrary bytes onto a group element by hashing into `Z_p^*` and
/// squaring (squares generate the order-`q` subgroup).
pub fn hash_to_group(data: &[u8]) -> GroupElement {
    let mut counter = 0u8;
    loop {
        let h = crate::sha256::sha256_concat(&[data, &[counter]]);
        let x = h.prefix_u64() % P;
        if x > 1 {
            return GroupElement(mulmod(x, x, P));
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::is_prime;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn constants_are_sound() {
        assert!(is_prime(P), "p must be prime");
        assert!(is_prime(Q), "q must be prime");
        assert_eq!(P, 2 * Q + 1, "p must be a safe prime");
        assert!(GroupElement(G).is_valid());
        assert!(GroupElement(H).is_valid());
        // g and h have order exactly q (not 1).
        assert_ne!(G, 1);
        assert_ne!(H, 1);
    }

    #[test]
    fn exponent_laws() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let a = Scalar::random(&mut rng);
            let b = Scalar::random(&mut rng);
            // g^(a+b) = g^a * g^b
            assert_eq!(
                GroupElement::g_pow(a.add(b)),
                GroupElement::g_pow(a).mul(GroupElement::g_pow(b))
            );
            // (g^a)^b = g^(ab)
            assert_eq!(GroupElement::g_pow(a).pow(b), GroupElement::g_pow(a.mul(b)));
        }
    }

    #[test]
    fn inverse_laws() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let a = Scalar::random(&mut rng);
            if a == Scalar::ZERO {
                continue;
            }
            assert_eq!(a.mul(a.inv()), Scalar::ONE);
            let x = GroupElement::g_pow(a);
            assert_eq!(x.mul(x.inv()), GroupElement::ONE);
            assert_eq!(x.div(x), GroupElement::ONE);
        }
    }

    #[test]
    fn scalar_field_axioms() {
        let a = Scalar::new(u64::MAX);
        assert!(a.0 < Q);
        assert_eq!(a.add(a.neg()), Scalar::ZERO);
        assert_eq!(Scalar::new(Q), Scalar::ZERO);
    }

    #[test]
    fn multi_exp_matches_separate_pows() {
        let mut rng = StdRng::seed_from_u64(7);
        for k in 0..=9usize {
            let pairs: Vec<(GroupElement, Scalar)> = (0..k)
                .map(|_| (GroupElement::g_pow(Scalar::random(&mut rng)), Scalar::random(&mut rng)))
                .collect();
            let reference =
                pairs.iter().fold(GroupElement::ONE, |acc, (base, exp)| acc.mul(base.pow(*exp)));
            assert_eq!(multi_exp(&pairs), reference, "k={k}");
        }
    }

    #[test]
    fn multi_exp_edge_exponents() {
        // Zero exponents contribute the identity; the max scalar fills
        // every window digit.
        let base = GroupElement::g_pow(Scalar::new(12345));
        assert_eq!(multi_exp(&[]), GroupElement::ONE);
        assert_eq!(multi_exp(&[(base, Scalar::ZERO)]), GroupElement::ONE);
        let top = Scalar::new(Q - 1);
        assert_eq!(
            multi_exp(&[(base, top), (base, Scalar::ZERO), (base, Scalar::ONE)]),
            base.pow(top).mul(base),
        );
    }

    #[test]
    fn hash_to_group_lands_in_subgroup() {
        for i in 0..20u32 {
            let e = hash_to_group(&i.to_be_bytes());
            assert!(e.is_valid(), "i={i}");
        }
    }

    #[test]
    fn hash_to_group_is_deterministic_and_spread() {
        let a = hash_to_group(b"alpha");
        let b = hash_to_group(b"alpha");
        let c = hash_to_group(b"beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn subgroup_membership_rejects_non_squares() {
        // 2 generates all of Z_p^* for a safe prime unless it is a QR;
        // find some non-member.
        let mut found_invalid = false;
        for x in 2u64..50 {
            if !GroupElement(x).is_valid() {
                found_invalid = true;
                break;
            }
        }
        assert!(found_invalid, "expected some x < 50 outside the subgroup");
        assert!(!GroupElement(0).is_valid());
        assert!(!GroupElement(P).is_valid());
    }
}
