//! HMAC-SHA256 per RFC 2104.

use crate::hash::Hash;
use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// Computes `HMAC-SHA256(key, msg)`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> Hash {
    // Keys longer than the block size are hashed first.
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kh = crate::sha256(key);
        k[..32].copy_from_slice(&kh.0);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest.0);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            out.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            out.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let out = hmac_sha256(&key, &msg);
        assert_eq!(
            out.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let out = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            out.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_give_different_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
