//! SHA-256 implemented from scratch per FIPS 180-4.
//!
//! Supports both one-shot hashing ([`sha256`]) and incremental hashing via
//! [`Sha256`]. Verified against the official NIST test vectors in the unit
//! tests at the bottom of this module.

use crate::hash::Hash;

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use pbc_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), pbc_crypto::sha256(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher in the initial state.
    pub fn new() -> Self {
        Sha256 { state: H0, len: 0, buf: [0u8; 64], buf_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len += data.len() as u64;
        let mut data = data;
        // Fill a partial block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> Hash {
        let bit_len = self.len * 8;
        // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
        self.update_padding();
        let mut lenblock = [0u8; 8];
        lenblock.copy_from_slice(&bit_len.to_be_bytes());
        // update_padding leaves exactly 8 bytes of room in the buffer.
        self.buf[56..64].copy_from_slice(&lenblock);
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Hash(out)
    }

    /// Appends the 0x80 byte and zero padding so the buffer holds the
    /// final block minus its 8-byte length suffix.
    fn update_padding(&mut self) {
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Pad to 56 mod 64.
        let pad_len = if self.buf_len < 56 { 56 - self.buf_len } else { 120 - self.buf_len };
        // Manually absorb padding without touching `self.len`.
        let mut data: &[u8] = &pad[..pad_len];
        while !data.is_empty() {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        debug_assert_eq!(self.buf_len, 56);
    }

    /// The SHA-256 compression function over one 512-bit block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Hash {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// `L`-way block-interleaved SHA-256 over `L` equal-length messages.
///
/// The compression function runs in structure-of-arrays form: every
/// working variable is a `[u32; L]` vector and each round updates all
/// `L` lanes with the same straight-line arithmetic, which LLVM
/// auto-vectorizes into SIMD at `L = 4` / `L = 8`. The digests are
/// bit-for-bit [`sha256`] of each message — this is a throughput knob
/// for Merkle-level construction and batch validation, never a
/// different hash.
///
/// # Panics
/// Panics unless all `L` messages have the same length (lanes advance
/// in lock-step through the same block schedule).
pub fn sha256_multi<const L: usize>(msgs: &[&[u8]; L]) -> [Hash; L] {
    let len = msgs[0].len();
    assert!(
        msgs.iter().all(|m| m.len() == len),
        "sha256_multi lanes must carry equal-length messages"
    );
    let nblocks = (len + 9).div_ceil(64);
    let mut state = [[0u32; L]; 8];
    for (j, h) in H0.iter().enumerate() {
        state[j] = [*h; L];
    }
    let bit_len = (len as u64) * 8;
    let mut blocks = [[0u8; 64]; L];
    for b in 0..nblocks {
        let start = b * 64;
        for (l, msg) in msgs.iter().enumerate() {
            let mut buf = [0u8; 64];
            if start + 64 <= len {
                buf.copy_from_slice(&msg[start..start + 64]);
            } else {
                for (k, slot) in buf.iter_mut().enumerate() {
                    let idx = start + k;
                    *slot = match idx.cmp(&len) {
                        std::cmp::Ordering::Less => msg[idx],
                        std::cmp::Ordering::Equal => 0x80,
                        std::cmp::Ordering::Greater => 0,
                    };
                }
            }
            if b + 1 == nblocks {
                // The length suffix always fits: nblocks rounds up past
                // `len + 9`, so bytes 56..64 of the last block are pad.
                buf[56..].copy_from_slice(&bit_len.to_be_bytes());
            }
            blocks[l] = buf;
        }
        compress_wide(&mut state, &blocks);
    }
    let mut out = [Hash([0u8; 32]); L];
    for (l, h) in out.iter_mut().enumerate() {
        for (j, s) in state.iter().enumerate() {
            h.0[j * 4..j * 4 + 4].copy_from_slice(&s[l].to_be_bytes());
        }
    }
    out
}

/// The SoA compression kernel: one 512-bit block per lane, all lanes in
/// lock-step. Inner `for l in 0..L` loops are branch-free straight-line
/// u32 arithmetic over fixed-size arrays — the shape the vectorizer
/// turns into packed adds/rotates.
#[allow(clippy::needless_range_loop)] // lock-step index form is the vectorizable shape
fn compress_wide<const L: usize>(state: &mut [[u32; L]; 8], blocks: &[[u8; 64]; L]) {
    let mut w = [[0u32; L]; 64];
    for i in 0..16 {
        for l in 0..L {
            let o = i * 4;
            w[i][l] = u32::from_be_bytes([
                blocks[l][o],
                blocks[l][o + 1],
                blocks[l][o + 2],
                blocks[l][o + 3],
            ]);
        }
    }
    for i in 16..64 {
        for l in 0..L {
            let w15 = w[i - 15][l];
            let w2 = w[i - 2][l];
            let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
            let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
            w[i][l] = w[i - 16][l].wrapping_add(s0).wrapping_add(w[i - 7][l]).wrapping_add(s1);
        }
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let mut t1 = [0u32; L];
        let mut t2 = [0u32; L];
        for l in 0..L {
            let s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ (!e[l] & g[l]);
            t1[l] = h[l].wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i][l]);
            let s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            t2[l] = s0.wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        for l in 0..L {
            e[l] = d[l].wrapping_add(t1[l]);
        }
        d = c;
        c = b;
        b = a;
        for l in 0..L {
            a[l] = t1[l].wrapping_add(t2[l]);
        }
    }
    for l in 0..L {
        state[0][l] = state[0][l].wrapping_add(a[l]);
        state[1][l] = state[1][l].wrapping_add(b[l]);
        state[2][l] = state[2][l].wrapping_add(c[l]);
        state[3][l] = state[3][l].wrapping_add(d[l]);
        state[4][l] = state[4][l].wrapping_add(e[l]);
        state[5][l] = state[5][l].wrapping_add(f[l]);
        state[6][l] = state[6][l].wrapping_add(g[l]);
        state[7][l] = state[7][l].wrapping_add(h[l]);
    }
}

/// SHA-256 over the concatenation of multiple parts, without materialising
/// the concatenation.
pub fn sha256_concat(parts: &[&[u8]]) -> Hash {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: &Hash) -> String {
        h.to_hex()
    }

    #[test]
    fn nist_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        let expect = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn length_boundary_padding() {
        // Lengths straddling the 55/56-byte padding boundary are the classic
        // implementation trap; check a window around it against lengths that
        // force an extra block.
        for len in 50..70usize {
            let data = vec![0xABu8; len];
            let one = sha256(&data);
            let mut inc = Sha256::new();
            for b in &data {
                inc.update(std::slice::from_ref(b));
            }
            assert_eq!(inc.finalize(), one, "len {len}");
        }
    }

    #[test]
    fn concat_helper_matches_manual_concat() {
        let a = b"hello ".to_vec();
        let b = b"world".to_vec();
        let joined = [a.clone(), b.clone()].concat();
        assert_eq!(sha256_concat(&[&a, &b]), sha256(&joined));
    }

    #[test]
    fn multi_matches_scalar_at_every_padding_shape() {
        // Lengths straddling every padding regime: empty, short, the
        // 55/56 boundary, exact blocks, the 65-byte Merkle node shape,
        // and multi-block messages.
        for len in [0usize, 1, 31, 55, 56, 63, 64, 65, 119, 120, 127, 128, 200] {
            let msgs: Vec<Vec<u8>> =
                (0..8u8).map(|l| (0..len).map(|i| l ^ (i as u8)).collect()).collect();
            let refs8: [&[u8]; 8] = std::array::from_fn(|i| msgs[i].as_slice());
            let out8 = sha256_multi(&refs8);
            for l in 0..8 {
                assert_eq!(out8[l], sha256(&msgs[l]), "len={len} lane={l} (8-wide)");
            }
            let refs4: [&[u8]; 4] = std::array::from_fn(|i| msgs[i].as_slice());
            let out4 = sha256_multi(&refs4);
            for l in 0..4 {
                assert_eq!(out4[l], sha256(&msgs[l]), "len={len} lane={l} (4-wide)");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn multi_rejects_ragged_lanes() {
        sha256_multi(&[b"aa".as_slice(), b"a".as_slice()]);
    }
}
