//! Keyed-hash signatures with a trusted key directory.
//!
//! Permissioned blockchains run among *a priori known, identified* nodes
//! (§2.2 of the paper). We exploit that to replace public-key signatures
//! with MAC-style keyed-hash signatures verified against a trusted
//! [`KeyDirectory`] — the documented Ed25519 substitution from
//! `DESIGN.md` §3. The adversary in our simulations is a Byzantine node
//! that does not know other nodes' secrets, so unforgeability of honest
//! nodes' messages is preserved.

use crate::hash::Hash;
use crate::hmac::hmac_sha256;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Opaque identity of a signer in the directory (node, client, or
/// authority). Workspace crates map their typed ids onto this.
pub type SignerId = u64;

/// A signing key: 32 secret bytes.
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey(pub [u8; 32]);

impl SecretKey {
    /// Derives a secret key deterministically from a seed and signer id.
    ///
    /// Deterministic derivation keeps whole-network setups reproducible
    /// across simulation runs.
    pub fn derive(seed: u64, id: SignerId) -> SecretKey {
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&seed.to_be_bytes());
        input[8..].copy_from_slice(&id.to_be_bytes());
        SecretKey(crate::sha256(&input).0)
    }

    /// Signs a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(hmac_sha256(&self.0, msg))
    }
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecretKey(..)")
    }
}

/// A signature over a message: `HMAC-SHA256(secret, msg)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Signature(pub Hash);

/// Trusted directory mapping signer ids to their secrets.
///
/// Every verifier holds a reference to the directory — the permissioned
/// analogue of a PKI whose certificates were distributed at network
/// setup. Verification recomputes the MAC.
#[derive(Clone, Debug, Default)]
pub struct KeyDirectory {
    keys: HashMap<SignerId, SecretKey>,
}

impl KeyDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a directory for signers `0..n` with keys derived from `seed`.
    pub fn with_signers(seed: u64, n: u64) -> Self {
        let mut dir = Self::new();
        for id in 0..n {
            dir.register(id, SecretKey::derive(seed, id));
        }
        dir
    }

    /// Registers (or replaces) a signer's key.
    pub fn register(&mut self, id: SignerId, key: SecretKey) {
        self.keys.insert(id, key);
    }

    /// Looks up a signer's key.
    pub fn key(&self, id: SignerId) -> Option<&SecretKey> {
        self.keys.get(&id)
    }

    /// Verifies that `sig` is a valid signature by `id` over `msg`.
    pub fn verify(&self, id: SignerId, msg: &[u8], sig: &Signature) -> bool {
        match self.keys.get(&id) {
            Some(k) => k.sign(msg) == *sig,
            None => false,
        }
    }

    /// Number of registered signers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no signers are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let dir = KeyDirectory::with_signers(7, 4);
        let sig = dir.key(2).unwrap().sign(b"block 9");
        assert!(dir.verify(2, b"block 9", &sig));
    }

    #[test]
    fn wrong_signer_rejected() {
        let dir = KeyDirectory::with_signers(7, 4);
        let sig = dir.key(2).unwrap().sign(b"block 9");
        assert!(!dir.verify(3, b"block 9", &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let dir = KeyDirectory::with_signers(7, 4);
        let sig = dir.key(2).unwrap().sign(b"block 9");
        assert!(!dir.verify(2, b"block 10", &sig));
    }

    #[test]
    fn unknown_signer_rejected() {
        let dir = KeyDirectory::with_signers(7, 4);
        let rogue = SecretKey::derive(999, 17);
        let sig = rogue.sign(b"m");
        assert!(!dir.verify(17, b"m", &sig));
    }

    #[test]
    fn derivation_is_deterministic_and_distinct() {
        assert_eq!(SecretKey::derive(1, 2), SecretKey::derive(1, 2));
        assert_ne!(SecretKey::derive(1, 2).0, SecretKey::derive(1, 3).0);
        assert_ne!(SecretKey::derive(1, 2).0, SecretKey::derive(2, 2).0);
    }
}
