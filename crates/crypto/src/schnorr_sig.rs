//! Schnorr digital signatures over the toy group — the *public-key*
//! alternative to the keyed-hash scheme in [`crate::sig`].
//!
//! The MAC-based directory is the cheaper fit for a closed membership
//! (every verifier already shares trust with the setup), but some flows
//! benefit from genuine asymmetry: third parties verifying endorsements
//! without holding any secrets, or auditors checking signatures offline.
//! This is textbook Schnorr (the basis of Ed25519's design): key
//! `x ← Z_q`, public key `X = g^x`; a signature on `m` is `(R = g^k,
//! s = k + H(R ‖ X ‖ m)·x)`, verified by `g^s = R · X^{H(R ‖ X ‖ m)}`.

use crate::group::{hash_to_scalar, GroupElement, Scalar};
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// A Schnorr signing key.
#[derive(Clone, Copy)]
pub struct SigningKey {
    secret: Scalar,
    /// The corresponding public key (`g^secret`).
    pub public: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningKey(pub={:?})", self.public)
    }
}

/// A Schnorr public key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VerifyingKey(pub GroupElement);

/// A Schnorr signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchnorrSignature {
    /// The nonce commitment `R = g^k`.
    pub r: GroupElement,
    /// The response `s = k + c·x`.
    pub s: Scalar,
}

fn challenge(r: GroupElement, public: VerifyingKey, msg: &[u8]) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"pbc-schnorr-sig-v1");
    h.update(&r.0.to_be_bytes());
    h.update(&public.0 .0.to_be_bytes());
    h.update(&(msg.len() as u64).to_be_bytes());
    h.update(msg);
    hash_to_scalar(&h.finalize())
}

impl SigningKey {
    /// Generates a fresh key pair.
    pub fn generate<R: rand::Rng + ?Sized>(rng: &mut R) -> SigningKey {
        let secret = Scalar::random(rng);
        SigningKey { secret, public: VerifyingKey(GroupElement::g_pow(secret)) }
    }

    /// Derives a key pair deterministically from a seed (reproducible
    /// network setups).
    pub fn derive(seed: u64, id: u64) -> SigningKey {
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&seed.to_be_bytes());
        input[8..].copy_from_slice(&id.to_be_bytes());
        let secret = hash_to_scalar(&crate::sha256(&input));
        SigningKey { secret, public: VerifyingKey(GroupElement::g_pow(secret)) }
    }

    /// Signs a message.
    pub fn sign<R: rand::Rng + ?Sized>(&self, msg: &[u8], rng: &mut R) -> SchnorrSignature {
        let k = Scalar::random(rng);
        let r = GroupElement::g_pow(k);
        let c = challenge(r, self.public, msg);
        SchnorrSignature { r, s: k.add(c.mul(self.secret)) }
    }
}

impl VerifyingKey {
    /// Verifies a signature: `g^s == R · X^c`.
    pub fn verify(&self, msg: &[u8], sig: &SchnorrSignature) -> bool {
        if !self.0.is_valid() || !sig.r.is_valid() {
            return false;
        }
        let c = challenge(sig.r, *self, msg);
        GroupElement::g_pow(sig.s) == sig.r.mul(self.0.pow(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"endorse block 7", &mut rng);
        assert!(key.public.verify(b"endorse block 7", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"block 7", &mut rng);
        assert!(!key.public.verify(b"block 8", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = SigningKey::generate(&mut rng);
        let b = SigningKey::generate(&mut rng);
        let sig = a.sign(b"m", &mut rng);
        assert!(!b.public.verify(b"m", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let key = SigningKey::generate(&mut rng);
        let mut sig = key.sign(b"m", &mut rng);
        sig.s = sig.s.add(Scalar::ONE);
        assert!(!key.public.verify(b"m", &sig));
    }

    #[test]
    fn signatures_are_randomized() {
        let mut rng = StdRng::seed_from_u64(5);
        let key = SigningKey::generate(&mut rng);
        let s1 = key.sign(b"m", &mut rng);
        let s2 = key.sign(b"m", &mut rng);
        assert_ne!(s1, s2);
        assert!(key.public.verify(b"m", &s1));
        assert!(key.public.verify(b"m", &s2));
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = SigningKey::derive(9, 3);
        let b = SigningKey::derive(9, 3);
        let c = SigningKey::derive(9, 4);
        assert_eq!(a.public, b.public);
        assert_ne!(a.public, c.public);
    }

    #[test]
    fn verification_needs_no_secret() {
        // The asymmetry that the MAC directory lacks: anyone holding only
        // the public key verifies.
        let mut rng = StdRng::seed_from_u64(6);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"audit", &mut rng);
        let public_only: VerifyingKey = key.public;
        assert!(public_only.verify(b"audit", &sig));
    }
}
