//! Schnorr digital signatures over the toy group — the *public-key*
//! alternative to the keyed-hash scheme in [`crate::sig`].
//!
//! The MAC-based directory is the cheaper fit for a closed membership
//! (every verifier already shares trust with the setup), but some flows
//! benefit from genuine asymmetry: third parties verifying endorsements
//! without holding any secrets, or auditors checking signatures offline.
//! This is textbook Schnorr (the basis of Ed25519's design): key
//! `x ← Z_q`, public key `X = g^x`; a signature on `m` is `(R = g^k,
//! s = k + H(R ‖ X ‖ m)·x)`, verified by `g^s = R · X^{H(R ‖ X ‖ m)}`.

use crate::group::{hash_to_scalar, multi_exp, GroupElement, Scalar};
use crate::sha256::{sha256_concat, Sha256};
use serde::{Deserialize, Serialize};

/// A Schnorr signing key.
#[derive(Clone, Copy)]
pub struct SigningKey {
    secret: Scalar,
    /// The corresponding public key (`g^secret`).
    pub public: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningKey(pub={:?})", self.public)
    }
}

/// A Schnorr public key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VerifyingKey(pub GroupElement);

/// A Schnorr signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchnorrSignature {
    /// The nonce commitment `R = g^k`.
    pub r: GroupElement,
    /// The response `s = k + c·x`.
    pub s: Scalar,
}

fn challenge(r: GroupElement, public: VerifyingKey, msg: &[u8]) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"pbc-schnorr-sig-v1");
    h.update(&r.0.to_be_bytes());
    h.update(&public.0 .0.to_be_bytes());
    h.update(&(msg.len() as u64).to_be_bytes());
    h.update(msg);
    hash_to_scalar(&h.finalize())
}

impl SigningKey {
    /// Generates a fresh key pair.
    pub fn generate<R: rand::Rng + ?Sized>(rng: &mut R) -> SigningKey {
        let secret = Scalar::random(rng);
        SigningKey { secret, public: VerifyingKey(GroupElement::g_pow(secret)) }
    }

    /// Derives a key pair deterministically from a seed (reproducible
    /// network setups).
    pub fn derive(seed: u64, id: u64) -> SigningKey {
        let mut input = [0u8; 16];
        input[..8].copy_from_slice(&seed.to_be_bytes());
        input[8..].copy_from_slice(&id.to_be_bytes());
        let secret = hash_to_scalar(&crate::sha256(&input));
        SigningKey { secret, public: VerifyingKey(GroupElement::g_pow(secret)) }
    }

    /// Signs a message.
    pub fn sign<R: rand::Rng + ?Sized>(&self, msg: &[u8], rng: &mut R) -> SchnorrSignature {
        let k = Scalar::random(rng);
        self.sign_with_nonce(k, msg)
    }

    /// Signs with a derandomized nonce (RFC 6979 style):
    /// `k = H(domain ‖ x ‖ m)`. The same key and message always yield
    /// the same signature — no RNG, which flows inside the deterministic
    /// simulator require.
    pub fn sign_deterministic(&self, msg: &[u8]) -> SchnorrSignature {
        let mut h = Sha256::new();
        h.update(b"pbc-schnorr-nonce-v1");
        h.update(&self.secret.0.to_be_bytes());
        h.update(&(msg.len() as u64).to_be_bytes());
        h.update(msg);
        let mut k = hash_to_scalar(&h.finalize());
        if k == Scalar::ZERO {
            k = Scalar::ONE;
        }
        self.sign_with_nonce(k, msg)
    }

    fn sign_with_nonce(&self, k: Scalar, msg: &[u8]) -> SchnorrSignature {
        let r = GroupElement::g_pow(k);
        let c = challenge(r, self.public, msg);
        SchnorrSignature { r, s: k.add(c.mul(self.secret)) }
    }
}

impl VerifyingKey {
    /// Verifies a signature: `g^s == R · X^c`.
    pub fn verify(&self, msg: &[u8], sig: &SchnorrSignature) -> bool {
        if !self.0.is_valid() || !sig.r.is_valid() {
            return false;
        }
        let c = challenge(sig.r, *self, msg);
        GroupElement::g_pow(sig.s) == sig.r.mul(self.0.pow(c))
    }
}

/// One `(key, message, signature)` entry of a [`verify_batch`] call.
#[derive(Clone, Copy, Debug)]
pub struct BatchItem<'a> {
    /// The signer's public key.
    pub key: VerifyingKey,
    /// The signed message.
    pub msg: &'a [u8],
    /// The signature to check.
    pub sig: SchnorrSignature,
}

/// Batch-verifies `n` Schnorr signatures with one shared-precomputation
/// multi-scalar check instead of `n` independent `g^s == R · X^c`
/// equations.
///
/// Each per-signature equation is raised to a random-looking weight
/// `a_i` and the products combined:
/// `g^{Σ a_i·s_i} == Π R_i^{a_i} · Π X_i^{a_i·c_i}`,
/// evaluated by one interleaved [`multi_exp`] over `2n` bases — shared
/// squarings across the whole batch. The weights are derived by
/// Fiat–Shamir from a transcript of the entire batch (domain
/// `pbc-schnorr-batch-v1`), so verification stays **deterministic** —
/// no RNG, which matters inside the simulator — while still binding
/// each weight to every byte of every entry: a forger cannot craft two
/// invalid signatures that cancel, because any change to an entry
/// reshuffles all the weights.
///
/// Returns `Ok(())` when every signature is valid. Otherwise the batch
/// is bisected recursively — each half re-checked with the same
/// weighted equation, singletons falling back to scalar
/// [`VerifyingKey::verify`] — and `Err` carries the indices of exactly
/// the invalid entries, in ascending order. Valid signatures satisfy
/// the weighted identity unconditionally, so bisection never blames an
/// innocent entry.
pub fn verify_batch(items: &[BatchItem<'_>]) -> Result<(), Vec<usize>> {
    match items {
        [] => return Ok(()),
        [only] => {
            return if only.key.verify(only.msg, &only.sig) { Ok(()) } else { Err(vec![0]) };
        }
        _ => {}
    }
    let weights = batch_weights(items);
    let all: Vec<usize> = (0..items.len()).collect();
    if batch_holds(items, &all, &weights) {
        return Ok(());
    }
    let mut bad = Vec::new();
    bisect(items, &all, &weights, &mut bad);
    debug_assert!(!bad.is_empty(), "a failing batch must contain an invalid signature");
    Err(bad)
}

/// Fiat–Shamir weights: a transcript hash over the whole batch, then one
/// derived nonzero scalar per entry.
fn batch_weights(items: &[BatchItem<'_>]) -> Vec<Scalar> {
    let mut t = Sha256::new();
    t.update(b"pbc-schnorr-batch-v1");
    t.update(&(items.len() as u64).to_be_bytes());
    for it in items {
        t.update(&it.sig.r.0.to_be_bytes());
        t.update(&it.sig.s.0.to_be_bytes());
        t.update(&it.key.0 .0.to_be_bytes());
        t.update(&(it.msg.len() as u64).to_be_bytes());
        t.update(it.msg);
    }
    let transcript = t.finalize();
    (0..items.len() as u64)
        .map(|i| {
            let a = hash_to_scalar(&sha256_concat(&[&transcript.0, &i.to_be_bytes()]));
            // A zero weight would silently drop an entry from the check.
            if a == Scalar::ZERO {
                Scalar::ONE
            } else {
                a
            }
        })
        .collect()
}

/// The weighted combined equation over the `idxs` subset of the batch.
fn batch_holds(items: &[BatchItem<'_>], idxs: &[usize], weights: &[Scalar]) -> bool {
    let mut s_acc = Scalar::ZERO;
    let mut bases = Vec::with_capacity(2 * idxs.len());
    for &i in idxs {
        let it = &items[i];
        if !it.key.0.is_valid() || !it.sig.r.is_valid() {
            return false;
        }
        let a = weights[i];
        let c = challenge(it.sig.r, it.key, it.msg);
        s_acc = s_acc.add(a.mul(it.sig.s));
        bases.push((it.sig.r, a));
        bases.push((it.key.0, a.mul(c)));
    }
    multi_exp(&bases) == GroupElement::g_pow(s_acc)
}

/// Recursive culprit search: a subset that passes the weighted equation
/// is vouched for wholesale; a failing subset splits in half until the
/// scalar check pins individual signatures.
fn bisect(items: &[BatchItem<'_>], idxs: &[usize], weights: &[Scalar], bad: &mut Vec<usize>) {
    if let [only] = idxs {
        let it = &items[*only];
        if !it.key.verify(it.msg, &it.sig) {
            bad.push(*only);
        }
        return;
    }
    if batch_holds(items, idxs, weights) {
        return;
    }
    let (lo, hi) = idxs.split_at(idxs.len() / 2);
    bisect(items, lo, weights, bad);
    bisect(items, hi, weights, bad);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"endorse block 7", &mut rng);
        assert!(key.public.verify(b"endorse block 7", &sig));
    }

    #[test]
    fn deterministic_signing_is_stable_and_verifies() {
        let a = SigningKey::derive(0xD5, 1);
        let b = SigningKey::derive(0xD5, 2);
        let s1 = a.sign_deterministic(b"endorse block 7");
        let s2 = a.sign_deterministic(b"endorse block 7");
        assert_eq!(s1, s2, "same key + message must resign identically");
        assert!(a.public.verify(b"endorse block 7", &s1));
        // Different message or key → different nonce, different signature.
        assert_ne!(s1, a.sign_deterministic(b"endorse block 8"));
        assert_ne!(s1, b.sign_deterministic(b"endorse block 7"));
        assert!(!b.public.verify(b"endorse block 7", &s1));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"block 7", &mut rng);
        assert!(!key.public.verify(b"block 8", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = SigningKey::generate(&mut rng);
        let b = SigningKey::generate(&mut rng);
        let sig = a.sign(b"m", &mut rng);
        assert!(!b.public.verify(b"m", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let key = SigningKey::generate(&mut rng);
        let mut sig = key.sign(b"m", &mut rng);
        sig.s = sig.s.add(Scalar::ONE);
        assert!(!key.public.verify(b"m", &sig));
    }

    #[test]
    fn signatures_are_randomized() {
        let mut rng = StdRng::seed_from_u64(5);
        let key = SigningKey::generate(&mut rng);
        let s1 = key.sign(b"m", &mut rng);
        let s2 = key.sign(b"m", &mut rng);
        assert_ne!(s1, s2);
        assert!(key.public.verify(b"m", &s1));
        assert!(key.public.verify(b"m", &s2));
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = SigningKey::derive(9, 3);
        let b = SigningKey::derive(9, 3);
        let c = SigningKey::derive(9, 4);
        assert_eq!(a.public, b.public);
        assert_ne!(a.public, c.public);
    }

    fn batch<'a>(msgs: &'a [Vec<u8>], seed: u64) -> (Vec<SigningKey>, Vec<BatchItem<'a>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys: Vec<SigningKey> =
            (0..msgs.len()).map(|_| SigningKey::generate(&mut rng)).collect();
        let items = keys
            .iter()
            .zip(msgs)
            .map(|(k, m)| BatchItem { key: k.public, msg: m, sig: k.sign(m, &mut rng) })
            .collect();
        (keys, items)
    }

    #[test]
    fn batch_accepts_all_valid() {
        let msgs: Vec<Vec<u8>> = (0..13u8).map(|i| vec![i; 1 + i as usize]).collect();
        let (_, items) = batch(&msgs, 10);
        assert_eq!(verify_batch(&items), Ok(()));
        assert_eq!(verify_batch(&[]), Ok(()), "empty batch is vacuously valid");
        assert_eq!(verify_batch(&items[..1]), Ok(()), "singleton fast path");
    }

    #[test]
    fn batch_pinpoints_single_culprit() {
        let msgs: Vec<Vec<u8>> = (0..9u8).map(|i| vec![i; 4]).collect();
        for culprit in [0usize, 4, 8] {
            let (_, mut items) = batch(&msgs, 11);
            items[culprit].sig.s = items[culprit].sig.s.add(Scalar::ONE);
            assert_eq!(
                verify_batch(&items),
                Err(vec![culprit]),
                "tampered entry {culprit} must be the one blamed"
            );
        }
    }

    #[test]
    fn batch_pinpoints_multiple_culprits_and_invalid_elements() {
        let msgs: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 3]).collect();
        let (_, mut items) = batch(&msgs, 12);
        items[1].sig.s = items[1].sig.s.add(Scalar::ONE);
        items[5].sig.r = GroupElement(0); // structurally invalid commitment
        items[6].msg = b"swapped";
        assert_eq!(verify_batch(&items), Err(vec![1, 5, 6]));
    }

    #[test]
    fn batch_agrees_with_scalar_verify_on_mixed_batches() {
        let msgs: Vec<Vec<u8>> = (0..17u8).map(|i| vec![i.wrapping_mul(7); i as usize]).collect();
        let (_, mut items) = batch(&msgs, 13);
        for i in (0..items.len()).step_by(3) {
            items[i].sig.s = items[i].sig.s.add(Scalar::new(i as u64 + 1));
        }
        let expect: Vec<usize> = (0..items.len())
            .filter(|&i| !items[i].key.verify(items[i].msg, &items[i].sig))
            .collect();
        assert!(!expect.is_empty());
        assert_eq!(verify_batch(&items), Err(expect));
    }

    #[test]
    fn verification_needs_no_secret() {
        // The asymmetry that the MAC directory lacks: anyone holding only
        // the public key verifies.
        let mut rng = StdRng::seed_from_u64(6);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"audit", &mut rng);
        let public_only: VerifyingKey = key.public;
        assert!(public_only.verify(b"audit", &sig));
    }
}
