//! Binary Merkle trees with inclusion proofs.
//!
//! Used for block transaction roots and for the hash-on-ledger evidence of
//! private data collections (§2.3.1). Leaves are domain-separated from
//! interior nodes (prefix byte `0x00` vs `0x01`) to rule out
//! second-preimage tree-splicing attacks. Odd nodes are promoted (Bitcoin
//! duplicates them instead; promotion avoids the duplicate-leaf ambiguity).

use crate::hash::Hash;
use crate::sha256::sha256_concat;
use serde::{Deserialize, Serialize};

/// Hashes a leaf with domain separation.
pub fn leaf_hash(data: &[u8]) -> Hash {
    sha256_concat(&[&[0x00], data])
}

/// Hashes an interior node with domain separation.
pub fn node_hash(left: &Hash, right: &Hash) -> Hash {
    sha256_concat(&[&[0x01], &left.0, &right.0])
}

/// A Merkle tree over a list of byte-string leaves.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels\[0\] = leaf hashes, last level = [root]. Empty tree has no levels.
    levels: Vec<Vec<Hash>>,
}

/// One step of an inclusion proof: the sibling hash and which side it is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProofStep {
    /// Sibling is on the left: parent = H(sibling ‖ current).
    Left(Hash),
    /// Sibling is on the right: parent = H(current ‖ sibling).
    Right(Hash),
}

/// Inclusion proof for a leaf.
///
/// Carries the total leaf count of the tree it was produced from:
/// with odd nodes *promoted* (not duplicated), the Left/Right step
/// sequence alone does not pin the leaf position — a promoted node
/// contributes no step — so verification replays the exact level
/// geometry from `(index, leaves)` and rejects proofs whose claimed
/// index is inconsistent with the path shape.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Index of the proved leaf.
    pub index: usize,
    /// Total number of leaves in the tree the proof was built from.
    pub leaves: usize,
    /// Sibling path from leaf level to the root.
    pub path: Vec<ProofStep>,
}

impl MerkleTree {
    /// Builds a tree over `leaves` (each hashed with [`leaf_hash`]).
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        let hashes: Vec<Hash> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
        Self::from_leaf_hashes(hashes)
    }

    /// Builds a tree over already-hashed leaves.
    pub fn from_leaf_hashes(hashes: Vec<Hash>) -> Self {
        if hashes.is_empty() {
            return MerkleTree { levels: vec![] };
        }
        let mut levels = vec![hashes];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            let mut i = 0;
            while i < prev.len() {
                if i + 1 < prev.len() {
                    next.push(node_hash(&prev[i], &prev[i + 1]));
                } else {
                    // Odd node: promote unchanged.
                    next.push(prev[i]);
                }
                i += 2;
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Root of the tree. The empty tree's root is `Hash::ZERO`.
    pub fn root(&self) -> Hash {
        self.levels.last().and_then(|l| l.first()).copied().unwrap_or(Hash::ZERO)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, |l| l.len())
    }

    /// True when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces an inclusion proof for leaf `index`, or `None` if out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if idx.is_multiple_of(2) { idx + 1 } else { idx - 1 };
            if sibling < level.len() {
                if idx.is_multiple_of(2) {
                    path.push(ProofStep::Right(level[sibling]));
                } else {
                    path.push(ProofStep::Left(level[sibling]));
                }
            }
            // Promoted odd nodes contribute no step.
            idx /= 2;
        }
        Some(MerkleProof { index, leaves: self.len(), path })
    }
}

/// Verifies that `leaf_data` is included under `root` via `proof`.
pub fn verify_inclusion(root: &Hash, leaf_data: &[u8], proof: &MerkleProof) -> bool {
    verify_inclusion_hash(root, leaf_hash(leaf_data), proof)
}

/// Verifies inclusion of an already-hashed leaf.
///
/// The claimed `proof.index` is checked against the path structure, not
/// merely ignored: verification walks the level sizes of a tree with
/// `proof.leaves` leaves and demands, at every level, exactly the step
/// kind that position dictates — `Right` sibling for a left child,
/// `Left` sibling for a right child, *no* step where the node is a
/// promoted odd tail. An index-lying proof therefore fails even when
/// its hash path folds to the correct root.
pub fn verify_inclusion_hash(root: &Hash, leaf: Hash, proof: &MerkleProof) -> bool {
    if proof.index >= proof.leaves {
        return false;
    }
    let mut cur = leaf;
    let mut idx = proof.index;
    let mut size = proof.leaves;
    let mut steps = proof.path.iter();
    while size > 1 {
        if !idx.is_multiple_of(2) {
            // Right child: the sibling must be on the left.
            match steps.next() {
                Some(ProofStep::Left(sib)) => cur = node_hash(sib, &cur),
                _ => return false,
            }
        } else if idx + 1 < size {
            // Left child with a real sibling on the right.
            match steps.next() {
                Some(ProofStep::Right(sib)) => cur = node_hash(&cur, sib),
                _ => return false,
            }
        }
        // else: promoted odd tail — consumes no step.
        idx /= 2;
        size = size.div_ceil(2);
    }
    steps.next().is_none() && cur == *root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_root_is_zero() {
        let t = MerkleTree::build::<Vec<u8>>(&[]);
        assert_eq!(t.root(), Hash::ZERO);
        assert!(t.is_empty());
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::build(&[b"only".to_vec()]);
        assert_eq!(t.root(), leaf_hash(b"only"));
        let p = t.prove(0).unwrap();
        assert!(p.path.is_empty());
        assert!(verify_inclusion(&t.root(), b"only", &p));
    }

    #[test]
    fn all_proofs_verify_for_many_sizes() {
        for n in 1..=33 {
            let ls = leaves(n);
            let t = MerkleTree::build(&ls);
            for (i, l) in ls.iter().enumerate() {
                let p = t.prove(i).unwrap();
                assert!(verify_inclusion(&t.root(), l, &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let ls = leaves(8);
        let t = MerkleTree::build(&ls);
        let p = t.prove(3).unwrap();
        assert!(!verify_inclusion(&t.root(), b"tx-4", &p));
    }

    #[test]
    fn proof_for_other_tree_fails() {
        let t1 = MerkleTree::build(&leaves(8));
        let t2 = MerkleTree::build(&leaves(9));
        let p = t1.prove(2).unwrap();
        assert!(!verify_inclusion(&t2.root(), b"tx-2", &p));
    }

    #[test]
    fn order_matters() {
        let mut ls = leaves(4);
        let t1 = MerkleTree::build(&ls);
        ls.swap(0, 1);
        let t2 = MerkleTree::build(&ls);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn index_lying_proof_rejected() {
        // With promotion, the sibling path alone does not pin the leaf
        // position; the structural index check must reject every claimed
        // index other than the true one — exhaustively, for every tree
        // size we use elsewhere, including out-of-range lies.
        for n in 2..=33 {
            let ls = leaves(n);
            let t = MerkleTree::build(&ls);
            for (i, leaf) in ls.iter().enumerate() {
                let honest = t.prove(i).unwrap();
                assert_eq!(honest.leaves, n);
                for lie in 0..n + 2 {
                    if lie == i {
                        continue;
                    }
                    let mut p = honest.clone();
                    p.index = lie;
                    assert!(
                        !verify_inclusion(&t.root(), leaf, &p),
                        "n={n}: proof for leaf {i} accepted with lying index {lie}"
                    );
                }
            }
        }
    }

    #[test]
    fn leaf_count_lying_proof_rejected() {
        let ls = leaves(8);
        let t = MerkleTree::build(&ls);
        let mut p = t.prove(3).unwrap();
        p.leaves = 16;
        assert!(!verify_inclusion(&t.root(), &ls[3], &p), "inflated leaf count");
        p.leaves = 3;
        assert!(!verify_inclusion(&t.root(), &ls[3], &p), "index beyond claimed leaf count");
    }

    #[test]
    fn truncated_and_padded_paths_rejected() {
        let ls = leaves(8);
        let t = MerkleTree::build(&ls);
        let mut padded = t.prove(2).unwrap();
        let extra = padded.path[0];
        padded.path.push(extra);
        assert!(!verify_inclusion(&t.root(), &ls[2], &padded));
        let mut truncated = t.prove(2).unwrap();
        truncated.path.pop();
        assert!(!verify_inclusion(&t.root(), &ls[2], &truncated));
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A leaf equal to 0x01 || h1 || h2 must not collide with the
        // interior node H(h1, h2).
        let h1 = leaf_hash(b"a");
        let h2 = leaf_hash(b"b");
        let mut fake = vec![0x01];
        fake.extend_from_slice(&h1.0);
        fake.extend_from_slice(&h2.0);
        assert_ne!(leaf_hash(&fake), node_hash(&h1, &h2));
    }
}
