//! Binary Merkle trees with inclusion proofs.
//!
//! Used for block transaction roots and for the hash-on-ledger evidence of
//! private data collections (§2.3.1). Leaves are domain-separated from
//! interior nodes (prefix byte `0x00` vs `0x01`) to rule out
//! second-preimage tree-splicing attacks. Odd nodes are promoted (Bitcoin
//! duplicates them instead; promotion avoids the duplicate-leaf ambiguity).

use crate::hash::Hash;
use crate::sha256::{sha256_concat, sha256_multi};
use serde::{Deserialize, Serialize};

/// Hashes a leaf with domain separation.
pub fn leaf_hash(data: &[u8]) -> Hash {
    sha256_concat(&[&[0x00], data])
}

/// Hashes an interior node with domain separation.
pub fn node_hash(left: &Hash, right: &Hash) -> Hash {
    sha256_concat(&[&[0x01], &left.0, &right.0])
}

/// The 65-byte preimage of an interior node: `0x01 ‖ left ‖ right`.
fn node_preimage(left: &Hash, right: &Hash) -> [u8; 65] {
    let mut buf = [0u8; 65];
    buf[0] = 0x01;
    buf[1..33].copy_from_slice(&left.0);
    buf[33..].copy_from_slice(&right.0);
    buf
}

/// Computes one interior level from `prev`: adjacent pairs hashed with
/// [`node_hash`], a trailing odd node promoted unchanged. Pairs run
/// through the lane-interleaved SHA-256 kernel 8- then 4-wide, with a
/// scalar tail — every interior node of every tree build goes through
/// the batched compressor, and the outputs are bit-for-bit [`node_hash`].
fn hash_level(prev: &[Hash]) -> Vec<Hash> {
    let pairs = prev.len() / 2;
    let mut next = Vec::with_capacity(prev.len().div_ceil(2));
    let mut i = 0;
    while i + 8 <= pairs {
        let bufs: [[u8; 65]; 8] =
            std::array::from_fn(|k| node_preimage(&prev[2 * (i + k)], &prev[2 * (i + k) + 1]));
        let refs: [&[u8]; 8] = std::array::from_fn(|k| bufs[k].as_slice());
        next.extend(sha256_multi(&refs));
        i += 8;
    }
    if i + 4 <= pairs {
        let bufs: [[u8; 65]; 4] =
            std::array::from_fn(|k| node_preimage(&prev[2 * (i + k)], &prev[2 * (i + k) + 1]));
        let refs: [&[u8]; 4] = std::array::from_fn(|k| bufs[k].as_slice());
        next.extend(sha256_multi(&refs));
        i += 4;
    }
    while i < pairs {
        next.push(node_hash(&prev[2 * i], &prev[2 * i + 1]));
        i += 1;
    }
    if prev.len() % 2 == 1 {
        // Odd node: promote unchanged.
        next.push(prev[prev.len() - 1]);
    }
    next
}

/// A Merkle tree over a list of byte-string leaves.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// levels\[0\] = leaf hashes, last level = [root]. Empty tree has no levels.
    levels: Vec<Vec<Hash>>,
}

/// One step of an inclusion proof: the sibling hash and which side it is on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProofStep {
    /// Sibling is on the left: parent = H(sibling ‖ current).
    Left(Hash),
    /// Sibling is on the right: parent = H(current ‖ sibling).
    Right(Hash),
}

/// Inclusion proof for a leaf.
///
/// Carries the total leaf count of the tree it was produced from:
/// with odd nodes *promoted* (not duplicated), the Left/Right step
/// sequence alone does not pin the leaf position — a promoted node
/// contributes no step — so verification replays the exact level
/// geometry from `(index, leaves)` and rejects proofs whose claimed
/// index is inconsistent with the path shape.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    /// Index of the proved leaf.
    pub index: usize,
    /// Total number of leaves in the tree the proof was built from.
    pub leaves: usize,
    /// Sibling path from leaf level to the root.
    pub path: Vec<ProofStep>,
}

impl MerkleTree {
    /// Builds a tree over `leaves` (each hashed with [`leaf_hash`]).
    pub fn build<T: AsRef<[u8]>>(leaves: &[T]) -> Self {
        let hashes: Vec<Hash> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
        Self::from_leaf_hashes(hashes)
    }

    /// Builds a tree over already-hashed leaves.
    pub fn from_leaf_hashes(hashes: Vec<Hash>) -> Self {
        if hashes.is_empty() {
            return MerkleTree { levels: vec![] };
        }
        let mut levels = vec![hashes];
        while levels.last().unwrap().len() > 1 {
            let next = hash_level(levels.last().unwrap());
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Root of the tree. The empty tree's root is `Hash::ZERO`.
    pub fn root(&self) -> Hash {
        self.levels.last().and_then(|l| l.first()).copied().unwrap_or(Hash::ZERO)
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, |l| l.len())
    }

    /// True when the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces an inclusion proof for leaf `index`, or `None` if out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if idx.is_multiple_of(2) { idx + 1 } else { idx - 1 };
            if sibling < level.len() {
                if idx.is_multiple_of(2) {
                    path.push(ProofStep::Right(level[sibling]));
                } else {
                    path.push(ProofStep::Left(level[sibling]));
                }
            }
            // Promoted odd nodes contribute no step.
            idx /= 2;
        }
        Some(MerkleProof { index, leaves: self.len(), path })
    }
}

/// Verifies that `leaf_data` is included under `root` via `proof`.
pub fn verify_inclusion(root: &Hash, leaf_data: &[u8], proof: &MerkleProof) -> bool {
    verify_inclusion_hash(root, leaf_hash(leaf_data), proof)
}

/// Verifies inclusion of an already-hashed leaf.
///
/// The claimed `proof.index` is checked against the path structure, not
/// merely ignored: verification walks the level sizes of a tree with
/// `proof.leaves` leaves and demands, at every level, exactly the step
/// kind that position dictates — `Right` sibling for a left child,
/// `Left` sibling for a right child, *no* step where the node is a
/// promoted odd tail. An index-lying proof therefore fails even when
/// its hash path folds to the correct root.
pub fn verify_inclusion_hash(root: &Hash, leaf: Hash, proof: &MerkleProof) -> bool {
    if proof.index >= proof.leaves {
        return false;
    }
    let mut cur = leaf;
    let mut idx = proof.index;
    let mut size = proof.leaves;
    let mut steps = proof.path.iter();
    while size > 1 {
        if !idx.is_multiple_of(2) {
            // Right child: the sibling must be on the left.
            match steps.next() {
                Some(ProofStep::Left(sib)) => cur = node_hash(sib, &cur),
                _ => return false,
            }
        } else if idx + 1 < size {
            // Left child with a real sibling on the right.
            match steps.next() {
                Some(ProofStep::Right(sib)) => cur = node_hash(&cur, sib),
                _ => return false,
            }
        }
        // else: promoted odd tail — consumes no step.
        idx /= 2;
        size = size.div_ceil(2);
    }
    steps.next().is_none() && cur == *root
}

/// In-flight state of one proof inside [`verify_inclusion_hash_batch`].
struct ProofWalk<'a> {
    cur: Hash,
    idx: usize,
    size: usize,
    steps: std::slice::Iter<'a, ProofStep>,
}

impl ProofWalk<'_> {
    /// Advances through promoted-odd levels (which consume no step) and
    /// returns the next interior-node preimage to hash, `Ok(None)` when
    /// the walk reached the root, or `Err(())` on a structural mismatch.
    fn next_job(&mut self) -> Result<Option<[u8; 65]>, ()> {
        while self.size > 1 {
            if !self.idx.is_multiple_of(2) {
                return match self.steps.next() {
                    Some(ProofStep::Left(sib)) => Ok(Some(node_preimage(sib, &self.cur))),
                    _ => Err(()),
                };
            } else if self.idx + 1 < self.size {
                return match self.steps.next() {
                    Some(ProofStep::Right(sib)) => Ok(Some(node_preimage(&self.cur, sib))),
                    _ => Err(()),
                };
            }
            // Promoted odd tail: no hash at this level.
            self.idx /= 2;
            self.size = self.size.div_ceil(2);
        }
        Ok(None)
    }

    /// Consumes the hash produced for the job returned by [`Self::next_job`].
    fn absorb(&mut self, parent: Hash) {
        self.cur = parent;
        self.idx /= 2;
        self.size = self.size.div_ceil(2);
    }
}

/// Verifies many already-hashed leaves against one `root`, folding the
/// proofs' interior-node hashes through the lane-interleaved SHA-256
/// kernel — lanes run *across proofs*, so the 65-byte node preimages of
/// up to 8 proofs share one compression scan per tree level.
///
/// Returns `true` iff **every** `(leaf, proof)` pair verifies, with
/// exactly the acceptance set of [`verify_inclusion_hash`] applied to
/// each pair. Callers who need to name the failing entry re-check
/// scalar-wise on `false` (the batch is the fast path; failure is the
/// rare one).
pub fn verify_inclusion_hash_batch(root: &Hash, items: &[(Hash, &MerkleProof)]) -> bool {
    let mut walks: Vec<ProofWalk<'_>> = Vec::with_capacity(items.len());
    for (leaf, proof) in items {
        if proof.index >= proof.leaves {
            return false;
        }
        walks.push(ProofWalk {
            cur: *leaf,
            idx: proof.index,
            size: proof.leaves,
            steps: proof.path.iter(),
        });
    }
    // Round-robin: every round gathers one pending interior hash per
    // still-walking proof and runs them through the wide kernel.
    let mut active: Vec<usize> = (0..walks.len()).collect();
    while !active.is_empty() {
        let mut jobs: Vec<(usize, [u8; 65])> = Vec::with_capacity(active.len());
        let mut still = Vec::with_capacity(active.len());
        for &w in &active {
            match walks[w].next_job() {
                Err(()) => return false,
                Ok(None) => {
                    let walk = &mut walks[w];
                    if walk.steps.next().is_some() || walk.cur != *root {
                        return false;
                    }
                }
                Ok(Some(buf)) => {
                    jobs.push((w, buf));
                    still.push(w);
                }
            }
        }
        let mut i = 0;
        while i + 8 <= jobs.len() {
            let refs: [&[u8]; 8] = std::array::from_fn(|k| jobs[i + k].1.as_slice());
            for (k, h) in sha256_multi(&refs).into_iter().enumerate() {
                walks[jobs[i + k].0].absorb(h);
            }
            i += 8;
        }
        if i + 4 <= jobs.len() {
            let refs: [&[u8]; 4] = std::array::from_fn(|k| jobs[i + k].1.as_slice());
            for (k, h) in sha256_multi(&refs).into_iter().enumerate() {
                walks[jobs[i + k].0].absorb(h);
            }
            i += 4;
        }
        while i < jobs.len() {
            let h = sha256_concat(&[jobs[i].1.as_slice()]);
            walks[jobs[i].0].absorb(h);
            i += 1;
        }
        active = still;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("tx-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_root_is_zero() {
        let t = MerkleTree::build::<Vec<u8>>(&[]);
        assert_eq!(t.root(), Hash::ZERO);
        assert!(t.is_empty());
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::build(&[b"only".to_vec()]);
        assert_eq!(t.root(), leaf_hash(b"only"));
        let p = t.prove(0).unwrap();
        assert!(p.path.is_empty());
        assert!(verify_inclusion(&t.root(), b"only", &p));
    }

    #[test]
    fn all_proofs_verify_for_many_sizes() {
        for n in 1..=33 {
            let ls = leaves(n);
            let t = MerkleTree::build(&ls);
            for (i, l) in ls.iter().enumerate() {
                let p = t.prove(i).unwrap();
                assert!(verify_inclusion(&t.root(), l, &p), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_fails() {
        let ls = leaves(8);
        let t = MerkleTree::build(&ls);
        let p = t.prove(3).unwrap();
        assert!(!verify_inclusion(&t.root(), b"tx-4", &p));
    }

    #[test]
    fn proof_for_other_tree_fails() {
        let t1 = MerkleTree::build(&leaves(8));
        let t2 = MerkleTree::build(&leaves(9));
        let p = t1.prove(2).unwrap();
        assert!(!verify_inclusion(&t2.root(), b"tx-2", &p));
    }

    #[test]
    fn order_matters() {
        let mut ls = leaves(4);
        let t1 = MerkleTree::build(&ls);
        ls.swap(0, 1);
        let t2 = MerkleTree::build(&ls);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn index_lying_proof_rejected() {
        // With promotion, the sibling path alone does not pin the leaf
        // position; the structural index check must reject every claimed
        // index other than the true one — exhaustively, for every tree
        // size we use elsewhere, including out-of-range lies.
        for n in 2..=33 {
            let ls = leaves(n);
            let t = MerkleTree::build(&ls);
            for (i, leaf) in ls.iter().enumerate() {
                let honest = t.prove(i).unwrap();
                assert_eq!(honest.leaves, n);
                for lie in 0..n + 2 {
                    if lie == i {
                        continue;
                    }
                    let mut p = honest.clone();
                    p.index = lie;
                    assert!(
                        !verify_inclusion(&t.root(), leaf, &p),
                        "n={n}: proof for leaf {i} accepted with lying index {lie}"
                    );
                }
            }
        }
    }

    #[test]
    fn leaf_count_lying_proof_rejected() {
        let ls = leaves(8);
        let t = MerkleTree::build(&ls);
        let mut p = t.prove(3).unwrap();
        p.leaves = 16;
        assert!(!verify_inclusion(&t.root(), &ls[3], &p), "inflated leaf count");
        p.leaves = 3;
        assert!(!verify_inclusion(&t.root(), &ls[3], &p), "index beyond claimed leaf count");
    }

    #[test]
    fn truncated_and_padded_paths_rejected() {
        let ls = leaves(8);
        let t = MerkleTree::build(&ls);
        let mut padded = t.prove(2).unwrap();
        let extra = padded.path[0];
        padded.path.push(extra);
        assert!(!verify_inclusion(&t.root(), &ls[2], &padded));
        let mut truncated = t.prove(2).unwrap();
        truncated.path.pop();
        assert!(!verify_inclusion(&t.root(), &ls[2], &truncated));
    }

    #[test]
    fn batched_levels_match_scalar_reference() {
        // The lane-interleaved level builder must agree with a plain
        // pairwise fold at every size that exercises the 8-wide, 4-wide
        // and scalar-tail paths plus odd-node promotion.
        fn scalar_root(mut level: Vec<Hash>) -> Hash {
            while level.len() > 1 {
                let mut next = Vec::new();
                let mut i = 0;
                while i < level.len() {
                    if i + 1 < level.len() {
                        next.push(node_hash(&level[i], &level[i + 1]));
                    } else {
                        next.push(level[i]);
                    }
                    i += 2;
                }
                level = next;
            }
            level.first().copied().unwrap_or(Hash::ZERO)
        }
        for n in [1usize, 2, 3, 7, 8, 9, 15, 16, 17, 23, 24, 25, 31, 32, 33, 64, 100, 257] {
            let ls = leaves(n);
            let t = MerkleTree::build(&ls);
            let reference = scalar_root(ls.iter().map(|l| leaf_hash(l)).collect());
            assert_eq!(t.root(), reference, "n={n}");
        }
    }

    #[test]
    fn batched_proof_verification_matches_scalar() {
        // Lanes run across proofs: sizes around the 8/4/scalar splits,
        // plus promotion-heavy odd trees, must all agree with the
        // per-proof verifier.
        for n in [1usize, 2, 3, 5, 8, 9, 13, 16, 17, 33] {
            let ls = leaves(n);
            let t = MerkleTree::build(&ls);
            let proofs: Vec<MerkleProof> = (0..n).map(|i| t.prove(i).unwrap()).collect();
            let items: Vec<(Hash, &MerkleProof)> =
                ls.iter().zip(&proofs).map(|(l, p)| (leaf_hash(l), p)).collect();
            assert!(verify_inclusion_hash_batch(&t.root(), &items), "n={n}");
        }
        // Empty batch is vacuously true.
        assert!(verify_inclusion_hash_batch(&Hash::ZERO, &[]));
    }

    #[test]
    fn batched_proof_verification_rejects_any_bad_entry() {
        let ls = leaves(16);
        let t = MerkleTree::build(&ls);
        let proofs: Vec<MerkleProof> = (0..16).map(|i| t.prove(i).unwrap()).collect();
        let good: Vec<(Hash, &MerkleProof)> =
            ls.iter().zip(&proofs).map(|(l, p)| (leaf_hash(l), p)).collect();
        // Wrong leaf hash at one position poisons the batch.
        let mut wrong_leaf = good.clone();
        wrong_leaf[7].0 = leaf_hash(b"not-tx-7");
        assert!(!verify_inclusion_hash_batch(&t.root(), &wrong_leaf));
        // Lying index, truncated path, and out-of-range index all reject,
        // exactly as the scalar verifier would.
        let mut lying = proofs[3].clone();
        lying.index = 4;
        let mut batch = good.clone();
        batch[3].1 = &lying;
        assert!(!verify_inclusion_hash_batch(&t.root(), &batch));
        let mut truncated = proofs[5].clone();
        truncated.path.pop();
        let mut batch = good.clone();
        batch[5].1 = &truncated;
        assert!(!verify_inclusion_hash_batch(&t.root(), &batch));
        let mut oob = proofs[0].clone();
        oob.index = 99;
        let mut batch = good;
        batch[0].1 = &oob;
        assert!(!verify_inclusion_hash_batch(&t.root(), &batch));
    }

    #[test]
    fn batched_verification_agrees_with_scalar_on_mixed_sizes() {
        // Proofs from *different* trees against one root: only those
        // from the matching tree survive scalar verification, so the
        // batch must reject; the all-matching subset must pass.
        let ls8 = leaves(8);
        let ls9 = leaves(9);
        let t8 = MerkleTree::build(&ls8);
        let t9 = MerkleTree::build(&ls9);
        let p8: Vec<MerkleProof> = (0..8).map(|i| t8.prove(i).unwrap()).collect();
        let foreign = t9.prove(2).unwrap();
        let mut items: Vec<(Hash, &MerkleProof)> =
            ls8.iter().zip(&p8).map(|(l, p)| (leaf_hash(l), p)).collect();
        assert!(verify_inclusion_hash_batch(&t8.root(), &items));
        items[2] = (leaf_hash(&ls9[2]), &foreign);
        assert!(!verify_inclusion_hash_batch(&t8.root(), &items));
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A leaf equal to 0x01 || h1 || h2 must not collide with the
        // interior node H(h1, h2).
        let h1 = leaf_hash(b"a");
        let h2 = leaf_hash(b"b");
        let mut fake = vec![0x01];
        fake.extend_from_slice(&h1.0);
        fake.extend_from_slice(&h2.0);
        assert_ne!(leaf_hash(&fake), node_hash(&h1, &h2));
    }
}
