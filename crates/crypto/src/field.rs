//! 64-bit modular arithmetic and primality testing.
//!
//! These are the building blocks of the [`crate::group`] Schnorr group.
//! All operations use `u128` intermediates, so they are exact for any
//! 64-bit modulus.

/// `(a * b) mod m` without overflow.
#[inline]
pub fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `(a + b) mod m` without overflow.
#[inline]
pub fn addmod(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 + b as u128) % m as u128) as u64
}

/// `(a - b) mod m`, result in `[0, m)`.
#[inline]
pub fn submod(a: u64, b: u64, m: u64) -> u64 {
    let (a, b) = (a % m, b % m);
    if a >= b {
        a - b
    } else {
        a + (m - b)
    }
}

/// `a^e mod m` by square-and-multiply.
pub fn powmod(mut a: u64, mut e: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut r = 1u64;
    a %= m;
    while e > 0 {
        if e & 1 == 1 {
            r = mulmod(r, a, m);
        }
        a = mulmod(a, a, m);
        e >>= 1;
    }
    r
}

/// Modular inverse of `a` mod prime `p` via Fermat's little theorem.
///
/// # Panics
/// Panics if `a % p == 0` (zero has no inverse).
pub fn invmod_prime(a: u64, p: u64) -> u64 {
    let a = a % p;
    assert!(a != 0, "zero has no modular inverse");
    powmod(a, p - 2, p)
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the sprp base set {2,3,5,7,11,13,17,19,23,29,31,37}, which is
/// proven sufficient for n < 3.3·10^24.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulmod_large_operands() {
        let m = u64::MAX - 58; // arbitrary large modulus
        assert_eq!(mulmod(m - 1, m - 1, m), 1); // (-1)^2 = 1
    }

    #[test]
    fn submod_wraps() {
        assert_eq!(submod(2, 5, 7), 4);
        assert_eq!(submod(5, 2, 7), 3);
        assert_eq!(submod(0, 0, 7), 0);
    }

    #[test]
    fn powmod_edge_cases() {
        assert_eq!(powmod(5, 0, 13), 1);
        assert_eq!(powmod(0, 5, 13), 0);
        assert_eq!(powmod(5, 1, 13), 5);
        assert_eq!(powmod(2, 10, 1000), 24);
        assert_eq!(powmod(7, 100, 1), 0);
    }

    #[test]
    fn fermat_inverse() {
        let p = 1_000_000_007u64;
        for a in [1u64, 2, 12345, p - 1] {
            let inv = invmod_prime(a, p);
            assert_eq!(mulmod(a, inv, p), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no modular inverse")]
    fn inverse_of_zero_panics() {
        invmod_prime(0, 13);
    }

    #[test]
    fn primality_small() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn primality_large_known() {
        assert!(is_prime(2_305_843_009_213_693_951)); // 2^61 - 1 (Mersenne)
        assert!(is_prime(1_000_000_007));
        assert!(!is_prime(1_000_000_007u64 * 3));
        // Strong pseudoprime to base 2 (Carmichael-adjacent trap).
        assert!(!is_prime(3_215_031_751));
    }
}
