//! Non-interactive Σ-protocols (Fiat–Shamir transform).
//!
//! * [`DlogProof`] — proof of knowledge of `x` such that `X = base^x`.
//! * [`OpeningProof`] — proof of knowledge of an opening `(m, r)` of a
//!   Pedersen commitment `C = g^m · h^r`, without revealing it.
//!
//! Challenges are derived by hashing the statement, the prover's
//! commitment, and a caller-supplied domain-separation context, which
//! binds proofs to the transaction they accompany (preventing replay
//! across transactions in `pbc-verify`).

use crate::group::{hash_to_scalar, GroupElement, Scalar};
use crate::pedersen::Commitment;
use crate::sha256::Sha256;
use serde::{Deserialize, Serialize};

/// Derives a Fiat–Shamir challenge from group elements and a context tag.
pub fn challenge(context: &[u8], elements: &[GroupElement]) -> Scalar {
    let mut h = Sha256::new();
    h.update(b"pbc-sigma-v1");
    h.update(&(context.len() as u64).to_be_bytes());
    h.update(context);
    for e in elements {
        h.update(&e.0.to_be_bytes());
    }
    hash_to_scalar(&h.finalize())
}

/// Proof of knowledge of the discrete log of `statement` w.r.t. `base`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DlogProof {
    /// Prover's commitment `a = base^k`.
    pub commit: GroupElement,
    /// Response `z = k + c·x (mod q)`.
    pub response: Scalar,
}

impl DlogProof {
    /// Proves knowledge of `witness` where `statement = base^witness`.
    pub fn prove<R: rand::Rng + ?Sized>(
        base: GroupElement,
        statement: GroupElement,
        witness: Scalar,
        context: &[u8],
        rng: &mut R,
    ) -> DlogProof {
        let k = Scalar::random(rng);
        let a = base.pow(k);
        let c = challenge(context, &[base, statement, a]);
        DlogProof { commit: a, response: k.add(c.mul(witness)) }
    }

    /// Verifies the proof: `base^z == a · statement^c`.
    pub fn verify(&self, base: GroupElement, statement: GroupElement, context: &[u8]) -> bool {
        if !statement.is_valid() || !self.commit.is_valid() {
            return false;
        }
        let c = challenge(context, &[base, statement, self.commit]);
        base.pow(self.response) == self.commit.mul(statement.pow(c))
    }
}

/// Proof of knowledge of a Pedersen opening `(m, r)` for `C = g^m h^r`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpeningProof {
    /// Prover's commitment `a = g^{k_m} h^{k_r}`.
    pub commit: GroupElement,
    /// Response for the value slot.
    pub z_value: Scalar,
    /// Response for the blinding slot.
    pub z_blinding: Scalar,
}

impl OpeningProof {
    /// Proves knowledge of the opening of `c`.
    pub fn prove<R: rand::Rng + ?Sized>(
        c: &Commitment,
        value: Scalar,
        blinding: Scalar,
        context: &[u8],
        rng: &mut R,
    ) -> OpeningProof {
        let km = Scalar::random(rng);
        let kr = Scalar::random(rng);
        let a = GroupElement::g_pow(km).mul(GroupElement::h_pow(kr));
        let ch = challenge(context, &[c.0, a]);
        OpeningProof {
            commit: a,
            z_value: km.add(ch.mul(value)),
            z_blinding: kr.add(ch.mul(blinding)),
        }
    }

    /// Verifies: `g^{z_m} h^{z_r} == a · C^c`.
    pub fn verify(&self, c: &Commitment, context: &[u8]) -> bool {
        if !c.0.is_valid() || !self.commit.is_valid() {
            return false;
        }
        let ch = challenge(context, &[c.0, self.commit]);
        GroupElement::g_pow(self.z_value).mul(GroupElement::h_pow(self.z_blinding))
            == self.commit.mul(c.0.pow(ch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pedersen;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn dlog_proof_roundtrip() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = Scalar::random(&mut rng);
        let base = GroupElement::generator();
        let statement = base.pow(x);
        let proof = DlogProof::prove(base, statement, x, b"ctx", &mut rng);
        assert!(proof.verify(base, statement, b"ctx"));
    }

    #[test]
    fn dlog_proof_rejects_wrong_statement() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Scalar::random(&mut rng);
        let base = GroupElement::generator();
        let statement = base.pow(x);
        let proof = DlogProof::prove(base, statement, x, b"ctx", &mut rng);
        let other = base.pow(x.add(Scalar::ONE));
        assert!(!proof.verify(base, other, b"ctx"));
    }

    #[test]
    fn dlog_proof_bound_to_context() {
        let mut rng = StdRng::seed_from_u64(12);
        let x = Scalar::random(&mut rng);
        let base = GroupElement::generator();
        let statement = base.pow(x);
        let proof = DlogProof::prove(base, statement, x, b"tx-1", &mut rng);
        assert!(!proof.verify(base, statement, b"tx-2"), "replay across contexts must fail");
    }

    #[test]
    fn dlog_proof_rejects_tampered_response() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = Scalar::random(&mut rng);
        let base = GroupElement::generator();
        let statement = base.pow(x);
        let mut proof = DlogProof::prove(base, statement, x, b"ctx", &mut rng);
        proof.response = proof.response.add(Scalar::ONE);
        assert!(!proof.verify(base, statement, b"ctx"));
    }

    #[test]
    fn opening_proof_roundtrip() {
        let mut rng = StdRng::seed_from_u64(14);
        let (c, o) = pedersen::commit_random(Scalar::new(77), &mut rng);
        let proof = OpeningProof::prove(&c, o.value, o.blinding, b"ctx", &mut rng);
        assert!(proof.verify(&c, b"ctx"));
    }

    #[test]
    fn opening_proof_rejects_other_commitment() {
        let mut rng = StdRng::seed_from_u64(15);
        let (c1, o1) = pedersen::commit_random(Scalar::new(77), &mut rng);
        let (c2, _) = pedersen::commit_random(Scalar::new(77), &mut rng);
        let proof = OpeningProof::prove(&c1, o1.value, o1.blinding, b"ctx", &mut rng);
        assert!(!proof.verify(&c2, b"ctx"));
    }

    #[test]
    fn proofs_do_not_reveal_witness_trivially() {
        // Two proofs of the same statement with different randomness differ.
        let mut rng = StdRng::seed_from_u64(16);
        let x = Scalar::random(&mut rng);
        let base = GroupElement::generator();
        let statement = base.pow(x);
        let p1 = DlogProof::prove(base, statement, x, b"ctx", &mut rng);
        let p2 = DlogProof::prove(base, statement, x, b"ctx", &mut rng);
        assert_ne!(p1, p2);
    }
}
