//! Cryptographic substrate for the permissioned-blockchain workspace.
//!
//! Everything here is implemented from scratch (no external crypto crates),
//! per the reproduction rules laid out in the repository `DESIGN.md`:
//!
//! * [`sha256`](mod@sha256) — SHA-256 per FIPS 180-4, tested against official vectors.
//! * [`hash`] — the 32-byte [`hash::Hash`] digest type used across the
//!   workspace for block hashes, Merkle roots and transcript hashing.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104), the basis of node signatures.
//! * [`sig`] — keyed-hash signatures with a trusted key directory. In a
//!   permissioned network identities are known a priori, so authenticity
//!   reduces to MAC verification against the directory (a documented
//!   substitution for Ed25519; see `DESIGN.md` §3).
//! * [`merkle`] — binary Merkle trees with inclusion proofs.
//! * [`field`] — 64-bit modular arithmetic (mulmod/powmod/invmod) and a
//!   deterministic Miller–Rabin primality test.
//! * [`group`] — a Schnorr group: the order-`q` subgroup of
//!   `Z_p^*` for the 61-bit safe prime `p = 2q + 1`.
//! * [`pedersen`] — Pedersen commitments `g^m · h^r` in that group.
//! * [`schnorr`] — Σ-protocols (Fiat–Shamir non-interactive): proofs of
//!   knowledge of discrete logs and commitment openings.
//! * [`range`] — bit-decomposition range proofs built from OR-composed
//!   Σ-protocols, used by the Quorum-style private asset transfer.
//! * [`schnorr_sig`] — Schnorr digital signatures: the public-key
//!   alternative to [`sig`] when verifiers must hold no secrets.
//! * [`token`] — VOPRF-style blind tokens (Privacy-Pass construction),
//!   used by the Separ verifiability technique.
//!
//! # Security scope
//!
//! The Schnorr group is deliberately small (61-bit modulus) so that the
//! *structure* of zero-knowledge verification — commitment, challenge,
//! response, proof sizes, prover/verifier work per transaction — is
//! faithful while remaining laptop-friendly. Discrete logs in this group
//! are feasible for a determined attacker; this library reproduces the
//! systems of a published tutorial for benchmarking and must not be used
//! to protect real data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod group;
pub mod hash;
pub mod hmac;
pub mod merkle;
pub mod pedersen;
pub mod range;
pub mod schnorr;
pub mod schnorr_sig;
pub mod sha256;
pub mod sig;
pub mod token;

pub use hash::Hash;
pub use sha256::{sha256, sha256_multi};
