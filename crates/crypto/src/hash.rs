//! The 32-byte digest type shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-byte SHA-256 digest.
///
/// Used for block hashes, Merkle roots, transaction ids derived from
/// content, and Fiat–Shamir transcripts. `Hash::ZERO` conventionally
/// denotes "no predecessor" (the genesis back-pointer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Hash(pub [u8; 32]);

impl Hash {
    /// The all-zero hash, used as the genesis block's predecessor.
    pub const ZERO: Hash = Hash([0u8; 32]);

    /// Lower-case hex encoding of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        s
    }

    /// Parses a 64-character hex string into a digest.
    pub fn from_hex(s: &str) -> Option<Hash> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        let bytes = s.as_bytes();
        for i in 0..32 {
            let hi = (bytes[2 * i] as char).to_digit(16)?;
            let lo = (bytes[2 * i + 1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Hash(out))
    }

    /// First 8 bytes of the digest as a `u64` (big-endian); handy for
    /// deriving seeds and short identifiers from content.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().unwrap())
    }

    /// Returns true if this is the all-zero hash.
    pub fn is_zero(&self) -> bool {
        *self == Hash::ZERO
    }
}

impl fmt::Debug for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hash({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Hash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Hash {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    #[test]
    fn hex_roundtrip() {
        let h = sha256(b"roundtrip");
        assert_eq!(Hash::from_hex(&h.to_hex()), Some(h));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Hash::from_hex("abc"), None);
        assert_eq!(Hash::from_hex(&"zz".repeat(32)), None);
    }

    #[test]
    fn zero_is_zero() {
        assert!(Hash::ZERO.is_zero());
        assert!(!sha256(b"x").is_zero());
    }

    #[test]
    fn prefix_u64_is_big_endian_prefix() {
        let mut raw = [0u8; 32];
        raw[..8].copy_from_slice(&0x0102030405060708u64.to_be_bytes());
        assert_eq!(Hash(raw).prefix_u64(), 0x0102030405060708);
    }
}
