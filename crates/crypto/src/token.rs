//! Anonymous blind tokens (Privacy-Pass–style VOPRF).
//!
//! The Separ technique (§2.3.2) relies on a centralized trusted authority
//! that models global regulations as *anonymous tokens* and distributes
//! them to participants. We implement the standard verifiable-oblivious-PRF
//! construction over the toy Schnorr group:
//!
//! * the authority holds a PRF key `k` with public commitment `K = g^k`;
//! * a participant picks a random serial `s`, hashes it to the group
//!   (`T = H2G(s)`) and sends the *blinded* point `B = T^b`;
//! * the authority returns `B^k` with a Chaum–Pedersen DLEQ proof that it
//!   used the committed key (so it cannot segment users by key);
//! * the participant unblinds (`S = (B^k)^{1/b} = T^k`), obtaining a token
//!   `(s, S)` that is unlinkable to the issuance interaction;
//! * at redemption the authority checks `S = H2G(s)^k` and records `s` in
//!   a spent set to prevent double spends.

use crate::group::{hash_to_group, GroupElement, Scalar};
use crate::schnorr::challenge;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A token serial — random bytes chosen by the participant.
pub type Serial = [u8; 16];

/// An issued, unblinded token: the serial and the authority's PRF output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// The participant-chosen serial.
    pub serial: Serial,
    /// `H2G(serial)^k`.
    pub signature: GroupElement,
}

/// Chaum–Pedersen proof that `log_g(K) == log_B(S)` — i.e. the authority
/// evaluated the committed PRF key on the blinded point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DleqProof {
    /// `a1 = g^t`.
    pub a1: GroupElement,
    /// `a2 = B^t`.
    pub a2: GroupElement,
    /// `z = t + c·k`.
    pub z: Scalar,
}

impl DleqProof {
    /// Proves equality of discrete logs of `(public_key, signed)` w.r.t.
    /// `(g, blinded)` using key `k`.
    pub fn prove<R: rand::Rng + ?Sized>(
        k: Scalar,
        public_key: GroupElement,
        blinded: GroupElement,
        signed: GroupElement,
        rng: &mut R,
    ) -> DleqProof {
        let t = Scalar::random(rng);
        let a1 = GroupElement::g_pow(t);
        let a2 = blinded.pow(t);
        let c =
            challenge(b"dleq", &[GroupElement::generator(), public_key, blinded, signed, a1, a2]);
        DleqProof { a1, a2, z: t.add(c.mul(k)) }
    }

    /// Verifies the equality proof.
    pub fn verify(
        &self,
        public_key: GroupElement,
        blinded: GroupElement,
        signed: GroupElement,
    ) -> bool {
        let c = challenge(
            b"dleq",
            &[GroupElement::generator(), public_key, blinded, signed, self.a1, self.a2],
        );
        GroupElement::g_pow(self.z) == self.a1.mul(public_key.pow(c))
            && blinded.pow(self.z) == self.a2.mul(signed.pow(c))
    }
}

/// The token-issuing and token-verifying authority (Separ's trusted party).
#[derive(Debug)]
pub struct TokenAuthority {
    key: Scalar,
    public_key: GroupElement,
    spent: HashSet<Serial>,
}

impl TokenAuthority {
    /// Creates an authority with a fresh random PRF key.
    pub fn new<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        let key = Scalar::random(rng);
        TokenAuthority { key, public_key: GroupElement::g_pow(key), spent: HashSet::new() }
    }

    /// The public key commitment `K = g^k`.
    pub fn public_key(&self) -> GroupElement {
        self.public_key
    }

    /// Signs a blinded point, returning `B^k` and a DLEQ proof.
    pub fn issue<R: rand::Rng + ?Sized>(
        &self,
        blinded: GroupElement,
        rng: &mut R,
    ) -> (GroupElement, DleqProof) {
        let signed = blinded.pow(self.key);
        let proof = DleqProof::prove(self.key, self.public_key, blinded, signed, rng);
        (signed, proof)
    }

    /// Verifies and consumes a token. Returns false for forged or
    /// already-spent tokens.
    pub fn redeem(&mut self, token: &Token) -> bool {
        if self.spent.contains(&token.serial) {
            return false;
        }
        if hash_to_group(&token.serial).pow(self.key) != token.signature {
            return false;
        }
        self.spent.insert(token.serial);
        true
    }

    /// Number of tokens redeemed so far.
    pub fn redeemed_count(&self) -> usize {
        self.spent.len()
    }
}

/// Client-side state for one blind issuance.
#[derive(Debug)]
pub struct BlindingSession {
    serial: Serial,
    blind: Scalar,
    /// The blinded point to send to the authority.
    pub blinded: GroupElement,
}

impl BlindingSession {
    /// Starts a new issuance: picks a serial and blinds its group hash.
    pub fn start<R: rand::Rng + ?Sized>(rng: &mut R) -> BlindingSession {
        let mut serial = [0u8; 16];
        rng.fill(&mut serial);
        // blind must be invertible.
        let blind = loop {
            let b = Scalar::random(rng);
            if b != Scalar::ZERO {
                break b;
            }
        };
        let blinded = hash_to_group(&serial).pow(blind);
        BlindingSession { serial, blind, blinded }
    }

    /// Verifies the authority's DLEQ proof and unblinds the token.
    /// Returns `None` if the proof fails (misbehaving authority).
    pub fn finish(
        self,
        authority_key: GroupElement,
        signed: GroupElement,
        proof: &DleqProof,
    ) -> Option<Token> {
        if !proof.verify(authority_key, self.blinded, signed) {
            return None;
        }
        Some(Token { serial: self.serial, signature: signed.pow(self.blind.inv()) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn issue_one(auth: &TokenAuthority, rng: &mut StdRng) -> Token {
        let session = BlindingSession::start(rng);
        let (signed, proof) = auth.issue(session.blinded, rng);
        session.finish(auth.public_key(), signed, &proof).expect("honest issuance")
    }

    #[test]
    fn issue_and_redeem() {
        let mut rng = StdRng::seed_from_u64(30);
        let mut auth = TokenAuthority::new(&mut rng);
        let token = issue_one(&auth, &mut rng);
        assert!(auth.redeem(&token));
    }

    #[test]
    fn double_spend_rejected() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut auth = TokenAuthority::new(&mut rng);
        let token = issue_one(&auth, &mut rng);
        assert!(auth.redeem(&token));
        assert!(!auth.redeem(&token), "second redemption must fail");
        assert_eq!(auth.redeemed_count(), 1);
    }

    #[test]
    fn forged_token_rejected() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut auth = TokenAuthority::new(&mut rng);
        let forged = Token { serial: [9u8; 16], signature: GroupElement::g_pow(Scalar::new(123)) };
        assert!(!auth.redeem(&forged));
    }

    #[test]
    fn token_from_other_authority_rejected() {
        let mut rng = StdRng::seed_from_u64(33);
        let auth_a = TokenAuthority::new(&mut rng);
        let mut auth_b = TokenAuthority::new(&mut rng);
        let token = issue_one(&auth_a, &mut rng);
        assert!(!auth_b.redeem(&token));
    }

    #[test]
    fn bad_dleq_proof_detected_by_client() {
        let mut rng = StdRng::seed_from_u64(34);
        let auth = TokenAuthority::new(&mut rng);
        let session = BlindingSession::start(&mut rng);
        // Authority signs with a different key than committed.
        let rogue_key = Scalar::new(0xBAD);
        let signed = session.blinded.pow(rogue_key);
        let proof = DleqProof::prove(
            rogue_key,
            GroupElement::g_pow(rogue_key),
            session.blinded,
            signed,
            &mut rng,
        );
        assert!(session.finish(auth.public_key(), signed, &proof).is_none());
    }

    #[test]
    fn unblinded_token_valid_under_authority_prf() {
        // Structural check: token.signature == H2G(serial)^k.
        let mut rng = StdRng::seed_from_u64(35);
        let mut auth = TokenAuthority::new(&mut rng);
        let t1 = issue_one(&auth, &mut rng);
        let t2 = issue_one(&auth, &mut rng);
        assert_ne!(t1.serial, t2.serial);
        assert!(auth.redeem(&t1));
        assert!(auth.redeem(&t2));
        assert_eq!(auth.redeemed_count(), 2);
    }
}
