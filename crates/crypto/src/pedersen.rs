//! Pedersen commitments `C = g^m · h^r` in the Schnorr group.
//!
//! Perfectly hiding (for `r` uniform) and computationally binding (under
//! the discrete-log assumption in the toy group), with the additive
//! homomorphism `C(m1, r1) · C(m2, r2) = C(m1 + m2, r1 + r2)` that the
//! Quorum-style private transfer in `pbc-verify` relies on for its
//! mass-conservation check.

use crate::group::{GroupElement, Scalar};
use serde::{Deserialize, Serialize};

/// A Pedersen commitment to a scalar value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub struct Commitment(pub GroupElement);

/// The opening (value, blinding) of a commitment; kept secret by the
/// committer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Opening {
    /// The committed value.
    pub value: Scalar,
    /// The blinding factor.
    pub blinding: Scalar,
}

/// Commits to `value` with blinding `r`.
pub fn commit(value: Scalar, blinding: Scalar) -> Commitment {
    Commitment(GroupElement::g_pow(value).mul(GroupElement::h_pow(blinding)))
}

/// Commits to `value` with fresh randomness, returning the opening too.
pub fn commit_random<R: rand::Rng + ?Sized>(value: Scalar, rng: &mut R) -> (Commitment, Opening) {
    let blinding = Scalar::random(rng);
    (commit(value, blinding), Opening { value, blinding })
}

/// Verifies an opening against a commitment.
pub fn open(c: &Commitment, o: &Opening) -> bool {
    commit(o.value, o.blinding) == *c
}

impl Commitment {
    /// Homomorphic addition: commits to the sum of the two values.
    pub fn add(&self, rhs: &Commitment) -> Commitment {
        Commitment(self.0.mul(rhs.0))
    }

    /// Homomorphic subtraction: commits to the difference of values.
    pub fn sub(&self, rhs: &Commitment) -> Commitment {
        Commitment(self.0.div(rhs.0))
    }

    /// True if this commits to zero with blinding `r` — i.e. equals `h^r`.
    pub fn is_zero_commitment(&self, blinding: Scalar) -> bool {
        self.0 == GroupElement::h_pow(blinding)
    }
}

impl Opening {
    /// Adds two openings (matches [`Commitment::add`]).
    pub fn add(&self, rhs: &Opening) -> Opening {
        Opening { value: self.value.add(rhs.value), blinding: self.blinding.add(rhs.blinding) }
    }

    /// Subtracts two openings (matches [`Commitment::sub`]).
    pub fn sub(&self, rhs: &Opening) -> Opening {
        Opening { value: self.value.sub(rhs.value), blinding: self.blinding.sub(rhs.blinding) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn commit_open_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let (c, o) = commit_random(Scalar::new(42), &mut rng);
        assert!(open(&c, &o));
    }

    #[test]
    fn wrong_value_fails_to_open() {
        let mut rng = StdRng::seed_from_u64(4);
        let (c, o) = commit_random(Scalar::new(42), &mut rng);
        let bad = Opening { value: Scalar::new(43), ..o };
        assert!(!open(&c, &bad));
    }

    #[test]
    fn wrong_blinding_fails_to_open() {
        let mut rng = StdRng::seed_from_u64(5);
        let (c, o) = commit_random(Scalar::new(42), &mut rng);
        let bad = Opening { blinding: o.blinding.add(Scalar::ONE), ..o };
        assert!(!open(&c, &bad));
    }

    #[test]
    fn homomorphic_addition() {
        let mut rng = StdRng::seed_from_u64(6);
        let (c1, o1) = commit_random(Scalar::new(10), &mut rng);
        let (c2, o2) = commit_random(Scalar::new(32), &mut rng);
        let sum_c = c1.add(&c2);
        let sum_o = o1.add(&o2);
        assert_eq!(sum_o.value, Scalar::new(42));
        assert!(open(&sum_c, &sum_o));
    }

    #[test]
    fn homomorphic_subtraction_and_zero_test() {
        let mut rng = StdRng::seed_from_u64(7);
        let (c1, o1) = commit_random(Scalar::new(100), &mut rng);
        let (c2, o2) = commit_random(Scalar::new(100), &mut rng);
        let diff = c1.sub(&c2);
        // Difference commits to zero; provable with the combined blinding.
        assert!(diff.is_zero_commitment(o1.blinding.sub(o2.blinding)));
    }

    #[test]
    fn hiding_same_value_different_commitments() {
        let mut rng = StdRng::seed_from_u64(8);
        let (c1, _) = commit_random(Scalar::new(7), &mut rng);
        let (c2, _) = commit_random(Scalar::new(7), &mut rng);
        assert_ne!(c1, c2, "fresh blinding must hide the value");
    }
}
