//! Bit-decomposition range proofs over Pedersen commitments.
//!
//! Proves that a commitment `C = g^m h^r` hides a value `m ∈ [0, 2^n)`
//! without revealing `m`:
//!
//! 1. the prover commits to every bit of `m` (`C_i = g^{b_i} h^{r_i}`),
//!    choosing the bit blindings so that `Π C_i^{2^i} = C` exactly —
//!    the verifier recomputes this product, which binds the bits to `C`;
//! 2. for every bit, a CDS OR-composed Σ-protocol ([`BitProof`]) shows
//!    `C_i` commits to 0 **or** 1 without revealing which.
//!
//! This is the classic pre-Bulletproofs construction (proof size linear in
//! `n`), which is precisely the "considerable overhead" the paper
//! attributes to ZKP-based verifiability — the `e07_verifiability` bench
//! measures it.

use crate::group::{GroupElement, Scalar};
use crate::pedersen::{commit, Commitment};
use crate::schnorr::challenge;
use serde::{Deserialize, Serialize};

/// OR-proof that a commitment hides 0 or 1 (Cramer–Damgård–Schoenmakers
/// composition of two dlog-w.r.t.-`h` Σ-protocols).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitProof {
    /// Commitment for the `bit = 0` branch.
    pub a0: GroupElement,
    /// Commitment for the `bit = 1` branch.
    pub a1: GroupElement,
    /// Challenge share of branch 0 (`c0 + c1 = H(..)`).
    pub c0: Scalar,
    /// Challenge share of branch 1.
    pub c1: Scalar,
    /// Response for branch 0.
    pub z0: Scalar,
    /// Response for branch 1.
    pub z1: Scalar,
}

impl BitProof {
    /// Proves `c` commits to `bit ∈ {0, 1}` with blinding `blinding`.
    pub fn prove<R: rand::Rng + ?Sized>(
        c: &Commitment,
        bit: bool,
        blinding: Scalar,
        context: &[u8],
        rng: &mut R,
    ) -> BitProof {
        let h = GroupElement::generator_h();
        // Branch statements: X0 = C (claims C = h^r), X1 = C / g (claims C/g = h^r).
        let x0 = c.0;
        let x1 = c.0.div(GroupElement::generator());

        if !bit {
            // True branch 0; simulate branch 1.
            let c1 = Scalar::random(rng);
            let z1 = Scalar::random(rng);
            let a1 = GroupElement::h_pow(z1).div(x1.pow(c1));
            let k = Scalar::random(rng);
            let a0 = h.pow(k);
            let total = challenge(context, &[c.0, a0, a1]);
            let c0 = total.sub(c1);
            let z0 = k.add(c0.mul(blinding));
            BitProof { a0, a1, c0, c1, z0, z1 }
        } else {
            // True branch 1; simulate branch 0.
            let c0 = Scalar::random(rng);
            let z0 = Scalar::random(rng);
            let a0 = GroupElement::h_pow(z0).div(x0.pow(c0));
            let k = Scalar::random(rng);
            let a1 = h.pow(k);
            let total = challenge(context, &[c.0, a0, a1]);
            let c1 = total.sub(c0);
            let z1 = k.add(c1.mul(blinding));
            BitProof { a0, a1, c0, c1, z0, z1 }
        }
    }

    /// Verifies the OR proof against commitment `c`.
    pub fn verify(&self, c: &Commitment, context: &[u8]) -> bool {
        if !c.0.is_valid() {
            return false;
        }
        let x0 = c.0;
        let x1 = c.0.div(GroupElement::generator());
        let total = challenge(context, &[c.0, self.a0, self.a1]);
        if self.c0.add(self.c1) != total {
            return false;
        }
        GroupElement::h_pow(self.z0) == self.a0.mul(x0.pow(self.c0))
            && GroupElement::h_pow(self.z1) == self.a1.mul(x1.pow(self.c1))
    }
}

/// Range proof that a commitment hides a value in `[0, 2^bits)`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeProof {
    /// Per-bit commitments `C_i`.
    pub bit_commitments: Vec<Commitment>,
    /// Per-bit 0/1 OR proofs.
    pub bit_proofs: Vec<BitProof>,
}

/// Errors from range-proof construction.
#[derive(Debug, PartialEq, Eq)]
pub enum RangeError {
    /// The value does not fit in the requested number of bits.
    ValueOutOfRange,
    /// `bits` must be between 1 and 63.
    BadBitWidth,
}

impl std::fmt::Display for RangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RangeError::ValueOutOfRange => write!(f, "value out of range for bit width"),
            RangeError::BadBitWidth => write!(f, "bit width must be in 1..=63"),
        }
    }
}

impl std::error::Error for RangeError {}

impl RangeProof {
    /// Proves that `commitment = g^value h^blinding` hides
    /// `value ∈ [0, 2^bits)`.
    pub fn prove<R: rand::Rng + ?Sized>(
        value: u64,
        blinding: Scalar,
        bits: u32,
        context: &[u8],
        rng: &mut R,
    ) -> Result<RangeProof, RangeError> {
        if bits == 0 || bits > 63 {
            return Err(RangeError::BadBitWidth);
        }
        if bits < 64 && value >> bits != 0 {
            return Err(RangeError::ValueOutOfRange);
        }
        let n = bits as usize;
        // Pick bit blindings so that Σ r_i·2^i = blinding.
        let mut blindings = Vec::with_capacity(n);
        let mut acc = Scalar::ZERO;
        for i in 0..n - 1 {
            let r = Scalar::random(rng);
            acc = acc.add(r.mul(Scalar::new(1u64 << i)));
            blindings.push(r);
        }
        let top_weight = Scalar::new(1u64 << (n - 1));
        let r_top = blinding.sub(acc).mul(top_weight.inv());
        blindings.push(r_top);

        let mut bit_commitments = Vec::with_capacity(n);
        let mut bit_proofs = Vec::with_capacity(n);
        for (i, &blinding) in blindings.iter().enumerate() {
            let bit = (value >> i) & 1 == 1;
            let ci = commit(Scalar::new(bit as u64), blinding);
            let mut ctx = context.to_vec();
            ctx.extend_from_slice(&(i as u32).to_be_bytes());
            bit_proofs.push(BitProof::prove(&ci, bit, blinding, &ctx, rng));
            bit_commitments.push(ci);
        }
        Ok(RangeProof { bit_commitments, bit_proofs })
    }

    /// Verifies the proof against the value commitment.
    pub fn verify(&self, commitment: &Commitment, bits: u32, context: &[u8]) -> bool {
        let n = bits as usize;
        if n == 0 || n > 63 || self.bit_commitments.len() != n || self.bit_proofs.len() != n {
            return false;
        }
        // Recompose: Π C_i^{2^i} must equal the value commitment.
        let mut product = GroupElement::ONE;
        for (i, ci) in self.bit_commitments.iter().enumerate() {
            product = product.mul(ci.0.pow(Scalar::new(1u64 << i)));
        }
        if product != commitment.0 {
            return false;
        }
        // Each bit must be 0/1.
        for (i, (ci, proof)) in self.bit_commitments.iter().zip(&self.bit_proofs).enumerate() {
            let mut ctx = context.to_vec();
            ctx.extend_from_slice(&(i as u32).to_be_bytes());
            if !proof.verify(ci, &ctx) {
                return false;
            }
        }
        true
    }

    /// Serialized size in bytes (for the overhead benchmarks).
    pub fn size_bytes(&self) -> usize {
        // Each commitment: 8 bytes; each bit proof: 2 elements + 4 scalars.
        self.bit_commitments.len() * 8 + self.bit_proofs.len() * (2 * 8 + 4 * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pedersen::commit_random;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn bit_proof_roundtrip_both_values() {
        let mut rng = StdRng::seed_from_u64(20);
        for bit in [false, true] {
            let r = Scalar::random(&mut rng);
            let c = commit(Scalar::new(bit as u64), r);
            let p = BitProof::prove(&c, bit, r, b"ctx", &mut rng);
            assert!(p.verify(&c, b"ctx"), "bit={bit}");
        }
    }

    #[test]
    fn bit_proof_rejects_non_bit() {
        let mut rng = StdRng::seed_from_u64(21);
        let r = Scalar::random(&mut rng);
        let c = commit(Scalar::new(2), r);
        // Prover lies claiming bit=1 with the right blinding — the algebra
        // cannot make C/g = h^r hold since C/g = g·h^r.
        let p = BitProof::prove(&c, true, r, b"ctx", &mut rng);
        assert!(!p.verify(&c, b"ctx"));
    }

    #[test]
    fn range_proof_roundtrip() {
        let mut rng = StdRng::seed_from_u64(22);
        for value in [0u64, 1, 37, 255] {
            let (c, o) = commit_random(Scalar::new(value), &mut rng);
            let p = RangeProof::prove(value, o.blinding, 8, b"tx", &mut rng).unwrap();
            assert!(p.verify(&c, 8, b"tx"), "value={value}");
        }
    }

    #[test]
    fn range_proof_rejects_out_of_range_at_prove_time() {
        let mut rng = StdRng::seed_from_u64(23);
        let (_, o) = commit_random(Scalar::new(256), &mut rng);
        assert_eq!(
            RangeProof::prove(256, o.blinding, 8, b"tx", &mut rng),
            Err(RangeError::ValueOutOfRange)
        );
    }

    #[test]
    fn range_proof_bad_widths_rejected() {
        let mut rng = StdRng::seed_from_u64(24);
        let (_, o) = commit_random(Scalar::new(1), &mut rng);
        assert_eq!(
            RangeProof::prove(1, o.blinding, 0, b"tx", &mut rng),
            Err(RangeError::BadBitWidth)
        );
        assert_eq!(
            RangeProof::prove(1, o.blinding, 64, b"tx", &mut rng),
            Err(RangeError::BadBitWidth)
        );
    }

    #[test]
    fn range_proof_bound_to_commitment() {
        let mut rng = StdRng::seed_from_u64(25);
        let (_, o1) = commit_random(Scalar::new(5), &mut rng);
        let (c2, _) = commit_random(Scalar::new(5), &mut rng);
        let p = RangeProof::prove(5, o1.blinding, 8, b"tx", &mut rng).unwrap();
        assert!(!p.verify(&c2, 8, b"tx"), "proof must bind to the exact commitment");
    }

    #[test]
    fn range_proof_bound_to_context() {
        let mut rng = StdRng::seed_from_u64(26);
        let (c, o) = commit_random(Scalar::new(5), &mut rng);
        let p = RangeProof::prove(5, o.blinding, 8, b"tx-A", &mut rng).unwrap();
        assert!(!p.verify(&c, 8, b"tx-B"));
    }

    #[test]
    fn range_proof_wrong_width_verification_fails() {
        let mut rng = StdRng::seed_from_u64(27);
        let (c, o) = commit_random(Scalar::new(5), &mut rng);
        let p = RangeProof::prove(5, o.blinding, 8, b"tx", &mut rng).unwrap();
        assert!(!p.verify(&c, 16, b"tx"));
    }

    #[test]
    fn proof_size_grows_linearly() {
        let mut rng = StdRng::seed_from_u64(28);
        let (_, o8) = commit_random(Scalar::new(5), &mut rng);
        let p8 = RangeProof::prove(5, o8.blinding, 8, b"t", &mut rng).unwrap();
        let (_, o16) = commit_random(Scalar::new(5), &mut rng);
        let p16 = RangeProof::prove(5, o16.blinding, 16, b"t", &mut rng).unwrap();
        assert_eq!(p16.size_bytes(), 2 * p8.size_bytes());
    }
}
