//! A sequential reference executor for every [`ArchKind`].
//!
//! Each pipeline in `pbc-arch` earns its throughput with parallelism —
//! threaded endorsement, layered validation, in-block reordering. This
//! module re-derives each architecture's *commit rule* in plain
//! sequential code, one transaction at a time, so the auditor can
//! predict exactly which transactions a correct pipeline must commit and
//! abort at every height, and what the resulting state must look like.
//!
//! Version stamping matters: XOV validation compares read versions
//! against current state versions, so the reference must stamp writes
//! exactly as the real pipeline does or verdicts would drift apart at
//! later heights. The per-architecture stamping conventions are
//! documented on [`ReferenceExecutor::apply_block`].

use pbc_core::ArchKind;
use pbc_ledger::{execute, execute_and_apply, ExecResult, StateStore, Version};
use pbc_txn::validate::{validate_read_set, ValidationVerdict};
use pbc_txn::{fabric_pp_reorder, fabric_sharp_reorder, DependencyGraph};
use pbc_types::{Transaction, TxId};

/// What the reference says one block must do.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReferenceOutcome {
    /// Transactions that must commit. Order is the reference's own
    /// application order; architectures that apply in layer order
    /// (OXII, FastFabric) report a different *order* but the same *set*,
    /// so callers compare these as sorted sets.
    pub committed: Vec<TxId>,
    /// Transactions that must abort.
    pub aborted: Vec<TxId>,
    /// Gas-conservation violations: transactions whose re-execution
    /// consumed more gas than their own declared `gas_limit`. A correct
    /// VM charges gas *before* executing each instruction, so this list
    /// must always be empty — any entry is a metering bug the auditor
    /// surfaces as its own error.
    pub gas_overruns: Vec<TxId>,
}

/// Sequential re-implementation of an execution architecture.
///
/// Holds its own [`StateStore`] evolved block by block from the genesis
/// state, entirely independent of any pipeline's store.
#[derive(Clone, Debug)]
pub struct ReferenceExecutor {
    arch: ArchKind,
    state: StateStore,
}

impl ReferenceExecutor {
    /// A reference for `arch` starting from the genesis state.
    pub fn new(arch: ArchKind, initial: StateStore) -> Self {
        ReferenceExecutor { arch, state: initial }
    }

    /// The reference state after every block applied so far.
    pub fn state(&self) -> &StateStore {
        &self.state
    }

    /// The architecture this reference models.
    pub fn arch(&self) -> ArchKind {
        self.arch
    }

    /// Applies one block at `height`, returning the commit/abort
    /// verdicts a correct pipeline must produce.
    ///
    /// Commit rules and version stamps, per architecture:
    ///
    /// * **OX / OXII** — execute serially in block order; tx `i` stamps
    ///   `(height, i)`. OXII's layered schedule is defined to be
    ///   equivalent to this serial order and stamps by block position.
    /// * **XOV / XOV+endorsement / FastFabric** — endorse everything
    ///   against the pre-block snapshot, then validate serially in
    ///   block order, stamping `(height, position)`. FastFabric's
    ///   layer-parallel validation produces identical verdicts (layers
    ///   respect block order between conflicting transactions) and
    ///   identical stamps (block index); honest endorsement is verdict-
    ///   neutral.
    /// * **XOV+Fabric++ / XOV+FabricSharp** — same, but the reorder runs
    ///   over the pre-block endorsements first; validation follows the
    ///   reordered sequence and stamps `(height, reordered_position)`.
    /// * **XOX** — validate in block order (valid ⇒ apply with
    ///   `(height, i)`), then re-execute stale transactions serially
    ///   against current state, stamping `(height, len + i)`.
    ///
    /// Blocks containing dynamic (VM) transactions refine the OXII rule:
    /// the dependency graph is built from *declared* footprints which
    /// may be wrong, so OXII's schedule is only serial-equivalent when
    /// declarations are correct. For such blocks the reference replays
    /// the pipeline's actual layered rule — speculate against the
    /// pre-layer snapshot, detect stale reads at commit, salvage by
    /// serial re-execution — mirroring `OxiiPipeline`. Static blocks
    /// keep the serial fast path (provably identical outcomes).
    pub fn apply_block(&mut self, txs: &[Transaction], height: u64) -> ReferenceOutcome {
        match self.arch {
            ArchKind::Oxii if txs.iter().any(|t| t.gas_limit().is_some()) => {
                self.oxii_block(txs, height)
            }
            ArchKind::Ox | ArchKind::Oxii => self.serial_block(txs, height),
            ArchKind::Xov | ArchKind::XovEndorsed | ArchKind::FastFabric => {
                self.validated_block(txs, height, Reorder::None)
            }
            ArchKind::XovFabricPp => self.validated_block(txs, height, Reorder::FabricPp),
            ArchKind::XovFabricSharp => self.validated_block(txs, height, Reorder::FabricSharp),
            ArchKind::Xox => self.xox_block(txs, height),
        }
    }

    /// Records a gas-conservation violation if `r` spent past the
    /// transaction's declared budget. Static transactions have no
    /// budget (`gas_limit()` is `None`) and are exempt.
    fn check_gas(tx: &Transaction, r: &ExecResult, out: &mut ReferenceOutcome) {
        if let Some(limit) = tx.gas_limit() {
            if r.gas_used > limit && !out.gas_overruns.contains(&tx.id) {
                out.gas_overruns.push(tx.id);
            }
        }
    }

    fn serial_block(&mut self, txs: &[Transaction], height: u64) -> ReferenceOutcome {
        let mut out = ReferenceOutcome::default();
        for (i, tx) in txs.iter().enumerate() {
            let r = execute_and_apply(tx, &mut self.state, Version::new(height, i as u32));
            Self::check_gas(tx, &r, &mut out);
            if r.is_success() {
                out.committed.push(tx.id);
            } else {
                out.aborted.push(tx.id);
            }
        }
        out
    }

    /// OXII's layered commit rule for blocks with dynamic transactions.
    ///
    /// Mirrors `pbc_arch::OxiiPipeline` one-to-one, sequentially: every
    /// transaction of a layer executes against the pre-layer snapshot;
    /// the commit pass walks the layer in block order, treats any read
    /// whose version has since moved as a mispredict, and salvages the
    /// mispredict by re-executing against current state at the tx's
    /// block-position version stamp.
    fn oxii_block(&mut self, txs: &[Transaction], height: u64) -> ReferenceOutcome {
        let graph = DependencyGraph::build(txs);
        let mut out = ReferenceOutcome::default();
        for layer in graph.layers() {
            // Speculative pass: the whole layer sees the pre-layer state.
            let results: Vec<ExecResult> =
                layer.iter().map(|&i| execute(&txs[i], &self.state)).collect();
            for (&i, r) in layer.iter().zip(&results) {
                Self::check_gas(&txs[i], r, &mut out);
                let stale = r.read_set.iter().any(|(key, seen)| self.state.version(key) != *seen);
                if stale {
                    let r2 =
                        execute_and_apply(&txs[i], &mut self.state, Version::new(height, i as u32));
                    Self::check_gas(&txs[i], &r2, &mut out);
                    if r2.is_success() {
                        out.committed.push(txs[i].id);
                    } else {
                        out.aborted.push(txs[i].id);
                    }
                } else if r.is_success() {
                    self.state.apply_writes(&r.write_set, Version::new(height, i as u32));
                    out.committed.push(txs[i].id);
                } else {
                    out.aborted.push(txs[i].id);
                }
            }
        }
        out
    }

    fn validated_block(
        &mut self,
        txs: &[Transaction],
        height: u64,
        reorder: Reorder,
    ) -> ReferenceOutcome {
        let results: Vec<ExecResult> = txs.iter().map(|t| execute(t, &self.state)).collect();
        let (order, pre_aborted) = match reorder {
            Reorder::None => ((0..txs.len()).collect(), Vec::new()),
            Reorder::FabricPp => {
                let o = fabric_pp_reorder(&results);
                (o.order, o.aborted)
            }
            Reorder::FabricSharp => {
                let o = fabric_sharp_reorder(&results, &self.state);
                (o.order, o.aborted)
            }
        };
        let mut out = ReferenceOutcome::default();
        for (i, r) in results.iter().enumerate() {
            Self::check_gas(&txs[i], r, &mut out);
        }
        for i in pre_aborted {
            out.aborted.push(txs[i].id);
        }
        for (pos, &i) in order.iter().enumerate() {
            match validate_read_set(&results[i], &self.state) {
                ValidationVerdict::Valid => {
                    self.state
                        .apply_writes(&results[i].write_set, Version::new(height, pos as u32));
                    out.committed.push(txs[i].id);
                }
                _ => out.aborted.push(txs[i].id),
            }
        }
        out
    }

    fn xox_block(&mut self, txs: &[Transaction], height: u64) -> ReferenceOutcome {
        let results: Vec<ExecResult> = txs.iter().map(|t| execute(t, &self.state)).collect();
        let mut out = ReferenceOutcome::default();
        for (i, r) in results.iter().enumerate() {
            Self::check_gas(&txs[i], r, &mut out);
        }
        let mut retry = Vec::new();
        for (i, r) in results.iter().enumerate() {
            match validate_read_set(r, &self.state) {
                ValidationVerdict::Valid => {
                    self.state.apply_writes(&r.write_set, Version::new(height, i as u32));
                    out.committed.push(txs[i].id);
                }
                ValidationVerdict::Stale { .. } => retry.push(i),
                ValidationVerdict::ExecutionFailed => out.aborted.push(txs[i].id),
            }
        }
        for i in retry {
            let v = Version::new(height, (txs.len() + i) as u32);
            let r = execute_and_apply(&txs[i], &mut self.state, v);
            Self::check_gas(&txs[i], &r, &mut out);
            if r.is_success() {
                out.committed.push(txs[i].id);
            } else {
                out.aborted.push(txs[i].id);
            }
        }
        out
    }
}

/// Reorder policy of the XOV variants (mirrors `pbc_arch::ReorderPolicy`
/// without importing pipeline code).
#[derive(Clone, Copy)]
enum Reorder {
    None,
    FabricPp,
    FabricSharp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op};

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn seeded(accounts: usize, balance: u64) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..accounts {
            s.put(format!("acc{i}"), balance_value(balance), Version::new(0, i as u32));
        }
        s
    }

    #[test]
    fn ox_reference_commits_everything_solvent() {
        let mut r = ReferenceExecutor::new(ArchKind::Ox, seeded(2, 100));
        let txs: Vec<Transaction> = (0..5).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let out = r.apply_block(&txs, 1);
        assert_eq!(out.committed.len(), 5);
        assert_eq!(balance_of(r.state().get("acc0")), 50);
    }

    #[test]
    fn xov_reference_first_committer_wins() {
        let mut r = ReferenceExecutor::new(ArchKind::Xov, seeded(2, 100));
        let txs: Vec<Transaction> = (0..5).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let out = r.apply_block(&txs, 1);
        assert_eq!(out.committed, vec![TxId(0)]);
        assert_eq!(out.aborted.len(), 4);
    }

    #[test]
    fn xox_reference_salvages_stale_transactions() {
        let mut r = ReferenceExecutor::new(ArchKind::Xox, seeded(2, 100));
        let txs: Vec<Transaction> = (0..5).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let out = r.apply_block(&txs, 1);
        assert_eq!(out.committed.len(), 5);
        assert_eq!(balance_of(r.state().get("acc1")), 150);
    }

    /// A VM transfer with caller-chosen (possibly wrong) declarations.
    fn vm_transfer(
        id: u64,
        from: &str,
        to: &str,
        amount: u64,
        declared: (&[&str], &[&str]),
    ) -> Transaction {
        let p = pbc_vm::compile_ops(&[Op::Transfer { from: from.into(), to: to.into(), amount }]);
        Transaction::invoke(
            TxId(id),
            ClientId(0),
            pbc_types::VmCall {
                bytecode: bytes::Bytes::from(p.to_bytes()),
                args: vec![],
                gas_limit: p.straight_line_gas(),
                declared_reads: declared.0.iter().map(|s| s.to_string()).collect(),
                declared_writes: declared.1.iter().map(|s| s.to_string()).collect(),
            },
        )
    }

    #[test]
    fn oxii_reference_replays_layered_mispredict_rule() {
        // Wrong declarations make OXII's schedule diverge from plain
        // serial execution — the reference must track the *pipeline*,
        // not the serial ideal. Random mixes of static transfers and
        // decoy-declared VM transfers, compared block by block.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x0E11);
        let initial = seeded(5, 200);
        let mut reference = ReferenceExecutor::new(ArchKind::Oxii, initial.clone());
        let mut pipeline = ArchKind::Oxii.make_pipeline(initial);
        for block in 0..4u64 {
            let txs: Vec<Transaction> = (0..10)
                .map(|i| {
                    let a = rng.gen_range(0..5);
                    let b = rng.gen_range(0..5);
                    let (from, to) = (format!("acc{a}"), format!("acc{b}"));
                    let amount = rng.gen_range(1..30);
                    let id = block * 100 + i;
                    if rng.gen_bool(0.5) {
                        // Half the block lies about its footprint.
                        let decoy = format!("decoy{i}");
                        vm_transfer(id, &from, &to, amount, (&[&decoy], &[decoy.as_str()]))
                    } else {
                        transfer(id, &from, &to, amount)
                    }
                })
                .collect();
            let expected = reference.apply_block(&txs, block + 1);
            assert!(expected.gas_overruns.is_empty(), "block {block}: VM overspent gas");
            let got = pipeline.process_block(txs);
            let mut ec = expected.committed.clone();
            let mut gc = got.committed.clone();
            ec.sort_unstable();
            gc.sort_unstable();
            assert_eq!(ec, gc, "block {block}: commit sets diverge");
            assert_eq!(
                reference.state().value_digest(),
                pipeline.state().value_digest(),
                "block {block}: state diverged"
            );
        }
    }

    #[test]
    fn gas_overrun_is_flagged() {
        // The invariant checker itself: a (synthetic) result that spent
        // past its limit must land in `gas_overruns` exactly once.
        let tx = vm_transfer(7, "acc0", "acc1", 1, (&["acc0", "acc1"], &["acc0", "acc1"]));
        let limit = tx.gas_limit().expect("invoke tx has a limit");
        let mut r = pbc_ledger::execute(&tx, &seeded(2, 100));
        assert!(r.gas_used <= limit, "real VM never overspends");
        let mut out = ReferenceOutcome::default();
        ReferenceExecutor::check_gas(&tx, &r, &mut out);
        assert!(out.gas_overruns.is_empty());
        r.gas_used = limit + 1;
        ReferenceExecutor::check_gas(&tx, &r, &mut out);
        ReferenceExecutor::check_gas(&tx, &r, &mut out);
        assert_eq!(out.gas_overruns, vec![TxId(7)]);
    }

    /// The load-bearing property: for every architecture, the sequential
    /// reference and the real (parallel) pipeline agree on verdicts and
    /// on the observable state, block after block.
    #[test]
    fn reference_matches_every_real_pipeline() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xA0D1);
        for arch in ArchKind::ALL {
            let initial = seeded(5, 200);
            let mut reference = ReferenceExecutor::new(arch, initial.clone());
            let mut pipeline = arch.make_pipeline(initial);
            for block in 0..4u64 {
                let txs: Vec<Transaction> = (0..10)
                    .map(|i| {
                        let a = rng.gen_range(0..5);
                        let b = rng.gen_range(0..5);
                        transfer(
                            block * 100 + i,
                            &format!("acc{a}"),
                            &format!("acc{b}"),
                            rng.gen_range(1..30),
                        )
                    })
                    .collect();
                let expected = reference.apply_block(&txs, block + 1);
                let got = pipeline.process_block(txs);
                let mut ec = expected.committed.clone();
                let mut gc = got.committed.clone();
                ec.sort_unstable();
                gc.sort_unstable();
                assert_eq!(ec, gc, "{arch:?} block {block}: commit sets diverge");
                assert_eq!(
                    reference.state().value_digest(),
                    pipeline.state().value_digest(),
                    "{arch:?} block {block}: state diverged"
                );
            }
        }
    }
}
