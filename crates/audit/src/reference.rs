//! A sequential reference executor for every [`ArchKind`].
//!
//! Each pipeline in `pbc-arch` earns its throughput with parallelism —
//! threaded endorsement, layered validation, in-block reordering. This
//! module re-derives each architecture's *commit rule* in plain
//! sequential code, one transaction at a time, so the auditor can
//! predict exactly which transactions a correct pipeline must commit and
//! abort at every height, and what the resulting state must look like.
//!
//! Version stamping matters: XOV validation compares read versions
//! against current state versions, so the reference must stamp writes
//! exactly as the real pipeline does or verdicts would drift apart at
//! later heights. The per-architecture stamping conventions are
//! documented on [`ReferenceExecutor::apply_block`].

use pbc_core::ArchKind;
use pbc_ledger::{execute, execute_and_apply, ExecResult, StateStore, Version};
use pbc_txn::validate::{validate_read_set, ValidationVerdict};
use pbc_txn::{fabric_pp_reorder, fabric_sharp_reorder};
use pbc_types::{Transaction, TxId};

/// What the reference says one block must do.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReferenceOutcome {
    /// Transactions that must commit. Order is the reference's own
    /// application order; architectures that apply in layer order
    /// (OXII, FastFabric) report a different *order* but the same *set*,
    /// so callers compare these as sorted sets.
    pub committed: Vec<TxId>,
    /// Transactions that must abort.
    pub aborted: Vec<TxId>,
}

/// Sequential re-implementation of an execution architecture.
///
/// Holds its own [`StateStore`] evolved block by block from the genesis
/// state, entirely independent of any pipeline's store.
#[derive(Clone, Debug)]
pub struct ReferenceExecutor {
    arch: ArchKind,
    state: StateStore,
}

impl ReferenceExecutor {
    /// A reference for `arch` starting from the genesis state.
    pub fn new(arch: ArchKind, initial: StateStore) -> Self {
        ReferenceExecutor { arch, state: initial }
    }

    /// The reference state after every block applied so far.
    pub fn state(&self) -> &StateStore {
        &self.state
    }

    /// The architecture this reference models.
    pub fn arch(&self) -> ArchKind {
        self.arch
    }

    /// Applies one block at `height`, returning the commit/abort
    /// verdicts a correct pipeline must produce.
    ///
    /// Commit rules and version stamps, per architecture:
    ///
    /// * **OX / OXII** — execute serially in block order; tx `i` stamps
    ///   `(height, i)`. OXII's layered schedule is defined to be
    ///   equivalent to this serial order and stamps by block position.
    /// * **XOV / XOV+endorsement / FastFabric** — endorse everything
    ///   against the pre-block snapshot, then validate serially in
    ///   block order, stamping `(height, position)`. FastFabric's
    ///   layer-parallel validation produces identical verdicts (layers
    ///   respect block order between conflicting transactions) and
    ///   identical stamps (block index); honest endorsement is verdict-
    ///   neutral.
    /// * **XOV+Fabric++ / XOV+FabricSharp** — same, but the reorder runs
    ///   over the pre-block endorsements first; validation follows the
    ///   reordered sequence and stamps `(height, reordered_position)`.
    /// * **XOX** — validate in block order (valid ⇒ apply with
    ///   `(height, i)`), then re-execute stale transactions serially
    ///   against current state, stamping `(height, len + i)`.
    pub fn apply_block(&mut self, txs: &[Transaction], height: u64) -> ReferenceOutcome {
        match self.arch {
            ArchKind::Ox | ArchKind::Oxii => self.serial_block(txs, height),
            ArchKind::Xov | ArchKind::XovEndorsed | ArchKind::FastFabric => {
                self.validated_block(txs, height, Reorder::None)
            }
            ArchKind::XovFabricPp => self.validated_block(txs, height, Reorder::FabricPp),
            ArchKind::XovFabricSharp => self.validated_block(txs, height, Reorder::FabricSharp),
            ArchKind::Xox => self.xox_block(txs, height),
        }
    }

    fn serial_block(&mut self, txs: &[Transaction], height: u64) -> ReferenceOutcome {
        let mut out = ReferenceOutcome::default();
        for (i, tx) in txs.iter().enumerate() {
            let r = execute_and_apply(tx, &mut self.state, Version::new(height, i as u32));
            if r.is_success() {
                out.committed.push(tx.id);
            } else {
                out.aborted.push(tx.id);
            }
        }
        out
    }

    fn validated_block(
        &mut self,
        txs: &[Transaction],
        height: u64,
        reorder: Reorder,
    ) -> ReferenceOutcome {
        let results: Vec<ExecResult> = txs.iter().map(|t| execute(t, &self.state)).collect();
        let (order, pre_aborted) = match reorder {
            Reorder::None => ((0..txs.len()).collect(), Vec::new()),
            Reorder::FabricPp => {
                let o = fabric_pp_reorder(&results);
                (o.order, o.aborted)
            }
            Reorder::FabricSharp => {
                let o = fabric_sharp_reorder(&results, &self.state);
                (o.order, o.aborted)
            }
        };
        let mut out = ReferenceOutcome::default();
        for i in pre_aborted {
            out.aborted.push(txs[i].id);
        }
        for (pos, &i) in order.iter().enumerate() {
            match validate_read_set(&results[i], &self.state) {
                ValidationVerdict::Valid => {
                    self.state
                        .apply_writes(&results[i].write_set, Version::new(height, pos as u32));
                    out.committed.push(txs[i].id);
                }
                _ => out.aborted.push(txs[i].id),
            }
        }
        out
    }

    fn xox_block(&mut self, txs: &[Transaction], height: u64) -> ReferenceOutcome {
        let results: Vec<ExecResult> = txs.iter().map(|t| execute(t, &self.state)).collect();
        let mut out = ReferenceOutcome::default();
        let mut retry = Vec::new();
        for (i, r) in results.iter().enumerate() {
            match validate_read_set(r, &self.state) {
                ValidationVerdict::Valid => {
                    self.state.apply_writes(&r.write_set, Version::new(height, i as u32));
                    out.committed.push(txs[i].id);
                }
                ValidationVerdict::Stale { .. } => retry.push(i),
                ValidationVerdict::ExecutionFailed => out.aborted.push(txs[i].id),
            }
        }
        for i in retry {
            let v = Version::new(height, (txs.len() + i) as u32);
            let r = execute_and_apply(&txs[i], &mut self.state, v);
            if r.is_success() {
                out.committed.push(txs[i].id);
            } else {
                out.aborted.push(txs[i].id);
            }
        }
        out
    }
}

/// Reorder policy of the XOV variants (mirrors `pbc_arch::ReorderPolicy`
/// without importing pipeline code).
#[derive(Clone, Copy)]
enum Reorder {
    None,
    FabricPp,
    FabricSharp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op};

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn seeded(accounts: usize, balance: u64) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..accounts {
            s.put(format!("acc{i}"), balance_value(balance), Version::new(0, i as u32));
        }
        s
    }

    #[test]
    fn ox_reference_commits_everything_solvent() {
        let mut r = ReferenceExecutor::new(ArchKind::Ox, seeded(2, 100));
        let txs: Vec<Transaction> = (0..5).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let out = r.apply_block(&txs, 1);
        assert_eq!(out.committed.len(), 5);
        assert_eq!(balance_of(r.state().get("acc0")), 50);
    }

    #[test]
    fn xov_reference_first_committer_wins() {
        let mut r = ReferenceExecutor::new(ArchKind::Xov, seeded(2, 100));
        let txs: Vec<Transaction> = (0..5).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let out = r.apply_block(&txs, 1);
        assert_eq!(out.committed, vec![TxId(0)]);
        assert_eq!(out.aborted.len(), 4);
    }

    #[test]
    fn xox_reference_salvages_stale_transactions() {
        let mut r = ReferenceExecutor::new(ArchKind::Xox, seeded(2, 100));
        let txs: Vec<Transaction> = (0..5).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let out = r.apply_block(&txs, 1);
        assert_eq!(out.committed.len(), 5);
        assert_eq!(balance_of(r.state().get("acc1")), 150);
    }

    /// The load-bearing property: for every architecture, the sequential
    /// reference and the real (parallel) pipeline agree on verdicts and
    /// on the observable state, block after block.
    #[test]
    fn reference_matches_every_real_pipeline() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xA0D1);
        for arch in ArchKind::ALL {
            let initial = seeded(5, 200);
            let mut reference = ReferenceExecutor::new(arch, initial.clone());
            let mut pipeline = arch.make_pipeline(initial);
            for block in 0..4u64 {
                let txs: Vec<Transaction> = (0..10)
                    .map(|i| {
                        let a = rng.gen_range(0..5);
                        let b = rng.gen_range(0..5);
                        transfer(
                            block * 100 + i,
                            &format!("acc{a}"),
                            &format!("acc{b}"),
                            rng.gen_range(1..30),
                        )
                    })
                    .collect();
                let expected = reference.apply_block(&txs, block + 1);
                let got = pipeline.process_block(txs);
                let mut ec = expected.committed.clone();
                let mut gc = got.committed.clone();
                ec.sort_unstable();
                gc.sort_unstable();
                assert_eq!(ec, gc, "{arch:?} block {block}: commit sets diverge");
                assert_eq!(
                    reference.state().value_digest(),
                    pipeline.state().value_digest(),
                    "{arch:?} block {block}: state diverged"
                );
            }
        }
    }
}
