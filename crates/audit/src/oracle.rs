//! The replay oracle: cross-checks a whole network run after the fact.
//!
//! [`audit_network`] takes a finished (or paused) run of a
//! [`BlockchainNetwork`] built with
//! [`with_audit`](pbc_core::NetworkBuilder::with_audit) and verifies,
//! for **every node**, that the recorded commit claims are exactly what
//! an independent auditor can re-derive from the genesis state and the
//! block stream alone:
//!
//! 1. **Chain walk** — heights are dense, every header's `prev` equals
//!    the predecessor's hash, and every transaction Merkle root matches
//!    a root recomputed from the block body (§2.2).
//! 2. **Replay oracle** — per height, a sequential
//!    [`ReferenceExecutor`] re-derives the commit/abort verdicts and the
//!    post-block state digest; in parallel, the *claimed* commit order
//!    is replayed serially from genesis and must reproduce the same
//!    digest (serializability of the committed schedule).
//! 3. **Verifiability audit** (§2.3.2) — sampled transactions get their
//!    inclusion proofs checked against the header roots, and sampled
//!    keys of the final state get inclusion + absence proofs checked
//!    against a state root built once per node via [`ProofBatch`].
//! 4. **Cross-replica agreement** — any two nodes' records at a common
//!    height must be identical claims.
//!
//! Any mismatch is an [`AuditError`] naming the node, the height, and
//! which oracle disagreed.

use crate::reference::ReferenceExecutor;
use pbc_core::BlockchainNetwork;
use pbc_crypto::merkle::{verify_inclusion, MerkleTree};
use pbc_ledger::{
    execute_and_apply, prove_absent, verify_absent, verify_key, verify_keys, ProofBatch,
    StateStore, Version,
};
use pbc_types::{encode::CanonicalEncode, Height, TxId};

/// Where and how an audited run contradicted its own records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditError {
    /// The network was not built with
    /// [`with_audit`](pbc_core::NetworkBuilder::with_audit), so there is
    /// nothing to cross-check.
    NoTrail,
    /// A node's chain fails the structural walk (height gap, broken
    /// hash link, genesis malformed).
    BrokenChain {
        /// The offending node.
        node: usize,
        /// Height at which the walk broke.
        height: u64,
        /// What exactly was wrong.
        reason: String,
    },
    /// A header's transaction Merkle root does not match the root
    /// recomputed from the block body.
    TxRootMismatch {
        /// The offending node.
        node: usize,
        /// The block whose root lies.
        height: u64,
    },
    /// The audit trail and the chain disagree on how many blocks exist.
    TrailLengthMismatch {
        /// The offending node.
        node: usize,
        /// Blocks the trail recorded.
        trail: u64,
        /// Blocks the chain holds (excluding genesis).
        chain: u64,
    },
    /// A record's committed + aborted sets are not a partition of the
    /// block's transactions (lost, duplicated, or invented ids).
    TxPartitionMismatch {
        /// The offending node.
        node: usize,
        /// The height whose record is malformed.
        height: u64,
    },
    /// The sequential reference disagrees with the pipeline about which
    /// transactions commit at a height.
    VerdictMismatch {
        /// The offending node.
        node: usize,
        /// The contested height.
        height: u64,
        /// Commits the reference derives.
        expected_committed: usize,
        /// Commits the pipeline claimed.
        claimed_committed: usize,
    },
    /// A state digest re-derived by an oracle differs from the recorded
    /// one.
    DigestMismatch {
        /// The offending node.
        node: usize,
        /// The height after which digests diverge.
        height: u64,
        /// Which oracle disagreed: `"reference"` (sequential
        /// re-execution of the architecture) or `"serial-replay"`
        /// (serializability replay of the claimed commit order).
        oracle: &'static str,
    },
    /// A transaction the pipeline claims committed fails when replayed
    /// serially in the claimed order — the claimed schedule is not
    /// serializable.
    SerialReplayFailed {
        /// The offending node.
        node: usize,
        /// The height being replayed.
        height: u64,
        /// The transaction that failed.
        tx: TxId,
    },
    /// A transaction's execution consumed more gas than its own
    /// declared `gas_limit` — the VM's charge-before-execute metering
    /// invariant was violated (gas conservation, §gas metering).
    GasOverrun {
        /// The offending node.
        node: usize,
        /// The height whose block contains the overrun.
        height: u64,
        /// The transaction that overspent.
        tx: TxId,
    },
    /// Two replicas recorded different claims for the same height.
    ReplicaDisagreement {
        /// First node.
        node_a: usize,
        /// Second node.
        node_b: usize,
        /// The contested height.
        height: u64,
    },
    /// A Merkle inclusion or absence proof failed to verify.
    ProofFailed {
        /// The offending node.
        node: usize,
        /// What failed.
        reason: String,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::NoTrail => {
                write!(f, "network was built without audit trails (NetworkBuilder::with_audit)")
            }
            AuditError::BrokenChain { node, height, reason } => {
                write!(f, "node {node}: chain broken at height {height}: {reason}")
            }
            AuditError::TxRootMismatch { node, height } => {
                write!(f, "node {node}: tx merkle root mismatch in block {height}")
            }
            AuditError::TrailLengthMismatch { node, trail, chain } => {
                write!(f, "node {node}: trail records {trail} blocks but chain holds {chain}")
            }
            AuditError::TxPartitionMismatch { node, height } => {
                write!(
                    f,
                    "node {node}: height {height} committed+aborted do not partition the block"
                )
            }
            AuditError::VerdictMismatch { node, height, expected_committed, claimed_committed } => {
                write!(
                    f,
                    "node {node}: height {height} reference commits {expected_committed} \
                     but pipeline claimed {claimed_committed}"
                )
            }
            AuditError::DigestMismatch { node, height, oracle } => {
                write!(f, "node {node}: state digest diverges from {oracle} after height {height}")
            }
            AuditError::SerialReplayFailed { node, height, tx } => {
                write!(
                    f,
                    "node {node}: claimed-committed tx {tx:?} fails serial replay at height {height}"
                )
            }
            AuditError::GasOverrun { node, height, tx } => {
                write!(f, "node {node}: tx {tx:?} at height {height} spent more gas than its limit")
            }
            AuditError::ReplicaDisagreement { node_a, node_b, height } => {
                write!(
                    f,
                    "nodes {node_a} and {node_b} recorded different claims at height {height}"
                )
            }
            AuditError::ProofFailed { node, reason } => {
                write!(f, "node {node}: proof audit failed: {reason}")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// Counters describing how much work a successful audit actually did —
/// a green audit that checked nothing would be worse than none.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Nodes whose full trail + chain were audited.
    pub nodes_audited: usize,
    /// Per-node block heights cross-checked by both replay oracles.
    pub heights_checked: usize,
    /// Committed transactions re-executed by the serial replay.
    pub txs_replayed: usize,
    /// Merkle inclusion/absence proofs verified (tx and state).
    pub proofs_checked: usize,
}

/// How many items a per-node sample draws from an ordered population
/// (first, last, and evenly spaced interior points).
const SAMPLE: usize = 8;

/// Evenly spaced sample indices over `len` items (deterministic — the
/// auditor must be reproducible).
fn sample_indices(len: usize) -> Vec<usize> {
    if len == 0 {
        return Vec::new();
    }
    let step = len.div_ceil(SAMPLE).max(1);
    let mut idx: Vec<usize> = (0..len).step_by(step).collect();
    if *idx.last().expect("non-empty") != len - 1 {
        idx.push(len - 1);
    }
    idx
}

/// Audits every node of a finished run. See the module docs for the
/// four oracle families; returns the first contradiction found.
pub fn audit_network(chain: &BlockchainNetwork) -> Result<AuditReport, AuditError> {
    let mut report = AuditReport::default();
    for node in 0..chain.len() {
        if chain.audit_trail(node).is_none() {
            return Err(AuditError::NoTrail);
        }
        audit_node(chain, node, &mut report)?;
        report.nodes_audited += 1;
    }
    // Cross-replica agreement on every common height. Replicas may have
    // applied different prefixes (laggards), but where their histories
    // overlap the claims must be bit-identical.
    for a in 0..chain.len() {
        for b in a + 1..chain.len() {
            let (ta, tb) = (
                chain.audit_trail(a).expect("checked above"),
                chain.audit_trail(b).expect("checked above"),
            );
            for h in 1..=(ta.len().min(tb.len()) as u64) {
                if ta.at_height(h) != tb.at_height(h) {
                    return Err(AuditError::ReplicaDisagreement {
                        node_a: a,
                        node_b: b,
                        height: h,
                    });
                }
            }
        }
    }
    Ok(report)
}

fn audit_node(
    chain: &BlockchainNetwork,
    node: usize,
    report: &mut AuditReport,
) -> Result<(), AuditError> {
    let ledger = chain.node_ledger(node);
    let trail = chain.audit_trail(node).expect("caller checked");
    let blocks = ledger.blocks();

    // 1. Structural chain walk, independent of ChainLedger::verify.
    let genesis = &blocks[0];
    if genesis.header.height.0 != 0 || !genesis.header.prev.is_zero() {
        return Err(AuditError::BrokenChain {
            node,
            height: 0,
            reason: "genesis must sit at height 0 with a zero prev pointer".into(),
        });
    }
    for pair in blocks.windows(2) {
        let (prev, cur) = (&pair[0], &pair[1]);
        if cur.header.height.0 != prev.header.height.0 + 1 {
            return Err(AuditError::BrokenChain {
                node,
                height: cur.header.height.0,
                reason: format!("height gap after {}", prev.header.height.0),
            });
        }
        if cur.header.prev != prev.hash() {
            return Err(AuditError::BrokenChain {
                node,
                height: cur.header.height.0,
                reason: "prev pointer does not match predecessor hash".into(),
            });
        }
    }
    for block in blocks {
        if !block.verify_tx_root() {
            return Err(AuditError::TxRootMismatch { node, height: block.header.height.0 });
        }
    }

    // 2. Replay oracles over the trail.
    let chain_blocks = ledger.height().0;
    if trail.len() as u64 != chain_blocks {
        return Err(AuditError::TrailLengthMismatch {
            node,
            trail: trail.len() as u64,
            chain: chain_blocks,
        });
    }
    let mut reference = ReferenceExecutor::new(chain.arch_kind(), chain.initial_state().clone());
    let mut serial: StateStore = chain.initial_state().clone();
    for record in trail.iter() {
        let block = ledger.block_at(Height(record.height)).ok_or(AuditError::BrokenChain {
            node,
            height: record.height,
            reason: "trail records a height the chain does not hold".into(),
        })?;

        // The record must partition the block exactly.
        let mut claimed: Vec<TxId> =
            record.committed.iter().chain(&record.aborted).copied().collect();
        claimed.sort_unstable();
        let mut in_block: Vec<TxId> = block.txs.iter().map(|t| t.id).collect();
        in_block.sort_unstable();
        if claimed != in_block {
            return Err(AuditError::TxPartitionMismatch { node, height: record.height });
        }

        // Oracle A: the sequential reference re-derives the verdicts and
        // the state digest — and, for dynamic (VM) transactions, checks
        // gas conservation: no execution may spend past its own limit.
        let expected = reference.apply_block(&block.txs, record.height);
        if let Some(&tx) = expected.gas_overruns.first() {
            return Err(AuditError::GasOverrun { node, height: record.height, tx });
        }
        let mut ec = expected.committed.clone();
        ec.sort_unstable();
        let mut cc = record.committed.clone();
        cc.sort_unstable();
        if ec != cc {
            return Err(AuditError::VerdictMismatch {
                node,
                height: record.height,
                expected_committed: ec.len(),
                claimed_committed: cc.len(),
            });
        }
        if reference.state().value_digest() != record.value_digest {
            return Err(AuditError::DigestMismatch {
                node,
                height: record.height,
                oracle: "reference",
            });
        }

        // Oracle B: serializability — the *claimed* commit order,
        // replayed one transaction at a time from the previous state,
        // must succeed throughout and land on the same digest.
        for (pos, id) in record.committed.iter().enumerate() {
            let tx = block.txs.iter().find(|t| t.id == *id).expect("partition checked");
            let r = execute_and_apply(tx, &mut serial, Version::new(record.height, pos as u32));
            if !r.is_success() {
                return Err(AuditError::SerialReplayFailed {
                    node,
                    height: record.height,
                    tx: *id,
                });
            }
            if tx.gas_limit().is_some_and(|limit| r.gas_used > limit) {
                return Err(AuditError::GasOverrun { node, height: record.height, tx: *id });
            }
            report.txs_replayed += 1;
        }
        if serial.value_digest() != record.value_digest {
            return Err(AuditError::DigestMismatch {
                node,
                height: record.height,
                oracle: "serial-replay",
            });
        }
        report.heights_checked += 1;
    }

    // 3. Verifiability audit (§2.3.2): sampled tx inclusion proofs
    // against header roots...
    for block in blocks.iter().filter(|b| !b.txs.is_empty()) {
        let leaves: Vec<Vec<u8>> = block.txs.iter().map(|t| t.canonical_bytes()).collect();
        let tree = MerkleTree::build(&leaves);
        if tree.root() != block.header.tx_root {
            return Err(AuditError::TxRootMismatch { node, height: block.header.height.0 });
        }
        for i in sample_indices(block.txs.len()) {
            let proof = tree.prove(i).ok_or_else(|| AuditError::ProofFailed {
                node,
                reason: format!("no tx proof at index {i} of block {}", block.header.height.0),
            })?;
            if !verify_inclusion(&block.header.tx_root, &leaves[i], &proof) {
                return Err(AuditError::ProofFailed {
                    node,
                    reason: format!(
                        "tx inclusion proof {i} of block {} rejected",
                        block.header.height.0
                    ),
                });
            }
            report.proofs_checked += 1;
        }
    }

    // ...and sampled state proofs against one shared root build.
    let state = chain.node_state(node);
    let batch = ProofBatch::new(state);
    if !batch.shares_build(&ProofBatch::new(state)) {
        return Err(AuditError::ProofFailed {
            node,
            reason: "proof batches over an unchanged state must share one tree build".into(),
        });
    }
    let root = batch.root();
    let keys: Vec<String> = state.iter().map(|(k, _, _)| k.clone()).collect();
    // Gather the whole sample, then verify it in one batched sweep: the
    // proofs' hash walks run through the lane-interleaved SHA-256 kernel
    // with lanes across proofs. Only a failing batch pays for the scalar
    // re-check that names the culprit key.
    let mut sampled: Vec<pbc_ledger::StateProof> = Vec::new();
    for i in sample_indices(keys.len()) {
        let key = &keys[i];
        let proof = batch.prove_key(key).ok_or_else(|| AuditError::ProofFailed {
            node,
            reason: format!("no inclusion proof for present key {key:?}"),
        })?;
        if proof.value.as_ref() != state.get(key).expect("key sampled from live set").as_ref() {
            return Err(AuditError::ProofFailed {
                node,
                reason: format!("state inclusion proof for {key:?} claims a stale value"),
            });
        }
        sampled.push(proof);
    }
    if !verify_keys(&root, &sampled) {
        let culprit = sampled
            .iter()
            .find(|p| !verify_key(&root, p))
            .map_or_else(|| "<batch/scalar disagreement>".into(), |p| format!("{:?}", p.key));
        return Err(AuditError::ProofFailed {
            node,
            reason: format!("state inclusion proof for {culprit} rejected"),
        });
    }
    report.proofs_checked += sampled.len();
    for i in sample_indices(keys.len()) {
        let key = &keys[i];
        // A key that hashes between this one and its neighbour: present
        // keys never contain NUL, so `key\0` is guaranteed absent and
        // adjacent in sort order — the sharpest absence case.
        let absent = format!("{key}\0");
        if state.get(&absent).is_none() {
            let ap = prove_absent(state, &absent).ok_or_else(|| AuditError::ProofFailed {
                node,
                reason: format!("no absence proof for {absent:?}"),
            })?;
            if !verify_absent(&root, &ap) {
                return Err(AuditError::ProofFailed {
                    node,
                    reason: format!("absence proof for {absent:?} rejected"),
                });
            }
            report.proofs_checked += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_core::{ArchKind, ConsensusKind, NetworkBuilder};
    use pbc_workload::PaymentWorkload;

    fn audited_run(arch: ArchKind) -> BlockchainNetwork {
        let w = PaymentWorkload { accounts: 24, ..Default::default() };
        let mut chain = NetworkBuilder::new(4)
            .consensus(ConsensusKind::Pbft)
            .architecture(arch)
            .initial_state(w.initial_state())
            .batch_size(5)
            .with_audit()
            .build();
        chain.submit_all(w.generate(0, 15));
        let report = chain.run_to_completion();
        assert!(report.consensus_complete);
        chain
    }

    #[test]
    fn honest_run_audits_green() {
        let chain = audited_run(ArchKind::Xov);
        let report = audit_network(&chain).expect("honest run must audit clean");
        assert_eq!(report.nodes_audited, 4);
        assert_eq!(report.heights_checked, 4 * 3, "3 blocks on each of 4 nodes");
        assert!(report.txs_replayed > 0);
        assert!(report.proofs_checked > 0);
    }

    #[test]
    fn unaudited_run_reports_no_trail() {
        let w = PaymentWorkload { accounts: 24, ..Default::default() };
        let mut chain = NetworkBuilder::new(4).initial_state(w.initial_state()).build();
        chain.submit_all(w.generate(0, 5));
        chain.run_to_completion();
        assert_eq!(audit_network(&chain), Err(AuditError::NoTrail));
    }

    #[test]
    fn sample_indices_cover_edges() {
        assert!(sample_indices(0).is_empty());
        assert_eq!(sample_indices(1), vec![0]);
        let s = sample_indices(100);
        assert_eq!(*s.first().unwrap(), 0);
        assert_eq!(*s.last().unwrap(), 99);
        assert!(s.len() <= SAMPLE + 1);
    }

    #[test]
    fn audit_runs_incrementally() {
        // Two run_to_completion rounds extend the same trail; the audit
        // still replays the whole history from genesis.
        let w = PaymentWorkload { accounts: 24, ..Default::default() };
        let mut chain = NetworkBuilder::new(4)
            .architecture(ArchKind::Xox)
            .initial_state(w.initial_state())
            .batch_size(4)
            .with_audit()
            .build();
        chain.submit_all(w.generate(0, 8));
        chain.run_to_completion();
        chain.submit_all(w.generate(500, 4));
        chain.run_to_completion();
        let report = audit_network(&chain).expect("incremental run audits clean");
        assert_eq!(report.heights_checked, 4 * 3);
    }
}
