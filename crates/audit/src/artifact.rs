//! Deterministic replay artifacts for shrunk violations.
//!
//! When the shrinker reduces a failing chaos schedule, the result is
//! only useful if it survives the test process: a [`ReplayArtifact`]
//! renders the seed, the minimized op sequence, the violation, and an
//! optional trace post-mortem into one text file. Everything needed to
//! re-run the failure is in the file — the schedule is replayed by
//! constructing the same harness with the same seed and applying the
//! listed ops in order.

use crate::shrink::ShrinkOutcome;
use pbc_sim::NemesisOp;
use std::path::{Path, PathBuf};

/// A self-contained reproduction recipe for a shrunk violation.
#[derive(Clone, Debug)]
pub struct ReplayArtifact {
    /// Short scenario name (used for the file name).
    pub title: String,
    /// Seed the harness (network + schedule) was constructed with.
    pub seed: u64,
    /// Cluster size of the harness.
    pub nodes: usize,
    /// Ops in the original failing schedule.
    pub original_ops: usize,
    /// The minimized schedule, in execution order.
    pub schedule: Vec<NemesisOp>,
    /// Rendered violation message.
    pub violation: String,
    /// Harness executions the shrink consumed.
    pub tests_run: usize,
    /// Optional trace post-mortem (from [`pbc_sim::violation_report`]).
    pub postmortem: String,
}

impl ReplayArtifact {
    /// Builds an artifact from a shrink result plus harness parameters.
    pub fn from_shrink(title: &str, seed: u64, nodes: usize, outcome: &ShrinkOutcome) -> Self {
        ReplayArtifact {
            title: title.to_string(),
            seed,
            nodes,
            original_ops: outcome.original_len,
            schedule: outcome.minimized.clone(),
            violation: outcome.violation.to_string(),
            tests_run: outcome.tests_run,
            postmortem: String::new(),
        }
    }

    /// Attaches a trace post-mortem (builder style).
    pub fn with_postmortem(mut self, postmortem: String) -> Self {
        self.postmortem = postmortem;
        self
    }

    /// Renders the artifact as a stable, line-oriented text document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# nemesis replay artifact: {}\n", self.title));
        out.push_str(&format!("seed = {:#x}\n", self.seed));
        out.push_str(&format!("nodes = {}\n", self.nodes));
        out.push_str(&format!(
            "schedule = {} ops (shrunk from {} in {} harness runs)\n",
            self.schedule.len(),
            self.original_ops,
            self.tests_run
        ));
        out.push_str(&format!("violation: {}\n\nschedule:\n", self.violation));
        for (i, op) in self.schedule.iter().enumerate() {
            out.push_str(&format!("  {}. {}\n", i + 1, format_op(op)));
        }
        if !self.postmortem.is_empty() {
            out.push_str("\npostmortem:\n");
            out.push_str(&self.postmortem);
            if !self.postmortem.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// Writes `render()` to `dir/<title>.repro.txt`, creating `dir` if
    /// needed, and returns the path. The write is atomic (temp file +
    /// fsync + rename, via [`pbc_store::write_atomic`]): the artifact is
    /// the only reproduction recipe for a failure that may have taken
    /// hours of chaos runs to find, so a crash mid-write must leave the
    /// previous artifact or the new one, never a torn file.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.repro.txt", self.title));
        pbc_store::write_atomic(&path, self.render().as_bytes())?;
        Ok(path)
    }
}

/// One op, one line, human-readable and diff-stable.
fn format_op(op: &NemesisOp) -> String {
    match op {
        NemesisOp::Partition { groups } => format!("partition groups={groups:?}"),
        NemesisOp::HealPartition => "heal-partition".into(),
        NemesisOp::Crash { node } => format!("crash node={node}"),
        NemesisOp::Recover { node } => format!("recover node={node}"),
        NemesisOp::CrashAmnesia { node } => format!("crash-amnesia node={node}"),
        NemesisOp::Restart { node } => format!("restart node={node}"),
        NemesisOp::DegradeLink { from, to, fault } => {
            format!("degrade-link {from}->{to} {fault:?}")
        }
        NemesisOp::HealLinks => "heal-links".into(),
        NemesisOp::FailSyncs { node, count } => format!("fail-syncs node={node} count={count}"),
        NemesisOp::CorruptWalTail { node } => format!("corrupt-wal-tail node={node}"),
        NemesisOp::BitRot { node } => format!("bit-rot node={node}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_sim::Violation;

    fn outcome() -> ShrinkOutcome {
        ShrinkOutcome {
            minimized: vec![
                NemesisOp::CrashAmnesia { node: 0 },
                NemesisOp::CrashAmnesia { node: 1 },
                NemesisOp::Restart { node: 0 },
                NemesisOp::Restart { node: 1 },
            ],
            violation: Violation::Rewrite { node: 0, seq: 0, was: 7, now: 9 },
            tests_run: 17,
            original_len: 12,
        }
    }

    #[test]
    fn render_is_complete_and_ordered() {
        let artifact = ReplayArtifact::from_shrink("volatile-raft", 0xBEEF, 3, &outcome());
        let text = artifact.render();
        assert!(text.contains("seed = 0xbeef"));
        assert!(text.contains("nodes = 3"));
        assert!(text.contains("4 ops (shrunk from 12 in 17 harness runs)"));
        assert!(text.contains("1. crash-amnesia node=0"));
        assert!(text.contains("4. restart node=1"));
        let pos_crash = text.find("crash-amnesia node=0").unwrap();
        let pos_restart = text.find("restart node=1").unwrap();
        assert!(pos_crash < pos_restart, "ops render in execution order");
    }

    #[test]
    fn render_is_deterministic() {
        let a = ReplayArtifact::from_shrink("x", 1, 3, &outcome());
        assert_eq!(a.render(), a.render());
    }

    #[test]
    fn writes_a_file() {
        let dir = std::env::temp_dir().join("pbc-audit-artifact-test");
        let artifact = ReplayArtifact::from_shrink("unit-test", 5, 3, &outcome())
            .with_postmortem("the trace window".into());
        let path = artifact.write_to(&dir).expect("write artifact");
        let read = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(read, artifact.render());
        assert!(read.contains("postmortem:\nthe trace window"));
        let _ = std::fs::remove_file(path);
    }
}
