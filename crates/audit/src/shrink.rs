//! Delta-debugging for nemesis schedules (ddmin).
//!
//! A seeded chaos schedule that violates a safety invariant is a
//! *reproduction*, but rarely a *minimal* one: a 12-op timeline usually
//! hides a 3-op kernel (crash the wrong majority, restart it, submit).
//! [`shrink_schedule`] runs Zeller's ddmin over the op sequence: it
//! repeatedly re-tests subsets and complements of the failing schedule,
//! keeping any smaller subsequence that still fails, until the result is
//! 1-minimal — removing any single remaining op makes the violation
//! disappear.
//!
//! Subsequences of a nemesis schedule are always well-formed inputs:
//! every [`NemesisOp`] is idempotent at the simulator level (recovering
//! an alive node or healing a healthy link is a no-op), so the test
//! harness never needs to special-case a "dangling" recover or heal.
//! Dropping a `Restart` can leave a node down through the end of the
//! run — that is a legitimate (and often *more* minimal) fault timeline.

use pbc_sim::{NemesisOp, Violation};

/// The result of a successful shrink.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The 1-minimal failing subsequence, in original order.
    pub minimized: Vec<NemesisOp>,
    /// The violation the minimized schedule still produces.
    pub violation: Violation,
    /// How many times the test harness ran (including the initial
    /// confirmation of the full schedule).
    pub tests_run: usize,
    /// Length of the original schedule, for the reduction ratio.
    pub original_len: usize,
}

/// Test-budget cap: ddmin on a k-op schedule needs O(k²) tests in the
/// worst case; chaos harnesses cost real wall-clock per test, so the
/// shrinker settles for the best reduction found within the budget.
const MAX_TESTS: usize = 256;

/// Minimizes `ops` against `test` with ddmin.
///
/// `test` replays a candidate subsequence from scratch (same seeds, same
/// network construction) and returns the violation it produces, if any.
/// It must be deterministic: the same subsequence must keep failing the
/// same way, which every `pbc-sim` harness guarantees by construction.
///
/// Returns `None` if the *full* schedule does not fail — there is
/// nothing to shrink, and a harness bug (a flaky or mis-seeded test
/// closure) should not masquerade as a passing shrink.
pub fn shrink_schedule<F>(ops: &[NemesisOp], mut test: F) -> Option<ShrinkOutcome>
where
    F: FnMut(&[NemesisOp]) -> Option<Violation>,
{
    let mut tests_run = 1;
    let mut violation = test(ops)?;
    let mut current: Vec<NemesisOp> = ops.to_vec();
    let mut granularity = 2usize;

    while current.len() >= 2 && tests_run < MAX_TESTS {
        let chunk = current.len().div_ceil(granularity);
        let chunks: Vec<Vec<NemesisOp>> = current.chunks(chunk).map(<[_]>::to_vec).collect();
        let mut reduced = false;

        // Try each chunk alone ("reduce to subset")...
        for piece in &chunks {
            if piece.len() == current.len() || tests_run >= MAX_TESTS {
                continue;
            }
            tests_run += 1;
            if let Some(v) = test(piece) {
                current = piece.clone();
                violation = v;
                granularity = 2;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }

        // ...then each complement ("reduce to complement").
        for skip in 0..chunks.len() {
            if chunks.len() <= 1 || tests_run >= MAX_TESTS {
                break;
            }
            let complement: Vec<NemesisOp> = chunks
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .flat_map(|(_, c)| c.iter().cloned())
                .collect();
            tests_run += 1;
            if let Some(v) = test(&complement) {
                current = complement;
                violation = v;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }

        // No subset or complement fails: refine, or stop at 1-minimal.
        if granularity >= current.len() {
            break;
        }
        granularity = (granularity * 2).min(current.len());
    }

    Some(ShrinkOutcome { minimized: current, violation, tests_run, original_len: ops.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic harness: "fails" iff the schedule still contains
    /// every op in `kernel` (order preserved by subsequence semantics).
    fn contains_kernel(schedule: &[NemesisOp], kernel: &[NemesisOp]) -> Option<Violation> {
        let mut it = schedule.iter();
        let all = kernel.iter().all(|k| it.by_ref().any(|op| op == k));
        all.then_some(Violation::Rewrite { node: 0, seq: 0, was: 1, now: 2 })
    }

    fn crash(node: usize) -> NemesisOp {
        NemesisOp::Crash { node }
    }

    fn recover(node: usize) -> NemesisOp {
        NemesisOp::Recover { node }
    }

    #[test]
    fn shrinks_to_exact_kernel() {
        let kernel = vec![crash(0), crash(1), recover(0)];
        let mut padded = vec![
            NemesisOp::HealLinks,
            crash(0),
            NemesisOp::HealPartition,
            crash(1),
            recover(2),
            NemesisOp::HealLinks,
            recover(0),
            recover(1),
            NemesisOp::HealPartition,
        ];
        padded.push(NemesisOp::HealLinks);
        let out = shrink_schedule(&padded, |s| contains_kernel(s, &kernel)).expect("full fails");
        assert_eq!(out.minimized, kernel, "ddmin must strip all padding");
        assert_eq!(out.original_len, padded.len());
        assert!(out.tests_run >= 2);
    }

    #[test]
    fn passing_schedule_yields_none() {
        let ops = vec![crash(0), recover(0)];
        assert!(shrink_schedule(&ops, |_| None).is_none());
    }

    #[test]
    fn single_op_kernel_is_found() {
        let kernel = vec![crash(2)];
        let padded =
            vec![NemesisOp::HealLinks, recover(1), crash(2), NemesisOp::HealPartition, recover(2)];
        let out = shrink_schedule(&padded, |s| contains_kernel(s, &kernel)).unwrap();
        assert_eq!(out.minimized, kernel);
    }

    #[test]
    fn result_is_one_minimal_within_budget() {
        // Kernel of two ops scattered through noise: dropping either
        // kernel op from the result must make the harness pass.
        let kernel = vec![crash(0), recover(0)];
        let mut padded = Vec::new();
        for i in 0..6 {
            padded.push(NemesisOp::HealLinks);
            padded.push(crash(i % 3));
            padded.push(recover(i % 3));
        }
        let out = shrink_schedule(&padded, |s| contains_kernel(s, &kernel)).unwrap();
        for drop in 0..out.minimized.len() {
            let mut fewer = out.minimized.clone();
            fewer.remove(drop);
            assert!(
                contains_kernel(&fewer, &kernel).is_none() || fewer.len() >= out.minimized.len(),
                "dropping op {drop} must break the repro"
            );
        }
    }
}
