//! The differential auditor: every run is an untrusted claim.
//!
//! The paper's verifiability axis (§2.3.2) says a permissioned
//! blockchain must be *checkable after the fact* — the operators are
//! known but not blindly trusted, so an auditor who holds the genesis
//! state and the block stream must be able to re-derive everything the
//! system claims. This crate is that auditor, pointed at our own stack:
//!
//! * [`oracle::audit_network`] — the **replay oracle**. Treats a
//!   [`BlockchainNetwork`](pbc_core::BlockchainNetwork) run as a set of
//!   untrusted [`CommitRecord`](pbc_core::CommitRecord) claims and
//!   cross-checks every one of them against (a) an independent
//!   *sequential* reimplementation of the node's execution architecture
//!   ([`reference::ReferenceExecutor`]) and (b) a serial replay of the
//!   claimed commit order, plus a full chain walk (hash links, Merkle
//!   transaction roots) and sampled state inclusion/absence proofs.
//! * [`shrink::shrink_schedule`] — the **nemesis shrinker**. Given a
//!   seeded chaos schedule that violates a safety invariant, ddmin
//!   delta-debugging reduces it to a locally minimal subsequence that
//!   still violates, turning a 12-op timeline into a 3-op repro.
//! * [`artifact::ReplayArtifact`] — the deterministic repro file a
//!   shrunk violation leaves behind: seed, minimized schedule, violation
//!   and post-mortem in one human-readable artifact.
//!
//! The crate deliberately depends on the *interfaces* of the stack
//! (`pbc-core`, `pbc-ledger`) but re-implements the execution semantics
//! from scratch: a bug shared between a pipeline and its auditor would
//! have to be introduced twice, independently.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod harness;
pub mod oracle;
pub mod reference;
pub mod shrink;

pub use artifact::ReplayArtifact;
pub use oracle::{audit_network, AuditError, AuditReport};
pub use reference::{ReferenceExecutor, ReferenceOutcome};
pub use shrink::{shrink_schedule, ShrinkOutcome};
