//! A ready-made violation harness for the shrinker: VolatileRaft under
//! amnesia schedules.
//!
//! `VolatileRaft` is the deliberately broken Raft variant that persists
//! nothing across an amnesia crash (PR 1's negative control). Crashing a
//! majority that includes the leader with memory loss lets the restarted
//! empty-log nodes elect each other and re-decide slot 0 — a textbook
//! history rewrite. [`volatile_raft_violation`] packages that scenario
//! as a *deterministic function of `(seed, schedule)`*, exactly the
//! shape [`shrink_schedule`](crate::shrink_schedule) needs: the shrinker
//! calls it dozens of times with candidate subsequences, and the same
//! `(seed, schedule)` always reproduces the same outcome.

use pbc_consensus::raft::{RaftConfig, RaftMsg, VolatileRaft};
use pbc_consensus::Payload;
use pbc_sim::{
    InvariantChecker, Nemesis, NemesisConfig, NemesisOp, Network, NetworkConfig, Violation,
};

/// Cluster size of the harness (Raft quorum = 2).
pub const NODES: usize = 3;

/// Runs a 3-node `VolatileRaft` cluster through `ops` and returns the
/// first safety violation, if any.
///
/// The run is a pure function of `(seed, ops)`: elect a leader, commit
/// payload 1 on every node, apply the schedule as one instantaneous
/// fault burst (no simulated time between ops — faults land faster than
/// the cluster can react, the regime where amnesia actually bites; give
/// each restart a whole election of breathing room and the surviving
/// replica simply repairs the amnesiacs), then submit payload 2 and keep
/// observing while the cluster settles. Any subsequence of any schedule
/// is a valid input — every op is idempotent at the simulator level.
pub fn volatile_raft_violation(seed: u64, ops: &[NemesisOp]) -> Option<Violation> {
    let cfg = RaftConfig::new(NODES);
    let actors: Vec<VolatileRaft<u64>> =
        (0..NODES).map(|i| VolatileRaft::new(cfg.clone(), i)).collect();
    let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
    net.start();
    net.run_until(300_000);
    for i in 0..NODES {
        net.inject(0, i, RaftMsg::Request(1), 1);
    }
    if !net.run_until_all(5_000_000, |a| !a.0.log.delivered().is_empty()) {
        return None; // nothing ever decided ⇒ nothing to rewrite
    }
    let views = |net: &Network<VolatileRaft<u64>>| -> Vec<Vec<(u64, u64)>> {
        net.actors()
            .map(|a| a.0.log.delivered().iter().map(|(s, p, _)| (*s, p.digest_u64())).collect())
            .collect()
    };
    let mut checker = InvariantChecker::new(NODES);
    if let Err(v) = checker.observe(&views(&net)) {
        return Some(v);
    }
    for op in ops {
        op.apply_durable(&mut net);
        if let Err(v) = checker.observe(&views(&net)) {
            return Some(v);
        }
    }
    // Fresh work after the schedule: an amnesiac majority re-elected
    // with empty logs will re-decide slot 0 here.
    for i in 0..NODES {
        net.inject(0, i, RaftMsg::Request(2), 1);
    }
    for _ in 0..8 {
        let deadline = net.now() + 500_000;
        net.run_until(deadline);
        if let Err(v) = checker.observe(&views(&net)) {
            return Some(v);
        }
    }
    None
}

/// The four-op kernel that kills `VolatileRaft`: a majority (including
/// the node that led the first commit) loses its memory and comes back
/// empty. With `seed` chosen so the initial leader is node 0 or 1, this
/// is the minimal schedule [`volatile_raft_violation`] fails on.
pub fn amnesia_kernel() -> Vec<NemesisOp> {
    vec![
        NemesisOp::CrashAmnesia { node: 0 },
        NemesisOp::CrashAmnesia { node: 1 },
        NemesisOp::Restart { node: 0 },
        NemesisOp::Restart { node: 1 },
    ]
}

/// The kernel buried in seeded nemesis noise: a realistic failing
/// schedule of the kind a chaos sweep produces, used to pin the
/// shrinker's behaviour in regression tests. The noise (link faults,
/// heals, crash/recover of the bystander node) is generated from
/// `noise_seed` and is harmless on its own.
pub fn padded_amnesia_schedule(noise_seed: u64) -> Vec<NemesisOp> {
    let noise = Nemesis::generate(
        NODES,
        &NemesisConfig {
            seed: noise_seed,
            steps: 6,
            max_down: 1,
            amnesia: false,
            link_faults: true,
            partitions: false,
            disk_faults: false,
        },
    );
    // Interleave: noise, kernel ops, noise — ddmin must strip the noise
    // from both sides and the middle.
    let kernel = amnesia_kernel();
    let mut ops = Vec::new();
    let mut noise_iter = noise.ops().iter().cloned();
    for k in kernel {
        ops.extend(noise_iter.by_ref().take(2));
        ops.push(k);
    }
    ops.extend(noise_iter);
    ops
}

/// The harness seed every regression pins: the initial VolatileRaft
/// leader at this seed is inside the `{0, 1}` amnesiac majority (see
/// `kernel_violates_at_pinned_seed`).
pub const PINNED_SEED: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    /// The pinned harness seed: chosen (and asserted here) so the
    /// initial leader is inside the amnesiac majority `{0, 1}`, making
    /// the kernel a real violation. If the simulator's event order ever
    /// shifts, this test fails first and points at the constant.
    #[test]
    fn kernel_violates_at_pinned_seed() {
        let v = volatile_raft_violation(crate::harness::PINNED_SEED, &amnesia_kernel());
        assert!(v.is_some(), "amnesia kernel must violate safety at the pinned seed");
    }

    #[test]
    fn empty_schedule_is_safe() {
        assert!(volatile_raft_violation(PINNED_SEED, &[]).is_none());
    }

    #[test]
    fn noise_alone_is_safe() {
        let noise: Vec<NemesisOp> = padded_amnesia_schedule(7)
            .into_iter()
            .filter(|op| !matches!(op, NemesisOp::CrashAmnesia { .. } | NemesisOp::Restart { .. }))
            .collect();
        assert!(
            volatile_raft_violation(PINNED_SEED, &noise).is_none(),
            "link faults and bystander crashes must not violate safety"
        );
    }

    #[test]
    fn harness_is_deterministic() {
        let padded = padded_amnesia_schedule(7);
        let a = volatile_raft_violation(PINNED_SEED, &padded);
        let b = volatile_raft_violation(PINNED_SEED, &padded);
        assert_eq!(a.is_some(), b.is_some());
    }
}
