//! Caper's DAG blockchain ledger (§2.3.1).
//!
//! In Caper each enterprise orders and executes its *internal*
//! transactions locally, while *cross-enterprise* transactions are global
//! and visible to everyone. The resulting ledger is a directed acyclic
//! graph: every enterprise's internal transactions form a chain, and each
//! cross-enterprise transaction is anchored to the latest transaction of
//! *every* enterprise, totally ordering the global transactions with
//! respect to all chains. Crucially, **no node stores the whole DAG** —
//! enterprise `e` materializes only its [`LocalView`]: its own internal
//! transactions plus all cross-enterprise ones.

use pbc_crypto::Hash;
use pbc_types::encode::{CanonicalEncode, Encoder};
use pbc_types::{EnterpriseId, Transaction};
use std::collections::HashMap;

/// Whether a DAG node is an internal or a cross-enterprise transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagNodeKind {
    /// Internal transaction of one enterprise (confidential to it).
    Internal(EnterpriseId),
    /// Cross-enterprise transaction (public to all enterprises).
    Cross,
    /// The unique genesis node.
    Genesis,
}

/// A node in the DAG ledger.
#[derive(Clone, Debug)]
pub struct DagNode {
    /// Content-derived identity (hashes the transaction and its parents).
    pub id: Hash,
    /// The transaction (empty ops for genesis).
    pub tx: Transaction,
    /// Node kind.
    pub kind: DagNodeKind,
    /// Hashes of the parent nodes this transaction is anchored to.
    pub parents: Vec<Hash>,
}

fn node_id(tx: &Transaction, parents: &[Hash]) -> Hash {
    let mut enc = Encoder::new();
    tx.encode(&mut enc);
    enc.u64(parents.len() as u64);
    for p in parents {
        enc.bytes(&p.0);
    }
    pbc_crypto::sha256(enc.as_slice())
}

/// The full DAG — held only by the test/audit harness; real Caper nodes
/// hold [`LocalView`]s produced by [`DagLedger::local_view`].
#[derive(Clone, Debug)]
pub struct DagLedger {
    nodes: HashMap<Hash, DagNode>,
    /// Insertion order — a valid topological order by construction.
    order: Vec<Hash>,
    /// Latest node on each enterprise's chain.
    tips: HashMap<EnterpriseId, Hash>,
    enterprises: Vec<EnterpriseId>,
    genesis: Hash,
}

impl DagLedger {
    /// Creates a DAG ledger for the given enterprises, with every chain
    /// rooted at a shared genesis node.
    pub fn new(enterprises: Vec<EnterpriseId>) -> Self {
        let genesis_tx = Transaction::new(pbc_types::TxId(0), pbc_types::ClientId(0), vec![]);
        let gid = node_id(&genesis_tx, &[]);
        let mut nodes = HashMap::new();
        nodes.insert(
            gid,
            DagNode { id: gid, tx: genesis_tx, kind: DagNodeKind::Genesis, parents: vec![] },
        );
        let tips = enterprises.iter().map(|&e| (e, gid)).collect();
        DagLedger { nodes, order: vec![gid], tips, enterprises, genesis: gid }
    }

    /// The genesis node id.
    pub fn genesis(&self) -> Hash {
        self.genesis
    }

    /// Enterprises participating in this ledger.
    pub fn enterprises(&self) -> &[EnterpriseId] {
        &self.enterprises
    }

    /// Appends an internal transaction of `enterprise`, chained to that
    /// enterprise's current tip. Returns the new node id.
    ///
    /// # Panics
    /// Panics if `enterprise` is unknown.
    pub fn append_internal(&mut self, enterprise: EnterpriseId, tx: Transaction) -> Hash {
        let tip = *self.tips.get(&enterprise).expect("unknown enterprise");
        let parents = vec![tip];
        let id = node_id(&tx, &parents);
        self.nodes.insert(id, DagNode { id, tx, kind: DagNodeKind::Internal(enterprise), parents });
        self.order.push(id);
        self.tips.insert(enterprise, id);
        id
    }

    /// Appends a cross-enterprise transaction, anchored to the current tip
    /// of **every** enterprise (this is what totally orders cross
    /// transactions against all chains). Returns the new node id.
    pub fn append_cross(&mut self, tx: Transaction) -> Hash {
        let mut parents: Vec<Hash> = self.enterprises.iter().map(|e| self.tips[e]).collect();
        parents.sort_unstable();
        parents.dedup();
        let id = node_id(&tx, &parents);
        self.nodes.insert(id, DagNode { id, tx, kind: DagNodeKind::Cross, parents });
        self.order.push(id);
        for e in &self.enterprises {
            self.tips.insert(*e, id);
        }
        id
    }

    /// Looks up a node.
    pub fn node(&self, id: &Hash) -> Option<&DagNode> {
        self.nodes.get(id)
    }

    /// Number of nodes including genesis.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if only genesis exists.
    pub fn is_empty(&self) -> bool {
        self.order.len() <= 1
    }

    /// All nodes in a topological order.
    pub fn topo_order(&self) -> impl Iterator<Item = &DagNode> {
        self.order.iter().map(|h| &self.nodes[h])
    }

    /// Enterprise `e`'s local view: genesis, `e`'s internal transactions,
    /// and all cross-enterprise transactions, in topological order.
    pub fn local_view(&self, e: EnterpriseId) -> LocalView {
        let nodes: Vec<DagNode> = self
            .topo_order()
            .filter(|n| match &n.kind {
                DagNodeKind::Internal(owner) => *owner == e,
                DagNodeKind::Cross | DagNodeKind::Genesis => true,
            })
            .cloned()
            .collect();
        LocalView { enterprise: e, nodes }
    }

    /// Structural validation: every parent exists and precedes its child
    /// in the stored order (acyclicity witness).
    pub fn verify(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        for h in &self.order {
            let Some(node) = self.nodes.get(h) else {
                return false;
            };
            for p in &node.parents {
                if !seen.contains(p) {
                    return false;
                }
            }
            seen.insert(*h);
        }
        seen.len() == self.nodes.len()
    }
}

/// One enterprise's materialized view of the DAG ledger — the only thing
/// a Caper node actually stores.
#[derive(Clone, Debug)]
pub struct LocalView {
    /// The owning enterprise.
    pub enterprise: EnterpriseId,
    /// Genesis + own internal + all cross transactions, topologically
    /// ordered.
    pub nodes: Vec<DagNode>,
}

impl LocalView {
    /// The ids of cross-enterprise transactions in order — the sequence
    /// all views must agree on (global consensus safety).
    pub fn cross_sequence(&self) -> Vec<Hash> {
        self.nodes.iter().filter(|n| n.kind == DagNodeKind::Cross).map(|n| n.id).collect()
    }

    /// The ids of this enterprise's internal transactions in order.
    pub fn internal_sequence(&self) -> Vec<Hash> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, DagNodeKind::Internal(_)))
            .map(|n| n.id)
            .collect()
    }

    /// Number of nodes in the view.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the view holds only genesis.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::{ClientId, Op, TxId, TxScope};

    fn e(i: u32) -> EnterpriseId {
        EnterpriseId(i)
    }

    fn itx(id: u64, ent: u32) -> Transaction {
        Transaction::with_scope(
            TxId(id),
            ClientId(0),
            TxScope::Internal(e(ent)),
            vec![Op::Get { key: format!("k{id}") }],
        )
    }

    fn ctx_tx(id: u64) -> Transaction {
        Transaction::with_scope(
            TxId(id),
            ClientId(0),
            TxScope::CrossEnterprise(vec![e(0), e(1)]),
            vec![Op::Get { key: format!("g{id}") }],
        )
    }

    fn three_enterprise_dag() -> DagLedger {
        DagLedger::new(vec![e(0), e(1), e(2)])
    }

    #[test]
    fn internal_chain_per_enterprise() {
        let mut dag = three_enterprise_dag();
        let a1 = dag.append_internal(e(0), itx(1, 0));
        let a2 = dag.append_internal(e(0), itx(2, 0));
        assert_eq!(dag.node(&a2).unwrap().parents, vec![a1]);
        assert!(dag.verify());
    }

    #[test]
    fn cross_anchors_all_tips() {
        let mut dag = three_enterprise_dag();
        let a1 = dag.append_internal(e(0), itx(1, 0));
        let b1 = dag.append_internal(e(1), itx(2, 1));
        let x = dag.append_cross(ctx_tx(3));
        let parents = &dag.node(&x).unwrap().parents;
        // parents = {a1, b1, genesis (tip of e2)}
        assert_eq!(parents.len(), 3);
        assert!(parents.contains(&a1));
        assert!(parents.contains(&b1));
        assert!(parents.contains(&dag.genesis()));
    }

    #[test]
    fn internal_after_cross_chains_to_cross() {
        let mut dag = three_enterprise_dag();
        dag.append_internal(e(0), itx(1, 0));
        let x = dag.append_cross(ctx_tx(2));
        let a2 = dag.append_internal(e(0), itx(3, 0));
        assert_eq!(dag.node(&a2).unwrap().parents, vec![x]);
    }

    #[test]
    fn local_views_hide_other_enterprises() {
        let mut dag = three_enterprise_dag();
        dag.append_internal(e(0), itx(1, 0));
        dag.append_internal(e(1), itx(2, 1));
        dag.append_cross(ctx_tx(3));
        dag.append_internal(e(0), itx(4, 0));

        let v0 = dag.local_view(e(0));
        let v1 = dag.local_view(e(1));
        // v0: genesis + 2 internal + 1 cross = 4
        assert_eq!(v0.len(), 4);
        assert_eq!(v0.internal_sequence().len(), 2);
        // v1: genesis + 1 internal + 1 cross = 3
        assert_eq!(v1.len(), 3);
        assert_eq!(v1.internal_sequence().len(), 1);
        // No view contains the other's internal txs.
        assert!(v1
            .nodes
            .iter()
            .all(|n| !matches!(n.kind, DagNodeKind::Internal(owner) if owner == e(0))));
    }

    #[test]
    fn views_agree_on_cross_sequence() {
        let mut dag = three_enterprise_dag();
        dag.append_internal(e(0), itx(1, 0));
        dag.append_cross(ctx_tx(2));
        dag.append_internal(e(1), itx(3, 1));
        dag.append_cross(ctx_tx(4));
        let seqs: Vec<Vec<Hash>> = (0..3).map(|i| dag.local_view(e(i)).cross_sequence()).collect();
        assert_eq!(seqs[0], seqs[1]);
        assert_eq!(seqs[1], seqs[2]);
        assert_eq!(seqs[0].len(), 2);
    }

    #[test]
    fn node_ids_depend_on_parents() {
        // Same tx appended at different DAG positions gets different ids.
        let mut d1 = DagLedger::new(vec![e(0)]);
        let mut d2 = DagLedger::new(vec![e(0)]);
        d2.append_internal(e(0), itx(7, 0));
        let id1 = d1.append_internal(e(0), itx(1, 0));
        let id2 = d2.append_internal(e(0), itx(1, 0));
        assert_ne!(id1, id2);
    }

    #[test]
    #[should_panic(expected = "unknown enterprise")]
    fn unknown_enterprise_panics() {
        let mut dag = DagLedger::new(vec![e(0)]);
        dag.append_internal(e(9), itx(1, 9));
    }

    #[test]
    fn verify_catches_missing_parent() {
        let mut dag = three_enterprise_dag();
        let a = dag.append_internal(e(0), itx(1, 0));
        // Corrupt: remove a node that a later node points to.
        dag.append_internal(e(0), itx(2, 0));
        dag.nodes.remove(&a);
        dag.order.retain(|h| *h != a);
        assert!(!dag.verify());
    }
}
